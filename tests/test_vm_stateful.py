"""Stateful property tests: the VM under arbitrary operation sequences.

Hypothesis drives random interleavings of accesses, prefetches, releases,
time advances, and multiprogramming pressure against one MemoryManager and
checks the global invariants after every step:

* frame conservation (fresh + freelist + in-use + reserved == total);
* the resident page count equals the in-use frame count;
* freelist contents are exactly the FREELIST-state pages;
* in-transit bookkeeping matches page states;
* the shared bit vector never claims a never-resident page;
* simulated time never runs backwards.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.config import PlatformConfig
from repro.runtime.layer import RuntimeLayer
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats
from repro.storage.array_ctl import DiskArray
from repro.vm.manager import MemoryManager
from repro.vm.page import PageState

PAGES = st.integers(1, 60)


class VMStateMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.config = PlatformConfig(
            memory_pages=16, available_fraction=1.0, num_disks=3,
            free_target_fraction=0.1,
        )
        self.clock = Clock()
        self.stats = RunStats()
        self.disks = DiskArray(self.config)
        self.disks.register_segment("x", base_vpage=1, npages=60)
        self.manager = MemoryManager(self.config, self.clock, self.disks, self.stats)
        self.layer = RuntimeLayer(
            self.config, self.clock, self.manager, self.stats
        )
        self.last_now = 0.0
        self.pressure_outstanding = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(vpage=PAGES, write=st.booleans())
    def access(self, vpage: int, write: bool) -> None:
        self.manager.access(vpage, write)

    @rule(vpage=PAGES, npages=st.integers(1, 6))
    def prefetch(self, vpage: int, npages: int) -> None:
        npages = min(npages, 60 - vpage + 1)
        self.layer.prefetch(vpage, npages)

    @rule(vpage=PAGES, count=st.integers(1, 4))
    def release(self, vpage: int, count: int) -> None:
        pages = [v for v in range(vpage, vpage + count) if v <= 60]
        self.layer.release(pages)

    @rule(vpage=PAGES, npages=st.integers(1, 4), rel=PAGES)
    def prefetch_release(self, vpage: int, npages: int, rel: int) -> None:
        npages = min(npages, 60 - vpage + 1)
        self.layer.prefetch_release(vpage, npages, [rel])

    @rule(us=st.floats(1.0, 50_000.0))
    def advance_time(self, us: float) -> None:
        self.clock.advance(us, TimeCategory.USER_COMPUTE)

    @rule(frames=st.integers(1, 4), duration=st.floats(10.0, 10_000.0))
    def pressure(self, frames: int, duration: float) -> None:
        if self.pressure_outstanding + frames > 8:
            return  # keep some memory for the application
        self.manager.schedule_pressure(self.clock.now, frames, duration)
        self.pressure_outstanding += frames
        # Durations expire as time advances; conservatively track the max.

    @rule()
    def flush_like_settle(self) -> None:
        self.manager._settle_arrived()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def frames_conserved(self) -> None:
        if not hasattr(self, "manager"):
            return
        self.manager.frames.check_invariant()

    @invariant()
    def resident_matches_in_use(self) -> None:
        if not hasattr(self, "manager"):
            return
        resident = sum(
            1
            for p in self.manager.pages.values()
            if p.state in (PageState.RESIDENT, PageState.IN_TRANSIT)
        )
        assert resident == self.manager.frames.in_use, (
            resident, self.manager.frames.in_use
        )

    @invariant()
    def freelist_matches_states(self) -> None:
        if not hasattr(self, "manager"):
            return
        on_freelist = {
            v for v, p in self.manager.pages.items()
            if p.state == PageState.FREELIST
        }
        assert on_freelist == set(self.manager.frames.freelist), (
            on_freelist, set(self.manager.frames.freelist)
        )

    @invariant()
    def in_transit_tracked(self) -> None:
        if not hasattr(self, "manager"):
            return
        in_transit = {
            v for v, p in self.manager.pages.items()
            if p.state == PageState.IN_TRANSIT
        }
        assert in_transit == set(self.manager._in_transit)

    @invariant()
    def bitvector_never_claims_on_disk_unprefetched(self) -> None:
        if not hasattr(self, "manager"):
            return
        for vpage, page in self.manager.pages.items():
            if page.state == PageState.ON_DISK and not page.prefetched_pending:
                assert not self.layer.bitvector.test(vpage), vpage

    @invariant()
    def time_monotonic(self) -> None:
        if not hasattr(self, "manager"):
            return
        assert self.clock.now >= self.last_now
        self.last_now = self.clock.now


TestVMStateMachine = VMStateMachine.TestCase
TestVMStateMachine.settings = settings(
    max_examples=60, stateful_step_count=60, deadline=None
)
