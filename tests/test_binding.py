"""Tests for the Figure-1 binding-prefetch instrumentation.

"The problem with a binding prefetch is that if another store to the same
location occurs during the interval between a prefetch and a corresponding
load, the value seen by the load will be stale." (paper, Section 2.2.1)

Binding mode records each page's write-version when a prefetch copies it
and flags first uses whose version moved -- the stale reads an
asynchronous ``read()`` into a buffer would have served.
"""

import pytest

from repro.apps import synthetic
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.interp.executor import Executor
from repro.machine.machine import Machine

CFG = PlatformConfig(memory_pages=128)


def machine(binding=True):
    m = Machine(CFG, prefetching=True, binding_prefetch=binding)
    m.map_segment("x", 400 * CFG.page_size)
    return m


def base(m):
    return m.address_space.segment("x").base // CFG.page_size


class TestMechanism:
    def test_clean_prefetch_is_not_stale(self):
        m = machine()
        b = base(m)
        m.prefetch(b, 1)
        m.compute(100_000.0)
        m.access(b, False)
        assert m.stats.prefetch.binding_stale == 0

    def test_write_between_prefetch_and_use_is_stale(self):
        m = machine()
        b = base(m)
        m.access(b, True)  # page resident and writable
        m.release([b])  # push it out (written back)...
        m.compute(500_000.0)
        m.prefetch(b, 1)  # ...binding copy taken now
        m.compute(100_000.0)
        # Another store lands on the page before the buffered copy is
        # consumed... except the page is via_prefetch-unused; the write IS
        # the first use -- use a second page to interleave instead.
        m.access(b, False)
        assert m.stats.prefetch.binding_stale == 0  # no intervening write

    def test_store_does_not_consume_the_buffer(self):
        """A store between copy and load leaves the entry armed; the
        load then sees the staleness."""
        m = machine()
        b = base(m)
        m.prefetch(b, 1)  # binding copy at version 0
        m.compute(100_000.0)
        m.access(b, True)  # store: bumps the version, does not consume
        assert m.stats.prefetch.binding_stale == 0
        m.access(b, False)  # the load consumes a now-stale buffer
        assert m.stats.prefetch.binding_stale == 1

    def test_load_before_store_is_clean(self):
        m = machine()
        b = base(m)
        m.prefetch(b, 1)
        m.compute(100_000.0)
        m.access(b, False)  # load consumes the fresh buffer
        m.access(b, True)  # later store is irrelevant
        m.access(b, False)
        assert m.stats.prefetch.binding_stale == 0

    def test_disabled_by_default(self):
        m = machine(binding=False)
        b = base(m)
        m.prefetch(b, 1)
        m.access(b, True)
        assert m.stats.prefetch.binding_stale == 0
        assert not m.manager.binding


class TestInPlaceStreamHazard:
    """The end-to-end Figure 1 story: an in-place update stream.

    ``x[i] = f(x[i])`` with prefetches moved ``d`` pages ahead: by the
    time the buffered copy of page p+d is consumed, iterations in between
    have stored into earlier slots of that same page region... wait -- the
    stores land on pages *behind* the read point, so a forward stream
    alone is safe.  The hazard needs aliasing: two logical streams over
    the same memory (the paper's ``foo(&X[10], &X[0])``), modeled here as
    a read stream running ``lag`` elements behind a write stream over one
    array.
    """

    def _aliased_program(self, nelems=120_000, lag_pages=2):
        from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
        from repro.core.ir.expr import Var

        lag = lag_pages * 512
        b = ProgramBuilder("aliased")
        x = b.array("x", (nelems,), elem_size=8)
        i = Var("i")
        # The paper's foo(&X[lag], &X[0]): the store stream runs *ahead*
        # of the load stream over the same array, so a load's buffered
        # copy -- taken a prefetch-distance early -- predates the store.
        b.append(loop("i", 0, nelems - lag, [
            work([read(x, i), write(x, i + lag)], 12.0),
        ]))
        return b.build()

    def _run(self, binding):
        program = self._aliased_program()
        compiled = insert_prefetches(program, CompilerOptions.from_platform(CFG))
        # Binding semantics model compiling to explicit asynchronous
        # read() calls: there is no residency filter in that world.
        m = Machine(CFG, prefetching=True, binding_prefetch=binding,
                    runtime_filter=not binding)
        return Executor(m).run(compiled.program)

    def test_overlapping_copy_produces_stale_binding_reads(self):
        stats = self._run(binding=True)
        # Every page of the overlap region is stored to between the bound
        # copy and its consuming load.
        assert stats.prefetch.binding_stale > 50

    def test_nonbinding_is_stale_free_by_construction(self):
        """The same program in (default) non-binding mode: the counter
        cannot even engage -- data has one name, reads see memory."""
        stats = self._run(binding=False)
        assert stats.prefetch.binding_stale == 0

    def test_disjoint_streams_are_safe_even_binding(self):
        program = synthetic.stream(100_000, writes=True)
        compiled = insert_prefetches(program, CompilerOptions.from_platform(CFG))
        m = Machine(CFG, prefetching=True, binding_prefetch=True,
                    runtime_filter=False)
        stats = Executor(m).run(compiled.program)
        assert stats.prefetch.binding_stale == 0
