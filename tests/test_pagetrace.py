"""Tests for the page-trace analytics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.registry import get_app
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.errors import ExecutionError
from repro.interp.pagetrace import (
    lru_miss_counts,
    page_trace,
    reuse_distances,
    reuse_distances_naive,
    reuse_histogram,
    working_set_sizes,
)


def stream_program(n=4 * 512):
    b = ProgramBuilder("stream")
    x = b.array("x", (n,), elem_size=8)
    b.append(loop("i", 0, n, [work([read(x, Var("i"))], 1.0)]))
    return b.build()


class TestPageTrace:
    def test_sequential_stream_pages(self):
        trace = page_trace(stream_program(4 * 512))
        # 4 pages, visited once each after collapsing.
        assert len(trace) == 4
        assert list(trace) == sorted(set(trace))

    def test_collapse_off_keeps_every_access(self):
        trace = page_trace(stream_program(2 * 512), collapse=False)
        assert len(trace) == 2 * 512

    def test_two_arrays_use_disjoint_pages(self):
        b = ProgramBuilder("two")
        x = b.array("x", (512,), elem_size=8)
        y = b.array("y", (512,), elem_size=8)
        i = Var("i")
        b.append(loop("i", 0, 512, [work([read(x, i), write(y, i)], 1.0)]))
        trace = page_trace(b.build())
        assert len(set(trace)) == 2

    def test_empty_program(self):
        b = ProgramBuilder("empty")
        b.array("x", (512,), elem_size=8)
        assert len(page_trace(b.build())) == 0


class TestReuseDistances:
    def test_cold_references(self):
        assert list(reuse_distances([1, 2, 3])) == [-1, -1, -1]

    def test_immediate_reuse(self):
        assert list(reuse_distances([1, 1])) == [-1, 0]

    def test_classic_example(self):
        # a b c a : 'a' has two distinct pages (b, c) in between.
        assert list(reuse_distances([1, 2, 3, 1])) == [-1, -1, -1, 2]

    def test_move_to_front(self):
        # a b a b : after the first reuse, each sees one intervening page.
        assert list(reuse_distances([1, 2, 1, 2])) == [-1, -1, 1, 1]


class TestFenwickVsNaive:
    @given(st.lists(st.integers(0, 30), max_size=400))
    def test_fenwick_matches_naive(self, trace):
        assert list(reuse_distances(trace)) == list(reuse_distances_naive(trace))

    def test_large_random_trace(self):
        rng = np.random.default_rng(11)
        trace = rng.integers(0, 500, size=5000)
        assert list(reuse_distances(trace)) == list(reuse_distances_naive(trace))


class TestLruMissCounts:
    def test_inclusion_property(self):
        """Bigger LRU caches never miss more (Mattson inclusion)."""
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 50, size=2000)
        misses = lru_miss_counts(trace, [1, 2, 4, 8, 16, 32, 64])
        values = [misses[c] for c in sorted(misses)]
        assert values == sorted(values, reverse=True)

    def test_fits_entirely(self):
        trace = [1, 2, 3] * 10
        misses = lru_miss_counts(trace, [3])
        assert misses[3] == 3  # cold only

    def test_thrash_exactly_one_short(self):
        """Cyclic sweep over C+1 pages misses every time at capacity C."""
        trace = list(range(5)) * 10
        misses = lru_miss_counts(trace, [4])
        assert misses[4] == 50

    def test_matches_direct_simulation(self):
        """Cross-check the stack-distance method against a direct LRU."""
        rng = np.random.default_rng(7)
        trace = list(rng.integers(0, 30, size=1500))
        for cap in (4, 8, 16):
            from collections import OrderedDict

            lru: OrderedDict[int, None] = OrderedDict()
            direct = 0
            for page in trace:
                if page in lru:
                    lru.move_to_end(page)
                else:
                    direct += 1
                    lru[page] = None
                    if len(lru) > cap:
                        lru.popitem(last=False)
            assert lru_miss_counts(trace, [cap])[cap] == direct

    def test_bad_capacity(self):
        with pytest.raises(ExecutionError):
            lru_miss_counts([1], [0])

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=300),
           st.integers(1, 25))
    def test_property_matches_direct_lru(self, trace, cap):
        from collections import OrderedDict

        lru: OrderedDict[int, None] = OrderedDict()
        direct = 0
        for page in trace:
            if page in lru:
                lru.move_to_end(page)
            else:
                direct += 1
                lru[page] = None
                if len(lru) > cap:
                    lru.popitem(last=False)
        assert lru_miss_counts(trace, [cap])[cap] == direct


class TestWorkingSet:
    def test_window_counts_distinct(self):
        ws = working_set_sizes([1, 1, 2, 3, 1], window=2)
        assert list(ws) == [1, 1, 2, 2, 2]

    def test_window_one(self):
        ws = working_set_sizes([1, 2, 2], window=1)
        assert list(ws) == [1, 1, 1]

    def test_bad_window(self):
        with pytest.raises(ExecutionError):
            working_set_sizes([1], window=0)


class TestHistogramAndApps:
    def test_histogram_partitions_everything(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 40, size=1000)
        hist = reuse_histogram(trace, [4, 16, 64])
        assert sum(hist.values()) == len(trace)

    def test_buk_locality_signature(self):
        """BUK's count pages are hot (short distances); keys are streamed
        (cold every sweep at out-of-core sizes)."""
        program = get_app("BUK").make(64)
        trace = page_trace(program, limit=6_000_000)
        hist = reuse_histogram(trace, [16])
        # The indirect count accesses produce a mass of short distances.
        assert hist["<16"] > 0.3 * len(trace)
