"""Edge-case tests across the compiler and interpreter.

Covers the corners the mainline tests do not reach: stepped loops through
the whole pass, triangular nests, bundled hints in leaf bodies, negative
travel directions, hint clamping at segment ends, and printer fallbacks.
"""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.core.analysis.locality import group_references
from repro.core.analysis.planner import PlanKind, plan_program
from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import MaxExpr, MinExpr, Var
from repro.core.ir.nodes import AddrOf, Cmp, Hint, HintKind, If, Program, Work
from repro.core.ir.printer import format_program
from repro.core.ir.visit import count_stmts, walk_hints, walk_loops, walk_refs
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import AddressError, MachineError
from repro.interp.executor import Executor, run_program
from repro.interp.lower import analyze_leaf
from repro.interp.tracing import access_trace
from repro.machine.machine import Machine
from repro.vm.page_table import AddressSpace

CFG = PlatformConfig(memory_pages=128)
OPTS = CompilerOptions.from_platform(CFG)


class TestSteppedLoops:
    def _stepped(self, n=120_000, step=4):
        b = ProgramBuilder("stepped")
        x = b.array("x", (n,), elem_size=8)
        b.append(loop("i", 0, n, [work([read(x, Var("i"))], 10.0)], step=step))
        return b.build()

    def test_pass_handles_step(self):
        prog = self._stepped()
        result = insert_prefetches(prog, OPTS)
        assert access_trace(prog) == access_trace(result.program)

    def test_strips_are_step_multiples(self):
        result = insert_prefetches(self._stepped(), OPTS)
        for lp in walk_loops(result.program.body):
            if "__s" in lp.var:
                assert lp.step % 4 == 0

    def test_stepped_execution_matches_scalar(self):
        prog = self._stepped(n=40_000)
        result = insert_prefetches(prog, OPTS)
        m1 = Machine(CFG, prefetching=True)
        s1 = Executor(m1, vectorize=True).run(result.program)
        m2 = Machine(CFG, prefetching=True)
        s2 = Executor(m2, vectorize=False).run(result.program)
        assert s1.elapsed_us == pytest.approx(s2.elapsed_us)
        assert s1.faults.total_faults == s2.faults.total_faults


class TestTriangularNest:
    def _triangular(self, n=600):
        b = ProgramBuilder("tri")
        c = b.array("c", (n, n), elem_size=8)
        i, j = Var("i"), Var("j")
        b.append(loop("i", 0, n, [
            loop("j", Var("i"), n, [work([read(c, i, j)], 4.0)]),
        ]))
        return b.build()

    def test_pass_preserves_triangular_trace(self):
        prog = self._triangular()
        result = insert_prefetches(prog, OPTS)
        limit = 600 * 600 + 16
        assert access_trace(prog, limit=limit) == access_trace(
            result.program, limit=limit
        )

    def test_triangular_runs(self):
        prog = self._triangular(400)
        result = insert_prefetches(prog, OPTS)
        stats = run_program(result.program, Machine(CFG, prefetching=True))
        assert stats.faults.total_faults > 0


class TestLeafClassification:
    def _arr(self):
        return ArrayDecl("x", (10_000,), elem_size=8)

    def test_bundled_hint_disqualifies_leaf(self):
        x = self._arr()
        body = [
            Hint(
                HintKind.PREFETCH_RELEASE,
                AddrOf(x, (Var("i"),)),
                npages=4,
                release_target=AddrOf(x, (Var("i") - 2048,)),
                release_npages=4,
            ),
            work([read(x, Var("i"))], 1.0),
        ]
        assert analyze_leaf(loop("i", 0, 100, body)) is None

    def test_block_prefetch_disqualifies_leaf(self):
        x = self._arr()
        body = [
            Hint(HintKind.PREFETCH, AddrOf(x, (Var("i"),)), npages=4),
            work([read(x, Var("i"))], 1.0),
        ]
        assert analyze_leaf(loop("i", 0, 100, body)) is None

    def test_nested_loop_disqualifies_leaf(self):
        x = self._arr()
        inner = loop("j", 0, 4, [work([read(x, Var("j"))], 1.0)])
        assert analyze_leaf(loop("i", 0, 100, [inner])) is None

    def test_single_page_release_is_leaf(self):
        x = self._arr()
        body = [
            Hint(HintKind.RELEASE, AddrOf(x, (Var("i"),)), release_npages=1),
            work([read(x, Var("i"))], 1.0),
        ]
        recipe = analyze_leaf(loop("i", 0, 100, body))
        assert recipe is not None and len(recipe.templates) == 2

    def test_if_disqualifies_leaf(self):
        x = self._arr()
        body = [If(Cmp(Var("i"), "<", 5), [work([read(x, Var("i"))], 1.0)])]
        assert analyze_leaf(loop("i", 0, 100, body)) is None


class TestHintClamping:
    def test_out_of_range_hint_counted(self):
        b = ProgramBuilder("clamp")
        x = b.array("x", (1024,), elem_size=8)  # 2 pages only
        b.append(Hint(HintKind.PREFETCH, AddrOf(x, (5_000_000,)), npages=4))
        b.append(work([read(x, 0)], 1.0))
        prog = b.build()
        machine = Machine(CFG, prefetching=True)
        executor = Executor(machine)
        executor.run(prog)
        assert executor.out_of_range_hints == 1

    def test_partial_clamp_issues_remainder(self):
        b = ProgramBuilder("clamp2")
        x = b.array("x", (4 * 512,), elem_size=8)  # 4 pages
        b.append(Hint(HintKind.PREFETCH, AddrOf(x, (3 * 512,)), npages=16))
        b.append(work([read(x, 0)], 1.0))
        prog = b.build()
        machine = Machine(CFG, prefetching=True)
        Executor(machine).run(prog)
        # Only the single in-range page was issued.
        assert machine.stats.prefetch.issued_pages == 1

    def test_release_before_segment_start_is_noop(self):
        b = ProgramBuilder("clamp3")
        x = b.array("x", (4 * 512,), elem_size=8)
        b.append(work([read(x, 0)], 1.0))
        b.append(Hint(HintKind.RELEASE, AddrOf(x, (-9999,)), release_npages=2))
        prog = b.build()
        machine = Machine(CFG, prefetching=True)
        executor = Executor(machine)
        executor.run(prog)
        assert executor.out_of_range_hints == 1
        assert machine.stats.release.pages_released == 0


class TestNegativeTravel:
    def test_backward_group_leader_is_low_offset(self):
        x = ArrayDecl("x", (100_000,), elem_size=8)
        i = Var("i")
        n = 50_000
        refs = [read(x, (n - 1) - i), read(x, (n - 1) - i + 1)]
        groups, _ = group_references(refs, ["i"], {}, OPTS)
        assert len(groups) == 1
        # Travel is backward (negative stride): the lower offset leads.
        assert groups[0].leader is refs[0]

    def test_backward_stream_plans_dense(self):
        b = ProgramBuilder("back")
        x = b.array("x", (120_000,), elem_size=8)
        i = Var("i")
        n = 120_000
        b.append(loop("i", 0, n, [work([read(x, (n - 1) - i)], 10.0)]))
        plan = plan_program(b.build(), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert len(dense) == 1

    def test_backward_stream_trace_preserved(self):
        b = ProgramBuilder("back2")
        x = b.array("x", (60_000,), elem_size=8)
        i = Var("i")
        b.append(loop("i", 0, 60_000, [work([read(x, 59_999 - i)], 10.0)]))
        prog = b.build()
        result = insert_prefetches(prog, OPTS)
        assert access_trace(prog) == access_trace(result.program)


class TestAggressiveReleasePolicy:
    def test_aggressive_releases_nested_sweeps(self):
        b = ProgramBuilder("nested")
        c = b.array("c", (600, 600), elem_size=8)
        i, j = Var("i"), Var("j")
        b.append(loop("t", 0, 2, [
            loop("i", 0, 600, [
                loop("j", 0, 600, [work([read(c, i, j)], 4.0)]),
            ]),
        ]))
        prog = b.build()
        aggressive = plan_program(prog, OPTS.scaled(release_policy="aggressive"))
        streaming = plan_program(prog, OPTS)
        agg_rel = [p for p in aggressive.plans if p.kind is PlanKind.DENSE and p.release]
        str_rel = [p for p in streaming.plans if p.kind is PlanKind.DENSE and p.release]
        assert agg_rel and not str_rel


class TestMinMaxBounds:
    def test_max_lower_bound_loop(self):
        b = ProgramBuilder("maxb")
        x = b.array("x", (4096,), elem_size=8)
        b.append(loop("i", MaxExpr(Var("lo"), 100), MinExpr(Var("hi"), 2000),
                      [work([read(x, Var("i"))], 1.0)]))
        b.params.update({"lo": 50, "hi": 99_999})
        stats = run_program(b.build(), Machine(CFG, prefetching=False))
        assert stats.times.user_compute == pytest.approx(1900.0)


class TestAddressSpaceQueries:
    def test_segment_of(self):
        space = AddressSpace(4096)
        seg = space.map_segment("a", 8192)
        assert space.segment_of(seg.base + 100).name == "a"
        with pytest.raises(AddressError):
            space.segment_of(seg.end + 4096 + 1)

    def test_vpage_of_zero_page(self):
        space = AddressSpace(4096)
        with pytest.raises(AddressError):
            space.vpage_of(12)

    def test_total_pages(self):
        space = AddressSpace(4096)
        space.map_segment("a", 4096 * 3)
        space.map_segment("b", 100)
        assert space.total_pages == 4


class TestPrinterFallbacks:
    def test_unusual_elem_size(self):
        arr = ArrayDecl("w", (10,), elem_size=16)
        prog = Program("p", [arr], [work([read(arr, 0)], 1.0)])
        assert "elem16 w[10];" in format_program(prog)

    def test_work_without_text_or_reads(self):
        arr = ArrayDecl("w", (10,), elem_size=8)
        prog = Program("p", [arr], [Work([write(arr, 0)], 1.0)])
        out = format_program(prog, include_decls=False)
        assert "w[0] = f(0);" in out

    def test_release_block_rendering(self):
        arr = ArrayDecl("w", (10_000,), elem_size=8)
        prog = Program("p", [arr], [
            Hint(HintKind.RELEASE, AddrOf(arr, (Var("i"),)), release_npages=4)
        ], params={"i": 0})
        assert "release_block(&w[i], 4);" in format_program(prog, include_decls=False)

    def test_count_stmts_with_if(self):
        arr = ArrayDecl("w", (10,), elem_size=8)
        stmt = If(Cmp(1, "<", 2), [Work([read(arr, 0)], 1.0)],
                  [Work([read(arr, 1)], 1.0)])
        assert count_stmts([stmt]) == 3

    def test_walk_refs_through_if(self):
        arr = ArrayDecl("w", (10,), elem_size=8)
        stmt = If(Cmp(1, "<", 2), [Work([read(arr, 0)], 1.0)],
                  [Work([read(arr, 1)], 1.0)])
        assert len(list(walk_refs([stmt]))) == 2


class TestMultiNestPrograms:
    def test_independent_nests_transform_independently(self):
        b = ProgramBuilder("multi")
        x = b.array("x", (150_000,), elem_size=8)
        y = b.array("y", (150_000,), elem_size=8)
        i = Var("i")
        b.append(loop("i", 0, 150_000, [work([read(x, i)], 8.0)]))
        b.append(work([read(y, 42)], 1.0))
        b.append(loop("i", 0, 150_000, [work([write(y, i)], 8.0)]))
        prog = b.build()
        result = insert_prefetches(prog, OPTS)
        assert access_trace(prog) == access_trace(result.program)
        hints = list(walk_hints(result.program.body))
        assert len(hints) >= 4  # prologs + steady hints for both nests


class TestPackageHygiene:
    def test_every_module_imports(self):
        """No module has import-time side effects or missing deps."""
        import importlib
        import pkgutil

        import repro

        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if mod.name.endswith("__main__"):
                continue  # runs the CLI on import, by design
            importlib.import_module(mod.name)

    def test_public_api_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
