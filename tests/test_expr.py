"""Tests for the IR expression language."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.expr import (
    Affine,
    CeilDiv,
    Const,
    ElemOf,
    MinExpr,
    Var,
    as_expr,
)
from repro.errors import ExecutionError, IRError


class TestOperators:
    def test_var_plus_int(self):
        e = Var("i") + 3
        assert e.eval({"i": 10}) == 13

    def test_var_minus_var(self):
        e = Var("i") - Var("j")
        assert e.eval({"i": 10, "j": 4}) == 6

    def test_scalar_multiply(self):
        e = 4 * Var("i") + 1
        assert e.eval({"i": 5}) == 21

    def test_affine_combination(self):
        e = 2 * Var("i") + 3 * Var("j") - 7
        assert e.eval({"i": 1, "j": 2}) == 1

    def test_cancellation_folds_to_const(self):
        e = Var("i") - Var("i") + 5
        assert isinstance(e, Const)
        assert e.value == 5

    def test_non_int_scale_rejected(self):
        with pytest.raises(IRError):
            Var("i") * 1.5  # noqa: B018

    def test_as_expr_coercions(self):
        assert isinstance(as_expr(3), Const)
        assert isinstance(as_expr("i"), Var)
        e = Var("i")
        assert as_expr(e) is e
        with pytest.raises(IRError):
            as_expr(3.14)


class TestEvaluation:
    def test_unbound_var_raises(self):
        with pytest.raises(ExecutionError):
            Var("missing").eval({})

    def test_vectorized_matches_scalar(self):
        e = 3 * Var("i") + 2 * Var("j") + 1
        env = {"j": 4}
        values = np.arange(0, 50, 3)
        vec = e.eval_vec(env, "i", values)
        scalar = [e.eval({"i": int(v), "j": 4}) for v in values]
        assert list(vec) == scalar

    def test_vectorized_constant_broadcast(self):
        e = Const(7)
        assert e.eval_vec({}, "i", np.arange(5)) == 7

    def test_min_expr(self):
        e = MinExpr(Var("i") + 10, Const(15))
        assert e.eval({"i": 2}) == 12
        assert e.eval({"i": 9}) == 15

    def test_min_vectorized(self):
        e = MinExpr(Var("i"), Const(3))
        out = e.eval_vec({}, "i", np.arange(6))
        assert list(out) == [0, 1, 2, 3, 3, 3]

    def test_ceildiv(self):
        e = CeilDiv(Var("n"), 4)
        assert e.eval({"n": 8}) == 2
        assert e.eval({"n": 9}) == 3
        with pytest.raises(IRError):
            CeilDiv(Var("n"), 0)


class TestTryConst:
    def test_const_is_known(self):
        assert Const(5).try_const({}) == 5

    def test_var_known_or_not(self):
        assert Var("n").try_const({"n": 9}) == 9
        assert Var("n").try_const({}) is None

    def test_affine_partial_knowledge(self):
        e = Var("n") + Var("m")
        assert e.try_const({"n": 1}) is None
        assert e.try_const({"n": 1, "m": 2}) == 3

    def test_elemof_never_const(self):
        arr = ArrayDecl("b", (10,), data=np.arange(10))
        assert ElemOf(arr, Const(3)).try_const({}) is None

    def test_min_folds(self):
        assert MinExpr(Const(3), Const(5)).try_const({}) == 3


class TestElemOf:
    def _arr(self):
        return ArrayDecl("b", (10,), data=np.array([5, 3, 8, 1, 9, 0, 2, 7, 4, 6]))

    def test_lookup(self):
        e = ElemOf(self._arr(), Var("i"))
        assert e.eval({"i": 2}) == 8

    def test_out_of_range_raises(self):
        e = ElemOf(self._arr(), Const(50))
        with pytest.raises(ExecutionError):
            e.eval({})

    def test_clamp(self):
        e = ElemOf(self._arr(), Const(50), clamp=True)
        assert e.eval({}) == 6  # last element
        e = ElemOf(self._arr(), Const(-3), clamp=True)
        assert e.eval({}) == 5  # first element

    def test_vectorized_lookup(self):
        e = ElemOf(self._arr(), Var("i"))
        out = e.eval_vec({}, "i", np.array([0, 1, 2]))
        assert list(out) == [5, 3, 8]

    def test_vectorized_clamp(self):
        e = ElemOf(self._arr(), Var("i"), clamp=True)
        out = e.eval_vec({}, "i", np.array([8, 9, 10, 11]))
        assert list(out) == [4, 6, 6, 6]

    def test_no_data_raises(self):
        arr = ArrayDecl("b", (10,))
        with pytest.raises(ExecutionError):
            ElemOf(arr, Const(0)).eval({})

    def test_free_vars_from_index(self):
        e = ElemOf(self._arr(), Var("i") + Var("j"))
        assert e.free_vars() == {"i", "j"}


@st.composite
def affine_exprs(draw):
    nterms = draw(st.integers(0, 3))
    terms = {
        f"v{k}": draw(st.integers(-10, 10)) for k in range(nterms)
    }
    const = draw(st.integers(-100, 100))
    return Affine(terms, const)


class TestAffineProperties:
    @given(affine_exprs(), affine_exprs(), st.dictionaries(
        st.sampled_from(["v0", "v1", "v2"]), st.integers(-50, 50),
        min_size=3))
    def test_addition_homomorphic(self, a, b, env):
        assert (a + b).eval(env) == a.eval(env) + b.eval(env)

    @given(affine_exprs(), st.integers(-10, 10), st.dictionaries(
        st.sampled_from(["v0", "v1", "v2"]), st.integers(-50, 50),
        min_size=3))
    def test_scaling_homomorphic(self, a, k, env):
        assert (a * k).eval(env) == k * a.eval(env)

    @given(affine_exprs())
    def test_try_const_agrees_with_eval(self, a):
        env = {v: 7 for v in a.free_vars()}
        assert a.try_const(env) == a.eval(env)
