"""Tests for the VM substrate: frames, clock ring, and the memory manager."""

import pytest
from hypothesis import given, strategies as st

from repro.config import PlatformConfig
from repro.errors import MachineError
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats
from repro.storage.array_ctl import DiskArray
from repro.vm.frames import FramePool
from repro.vm.manager import AccessOutcome, MemoryManager
from repro.vm.page import Page, PageState
from repro.vm.page_table import AddressSpace
from repro.vm.replacement import ClockRing


class TestAddressSpace:
    def test_segments_are_page_aligned_and_disjoint(self):
        space = AddressSpace(4096)
        a = space.map_segment("a", 10_000)
        b = space.map_segment("b", 5_000)
        assert a.base % 4096 == 0
        assert b.base % 4096 == 0
        assert b.base >= a.base + a.npages * 4096

    def test_guard_page_between_segments(self):
        space = AddressSpace(4096)
        a = space.map_segment("a", 4096)
        b = space.map_segment("b", 4096)
        assert b.base - (a.base + a.nbytes) >= 4096

    def test_duplicate_name_rejected(self):
        space = AddressSpace(4096)
        space.map_segment("a", 100)
        with pytest.raises(MachineError):
            space.map_segment("a", 100)

    def test_zero_page_never_mapped(self):
        space = AddressSpace(4096)
        seg = space.map_segment("a", 100)
        assert seg.base >= 4096


class TestFramePool:
    def test_take_fresh_until_exhausted(self):
        pool = FramePool(3)
        assert pool.take_fresh()
        assert pool.take_fresh()
        assert pool.take_fresh()
        assert not pool.take_fresh()
        pool.check_invariant()

    def test_freelist_reclaim(self):
        pool = FramePool(2)
        pool.take_fresh()
        pool.add_to_freelist(42)
        assert pool.reclaim(42)
        assert not pool.reclaim(42)
        pool.check_invariant()

    def test_steal_is_fifo(self):
        pool = FramePool(3)
        for _ in range(3):
            pool.take_fresh()
        pool.add_to_freelist(1)
        pool.add_to_freelist(2)
        assert pool.steal_from_freelist() == 1
        assert pool.steal_from_freelist() == 2
        assert pool.steal_from_freelist() is None
        pool.check_invariant()

    def test_free_count(self):
        pool = FramePool(4)
        pool.take_fresh()
        pool.take_fresh()
        pool.add_to_freelist(7)
        assert pool.free_count == 3  # 2 fresh + 1 freelist

    def test_double_freelist_rejected(self):
        pool = FramePool(2)
        pool.take_fresh()
        pool.add_to_freelist(7)
        with pytest.raises(MachineError):
            pool.add_to_freelist(7)

    @given(st.lists(st.sampled_from(["take", "free", "steal", "surrender"]), max_size=50))
    def test_frames_conserved_under_any_sequence(self, ops):
        pool = FramePool(5)
        next_page = 0
        held = 0
        for op in ops:
            if op == "take":
                if pool.take_fresh():
                    held += 1
            elif op == "free" and held:
                pool.add_to_freelist(next_page)
                next_page += 1
                held -= 1
            elif op == "steal":
                if pool.steal_from_freelist() is not None:
                    held += 1
            elif op == "surrender" and held:
                pool.surrender()
                held -= 1
            pool.check_invariant()


class TestClockRing:
    def _page(self, n):
        page = Page(n)
        page.state = PageState.RESIDENT
        return page

    def test_victim_is_oldest_unreferenced(self):
        ring = ClockRing()
        pages = [self._page(i) for i in range(3)]
        for p in pages:
            ring.insert(p)
        # All inserted with ref bits set: first sweep clears, second evicts
        # the first-inserted page.
        victim = ring.select_victim()
        assert victim is pages[0]

    def test_referenced_page_survives_one_sweep(self):
        ring = ClockRing()
        a, b = self._page(0), self._page(1)
        ring.insert(a)
        ring.insert(b)
        a.ref_bit = True
        b.ref_bit = False
        assert ring.select_victim() is b

    def test_forget_makes_entry_stale(self):
        ring = ClockRing()
        a, b = self._page(0), self._page(1)
        ring.insert(a)
        ring.insert(b)
        ring.forget(a)
        a.state = PageState.FREELIST
        assert ring.select_victim() is b

    def test_empty_ring(self):
        assert ClockRing().select_victim() is None

    def test_second_chance_order(self):
        ring = ClockRing()
        pages = [self._page(i) for i in range(4)]
        for p in pages:
            ring.insert(p)
        # Touch page 0 again right before eviction: it survives, page 1 goes.
        first = ring.select_victim()
        assert first is pages[0]
        pages[1].ref_bit = True
        second = ring.select_victim()
        assert second is pages[2]


def make_manager(frames=8, num_disks=2):
    cfg = PlatformConfig(
        memory_pages=frames,
        available_fraction=1.0,
        num_disks=num_disks,
    )
    clock = Clock()
    stats = RunStats()
    disks = DiskArray(cfg)
    disks.register_segment("x", base_vpage=1, npages=1000)
    return MemoryManager(cfg, clock, disks, stats), clock, stats, cfg


class TestManagerFaults:
    def test_first_access_is_nonprefetched_fault(self):
        mgr, clock, stats, _ = make_manager()
        outcome = mgr.access(1, is_write=False)
        assert outcome is AccessOutcome.NONPREFETCHED_FAULT
        assert stats.faults.nonprefetched_fault == 1
        assert clock.stall_time() > 0

    def test_second_access_is_hit(self):
        mgr, clock, stats, _ = make_manager()
        mgr.access(1, False)
        before = clock.now
        assert mgr.access(1, False) is AccessOutcome.HIT
        assert clock.now == before  # hits are free

    def test_write_marks_dirty(self):
        mgr, _, _, _ = make_manager()
        mgr.access(1, is_write=True)
        assert mgr.pages[1].dirty

    def test_eviction_when_full(self):
        mgr, _, stats, _ = make_manager(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.access(3, False)
        assert stats.memory.evictions == 1
        states = [mgr.pages[v].state for v in (1, 2, 3)]
        assert states.count(PageState.RESIDENT) == 2

    def test_dirty_eviction_writes_back(self):
        mgr, _, stats, _ = make_manager(frames=1)
        mgr.access(1, is_write=True)
        mgr.access(2, False)
        assert stats.memory.eviction_writebacks == 1
        assert mgr.disks.writes == 1

    def test_clock_gives_second_chance_to_touched_pages(self):
        mgr, _, _, _ = make_manager(frames=3)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.access(3, False)
        # First eviction sweeps all reference bits and takes the oldest.
        mgr.access(4, False)
        assert mgr.pages[1].state == PageState.ON_DISK
        # Page 2's bit was cleared by the sweep; touching it again sets it,
        # so the next eviction skips 2 and takes 3.
        mgr.access(2, False)
        mgr.access(5, False)
        assert mgr.pages[3].state == PageState.ON_DISK
        assert mgr.pages[2].state == PageState.RESIDENT


class TestManagerPrefetch:
    def test_prefetch_then_access_is_hidden(self):
        mgr, clock, stats, _ = make_manager()
        mgr.prefetch_call(1, 1)
        clock.advance(100_000.0, TimeCategory.USER_COMPUTE)
        outcome = mgr.access(1, False)
        assert outcome is AccessOutcome.PREFETCHED_HIT
        assert stats.faults.prefetched_hit == 1
        assert clock.stall_time() == 0.0

    def test_access_catching_up_stalls_partially(self):
        mgr, clock, stats, cfg = make_manager()
        mgr.prefetch_call(1, 1)
        outcome = mgr.access(1, False)
        assert outcome is AccessOutcome.PREFETCHED_FAULT
        # Stall is less than a full fault would have been.
        assert 0 < clock.stall_time() < cfg.disk.random_service_us(1)

    def test_prefetch_dropped_when_memory_full(self):
        mgr, _, stats, _ = make_manager(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.prefetch_call(3, 1)
        assert stats.prefetch.dropped == 1
        assert mgr.pages[3].state == PageState.ON_DISK
        assert mgr.pages[3].prefetched_pending

    def test_dropped_prefetch_fault_classified_prefetched(self):
        mgr, _, stats, _ = make_manager(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.prefetch_call(3, 1)
        outcome = mgr.access(3, False)
        assert outcome is AccessOutcome.PREFETCHED_FAULT

    def test_prefetch_resident_is_unnecessary(self):
        mgr, _, stats, _ = make_manager()
        mgr.access(1, False)
        mgr.prefetch_call(1, 1)
        assert stats.prefetch.unnecessary_issued == 1

    def test_prefetch_in_transit_ignored(self):
        mgr, _, stats, _ = make_manager()
        mgr.prefetch_call(1, 1)
        mgr.prefetch_call(1, 1)
        assert stats.prefetch.in_transit == 1
        assert stats.prefetch.disk_reads == 1

    def test_prefetch_never_evicts(self):
        mgr, _, stats, _ = make_manager(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.prefetch_call(3, 4)
        assert stats.memory.evictions == 0
        assert stats.prefetch.dropped == 4

    def test_block_prefetch_reads_in_parallel(self):
        mgr, clock, stats, cfg = make_manager(frames=8, num_disks=4)
        mgr.prefetch_call(1, 4)
        arrivals = {mgr.pages[v].arrival_us for v in range(1, 5)}
        # Four pages across four disks: all finish within one service time.
        assert max(arrivals) <= cfg.disk.random_service_us(1) + clock.now


class TestManagerRelease:
    def test_release_moves_to_freelist(self):
        mgr, _, stats, _ = make_manager()
        mgr.access(1, False)
        mgr.release_call([1])
        assert mgr.pages[1].state == PageState.FREELIST
        assert stats.release.pages_released == 1

    def test_release_dirty_schedules_writeback(self):
        mgr, _, stats, _ = make_manager()
        mgr.access(1, is_write=True)
        mgr.release_call([1])
        assert stats.release.writebacks == 1
        assert mgr.disks.writes == 1
        assert not mgr.pages[1].dirty

    def test_release_nonresident_is_noop(self):
        mgr, _, stats, _ = make_manager()
        mgr.release_call([5])
        assert stats.release.noop == 1

    def test_released_page_reclaimable(self):
        mgr, clock, stats, _ = make_manager()
        mgr.access(1, False)
        mgr.release_call([1])
        outcome = mgr.access(1, False)
        assert outcome is AccessOutcome.RECLAIM
        assert mgr.disks.reads_fault == 1  # no second disk read

    def test_prefetch_of_released_page_reclaims(self):
        mgr, _, stats, _ = make_manager()
        mgr.access(1, False)
        mgr.release_call([1])
        mgr.prefetch_call(1, 1)
        assert stats.prefetch.reclaimed == 1
        assert mgr.access(1, False) is AccessOutcome.PREFETCHED_HIT

    def test_freed_frames_feed_faults(self):
        mgr, _, stats, _ = make_manager(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.release_call([1])
        mgr.access(3, False)
        assert stats.memory.evictions == 0  # took the free-list frame
        assert mgr.pages[1].state == PageState.ON_DISK  # contents discarded

    def test_bundled_prefetch_release_frees_then_fetches(self):
        mgr, _, stats, _ = make_manager(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.prefetch_release_call(3, 1, [1])
        # Release of page 1 freed the frame the prefetch then used.
        assert stats.prefetch.dropped == 0
        assert stats.prefetch.disk_reads == 1
        assert mgr.pages[3].state == PageState.IN_TRANSIT


class TestManagerAccounting:
    def test_free_integral_tracks_usage(self):
        mgr, clock, stats, _ = make_manager(frames=4)
        clock.advance(100.0, TimeCategory.USER_COMPUTE)
        mgr.access(1, False)
        clock.advance(100.0, TimeCategory.USER_COMPUTE)
        mgr.finalize_accounting()
        frac = stats.memory.avg_free_fraction(clock.now)
        assert 0.0 < frac <= 1.0

    def test_warm_load(self):
        mgr, clock, stats, _ = make_manager(frames=4)
        mgr.warm_load([1, 2, 3])
        assert all(mgr.pages[v].state == PageState.RESIDENT for v in (1, 2, 3))
        assert clock.now == 0.0
        assert mgr.access(1, False) is AccessOutcome.HIT

    def test_warm_load_overflow_rejected(self):
        mgr, _, _, _ = make_manager(frames=2)
        with pytest.raises(MachineError):
            mgr.warm_load([1, 2, 3])

    def test_flush_writes_dirty_pages(self):
        mgr, clock, _, _ = make_manager()
        mgr.access(1, True)
        mgr.access(2, False)
        mgr.flush_dirty()
        assert mgr.disks.writes == 1
        assert clock.spent(TimeCategory.STALL_FLUSH) > 0
