"""Tests for the transforms: substitution, strip mining, pipelining, pass.

The central property lives here: the transformed program performs exactly
the same data accesses as the original (hints are non-binding).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Affine, Const, ElemOf, MinExpr, Var
from repro.core.ir.nodes import Hint, HintKind, If, Loop, Work
from repro.core.ir.printer import format_program
from repro.core.ir.validate import validate_program
from repro.core.ir.visit import walk_hints
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.core.transform.stripmine import strip_mine
from repro.core.transform.subst import chain_lowers, subst_expr
from repro.errors import IRError
from repro.interp.tracing import access_trace

OPTS = CompilerOptions()


class TestSubst:
    def test_var_replaced(self):
        e = subst_expr(Var("i"), {"i": Var("k") + 3})
        assert e.eval({"k": 10}) == 13

    def test_affine_substitution(self):
        e = subst_expr(2 * Var("i") + Var("j") + 1, {"i": Var("k") + 5})
        assert e.eval({"k": 1, "j": 2}) == 15

    def test_unmapped_vars_kept(self):
        e = subst_expr(Var("i") + Var("j"), {"i": Const(0)})
        assert e.free_vars() == {"j"}

    def test_elemof_gets_clamped(self):
        arr_data = np.arange(10)
        from repro.core.ir.arrays import ArrayDecl

        barr = ArrayDecl("b", (10,), data=arr_data)
        e = subst_expr(ElemOf(barr, Var("i")), {"i": Var("i") + 64}, clamp_lookups=True)
        assert e.eval({"i": 0}) == 9  # clamped to the last element

    def test_min_and_ceildiv_recursed(self):
        from repro.core.ir.expr import CeilDiv

        e = subst_expr(MinExpr(Var("i"), CeilDiv(Var("i"), 4)), {"i": Const(8)})
        assert e.eval({}) == 2

    def test_chain_lowers_resolves_triangular(self):
        lowers = {"j": Var("i"), "k": Var("j") + 1}
        resolved = chain_lowers(lowers)
        assert resolved["k"].free_vars() == {"i"}
        assert resolved["k"].eval({"i": 5}) == 6


class TestStripMine:
    def _body_loop(self, n=100):
        from repro.core.ir.arrays import ArrayDecl

        arr = ArrayDecl("x", (10_000,), elem_size=8)
        return loop("i", 0, n, [work([read(arr, Var("i"))], 1.0)])

    def test_structure(self):
        lp = self._body_loop(100)
        nest = strip_mine(lp, [10], [[]])
        assert nest.var == "i__s0"
        assert nest.step == 10
        inner = nest.body[-1]
        assert isinstance(inner, Loop) and inner.var == "i"

    def test_iteration_space_preserved(self):
        lp = self._body_loop(103)  # deliberately ragged
        nest = strip_mine(lp, [10], [[]])
        seen = []

        def run(stmts, env):
            for s in stmts:
                if isinstance(s, Loop):
                    for v in range(s.lower.eval(env), s.upper.eval(env), s.step):
                        env[s.var] = v
                        run(s.body, env)
                elif isinstance(s, Work):
                    seen.append(env["i"])

        run([nest], {})
        assert seen == list(range(103))

    def test_double_strip_iteration_space(self):
        lp = self._body_loop(57)
        nest = strip_mine(lp, [16, 4], [[], []])
        seen = []

        def run(stmts, env):
            for s in stmts:
                if isinstance(s, Loop):
                    for v in range(s.lower.eval(env), s.upper.eval(env), s.step):
                        env[s.var] = v
                        run(s.body, env)
                elif isinstance(s, Work):
                    seen.append(env["i"])

        run([nest], {})
        assert seen == list(range(57))

    def test_level_stmts_placed(self):
        from repro.core.ir.arrays import ArrayDecl
        from repro.core.ir.nodes import AddrOf

        arr = ArrayDecl("x", (10_000,), elem_size=8)
        marker = Hint(HintKind.PREFETCH, AddrOf(arr, (Const(0),)), 4)
        nest = strip_mine(self._body_loop(), [10], [[marker]])
        assert nest.body[0] is marker

    def test_rejects_bad_strips(self):
        lp = self._body_loop()
        with pytest.raises(IRError):
            strip_mine(lp, [], [])
        with pytest.raises(IRError):
            strip_mine(lp, [4, 16], [[], []])  # not descending
        with pytest.raises(IRError):
            strip_mine(lp, [0], [[]])

    def test_step_multiple_enforced(self):
        from repro.core.ir.arrays import ArrayDecl

        arr = ArrayDecl("x", (10_000,), elem_size=8)
        lp = loop("i", 0, 100, [work([read(arr, Var("i"))], 1.0)], step=3)
        with pytest.raises(IRError):
            strip_mine(lp, [10], [[]])  # 10 not a multiple of 3
        nest = strip_mine(lp, [12], [[]])
        assert nest.step == 12


def _stream_program(n=60_000, cost=10.0):
    b = ProgramBuilder("stream")
    x = b.array("x", (n,), elem_size=8)
    b.append(loop("i", 0, n, [work([read(x, Var("i")), write(x, Var("i"))], cost)]))
    return b.build()


def _fig2_program(n=5_000, m=10):
    rng = np.random.default_rng(7)
    b = ProgramBuilder("fig2")
    i, j = Var("i"), Var("j")
    bdata = rng.integers(0, 50_000, size=n + 100)
    a = b.array("a", (50_000,), elem_size=8)
    barr = b.array("b", (n + 100,), elem_size=8, data=bdata)
    c = b.array("c", (n, m), elem_size=8)
    b.append(
        loop("i", 0, n, [
            loop("j", 0, m, [work([read(c, i, j)], 2.0)]),
            work([read(barr, i), write(a, ElemOf(barr, i))], 4.0),
        ])
    )
    return b.build()


class TestPass:
    def test_transformed_program_validates(self):
        res = insert_prefetches(_fig2_program(), OPTS)
        validate_program(res.program)

    def test_original_untouched(self):
        prog = _fig2_program()
        stmts_before = list(prog.body)
        insert_prefetches(prog, OPTS)
        assert prog.body == stmts_before
        assert not list(walk_hints(prog.body))

    def test_trace_equivalence_stream(self):
        prog = _stream_program(n=20_000)
        res = insert_prefetches(prog, OPTS)
        assert access_trace(prog) == access_trace(res.program)

    def test_trace_equivalence_fig2(self):
        prog = _fig2_program(n=2_000)
        res = insert_prefetches(prog, OPTS)
        assert access_trace(prog) == access_trace(res.program)

    def test_hints_present_in_output(self):
        res = insert_prefetches(_stream_program(), OPTS)
        hints = list(walk_hints(res.program.body))
        kinds = {h.kind for h in hints}
        assert HintKind.PREFETCH in kinds  # prolog
        assert HintKind.PREFETCH_RELEASE in kinds  # steady state

    def test_prolog_block_prefetch_first(self):
        res = insert_prefetches(_stream_program(), OPTS)
        first = res.program.body[0]
        assert isinstance(first, Hint)
        assert first.kind is HintKind.PREFETCH
        assert first.npages.eval({}) == (
            res.plan.dense_by_loop[next(iter(res.plan.dense_by_loop))][0].distance_strips
            * OPTS.block_pages
        )

    def test_figure2_shape_of_output(self):
        """The printed output has the landmarks of the paper's Figure 2(b)."""
        res = insert_prefetches(_fig2_program(), OPTS)
        text = format_program(res.program, include_decls=False)
        assert "prefetch_block(" in text
        assert "prefetch(&a[b[" in text  # indirect single-page prefetch
        assert "i__s0" in text  # strip-mined control loop
        assert "min(" in text  # ragged strip bound

    def test_report_mentions_every_reference(self):
        res = insert_prefetches(_fig2_program(), OPTS)
        report = res.report()
        for name in ("a", "b", "c"):
            assert f"{name}:" in report

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2_000, 12_000),
        m=st.integers(1, 10),
        cost=st.floats(0.5, 50.0),
        block=st.sampled_from([1, 2, 4, 8]),
    )
    def test_trace_equivalence_property(self, n, m, cost, block):
        """Non-binding hints: for arbitrary nest shapes and compiler
        settings, the transformation never changes the access stream."""
        b = ProgramBuilder("prop")
        i, j = Var("i"), Var("j")
        c = b.array("c", (n, m), elem_size=8)
        x = b.array("x", (n,), elem_size=8)
        b.append(
            loop("i", 0, n, [
                loop("j", 0, m, [work([read(c, i, j)], cost)]),
                work([read(x, i), write(x, i)], cost),
            ])
        )
        prog = b.build()
        opts = OPTS.scaled(block_pages=block)
        res = insert_prefetches(prog, opts)
        limit = 4 * n * (m + 2) + 16
        assert access_trace(prog, limit=limit) == access_trace(res.program, limit=limit)


class TestTwoVersion:
    def _symbolic_program(self, n_runtime, rows=3_000):
        b = ProgramBuilder(
            "sym", params={"N": n_runtime}, compile_time_params={}
        )
        c = b.array("c", (20_000, "N"), elem_size=8)
        i, j = Var("i"), Var("j")
        b.append(loop("i", 0, rows, [
            loop("j", 0, Var("N"), [work([read(c, i, j)], 2.0)]),
        ]))
        return b.build()

    def test_two_version_emits_if(self):
        prog = self._symbolic_program(5)
        res = insert_prefetches(prog, OPTS.scaled(two_version_loops=True))
        assert any(isinstance(s, If) for s in res.program.body)

    def test_two_version_trace_equivalent(self):
        for n, rows in ((5, 3_000), (700, 50)):
            prog = self._symbolic_program(n, rows)
            res = insert_prefetches(prog, OPTS.scaled(two_version_loops=True))
            limit = rows * n * 2 + 16
            assert access_trace(prog, limit=limit) == access_trace(
                res.program, limit=limit
            )

    def test_single_version_without_flag(self):
        prog = self._symbolic_program(5)
        res = insert_prefetches(prog, OPTS)
        assert not any(isinstance(s, If) for s in res.program.body)
