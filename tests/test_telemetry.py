"""Tests for farm-wide telemetry (repro.obs.telemetry).

Three layers are pinned here:

* **mergeable instruments** -- hypothesis property tests that merging
  two registries recorded separately equals one registry recorded
  sequentially, per instrument kind.  This is the algebra the whole
  cross-worker aggregation rests on: if it holds, the controller's
  rollup equals what one shared registry would have seen.
* **the pipeline pieces** -- aggregator sealing/discard semantics, SLO
  rule validation and evaluation, trace-recorder output, and
  ``merge_chrome_traces`` producing a single valid timeline.
* **the farm end to end** -- a real (small) farm run whose controller
  totals equal the sum of solo per-job observer registries bit for
  bit, and a chaos run that still yields a valid merged timeline, a
  per-tenant table, and an SLO verdict artifact.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.errors import ConfigError, ExitCode
from repro.obs import Observer
from repro.obs.export import merge_chrome_traces, validate_chrome_trace
from repro.obs.metrics import (
    SLO_METRIC_NAMES,
    TELEMETRY_METRIC_NAMES,
    MetricsRegistry,
    base_name,
    labeled_name,
)
from repro.obs.telemetry import (
    FarmTelemetry,
    FarmTraceRecorder,
    SloEngine,
    SloRule,
    TelemetryAggregator,
    TelemetryConfig,
    default_slo_rules,
    load_slo_rules,
)
from repro.serve import FarmConfig, JobSpec, JobState, RetryPolicy, run_farm
from repro.serve.worker import execute_job

FAST_RETRY = RetryPolicy(base_s=0.01, cap_s=0.05, seed=1)
BOUNDS = (10.0, 100.0, 1000.0)


# ----------------------------------------------------------------------
# Property: merge(a, b) == sequential recording, per instrument kind
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 50), max_size=20),
       st.lists(st.integers(0, 50), max_size=20))
def test_counter_merge_equals_sequential(a_incs, b_incs):
    a, b, seq = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for n in a_incs:
        a.counter("c").inc(n)
    for n in b_incs:
        b.counter("c").inc(n)
    for n in a_incs + b_incs:
        seq.counter("c").inc(n)
    a.merge(b)
    assert a.as_dict() == seq.as_dict()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(-1e6, 1e6), max_size=20),
       st.lists(st.floats(-1e6, 1e6), max_size=20))
def test_gauge_merge_equals_sequential(a_sets, b_sets):
    """A gauge split at an arbitrary point in its sample stream merges
    back to the sequential gauge: last value wins, min/max union."""
    a, b, seq = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for v in a_sets:
        a.gauge("g").set(v)
    for v in b_sets:
        b.gauge("g").set(v)
    for v in a_sets + b_sets:
        seq.gauge("g").set(v)
    a.merge(b)
    assert a.as_dict() == seq.as_dict()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(0, 5000), max_size=20),
       st.lists(st.floats(0, 5000), max_size=20))
def test_histogram_merge_equals_sequential(a_obs, b_obs):
    """Histograms merge bucket-wise, so any split of the observation
    stream (order included -- buckets are order-free) merges exactly."""
    a, b, seq = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for reg in (a, b, seq):
        reg.histogram("h", BOUNDS)
    for v in a_obs:
        a.histogram("h", BOUNDS).observe(v)
    for v in b_obs:
        b.histogram("h", BOUNDS).observe(v)
    for v in a_obs + b_obs:
        seq.histogram("h", BOUNDS).observe(v)
    a.merge(b)
    merged, sequential = a.as_dict()["h"], seq.as_dict()["h"]
    # float addition is commutative but not associative: the partial
    # sums can differ from the sequential sum in the last bit
    assert merged.pop("sum") == pytest.approx(sequential.pop("sum"))
    assert merged == sequential


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 50), max_size=10),
       st.lists(st.floats(-100, 100), max_size=10),
       st.lists(st.floats(0, 5000), max_size=10))
def test_registry_snapshot_roundtrip(incs, sets, obs):
    """from_snapshot(as_dict()) is the identity -- the wire format the
    workers ship their deltas in loses nothing."""
    reg = MetricsRegistry()
    for n in incs:
        reg.counter("c").inc(n)
    for v in sets:
        reg.gauge("g").set(v)
    for v in obs:
        reg.histogram("h", BOUNDS).observe(v)
    assert MetricsRegistry.from_snapshot(reg.as_dict()).as_dict() == reg.as_dict()


def test_histogram_merge_rejects_mismatched_bounds():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", (1.0, 2.0)).observe(1.5)
    b.histogram("h", (1.0, 3.0)).observe(1.5)
    with pytest.raises(Exception):
        a.merge(b)


def test_labeled_name_roundtrip():
    name = labeled_name("obs.stall_latency_us", tenant="acme")
    assert name == "obs.stall_latency_us{tenant=acme}"
    assert base_name(name) == "obs.stall_latency_us"
    assert labeled_name("x", b="2", a="1") == "x{a=1,b=2}"  # sorted keys
    assert base_name("plain") == "plain"


# ----------------------------------------------------------------------
# Aggregator semantics
# ----------------------------------------------------------------------


def _delta(value: float) -> dict:
    reg = MetricsRegistry()
    reg.counter("jobs.c").inc(value)
    reg.histogram("jobs.h", BOUNDS).observe(value)
    return reg.as_dict()


def test_aggregator_partial_is_cumulative_not_incremental():
    agg = TelemetryAggregator()
    assert agg.ingest("j1", 1, "acme", _delta(3), final=False)
    assert agg.ingest("j1", 1, "acme", _delta(5), final=False)  # replaces
    assert agg.rollup().value("jobs.c") == 5
    assert agg.jobs_folded() == 1


def test_aggregator_final_seals_and_drops_stale_partials():
    agg = TelemetryAggregator()
    agg.ingest("j1", 1, "acme", _delta(3), final=False)
    agg.ingest("j1", 2, "acme", _delta(7), final=True)
    # the failed attempt's partial is gone; only the final delta counts
    assert agg.rollup().value("jobs.c") == 7
    # a stale partial arriving after the seal is ignored
    assert not agg.ingest("j1", 1, "acme", _delta(100), final=False)
    assert agg.rollup().value("jobs.c") == 7


def test_aggregator_discard_drops_partials_keeps_finals():
    agg = TelemetryAggregator()
    agg.ingest("j1", 1, "acme", _delta(3), final=False)
    agg.ingest("j2", 1, "globex", _delta(11), final=True)
    agg.discard("j1")
    agg.discard("j2")  # finals survive a discard
    assert agg.rollup().value("jobs.c") == 11
    assert agg.tenants() == ["globex"]


def test_aggregator_rollup_has_tenant_children():
    agg = TelemetryAggregator()
    agg.ingest("j1", 1, "acme", _delta(3), final=True)
    agg.ingest("j2", 1, "globex", _delta(5), final=True)
    rollup = agg.rollup()
    assert rollup.value("jobs.c") == 8  # unlabeled = farm-wide total
    assert rollup.value(labeled_name("jobs.c", tenant="acme")) == 3
    assert rollup.value(labeled_name("jobs.c", tenant="globex")) == 5
    assert rollup.get(labeled_name("jobs.h", tenant="acme")).count == 1


# ----------------------------------------------------------------------
# SLO rules and engine
# ----------------------------------------------------------------------


def test_slo_rule_validation():
    with pytest.raises(ConfigError):
        SloRule(name="", metric="m")
    with pytest.raises(ConfigError):
        SloRule(name="r", metric="")
    with pytest.raises(ConfigError):
        SloRule(name="r", metric="m", agg="median")
    with pytest.raises(ConfigError):
        SloRule(name="r", metric="m", op="~=")
    with pytest.raises(ConfigError):
        SloRule(name="r", metric="m", threshold=float("nan"))


def test_slo_rule_missing_metric_is_flagged_not_fatal():
    row = SloRule(name="r", metric="nope", op="==").check(MetricsRegistry())
    assert row["missing"] and row["observed"] == 0.0 and row["ok"]


def test_slo_rule_aggregations():
    reg = MetricsRegistry()
    hist = reg.histogram("h", BOUNDS)
    for v in (5.0, 50.0, 50.0, 500.0):
        hist.observe(v)
    reg.counter("c").inc(4)
    assert SloRule(name="n", metric="h", agg="count").observe(reg) == (4.0, False)
    assert SloRule(name="n", metric="h", agg="p50").observe(reg)[0] == 100.0
    assert SloRule(name="n", metric="h", agg="max").observe(reg)[0] == 500.0
    assert SloRule(name="n", metric="c", agg="rate").observe(reg)[0] == 4.0
    with pytest.raises(ConfigError):  # scalar agg on a histogram
        SloRule(name="n", metric="h", agg="value").observe(reg)
    with pytest.raises(ConfigError):  # quantile on a counter
        SloRule(name="n", metric="c", agg="p99").observe(reg)


def test_slo_rule_tenant_scoping():
    reg = MetricsRegistry()
    reg.counter("c").inc(9)
    reg.counter(labeled_name("c", tenant="acme")).inc(2)
    rule = SloRule(name="n", metric="c", agg="value", op="<",
                   threshold=5.0, tenant="acme")
    assert rule.target == "c{tenant=acme}"
    assert rule.check(reg)["ok"]  # reads 2, not the farm-wide 9


def test_load_slo_rules(tmp_path):
    good = tmp_path / "rules.json"
    good.write_text(json.dumps({"version": 1, "rules": [
        {"name": "a", "metric": "m", "op": "<", "threshold": 1.0},
        {"name": "b", "metric": "m2", "agg": "p99", "threshold": 2.0},
    ]}))
    rules = load_slo_rules(str(good))
    assert [r.name for r in rules] == ["a", "b"]
    assert rules[0].to_dict() == SloRule.from_dict(rules[0].to_dict()).to_dict()

    with pytest.raises(ConfigError):
        load_slo_rules(str(tmp_path / "missing.json"))
    bad_version = tmp_path / "v9.json"
    bad_version.write_text(json.dumps({"version": 9, "rules": [
        {"name": "a", "metric": "m"}]}))
    with pytest.raises(ConfigError):
        load_slo_rules(str(bad_version))
    dupes = tmp_path / "dupes.json"
    dupes.write_text(json.dumps({"version": 1, "rules": [
        {"name": "a", "metric": "m"}, {"name": "a", "metric": "m2"}]}))
    with pytest.raises(ConfigError):
        load_slo_rules(str(dupes))
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"version": 1, "rules": []}))
    with pytest.raises(ConfigError):
        load_slo_rules(str(empty))


def test_slo_engine_reports_transitions_once():
    reg = MetricsRegistry()
    counter = reg.counter("errors")
    engine = SloEngine([SloRule(name="no-errors", metric="errors",
                                op="==", threshold=0.0)])
    verdict = engine.evaluate(reg)
    assert verdict["ok"] and not engine.new_violations(verdict)
    counter.inc()
    verdict = engine.evaluate(reg)
    assert not verdict["ok"]
    assert [row["name"] for row in engine.new_violations(verdict)] == ["no-errors"]
    # still violating: not a *new* violation
    assert not engine.new_violations(engine.evaluate(reg))


def test_default_slo_rules_are_well_formed():
    rules = default_slo_rules()
    names = [r.name for r in rules]
    assert len(set(names)) == len(names) == 3


# ----------------------------------------------------------------------
# Trace recorder and timeline merging
# ----------------------------------------------------------------------


def _recorder_segment(trace_id: str, base_ts: float = 0.0) -> dict:
    rec = FarmTraceRecorder(trace_id, workers=1)
    rec.span("queued", base_ts, 50.0, rec.ADMISSION_TID, {"job_id": "j"})
    rec.instant("dispatch", base_ts + 50.0, rec.worker_tid(0), {"job_id": "j"})
    rec.counter("farm_queue_depth", base_ts + 60.0, 1.0)
    return rec.chrome()


def test_recorder_output_is_valid_chrome_trace():
    doc = _recorder_segment("abc")
    assert validate_chrome_trace(doc) == []
    names = {ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "M"}
    assert "process_name" in names and "thread_name" in names


def test_recorder_bounds_events_and_counts_drops():
    rec = FarmTraceRecorder("abc", workers=1, max_events=2)
    for k in range(5):
        rec.instant("dispatch", float(k), rec.ADMISSION_TID, {})
    assert len(rec.events) == 2 and rec.dropped == 3
    assert rec.chrome()["otherData"]["dropped"] == 3


def test_merge_chrome_traces_offsets_and_validates():
    merged = merge_chrome_traces([
        {"name": "farm", "trace": _recorder_segment("abc"), "offset_us": 0.0},
        {"name": "job.a1", "trace": _recorder_segment("abc"),
         "offset_us": 1000.0},
    ])
    assert validate_chrome_trace(merged) == []
    by_pid = {}
    for ev in merged["traceEvents"]:
        if ev["ph"] != "M":
            by_pid.setdefault(ev["pid"], []).append(ev)
    assert set(by_pid) == {0, 1}
    # segment 1's events were shifted by its dispatch offset
    assert min(ev["ts"] for ev in by_pid[1]) == 1000.0
    # process_name meta was rewritten to the segment name
    procs = {ev["pid"]: ev["args"]["name"]
             for ev in merged["traceEvents"]
             if ev["ph"] == "M" and ev["name"] == "process_name"}
    assert procs == {0: "farm", 1: "job.a1"}
    assert merged["otherData"]["segments"] == ["farm", "job.a1"]


# ----------------------------------------------------------------------
# The facade, disabled and enabled
# ----------------------------------------------------------------------


def test_disabled_telemetry_is_inert(tmp_path):
    telemetry = FarmTelemetry(TelemetryConfig(enabled=False), tmp_path,
                              workers=1, serve_metrics=MetricsRegistry())
    assert telemetry.worker_args() is None
    assert telemetry.dispatch_context("j", 1) == {"trace_id": None,
                                                  "parent_span": None}
    telemetry.poll(0.0)
    assert telemetry.finalize(0.0) == {"enabled": False}
    assert not (tmp_path / "telemetry.json").exists()
    assert not (tmp_path / "slo_verdict.json").exists()


def test_facade_registers_all_documented_metrics(tmp_path):
    telemetry = FarmTelemetry(TelemetryConfig(), tmp_path, workers=1,
                              serve_metrics=MetricsRegistry())
    for name in TELEMETRY_METRIC_NAMES + SLO_METRIC_NAMES:
        assert name in telemetry.registry


# ----------------------------------------------------------------------
# Farm integration (real workers)
# ----------------------------------------------------------------------


def _run_spec(job_id: str, tenant: str) -> JobSpec:
    return JobSpec(kind="run", app="EMBAR", pages=120, memory_pages=96,
                   job_id=job_id, seed=2, tenant=tenant)


def test_farm_totals_equal_sum_of_worker_deltas(tmp_path):
    """The acceptance property of the aggregation pipeline: the
    controller's farm registry equals the merge of what each worker's
    observer recorded -- reproduced here by running the same jobs solo
    with our own observers."""
    specs = [_run_spec("ja", "acme"), _run_spec("jb", "globex")]
    report = run_farm(specs, FarmConfig(workers=2, retry=FAST_RETRY),
                      tmp_path / "farm")
    assert report.all_done
    assert report.telemetry["enabled"]
    assert report.telemetry["jobs_folded"] == 2

    expected = MetricsRegistry()
    solo = {}
    for spec in specs:
        obs = Observer()
        job_dir = tmp_path / f"solo-{spec.job_id}"
        job_dir.mkdir()
        payload = execute_job(spec, job_dir, resume=False, observer=obs)
        solo[spec.tenant] = obs.metrics
        expected.merge(obs.metrics)

    snapshot = json.loads((tmp_path / "farm" / "telemetry.json").read_text())
    assert snapshot["state"] == "final"
    farm_metrics = snapshot["metrics"]
    for name in expected.names():
        instrument = expected.get(name)
        if instrument.kind == "gauge":
            continue  # last-writer-wins: farm fold order is not ours
        assert farm_metrics[name] == instrument.as_dict(), name
    # per-tenant children are each tenant's solo registry, exactly
    for tenant, registry in solo.items():
        for name in registry.names():
            instrument = registry.get(name)
            if instrument.kind == "gauge":
                continue
            child = labeled_name(name, tenant=tenant)
            assert farm_metrics[child] == instrument.as_dict(), child

    # and the farm result payloads are still bit-identical to solo runs
    by_id = {rec.spec.job_id: rec for rec in report.records}
    for spec in specs:
        job_dir = tmp_path / f"solo2-{spec.job_id}"
        job_dir.mkdir()
        assert by_id[spec.job_id].result == execute_job(spec, job_dir,
                                                        resume=False)


def test_chaos_farm_produces_timeline_tenants_and_verdict(tmp_path):
    """The ISSUE acceptance run, miniaturized: chaos kill mid-job, and
    the farm still emits a merged valid timeline, a per-tenant tail
    table, and an SLO verdict artifact (here with a rule rigged to
    violate, so the verdict and violation plumbing both fire)."""
    from repro.faults.farm import FarmChaosPlan, WorkerFault

    rules = (SloRule(name="impossible-latency",
                     metric="serve.job_latency_us", agg="p99", op="<",
                     threshold=1.0),
             SloRule(name="no-shedding", metric="serve.jobs_shed",
                     agg="rate", op="==", threshold=0.0))
    trace_out = tmp_path / "timeline.json"
    slo_out = tmp_path / "verdict.json"
    config = FarmConfig(
        workers=2, retry=FAST_RETRY,
        telemetry=TelemetryConfig(flush_every_s=0.1,
                                  trace_out=str(trace_out),
                                  slo_rules=rules, slo_out=str(slo_out)))
    spec = JobSpec(kind="run", app="MGRID", pages=480, memory_pages=96,
                   job_id="long", seed=2, tenant="acme")
    chaos = FarmChaosPlan(faults=(
        WorkerFault(on_start=1, delay_s=0.3, op="kill"),))
    report = run_farm([spec], config, tmp_path / "farm", chaos=chaos)
    rec = report.records[0]
    assert rec.state == JobState.DONE
    assert rec.attempts == 2  # the kill cost an attempt...

    telemetry = report.telemetry
    assert telemetry["jobs_folded"] == 1  # ...but only the final counts
    assert "acme" in telemetry["tenants"]
    assert telemetry["tenants"]["acme"]["done"] == 1
    assert "stall_p99_us" in telemetry["tenants"]["acme"]

    merged = json.loads(trace_out.read_text())
    assert validate_chrome_trace(merged) == []
    names = {ev["name"] for ev in merged["traceEvents"]}
    assert {"queued", "running", "dispatch", "retry", "worker_kill",
            "done", "slo_violation"} <= names
    # controller segment + the surviving attempt's job trace (the
    # SIGKILLed attempt died before it could write one)
    assert merged["otherData"]["segments"] == [
        f"repro-farm [{telemetry['trace_id']}]", "long.a2"]

    verdict = json.loads(slo_out.read_text())
    assert verdict["ok"] is False
    assert verdict["rules_source"] == "file"
    rows = {row["name"]: row for row in verdict["rules"]}
    assert rows["impossible-latency"]["ok"] is False
    assert rows["no-shedding"]["ok"] is True
    assert report.metrics is not None  # serve registry untouched by SLOs


# ----------------------------------------------------------------------
# CLI: repro top
# ----------------------------------------------------------------------


def test_top_once_renders_and_emits_json(tmp_path, capsys):
    telemetry = FarmTelemetry(TelemetryConfig(), tmp_path, workers=1,
                              serve_metrics=MetricsRegistry())
    telemetry.write_snapshot(final=True)

    assert main(["top", "--workdir", str(tmp_path), "--once"]) == int(ExitCode.OK)
    out = capsys.readouterr().out
    assert "repro top" in out and telemetry.trace_id in out

    assert main(["top", "--workdir", str(tmp_path), "--once",
                 "--json"]) == int(ExitCode.OK)
    snap = json.loads(capsys.readouterr().out)
    assert snap["trace_id"] == telemetry.trace_id
    assert snap["slo"]["rules_total"] == 3


def test_top_without_snapshot_fails(tmp_path, capsys):
    assert main(["top", "--workdir", str(tmp_path),
                 "--once"]) == int(ExitCode.FAILURE)
    err = capsys.readouterr().err
    assert "no telemetry yet" in err
    assert "farm not started" in err  # says *why*, not just that it failed
