"""Tests for the fuzz subsystem (repro/fuzz/) and its satellites.

The centerpiece is the mutation guard: deliberately breaking the
run-time filter (a bit vector that always claims residency) must be
*caught* by the filter-soundness oracle, shrunk by hypothesis, and
serialized into a corpus file that replays red while the bug lives and
green once it is reverted -- the end-to-end proof that the fuzzer can
see the class of bug it exists for.  Around it: campaign determinism,
scenario JSON round-trips, corpus IO, the seeding helpers, the NaN
validation the fuzzer forced into the config layer, and the
multiprogrammed chaos properties (termination + exact stall
attribution).
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings

from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import ConfigError, IRError, ensure_finite
from repro.faults.plan import FaultPlan, PressureStorm, SlowWindow
from repro.fuzz import (
    FUZZ_PROFILES,
    ORACLE_NAMES,
    STRATEGY_NAMES,
    OracleViolation,
    Scenario,
    load_entry,
    replay_entry,
    run_fuzz,
    run_oracles,
    write_entry,
)
from repro.fuzz.oracles import ORACLE_CHECKS, StallWaitAccumulator
from repro.fuzz.scenario import PlatformSpec, ProgramSpec
from repro.fuzz.strategies import scenarios
from repro.harness.experiment import run_variant
from repro.multiprog import CoScheduler
from repro.obs import Observer
from repro.runtime.bitvector import ResidencyBitVector
from repro.seeding import derive_int, derive_key, derive_rng


def _quick(strategy, examples=15):
    """Decorator stack for a small, seeded, database-free property."""
    def wrap(fn):
        return hypothesis_seed(424242)(hypothesis_settings(
            max_examples=examples, deadline=None, database=None,
            suppress_health_check=list(HealthCheck),
        )(given(strategy)(fn)))
    return wrap


# ----------------------------------------------------------------------
# Scenario model
# ----------------------------------------------------------------------


class TestScenarioModel:
    @pytest.mark.parametrize("family", ORACLE_NAMES)
    def test_generated_scenarios_round_trip_json(self, family):
        @_quick(scenarios(family), examples=10)
        def prop(scenario):
            blob = json.dumps(scenario.to_dict(), sort_keys=True)
            rebuilt = Scenario.from_dict(json.loads(blob))
            assert rebuilt == scenario

        prop()

    def test_generated_programs_build_valid_ir(self):
        @_quick(scenarios("vector_equivalence"), examples=10)
        def prop(scenario):
            program = scenario.program.build()
            assert insert_prefetches(
                program,
                CompilerOptions.from_platform(scenario.platform.build()),
            ).program is not None

        prop()

    def test_unknown_oracle_name_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown oracle"):
            Scenario(
                program=ProgramSpec(pattern="stream",
                                    params={"nelems": 1024}),
                platform=PlatformSpec(),
                oracles=("no_such_oracle",),
            )

    def test_unknown_pattern_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown pattern"):
            ProgramSpec(pattern="quicksort", params={})

    def test_oracle_registry_matches_names(self):
        assert tuple(ORACLE_CHECKS) == ORACLE_NAMES
        assert len(STRATEGY_NAMES) == 7


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------


class TestCampaign:
    def test_smoke_campaign_is_green_and_exercises_every_family(self):
        report = run_fuzz(seed=5, profile="smoke")
        assert report.ok
        assert report.families_run == list(ORACLE_NAMES)
        assert not report.families_skipped
        expected = 7 * FUZZ_PROFILES["smoke"].examples_per_family
        assert report.scenarios == expected
        assert report.oracle_checks >= expected
        assert report.runs > report.scenarios  # several runs per oracle

    def test_same_seed_reproduces_the_campaign(self):
        first = run_fuzz(seed=5, profile="smoke").to_dict()
        second = run_fuzz(seed=5, profile="smoke").to_dict()
        first.pop("wall_s"), second.pop("wall_s")
        assert first == second

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown fuzz profile"):
            run_fuzz(profile="exhaustive")

    def test_report_publishes_fuzz_metrics(self):
        from repro.obs import MetricsRegistry
        from repro.obs.metrics import FUZZ_METRIC_NAMES

        report = run_fuzz(seed=5, profile="smoke")
        registry = MetricsRegistry()
        report.publish(registry)
        assert set(registry.names()) == set(FUZZ_METRIC_NAMES)


# ----------------------------------------------------------------------
# The mutation guard: a broken filter must be caught, shrunk, replayed
# ----------------------------------------------------------------------


class TestMutationGuard:
    def _broken_filter_finding(self):
        """Fuzz the filter family and return the shrunk violation."""
        @_quick(scenarios("filter_soundness"), examples=30)
        def prop(scenario):
            run_oracles(scenario)

        with pytest.raises(OracleViolation) as excinfo:
            prop()
        return excinfo.value

    def test_broken_filter_is_caught_shrunk_and_replayable(
        self, tmp_path, monkeypatch
    ):
        # The mutation: the residency bit vector always answers "here",
        # so the filter silently drops prefetches for on-disk pages --
        # exactly the unsoundness oracle (c) exists to see.
        monkeypatch.setattr(ResidencyBitVector, "test",
                            lambda self, vpage: True)
        violation = self._broken_filter_finding()
        assert violation.oracle == "filter_soundness"
        assert "suppressed a prefetch" in violation.detail

        # Serialize the shrunk scenario; it replays red while broken...
        path = write_entry(tmp_path, violation)
        scenario, oracle = load_entry(path)
        assert oracle == "filter_soundness"
        assert scenario == violation.scenario
        with pytest.raises(OracleViolation):
            replay_entry(path)

        # ... and green once the mutation is reverted.
        monkeypatch.undo()
        replay_entry(path)


# ----------------------------------------------------------------------
# Corpus IO
# ----------------------------------------------------------------------


class TestCorpusIO:
    def _violation(self):
        scenario = Scenario(
            program=ProgramSpec(pattern="stream", params={"nelems": 2048}),
            platform=PlatformSpec(memory_pages=16, num_disks=1,
                                  prefetch_block_pages=2,
                                  available_fraction=1.0),
            oracles=("vector_equivalence",),
        )
        return OracleViolation("vector_equivalence", scenario, "demo")

    def test_write_then_load_round_trips(self, tmp_path):
        violation = self._violation()
        path = write_entry(tmp_path, violation)
        assert path.name.startswith("vector_equivalence-")
        scenario, oracle = load_entry(path)
        assert scenario == violation.scenario
        assert oracle == "vector_equivalence"

    def test_filename_is_content_addressed(self, tmp_path):
        violation = self._violation()
        assert write_entry(tmp_path, violation) == write_entry(
            tmp_path, violation)

    def test_garbage_and_versioned_entries_are_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="cannot load corpus entry"):
            load_entry(bad)
        missing = tmp_path / "missing.json"
        missing.write_text(json.dumps({"oracle": "stall_bound"}))
        with pytest.raises(ConfigError, match="no scenario"):
            load_entry(missing)
        future = tmp_path / "future.json"
        violation = self._violation()
        future.write_text(json.dumps({
            "corpus_version": 999, "oracle": "vector_equivalence",
            "scenario": violation.scenario.to_dict(),
        }))
        with pytest.raises(ConfigError, match="version 999"):
            load_entry(future)

    def test_campaign_replays_corpus_and_reports_red_entries(self, tmp_path):
        # A corpus entry that is *still failing* must be reported as a
        # corpus-sourced finding, not silently skipped: declare a stall
        # bound of zero, which no out-of-core run can meet.
        scenario = Scenario(
            program=ProgramSpec(pattern="stream", params={"nelems": 4096}),
            platform=PlatformSpec(memory_pages=8, num_disks=1,
                                  prefetch_block_pages=1,
                                  available_fraction=0.5),
            oracles=("stall_bound",),
            stall_factor=0.0, stall_slack_us=0.0,
        )
        write_entry(tmp_path, OracleViolation("stall_bound", scenario, "x"))
        report = run_fuzz(seed=5, profile="smoke", corpus_dir=tmp_path)
        assert report.corpus_replayed == 1
        corpus_findings = [f for f in report.findings
                           if f.source == "corpus"]
        assert len(corpus_findings) == 1
        assert corpus_findings[0].oracle == "stall_bound"

    def test_run_oracles_wraps_crashes_as_violations(self, monkeypatch):
        scenario = self._violation().scenario
        monkeypatch.setitem(
            ORACLE_CHECKS, "vector_equivalence",
            lambda s: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(OracleViolation,
                           match="unexpected RuntimeError"):
            run_oracles(scenario)


# ----------------------------------------------------------------------
# Satellite: centralized seeding
# ----------------------------------------------------------------------


class TestSeeding:
    def test_key_is_colon_joined(self):
        assert derive_key(7, "disk", 2) == "7:disk:2"

    def test_rng_matches_historical_spelling(self):
        import random

        assert (derive_rng(7, "disk", 2).random()
                == random.Random("7:disk:2").random())

    def test_int_is_stable_and_uncorrelated(self):
        assert derive_int(1, "fuzz", "stall_bound") == derive_int(
            1, "fuzz", "stall_bound")
        assert derive_int(1, "fuzz", "a") != derive_int(1, "fuzz", "b")
        assert derive_int(1, "fuzz", "a") != derive_int(2, "fuzz", "a")
        assert 0 <= derive_int(1, bits=16) < (1 << 16)


# ----------------------------------------------------------------------
# Satellite: NaN/inf validation (fuzz-found gap)
# ----------------------------------------------------------------------


class TestFiniteValidation:
    def test_ensure_finite_accepts_numbers_and_names_the_field(self):
        assert ensure_finite(3.5, "x") == 3.5
        with pytest.raises(ConfigError, match="slow start"):
            ensure_finite(float("nan"), "slow start")

    def test_fault_plan_rejects_non_finite_times(self):
        with pytest.raises(ConfigError):
            SlowWindow(start_us=float("nan"), duration_us=1.0,
                       multiplier=2.0)
        with pytest.raises(ConfigError):
            PressureStorm(start_us=0.0, frames=1, hold_us=float("inf"))
        with pytest.raises(ConfigError):
            FaultPlan(seed=1, crashes=(float("nan"),))

    def test_checkpoint_config_rejects_non_finite_cadence(self):
        from repro.checkpoint import CheckpointConfig
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            CheckpointConfig(every_us=float("nan"))

    def test_work_cost_rejects_non_finite(self):
        from repro.core.ir.builder import work

        with pytest.raises(IRError):
            work([], float("inf"))


# ----------------------------------------------------------------------
# Satellite: multiprogrammed chaos (termination + exact attribution)
# ----------------------------------------------------------------------


def _mp_platform():
    return PlatformConfig(memory_pages=16, num_disks=2,
                          prefetch_block_pages=2)


def _mp_run(fault_plan=None, observer=None, tenants=2):
    from repro.apps.synthetic import repeated_sweep

    platform = _mp_platform()
    sched = CoScheduler(platform, observer=observer, fault_plan=fault_plan)
    options = CompilerOptions.from_platform(platform)
    for tenant in range(tenants):
        program = repeated_sweep(1024, 2)
        if tenant % 2 == 0:
            program = insert_prefetches(program, options).program
        sched.add_process(program, name=f"t{tenant}",
                          prefetching=tenant % 2 == 0)
    return sched.run()


class TestMultiprogChaos:
    PLAN = FaultPlan(
        seed=3,
        storms=(PressureStorm(start_us=5_000.0, frames=3, bursts=2,
                              period_us=40_000.0, hold_us=15_000.0),),
        hint_failure_rate=0.05,
    )

    def test_faulted_coschedule_terminates_and_degrades(self):
        clean = _mp_run()
        faulted = _mp_run(fault_plan=self.PLAN)
        assert faulted.elapsed_us > 0
        assert faulted.elapsed_us >= clean.elapsed_us

    def test_stall_read_is_exactly_attributed_under_faults(self):
        obs = Observer()
        sink = StallWaitAccumulator()
        obs.sink = sink
        result = _mp_run(fault_plan=self.PLAN, observer=obs)
        # Bitwise: the trace's stall_frame_wait events, summed in
        # arrival order, rebuild the clock's stall-read accumulator.
        assert sink.total_us == result.times.stall_read
        assert sink.events > 0

    def test_scheduler_reports_idle_wait(self):
        result = _mp_run(fault_plan=self.PLAN)
        assert result.idle_wait_us >= 0.0


# ----------------------------------------------------------------------
# Satellite: pressure-storm overclaim (fuzz-found crash, now fixed)
# ----------------------------------------------------------------------


class TestPressureOverclaim:
    def test_storm_larger_than_memory_never_crashes_the_manager(self):
        # Regression for the fuzz-found MachineError ("no frame
        # available and no page is evictable"): a permanent storm
        # claiming more frames than exist must leave the application
        # its last frame and the run must complete.
        from repro.apps.synthetic import stencil1d

        platform = PlatformConfig(memory_pages=8, num_disks=1,
                                  prefetch_block_pages=1,
                                  available_fraction=0.5)
        plan = FaultPlan(seed=1, storms=(
            PressureStorm(start_us=0.0, frames=16, bursts=1),))
        compiled = insert_prefetches(
            stencil1d(512), CompilerOptions.from_platform(platform)
        ).program
        stats = run_variant(compiled, platform, prefetching=True,
                            fault_plan=plan)
        assert stats.elapsed_us > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestFuzzCli:
    def test_replay_without_files_is_usage_error(self, capsys):
        from repro.cli import main
        from repro.errors import ExitCode

        assert main(["fuzz", "replay"]) == ExitCode.USAGE
        assert "needs at least one corpus FILE" in capsys.readouterr().err

    def test_campaign_cli_writes_report_and_metrics(self, tmp_path, capsys):
        from repro.cli import main
        from repro.errors import ExitCode

        report_path = tmp_path / "report.json"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "fuzz", "--profile", "smoke", "--seed", "3",
            "--corpus", str(tmp_path / "corpus"),
            "--report-out", str(report_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == ExitCode.OK
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["seed"] == 3
        metrics = json.loads(metrics_path.read_text())["metrics"]
        assert metrics["fuzz.scenarios"]["value"] > 0
        assert "fuzz campaign" in capsys.readouterr().out
