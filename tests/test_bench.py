"""Tests for the perf-trajectory bench harness (repro.harness.bench)."""

import json

import pytest

from repro.errors import ConfigError
from repro.harness.bench import (
    BENCH_APPS,
    BENCH_SCHEMA,
    BenchCase,
    compare_reports,
    entry_key,
    find_baseline,
    load_report,
    run_bench,
    run_case,
    smoke_cases,
    table3_cases,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke_cases())


class TestRunBench:
    def test_smoke_report_shape(self, smoke_report):
        assert smoke_report["schema"] == BENCH_SCHEMA
        entries = smoke_report["entries"]
        assert len(entries) == len(BENCH_APPS) * 2  # O and P each
        assert {e["app"] for e in entries} == set(BENCH_APPS)
        assert {e["variant"] for e in entries} == {"O", "P"}
        for entry in entries:
            assert entry["profile"] == "smoke"
            assert entry["sim_elapsed_us"] > 0
            assert entry["sim_stall_us"] >= 0
            assert entry["wall_time_s"] >= 0

    def test_prefetching_beats_original(self, smoke_report):
        by_key = {entry_key(e): e for e in smoke_report["entries"]}
        for app in BENCH_APPS:
            o = next(e for e in smoke_report["entries"]
                     if e["app"] == app and e["variant"] == "O")
            p = next(e for e in smoke_report["entries"]
                     if e["app"] == app and e["variant"] == "P")
            assert p["sim_elapsed_us"] < o["sim_elapsed_us"], app
        assert len(by_key) == len(smoke_report["entries"])  # keys unique

    def test_simulated_cycles_deterministic(self):
        case = smoke_cases()[0]
        first, second = run_case(case), run_case(case)
        for a, b in zip(first, second):
            assert a["sim_elapsed_us"] == b["sim_elapsed_us"]
            assert a["sim_stall_us"] == b["sim_stall_us"]

    def test_table3_cases_use_the_default_platform(self):
        from repro.config import PlatformConfig
        from repro.harness.experiment import default_data_pages

        platform = PlatformConfig()
        for case in table3_cases():
            assert case.memory_pages == platform.memory_pages
            assert case.data_pages == default_data_pages(platform)
            assert case.profile == "table3"

    def test_progress_callback_sees_every_case(self):
        seen = []
        run_bench([BenchCase("EMBAR", "smoke", 96, 120)],
                  progress=seen.append)
        assert [c.app for c in seen] == ["EMBAR"]


class TestReportIo:
    def test_round_trip(self, smoke_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(path, smoke_report)
        assert load_report(path) == smoke_report

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "entries": []}))
        with pytest.raises(ConfigError):
            load_report(path)

    def test_find_baseline_picks_newest_pr(self, tmp_path):
        for n in (2, 10, 4):
            (tmp_path / f"BENCH_PR{n}.json").write_text("{}")
        (tmp_path / "BENCH_PRx.json").write_text("{}")  # not a PR number
        assert find_baseline(tmp_path).name == "BENCH_PR10.json"

    def test_find_baseline_excludes_the_out_path(self, tmp_path):
        for n in (3, 7):
            (tmp_path / f"BENCH_PR{n}.json").write_text("{}")
        found = find_baseline(tmp_path, exclude=tmp_path / "BENCH_PR7.json")
        assert found.name == "BENCH_PR3.json"

    def test_find_baseline_empty_dir(self, tmp_path):
        assert find_baseline(tmp_path) is None


class TestCompareReports:
    def _report(self, elapsed):
        return {
            "schema": BENCH_SCHEMA,
            "entries": [{
                "app": "EMBAR", "variant": "P", "profile": "smoke",
                "memory_pages": 96, "data_pages": 120, "seed": 1,
                "sim_elapsed_us": elapsed, "sim_stall_us": 0.0,
                "wall_time_s": 0.1,
            }],
        }

    def test_within_threshold_passes(self):
        regressions, notes = compare_reports(
            self._report(1_050_000.0), self._report(1_000_000.0), 0.10
        )
        assert regressions == [] and notes == []

    def test_over_threshold_flags_regression(self):
        regressions, _ = compare_reports(
            self._report(1_200_000.0), self._report(1_000_000.0), 0.10
        )
        (reg,) = regressions
        assert reg.ratio == pytest.approx(1.2)
        assert "EMBAR" in reg.describe()

    def test_wall_time_never_gates(self):
        current = self._report(1_000_000.0)
        current["entries"][0]["wall_time_s"] = 99.0
        regressions, _ = compare_reports(
            current, self._report(1_000_000.0), 0.0
        )
        assert regressions == []

    def test_wall_slack_absorbs_millisecond_noise(self):
        # 2x drift on a 20 ms wall is scheduler noise, not a regression.
        current = self._report(1_000_000.0)
        current["entries"][0]["wall_time_s"] = 0.04
        baseline = self._report(1_000_000.0)
        baseline["entries"][0]["wall_time_s"] = 0.02
        regressions, _ = compare_reports(
            current, baseline, 0.10, wall_threshold=0.20
        )
        assert regressions == []

    def test_wall_gate_trips_past_threshold_plus_slack(self):
        current = self._report(1_000_000.0)
        current["entries"][0]["wall_time_s"] = 0.70
        baseline = self._report(1_000_000.0)
        baseline["entries"][0]["wall_time_s"] = 0.50
        regressions, _ = compare_reports(
            current, baseline, 0.10, wall_threshold=0.20
        )
        (reg,) = regressions
        assert reg.metric == "wall"
        assert "wall" in reg.describe()

    def test_negative_wall_slack_rejected(self):
        with pytest.raises(ConfigError):
            compare_reports(self._report(1.0), self._report(1.0), 0.1,
                            wall_threshold=0.2, wall_slack=-0.01)

    def test_missing_baseline_entry_is_a_note(self):
        current = self._report(1_000_000.0)
        current["entries"][0]["app"] = "MGRID"
        regressions, notes = compare_reports(
            current, self._report(1_000_000.0), 0.10
        )
        assert regressions == []
        assert any("MGRID" in n for n in notes)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            compare_reports(self._report(1.0), self._report(1.0), -0.1)


class TestBenchCli:
    def test_smoke_run_writes_report(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "bench_smoke.json"
        assert main(["bench", "--smoke", "--out", str(out),
                     "--baseline", "none"]) == 0
        report = load_report(out)
        assert len(report["entries"]) == len(BENCH_APPS) * 2
        assert "recorded only" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, capsys, tmp_path, smoke_report):
        from repro.cli import main

        # Doctor a baseline that claims everything used to be 2x faster.
        doctored = json.loads(json.dumps(smoke_report))
        for entry in doctored["entries"]:
            entry["sim_elapsed_us"] /= 2.0
        baseline = tmp_path / "BENCH_PR1.json"
        write_report(baseline, doctored)
        out = tmp_path / "bench_now.json"
        assert main(["bench", "--smoke", "--out", str(out),
                     "--baseline", str(baseline)]) == 1
        err = capsys.readouterr().err
        assert "regression" in err

    def test_auto_baseline_discovery(self, capsys, tmp_path, smoke_report):
        from repro.cli import main

        write_report(tmp_path / "BENCH_PR1.json", smoke_report)
        out = tmp_path / "BENCH_PR2.json"
        assert main(["bench", "--smoke", "--out", str(out)]) == 0
        assert "no benchmark regression" in capsys.readouterr().out

    def test_committed_baseline_matches_current_code(self, capsys):
        """The newest repo-root BENCH_PR<N>.json must reflect today's
        simulator."""
        from pathlib import Path

        from repro.harness.bench import find_baseline

        root = Path(__file__).resolve().parent.parent
        newest = find_baseline(root)
        assert newest is not None
        committed = load_report(newest)
        by_key = {entry_key(e): e for e in committed["entries"]}
        current = run_bench(smoke_cases())
        for entry in current["entries"]:
            base = by_key.get(entry_key(entry))
            assert base is not None, entry_key(entry)
            assert entry["sim_elapsed_us"] == base["sim_elapsed_us"]
