"""Tests for the synthetic workload builders."""

import pytest

from repro.apps import synthetic
from repro.config import PlatformConfig
from repro.core.analysis.planner import PlanKind, plan_program
from repro.core.ir.validate import validate_program
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import IRError
from repro.harness.experiment import run_variant
from repro.interp.pagetrace import page_trace
from repro.interp.tracing import access_trace

CFG = PlatformConfig(memory_pages=128)
OPTS = CompilerOptions.from_platform(CFG)

BUILDERS = [
    lambda: synthetic.stream(60_000),
    lambda: synthetic.repeated_sweep(60_000, sweeps=2),
    lambda: synthetic.strided(60_000, stride=1024),
    lambda: synthetic.stencil1d(60_000, radius=2),
    lambda: synthetic.gather(30_000, 60_000),
    lambda: synthetic.scatter(30_000, 60_000),
    lambda: synthetic.random_walk(30_000, 60_000),
]


@pytest.mark.parametrize("build", BUILDERS, ids=lambda b: "case")
class TestAllBuilders:
    def test_validates(self, build):
        validate_program(build())

    def test_trace_equivalence_under_pass(self, build):
        program = build()
        result = insert_prefetches(program, OPTS)
        limit = 2_000_000
        assert access_trace(program, limit=limit) == access_trace(
            result.program, limit=limit
        )

    def test_runs_end_to_end(self, build):
        program = build()
        compiled = insert_prefetches(program, OPTS)
        o = run_variant(program, CFG, prefetching=False)
        p = run_variant(compiled.program, CFG, prefetching=True)
        assert o.elapsed_us > 0 and p.elapsed_us > 0


class TestPatternSignatures:
    def test_stream_is_single_dense_stream(self):
        plan = plan_program(synthetic.stream(100_000), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert len(dense) == 1 and dense[0].release

    def test_sweep_has_no_release(self):
        plan = plan_program(synthetic.repeated_sweep(100_000, 3), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert dense and not any(p.release for p in dense)

    def test_strided_touches_one_page_per_iteration(self):
        plan = plan_program(synthetic.strided(400_000, stride=4096), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert dense[0].pages_per_hint == 1
        assert dense[0].strip_iters == 1

    def test_stencil_groups(self):
        plan = plan_program(synthetic.stencil1d(100_000, radius=3), OPTS)
        covered = [p for p in plan.plans if p.kind is PlanKind.COVERED]
        assert len(covered) == 6  # 7-wide window: one leader

    def test_gather_is_indirect(self):
        plan = plan_program(synthetic.gather(50_000, 100_000), OPTS)
        assert any(p.kind is PlanKind.INDIRECT for p in plan.plans)

    def test_gather_prefetching_helps_out_of_core_table(self):
        program = synthetic.gather(20_000, 80_000, cost_us=300.0)
        compiled = insert_prefetches(program, OPTS)
        o = run_variant(program, CFG, prefetching=False)
        p = run_variant(compiled.program, CFG, prefetching=True)
        # Indirect prefetching at high compute density hides the gather.
        assert p.elapsed_us < o.elapsed_us

    def test_scatter_marks_pages_dirty(self):
        program = synthetic.scatter(5_000, 4_000)
        o = run_variant(program, CFG, prefetching=False)
        assert o.disk.writes > 0

    def test_walk_footprint_bounded(self):
        program = synthetic.random_walk(20_000, 8 * 512)
        trace = page_trace(program, limit=2_000_000)
        heap_pages = {p for p in trace}
        assert len(heap_pages) <= 8 + 40 + 2  # heap + path pages + guards

    def test_deterministic_by_seed(self):
        a = synthetic.gather(1_000, 5_000, seed=3)
        b = synthetic.gather(1_000, 5_000, seed=3)
        c = synthetic.gather(1_000, 5_000, seed=4)
        assert access_trace(a) == access_trace(b)
        assert access_trace(a) != access_trace(c)


class TestValidation:
    def test_bad_stride(self):
        with pytest.raises(IRError):
            synthetic.strided(100, stride=0)
        with pytest.raises(IRError):
            synthetic.strided(100, stride=100)

    def test_bad_radius(self):
        with pytest.raises(IRError):
            synthetic.stencil1d(100, radius=0)

    def test_bad_sweeps(self):
        with pytest.raises(IRError):
            synthetic.repeated_sweep(100, sweeps=0)
