"""Unit tests for the per-process event streams."""

import pytest

from repro.apps import synthetic
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.multiprog.stream import ProcessStream
from repro.storage.array_ctl import DiskArray
from repro.vm.page_table import AddressSpace

CFG = PlatformConfig(memory_pages=128)


def make_stream(program, name="p0"):
    space = AddressSpace(CFG.page_size)
    disks = DiskArray(CFG)
    return ProcessStream(program, space, CFG.page_size, name,
                         disks.register_segment)


class TestStreamContents:
    def test_stream_yields_page_events(self):
        stream = make_stream(synthetic.stream(4 * 512, cost_us=2.0))
        events = list(stream.events())
        accesses = [e for e in events if e[0] == "event" and e[1] <= 1]
        pages = {e[2] for e in accesses}
        assert len(pages) == 4  # one event per page after collapsing

    def test_compute_total_preserved(self):
        n = 3 * 512
        stream = make_stream(synthetic.stream(n, cost_us=2.0))
        total = 0.0
        for ev in stream.events():
            if ev[0] == "compute":
                total += ev[1]
            elif ev[0] == "event":
                total += ev[3]
        assert total == pytest.approx(n * 2.0)

    def test_compiled_program_yields_hints(self):
        program = synthetic.stream(120_000, cost_us=8.0)
        compiled = insert_prefetches(
            program, CompilerOptions.from_platform(CFG)
        ).program
        stream = make_stream(compiled)
        kinds = {e[0] for e in stream.events()}
        assert "prefetch" in kinds or "prefetch_release" in kinds

    def test_indirect_program_yields_single_page_prefetch_events(self):
        program = synthetic.gather(30_000, 120_000, cost_us=8.0)
        compiled = insert_prefetches(
            program, CompilerOptions.from_platform(CFG)
        ).program
        stream = make_stream(compiled)
        prefetch_events = [
            e for e in stream.events() if e[0] == "event" and e[1] == 2
        ]
        assert prefetch_events

    def test_two_streams_share_space_without_collision(self):
        space = AddressSpace(CFG.page_size)
        disks = DiskArray(CFG)
        s1 = ProcessStream(synthetic.stream(2048, name="a"), space,
                           CFG.page_size, "p0", disks.register_segment)
        s2 = ProcessStream(synthetic.stream(2048, name="a"), space,
                           CFG.page_size, "p1", disks.register_segment)
        pages1 = {e[2] for e in s1.events() if e[0] == "event"}
        pages2 = {e[2] for e in s2.events() if e[0] == "event"}
        assert pages1.isdisjoint(pages2)

    def test_hint_resolution_clamps(self):
        """Hints from the scalar path arrive pre-clamped to the segment."""
        program = synthetic.stream(120_000, cost_us=8.0)
        compiled = insert_prefetches(
            program, CompilerOptions.from_platform(CFG)
        ).program
        stream = make_stream(compiled)
        seg_base, seg_bytes = stream._segments["x"]
        first = seg_base // CFG.page_size
        last = (seg_base + seg_bytes - 1) // CFG.page_size
        for ev in stream.events():
            if ev[0] == "prefetch":
                assert first <= ev[1] <= last
                assert ev[1] + ev[2] - 1 <= last
            elif ev[0] == "prefetch_release":
                assert first <= ev[1] and ev[1] + ev[2] - 1 <= last
                assert all(first <= v <= last for v in ev[3])
