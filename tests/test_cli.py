"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("BUK", "CGM", "EMBAR", "FFT", "MGRID", "APPLU", "APPSP", "APPBT"):
            assert name in out

    def test_platform(self, capsys):
        assert main(["platform"]) == 0
        out = capsys.readouterr().out
        assert "disks" in out
        assert "page size" in out

    def test_platform_overrides(self, capsys):
        assert main(["--memory-pages", "128", "--disks", "3", "platform"]) == 0
        out = capsys.readouterr().out
        assert "128 pages" in out
        assert "3" in out

    def test_compile(self, capsys):
        assert main(["compile", "EMBAR", "--pages", "160"]) == 0
        out = capsys.readouterr().out
        assert "prefetch pass" in out
        assert "dense" in out

    def test_compile_print_code(self, capsys):
        assert main(["compile", "EMBAR", "--pages", "160", "--print-code"]) == 0
        out = capsys.readouterr().out
        assert "prefetch_block(" in out

    def test_compile_two_version(self, capsys):
        assert main(["compile", "APPBT", "--pages", "160", "--two-version"]) == 0

    def test_run_original(self, capsys):
        assert main(["--memory-pages", "96", "run", "EMBAR",
                     "--pages", "120", "--variant", "o"]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out
        assert "prefetches inserted" in out

    def test_run_prefetch_variant(self, capsys):
        assert main(["--memory-pages", "96", "run", "EMBAR",
                     "--pages", "120"]) == 0
        out = capsys.readouterr().out
        assert "[P]" in out

    def test_run_warm(self, capsys):
        assert main(["--memory-pages", "256", "run", "EMBAR",
                     "--pages", "80", "--warm"]) == 0
        assert "warm start" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["--memory-pages", "96", "compare", "EMBAR",
                     "--pages", "140"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs O" in out
        assert "P" in out

    def test_compare_with_extras(self, capsys):
        assert main(["--memory-pages", "96", "compare", "BUK",
                     "--pages", "140", "--nofilter", "--adaptive"]) == 0
        out = capsys.readouterr().out
        assert "P-nofilter" in out
        assert "P-adaptive" in out

    def test_sweep(self, capsys):
        assert main(["--memory-pages", "64", "sweep", "BUK",
                     "--multiples", "0.5,1.5"]) == 0
        out = capsys.readouterr().out
        assert "0.5x" in out and "1.5x" in out

    def test_unknown_app_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["compile", "NOPE"])

    def test_nas_names_accepted(self, capsys):
        assert main(["compile", "is", "--pages", "160"]) == 0

    def test_multiprog(self, capsys):
        assert main(["--memory-pages", "96", "multiprog", "EMBAR,BUK",
                     "--pages", "120"]) == 0
        out = capsys.readouterr().out
        assert "EMBAR#0" in out and "BUK#1" in out
        assert "(machine)" in out

    def test_trace_subcommand(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["--memory-pages", "96", "trace", "--app", "embar",
                     "--pages", "120", "--out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out
        assert "event kind" in out
        with open(trace) as fh:
            assert validate_chrome_trace(json.load(fh)) == []
        with open(metrics) as fh:
            payload = json.load(fh)
        assert "faults.prefetched_hit" in payload["metrics"]

    def test_trace_buffer_wraparound_reported(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["--memory-pages", "96", "trace", "--app", "embar",
                     "--pages", "120", "--out", str(trace),
                     "--trace-buffer", "64"]) == 0
        out = capsys.readouterr().out
        assert "dropped by ring wraparound" in out

    def test_run_with_trace_flags(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["--memory-pages", "96", "run", "EMBAR", "--pages", "120",
                     "--trace", str(trace), "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "elapsed" in out and "trace:" in out and "metrics:" in out
        with open(trace) as fh:
            assert validate_chrome_trace(json.load(fh)) == []

    def test_run_observed_matches_unobserved(self, capsys, tmp_path):
        """--trace must not change the simulated result."""
        assert main(["--memory-pages", "96", "run", "EMBAR",
                     "--pages", "120"]) == 0
        bare = capsys.readouterr().out
        assert main(["--memory-pages", "96", "run", "EMBAR", "--pages", "120",
                     "--trace", str(tmp_path / "t.json")]) == 0
        seen = capsys.readouterr().out
        bare_elapsed = next(l for l in bare.splitlines() if "elapsed" in l)
        seen_elapsed = next(l for l in seen.splitlines() if "elapsed" in l)
        assert bare_elapsed == seen_elapsed

    def test_compare_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        assert main(["--memory-pages", "96", "compare", "EMBAR",
                     "--pages", "140", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "speedup vs O" in out
        assert trace.exists()

    def test_size_class(self, capsys):
        assert main(["--memory-pages", "128", "run", "EMBAR",
                     "--size-class", "S", "--variant", "o"]) == 0
        out = capsys.readouterr().out
        assert "data pages" in out

    def test_compare_size_class(self, capsys):
        assert main(["--memory-pages", "96", "compare", "EMBAR",
                     "--size-class", "W"]) == 0


class TestObsCli:
    def test_sweep_with_trace_flags(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["--memory-pages", "96", "sweep", "EMBAR",
                     "--multiples", "0.5,1", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "final sweep point only" in out
        with open(trace) as fh:
            assert validate_chrome_trace(json.load(fh)) == []
        with open(metrics) as fh:
            assert "faults.prefetched_hit" in json.load(fh)["metrics"]

    def test_multiprog_with_trace_flags(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert main(["--memory-pages", "96", "multiprog", "EMBAR,BUK",
                     "--pages", "60", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "prefetching schedule only" in out
        with open(trace) as fh:
            assert validate_chrome_trace(json.load(fh)) == []
        with open(metrics) as fh:
            assert "time.elapsed_us" in json.load(fh)["metrics"]

    def test_explain(self, capsys):
        assert main(["--memory-pages", "96", "explain", "EMBAR",
                     "--pages", "120"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "prefetch_too_late" in out
        assert "conserved exactly" in out

    def test_explain_original_variant(self, capsys):
        assert main(["--memory-pages", "96", "explain", "EMBAR",
                     "--pages", "120", "--variant", "o"]) == 0
        out = capsys.readouterr().out
        assert "never_prefetched" in out
        assert "conserved exactly" in out

    def test_explain_faulted(self, capsys):
        assert main(["--memory-pages", "96", "explain", "EMBAR",
                     "--pages", "120", "--fault-seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "fault_injected" in out
        assert "conserved exactly" in out

    def test_explain_exits_nonzero_when_not_conserved(
            self, capsys, monkeypatch):
        from repro.obs.attrib import StallAttributor

        real_report = StallAttributor.report

        def broken(self, stats):
            report = real_report(self, stats)
            report.attributed_read_us += 1.0
            return report

        monkeypatch.setattr(StallAttributor, "report", broken)
        assert main(["--memory-pages", "96", "explain", "EMBAR",
                     "--pages", "120"]) == 1
        assert "invariant violated" in capsys.readouterr().err

    def test_profile(self, capsys, tmp_path):
        collapsed = tmp_path / "stacks.txt"
        assert main(["--memory-pages", "96", "profile", "EMBAR",
                     "--pages", "120", "--collapsed", str(collapsed)]) == 0
        out = capsys.readouterr().out
        assert "disk utilization" in out
        assert "obs.disk_idle_fraction" in out
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert ";" in stack and int(weight) >= 0

    def test_profile_with_trace_out(self, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "t.json"
        assert main(["--memory-pages", "96", "profile", "EMBAR",
                     "--pages", "120", "--trace", str(trace)]) == 0
        with open(trace) as fh:
            assert validate_chrome_trace(json.load(fh)) == []


class TestFaultCli:
    def test_run_with_fault_seed(self, capsys):
        assert main(["--memory-pages", "96", "run", "EMBAR",
                     "--pages", "120", "--fault-seed", "2"]) == 0
        out = capsys.readouterr().out
        assert ", faulted" in out

    def test_run_with_plan_file(self, capsys, tmp_path):
        from repro.faults import FaultPlan, save_plan

        plan_path = tmp_path / "plan.json"
        save_plan(plan_path, FaultPlan(seed=3, hint_failure_rate=0.05))
        assert main(["--memory-pages", "96", "run", "EMBAR",
                     "--pages", "120", "--faults", str(plan_path)]) == 0
        assert ", faulted" in capsys.readouterr().out

    def test_compare_with_faults(self, capsys, tmp_path):
        from repro.faults import default_plan, save_plan

        plan_path = tmp_path / "plan.json"
        save_plan(plan_path, default_plan(num_disks=7))
        assert main(["--memory-pages", "96", "compare", "EMBAR",
                     "--pages", "140", "--faults", str(plan_path)]) == 0
        assert "speedup vs O" in capsys.readouterr().out

    def test_chaos_quick(self, capsys):
        assert main(["chaos", "EMBAR", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "intensity" in out and "slowdown" in out
        assert "0 (clean)" in out

    def test_chaos_empty_intensities_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["chaos", "EMBAR", "--quick", "--intensities", ""])

    def test_trace_exits_nonzero_on_invalid_artifact(
            self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(cli, "validate_chrome_trace", lambda obj: ["boom"])
        assert main(["--memory-pages", "96", "trace", "--app", "embar",
                     "--pages", "120", "--out", str(tmp_path / "t.json")]) == 1
        assert "boom" in capsys.readouterr().err
