"""Tests for the Machine facade and its chunked execution hot path."""

import pytest

from repro.config import PlatformConfig
from repro.errors import MachineError
from repro.machine.events import PREFETCH, READ, RELEASE, WRITE
from repro.machine.machine import Machine


def small_machine(prefetching=True, runtime_filter=True, frames=16):
    cfg = PlatformConfig(memory_pages=frames, available_fraction=1.0, num_disks=2)
    m = Machine(cfg, prefetching=prefetching, runtime_filter=runtime_filter)
    m.map_segment("x", 1000 * cfg.page_size)
    return m


def vp(machine, index=0):
    """First virtual page of segment x, plus an offset."""
    seg = machine.address_space.segment("x")
    return seg.base // machine.config.page_size + index


class TestMachineBasics:
    def test_map_segment_registers_extent(self):
        m = small_machine()
        # A read through the disk array must find a backing extent.
        m.access(vp(m), False)
        assert m.disks.reads_fault == 1

    def test_compute_accumulates_user_time(self):
        m = small_machine()
        m.compute(123.0)
        assert m.clock.now == 123.0

    def test_hints_ignored_without_prefetching(self):
        m = small_machine(prefetching=False)
        m.prefetch(vp(m), 4)
        m.release([vp(m)])
        assert m.stats.prefetch.compiler_inserted == 0
        assert m.clock.now == 0.0

    def test_finish_flushes_and_freezes(self):
        m = small_machine()
        m.access(vp(m), True)
        stats = m.finish()
        assert stats.disk.writes == 1
        assert stats.elapsed_us == m.clock.now
        with pytest.raises(MachineError):
            m.finish()

    def test_warm_load_segment(self):
        cfg = PlatformConfig(memory_pages=64, available_fraction=1.0, num_disks=2)
        m = Machine(cfg)
        seg = m.map_segment("x", 10 * cfg.page_size)
        m.warm_load_segment(seg)
        m.access(seg.base // cfg.page_size, False)
        assert m.stats.faults.total_faults == 0


class TestRunChunk:
    def test_chunk_equals_scalar_sequence(self):
        """The chunked path must behave exactly like scalar calls."""
        pages = [vp_i for vp_i in range(0, 10)]
        m1 = small_machine()
        base = vp(m1)
        for p in pages:
            m1.compute(5.0)
            m1.access(base + p, p % 2 == 0)
        s1 = m1.finish()

        m2 = small_machine()
        base2 = vp(m2)
        kinds = [WRITE if p % 2 == 0 else READ for p in pages]
        m2.run_chunk(kinds, [base2 + p for p in pages], [5.0] * len(pages))
        s2 = m2.finish()

        assert s1.elapsed_us == pytest.approx(s2.elapsed_us)
        assert s1.faults.total_faults == s2.faults.total_faults
        assert s1.disk.total_requests == s2.disk.total_requests

    def test_chunk_prefetch_filtering(self):
        m = small_machine()
        base = vp(m)
        m.access(base, False)  # resident: bit set
        m.run_chunk([PREFETCH, PREFETCH], [base, base + 5], [0.0, 0.0])
        assert m.stats.prefetch.compiler_inserted == 2
        assert m.stats.prefetch.filtered == 1
        assert m.stats.prefetch.issued_calls == 1

    def test_chunk_release(self):
        m = small_machine()
        base = vp(m)
        m.access(base, False)
        m.run_chunk([RELEASE], [base], [0.0])
        assert m.stats.release.pages_released == 1

    def test_chunk_hits_are_batched(self):
        m = small_machine()
        base = vp(m)
        m.access(base, False)
        hits_before = m.stats.faults.hits
        m.run_chunk([READ] * 100, [base] * 100, [1.0] * 100)
        assert m.stats.faults.hits == hits_before + 100
        assert m.stats.faults.total_faults == 1  # only the initial fault

    def test_chunk_write_marks_dirty(self):
        m = small_machine()
        base = vp(m)
        m.access(base, False)
        m.run_chunk([WRITE], [base], [0.0])
        stats = m.finish()
        assert stats.disk.writes == 1

    def test_chunk_without_filter_issues_everything(self):
        m = small_machine(runtime_filter=False)
        base = vp(m)
        m.access(base, False)
        m.run_chunk([PREFETCH], [base], [0.0])
        assert m.stats.prefetch.filtered == 0
        assert m.stats.prefetch.unnecessary_issued == 1

    def test_chunk_mismatched_lists_rejected(self):
        m = small_machine()
        with pytest.raises(MachineError):
            m.run_chunk([READ], [1, 2], [0.0])

    def test_chunk_unknown_kind_rejected(self):
        m = small_machine()
        with pytest.raises(MachineError):
            m.run_chunk([17], [vp(m)], [0.0])

    def test_chunk_compute_time_preserved(self):
        m = small_machine()
        base = vp(m)
        m.access(base, False)
        t0 = m.clock.now
        m.run_chunk([READ] * 10, [base] * 10, [2.5] * 10)
        assert m.clock.now == pytest.approx(t0 + 25.0)

    def test_prefetch_time_overlaps_compute(self):
        """The whole point: compute proceeds while the disk works."""
        m = small_machine()
        base = vp(m)
        m.prefetch(base, 1)
        issue_done = m.clock.now
        m.compute(100_000.0)
        m.access(base, False)
        # No stall: the access time equals issue + compute.
        assert m.clock.now == pytest.approx(issue_done + 100_000.0)
        assert m.stats.faults.prefetched_hit == 1
