"""The docs/observability.md lint, run as part of the suite.

``scripts/check_docs.py`` cross-checks the doc's event-kind and metric
reference tables against ``repro.obs``; these tests run the same check
under pytest (so CI catches drift either way) and pin the parser's
behaviour.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    path = REPO_ROOT / "scripts" / "check_docs.py"
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_match_code(check_docs):
    assert check_docs.check() == []


def test_parser_finds_all_tables(check_docs):
    tokens = check_docs.documented_tokens()
    assert "fault" in tokens["kinds"]
    assert "disk_request" in tokens["kinds"]
    assert "stall_frame_wait" in tokens["kinds"]
    assert "time.elapsed_us" in tokens["metrics"]
    assert "obs.stall_latency_us" in tokens["metrics"]
    assert "obs.disk_idle_fraction" in tokens["metrics"]
    assert "used_stall" in tokens["span_states"]
    assert "issued" in tokens["span_states"]
    assert "prefetch_too_late" in tokens["stall_causes"]
    assert "fault_injected" in tokens["stall_causes"]


def test_lint_catches_drift(check_docs, tmp_path):
    """Removing a documented row or inventing one must fail the lint."""
    doc = (REPO_ROOT / "docs" / "observability.md").read_text()
    mutated = tmp_path / "observability.md"

    mutated.write_text(doc.replace("| `fault` |", "| `fault_renamed` |"))
    problems = check_docs.check(mutated)
    assert any("fault_renamed" in p for p in problems)
    assert any("'fault'" in p for p in problems)

    mutated.write_text(
        doc.replace("| `time.elapsed_us` |", "| `time.bogus_us` |")
    )
    problems = check_docs.check(mutated)
    assert any("time.bogus_us" in p for p in problems)

    mutated.write_text(doc.replace("| `used_stall` |", "| `used_wrong` |"))
    problems = check_docs.check(mutated)
    assert any("used_wrong" in p for p in problems)
    assert any("'used_stall'" in p for p in problems)

    mutated.write_text(
        doc.replace("| `prefetch_too_late` |", "| `too_late_renamed` |")
    )
    problems = check_docs.check(mutated)
    assert any("too_late_renamed" in p for p in problems)


def test_bench_profile_table_matches_registry(check_docs):
    from repro.harness.bench import BENCH_PROFILES

    assert check_docs.documented_bench_profiles() == set(BENCH_PROFILES)


def test_lint_catches_bench_profile_drift(check_docs, tmp_path):
    """The performance.md bench-profile table is linted both ways."""
    doc = (REPO_ROOT / "docs" / "performance.md").read_text()
    mutated = tmp_path / "performance.md"

    # A documented profile the harness does not have.
    mutated.write_text(doc.replace("| `smoke` |", "| `smoke_renamed` |"))
    problems = check_docs.check(performance_doc_path=mutated)
    assert any("smoke_renamed" in p for p in problems)
    assert any("'smoke'" in p for p in problems)

    # A harness profile missing from the doc.
    mutated.write_text(doc.replace("| `table3` |", "| not-a-row |"))
    problems = check_docs.check(performance_doc_path=mutated)
    assert any("'table3'" in p and "not documented" in p for p in problems)
