"""Unit tests for the job-farm building blocks (repro/serve/).

Everything here runs in-process with no worker pool: the retry
schedule is a pure function and its exact values are pinned; the
admission queue's evict/shed/priority/backoff decisions are driven
record by record; job specs and farm chaos plans round-trip through
JSON; and the CLI exit-code enum's numbers are frozen (harnesses
branch on them).  The farm itself -- processes, signals, checkpoints
-- is exercised in tests/test_serve_integration.py.
"""

import json

import pytest

from repro.errors import ConfigError, ExitCode
from repro.faults.farm import (
    FarmChaosPlan,
    WorkerFault,
    default_farm_plan,
    load_farm_plan,
)
from repro.serve import (
    AdmissionQueue,
    JobRecord,
    JobSpec,
    JobState,
    RetryPolicy,
    demo_jobs,
    load_jobs,
    save_jobs,
)
from repro.serve.jobspec import TERMINAL_STATES


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_raw_ladder_is_capped_exponential(self):
        policy = RetryPolicy(base_s=0.1, multiplier=2.0, cap_s=0.5, jitter=0.0)
        assert policy.raw_delay_s(1) == pytest.approx(0.1)
        assert policy.raw_delay_s(2) == pytest.approx(0.2)
        assert policy.raw_delay_s(3) == pytest.approx(0.4)
        assert policy.raw_delay_s(4) == pytest.approx(0.5)  # capped
        assert policy.raw_delay_s(10) == pytest.approx(0.5)

    def test_zero_jitter_is_the_raw_ladder(self):
        policy = RetryPolicy(base_s=0.05, jitter=0.0)
        assert policy.delay_s("job-x", 1) == policy.raw_delay_s(1)
        assert policy.delay_s("job-x", 3) == policy.raw_delay_s(3)

    def test_jitter_is_deterministic_per_job_and_attempt(self):
        a = RetryPolicy(seed=7).delay_s("job-1", 2)
        b = RetryPolicy(seed=7).delay_s("job-1", 2)
        assert a == b
        assert RetryPolicy(seed=8).delay_s("job-1", 2) != a
        assert RetryPolicy(seed=7).delay_s("job-2", 2) != a
        assert RetryPolicy(seed=7).delay_s("job-1", 3) != a

    def test_jitter_stays_in_bounds(self):
        policy = RetryPolicy(base_s=0.1, multiplier=2.0, cap_s=2.0, jitter=0.5)
        for attempt in range(1, 8):
            raw = policy.raw_delay_s(attempt)
            for job in ("a", "b", "c", "d"):
                delay = policy.delay_s(job, attempt)
                assert raw * 0.5 <= delay <= raw

    def test_schedule_lists_every_attempt(self):
        policy = RetryPolicy(jitter=0.0, base_s=0.01)
        schedule = policy.schedule("j", 4)
        assert schedule == [policy.delay_s("j", n) for n in range(1, 5)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(base_s=-1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy().raw_delay_s(0)


# ----------------------------------------------------------------------
# AdmissionQueue
# ----------------------------------------------------------------------


def record(job_id: str, priority: int = 0, seq: int = 0,
           eligible_at: float = 0.0) -> JobRecord:
    spec = JobSpec(kind="run", app="EMBAR", job_id=job_id, priority=priority)
    return JobRecord(spec=spec, seq=seq, eligible_at=eligible_at)


class TestAdmissionQueue:
    def test_admits_until_depth(self):
        queue = AdmissionQueue(2)
        assert queue.offer(record("a", seq=1))
        assert queue.offer(record("b", seq=2))
        assert len(queue) == 2
        assert not queue.shed

    def test_full_queue_sheds_equal_priority_newcomer(self):
        queue = AdmissionQueue(1)
        assert queue.offer(record("a", priority=1, seq=1))
        assert not queue.offer(record("b", priority=1, seq=2))
        assert [r.spec.job_id for r in queue.shed] == ["b"]
        assert len(queue) == 1

    def test_full_queue_evicts_strictly_lower_priority_victim(self):
        queue = AdmissionQueue(2)
        queue.offer(record("old-low", priority=0, seq=1))
        queue.offer(record("old-high", priority=2, seq=2))
        assert queue.offer(record("new-mid", priority=1, seq=3))
        assert [r.spec.job_id for r in queue.shed] == ["old-low"]
        ids = {r.spec.job_id for r in queue}
        assert ids == {"old-high", "new-mid"}

    def test_eviction_victim_is_youngest_of_lowest_band(self):
        queue = AdmissionQueue(2)
        queue.offer(record("older", priority=0, seq=1))
        queue.offer(record("younger", priority=0, seq=2))
        queue.offer(record("vip", priority=5, seq=3))
        assert [r.spec.job_id for r in queue.shed] == ["younger"]

    def test_requeue_is_exempt_from_admission(self):
        queue = AdmissionQueue(1)
        queue.offer(record("a", seq=1))
        queue.requeue(record("retry", seq=2))
        assert len(queue) == 2
        assert not queue.shed

    def test_pop_ready_is_priority_then_fifo(self):
        queue = AdmissionQueue(8)
        queue.offer(record("low", priority=0, seq=1))
        queue.offer(record("high-old", priority=2, seq=2))
        queue.offer(record("high-new", priority=2, seq=3))
        assert queue.pop_ready(now=0.0).spec.job_id == "high-old"
        assert queue.pop_ready(now=0.0).spec.job_id == "high-new"
        assert queue.pop_ready(now=0.0).spec.job_id == "low"
        assert queue.pop_ready(now=0.0) is None

    def test_backoff_makes_a_job_ineligible_until_due(self):
        queue = AdmissionQueue(8)
        queue.offer(record("later", priority=9, seq=1, eligible_at=10.0))
        queue.offer(record("now", priority=0, seq=2))
        assert queue.peek_ready_priority(now=0.0) == 0
        assert queue.pop_ready(now=0.0).spec.job_id == "now"
        assert queue.pop_ready(now=0.0) is None
        assert queue.pop_ready(now=10.0).spec.job_id == "later"

    def test_drain_empties_the_queue(self):
        queue = AdmissionQueue(8)
        queue.offer(record("a", seq=1))
        queue.offer(record("b", seq=2))
        assert {r.spec.job_id for r in queue.drain()} == {"a", "b"}
        assert len(queue) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(0)


# ----------------------------------------------------------------------
# JobSpec / JobRecord / batch files
# ----------------------------------------------------------------------


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(kind="sweep", app="MGRID", job_id="j-1", pages=200,
                       memory_pages=96, seed=3, multiples=(0.5, 1.5),
                       priority=2, timeout_s=30.0, max_attempts=5)
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ConfigError):
            JobSpec(kind="fry", app="EMBAR")
        with pytest.raises(ConfigError):
            JobSpec(kind="run", app="")
        with pytest.raises(ConfigError):
            JobSpec(kind="run", app="EMBAR", variant="x")
        with pytest.raises(ConfigError):
            JobSpec(kind="run", app="EMBAR", pages=-1)
        with pytest.raises(ConfigError):
            JobSpec(kind="sweep", app="EMBAR", multiples=())
        with pytest.raises(ConfigError):
            JobSpec(kind="chaos", app="EMBAR", intensities=())
        with pytest.raises(ConfigError):
            JobSpec(kind="run", app="EMBAR", timeout_s=0.0)
        with pytest.raises(ConfigError):
            JobSpec(kind="run", app="EMBAR", max_attempts=0)
        with pytest.raises(ConfigError):
            JobSpec(kind="run", app="EMBAR", faults={"nonsense": True})
        with pytest.raises(ConfigError):
            JobSpec.from_dict({"kind": "run", "app": "EMBAR", "bogus": 1})

    def test_record_terminal_and_latency(self):
        rec = record("a")
        assert not rec.terminal
        assert rec.latency_s == 0.0
        rec.state = JobState.DONE
        rec.submitted_at, rec.finished_at = 10.0, 12.5
        assert rec.terminal
        assert rec.latency_s == pytest.approx(2.5)
        assert TERMINAL_STATES == {JobState.DONE, JobState.QUARANTINED,
                                   JobState.SHED}

    def test_batch_file_round_trip(self, tmp_path):
        path = tmp_path / "batch.json"
        jobs = demo_jobs(6, poison=1)
        save_jobs(path, jobs)
        assert load_jobs(path) == jobs

    def test_load_rejects_malformed_batches(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(ConfigError):
            load_jobs(path)
        path.write_text(json.dumps({"version": 99, "jobs": [{}]}))
        with pytest.raises(ConfigError):
            load_jobs(path)
        with pytest.raises(ConfigError):
            load_jobs(tmp_path / "missing.json")

    def test_demo_jobs_cycle_kinds_and_mark_poison(self):
        jobs = demo_jobs(8, poison=2)
        assert len(jobs) == 10
        assert {j.kind for j in jobs[:8]} == {"run", "compare", "sweep",
                                              "chaos"}
        assert all(j.app == "NO-SUCH-APP" for j in jobs[8:])
        assert demo_jobs(8, poison=2) == jobs  # deterministic
        with pytest.raises(ConfigError):
            demo_jobs(0)


# ----------------------------------------------------------------------
# FarmChaosPlan
# ----------------------------------------------------------------------


class TestFarmChaosPlan:
    def test_round_trip(self, tmp_path):
        plan = FarmChaosPlan(faults=(
            WorkerFault(on_start=2, delay_s=0.2, op="kill"),
            WorkerFault(on_start=5, delay_s=0.0, op="stall"),
        ))
        path = tmp_path / "farm.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert load_farm_plan(path) == plan

    def test_for_start(self):
        plan = default_farm_plan(kills=2, stalls=1, first_start=2, stride=3)
        assert plan.for_start(1) is None
        assert plan.for_start(2).op == "kill"
        assert plan.for_start(5).op == "kill"
        assert plan.for_start(8).op == "stall"

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkerFault(on_start=0)
        with pytest.raises(ConfigError):
            WorkerFault(on_start=1, delay_s=-0.1)
        with pytest.raises(ConfigError):
            WorkerFault(on_start=1, op="maim")
        with pytest.raises(ConfigError):
            FarmChaosPlan(faults=(WorkerFault(on_start=1),
                                  WorkerFault(on_start=1, op="stall")))
        with pytest.raises(ConfigError):
            FarmChaosPlan.from_dict({"faults": [], "version": 99})
        with pytest.raises(ConfigError):
            load_farm_plan("/no/such/plan.json")


# ----------------------------------------------------------------------
# ExitCode
# ----------------------------------------------------------------------


def test_exit_code_numbers_are_frozen():
    assert ExitCode.OK == 0
    assert ExitCode.FAILURE == 1
    assert ExitCode.USAGE == 2
    assert ExitCode.CRASH == 3
    assert ExitCode.JOB_FAILED == 4
    # IntEnum: usable directly as a process exit status.
    assert isinstance(ExitCode.OK, int)
