"""Tests for the simulated clock and the statistics containers."""

import pytest

from repro.errors import MachineError
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import (
    DiskStats,
    FaultStats,
    MemoryStats,
    PrefetchStats,
    TimeBreakdown,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance_accumulates_per_category(self):
        clock = Clock()
        clock.advance(10.0, TimeCategory.USER_COMPUTE)
        clock.advance(5.0, TimeCategory.SYS_FAULT)
        clock.advance(2.5, TimeCategory.USER_COMPUTE)
        assert clock.now == 17.5
        assert clock.spent(TimeCategory.USER_COMPUTE) == 12.5
        assert clock.spent(TimeCategory.SYS_FAULT) == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(MachineError):
            Clock().advance(-1.0, TimeCategory.USER_COMPUTE)

    def test_zero_advance_is_noop(self):
        clock = Clock()
        clock.advance(0.0, TimeCategory.USER_COMPUTE)
        assert clock.now == 0.0

    def test_wait_until_future(self):
        clock = Clock()
        waited = clock.wait_until(100.0, TimeCategory.STALL_READ)
        assert waited == 100.0
        assert clock.now == 100.0
        assert clock.stall_time() == 100.0

    def test_wait_until_past_is_noop(self):
        clock = Clock()
        clock.advance(50.0, TimeCategory.USER_COMPUTE)
        waited = clock.wait_until(20.0, TimeCategory.STALL_READ)
        assert waited == 0.0
        assert clock.now == 50.0

    def test_busy_vs_stall_partition(self):
        clock = Clock()
        clock.advance(10.0, TimeCategory.USER_COMPUTE)
        clock.advance(3.0, TimeCategory.SYS_PREFETCH)
        clock.wait_until(20.0, TimeCategory.STALL_READ)
        assert clock.busy_time() == 13.0
        assert clock.stall_time() == 7.0
        assert clock.busy_time() + clock.stall_time() == pytest.approx(clock.now)


class TestTimeBreakdown:
    def test_from_clock(self):
        clock = Clock()
        clock.advance(4.0, TimeCategory.USER_COMPUTE)
        clock.advance(1.0, TimeCategory.USER_OVERHEAD)
        clock.advance(2.0, TimeCategory.SYS_FAULT)
        clock.wait_until(10.0, TimeCategory.STALL_FLUSH)
        b = TimeBreakdown.from_clock(clock)
        assert b.user == 5.0
        assert b.system == 2.0
        assert b.idle == 3.0
        assert b.total == pytest.approx(clock.now)


class TestFaultStats:
    def test_coverage(self):
        f = FaultStats(prefetched_hit=75, prefetched_fault=5, nonprefetched_fault=20)
        assert f.coverage == pytest.approx(0.8)
        assert f.total_faults == 100
        assert f.actual_faults == 25

    def test_coverage_no_faults(self):
        assert FaultStats().coverage == 0.0


class TestPrefetchStats:
    def test_unnecessary_fraction(self):
        p = PrefetchStats(compiler_inserted=100, filtered=90, unnecessary_issued=6)
        assert p.unnecessary_fraction == pytest.approx(0.96)

    def test_issued_useful_fraction(self):
        p = PrefetchStats(issued_pages=10, disk_reads=7, reclaimed=2)
        assert p.issued_useful_fraction == pytest.approx(0.9)

    def test_zero_division_guards(self):
        p = PrefetchStats()
        assert p.unnecessary_fraction == 0.0
        assert p.issued_useful_fraction == 0.0


class TestDiskStats:
    def test_utilization(self):
        d = DiskStats(busy_us=[50.0, 100.0])
        assert d.utilization(100.0) == pytest.approx(0.75)

    def test_utilization_guards(self):
        assert DiskStats().utilization(100.0) == 0.0
        assert DiskStats(busy_us=[1.0]).utilization(0.0) == 0.0

    def test_total_requests(self):
        d = DiskStats(reads_fault=3, reads_prefetch=4, writes=5)
        assert d.total_requests == 12


class TestMemoryStats:
    def test_avg_free_fraction(self):
        m = MemoryStats(frames_total=10, free_integral=500.0)
        assert m.avg_free_fraction(100.0) == pytest.approx(0.5)

    def test_avg_free_guards(self):
        assert MemoryStats().avg_free_fraction(10.0) == 0.0
