"""Tests for stall attribution (repro.obs.attrib).

The heart of the layer is the conservation invariant: the attributor's
chronological replay of stall contributions must equal the simulated
clock's own accumulators **bitwise** -- for every app, both variants,
with and without injected faults.  Plus: classification precedence,
lateness accounting, collapsed stacks, and offline degradation.
"""

import pytest

from repro.apps.registry import ALL_APPS
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.faults import default_plan
from repro.harness.experiment import run_variant
from repro.obs import (
    STALL_CAUSES,
    Observer,
    SpanState,
    StallAttributor,
    classify,
)
from repro.obs.spans import StallRecord

CFG = PlatformConfig(memory_pages=96)
PAGES = 120


def _run(spec, variant, fault_plan=None, observer=None):
    program = spec.make(PAGES, seed=1)
    if variant == "P":
        options = CompilerOptions.from_platform(CFG)
        program = insert_prefetches(program, options).program
    return run_variant(program, CFG, prefetching=(variant == "P"),
                       observer=observer, fault_plan=fault_plan)


def _attributed(spec, variant, fault_plan=None):
    obs = Observer()
    att = StallAttributor(observer=obs)
    stats = _run(spec, variant, fault_plan=fault_plan, observer=obs)
    return stats, att.report(stats)


# ----------------------------------------------------------------------
# The conservation invariant
# ----------------------------------------------------------------------


@pytest.mark.parametrize("spec", ALL_APPS, ids=lambda s: s.name)
@pytest.mark.parametrize("variant", ["O", "P"])
@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faulted"])
def test_conservation_invariant(spec, variant, faulted):
    """Attributed cycles == the clock's stall cycles, bitwise."""
    plan = default_plan(CFG.num_disks, seed=2) if faulted else None
    stats, report = _attributed(spec, variant, fault_plan=plan)
    assert report.attributed_read_us == stats.times.stall_read
    assert report.attributed_total_us == stats.times.idle
    assert report.conserved
    # Nothing double-counted: the per-cause display totals cover the
    # same records the replay covered.
    assert sum(b.count for b in report.buckets.values()) == (
        report.records + report.buckets["final_flush"].count
    )


@pytest.mark.parametrize("spec", ALL_APPS[:3], ids=lambda s: s.name)
def test_attribution_does_not_perturb_the_observed_run(spec):
    """The span layer is a pure consumer: an observed run with the
    attributor attached is bit-identical to one with a bare observer.
    (A bare observer itself may reorder float sums vs an unobserved
    run -- that pre-existing trade-off is documented in
    docs/observability.md and is not the span layer's doing.)"""
    plain = _run(spec, "P", observer=Observer())
    seen, report = _attributed(spec, "P")
    assert plain.elapsed_us == seen.elapsed_us
    assert plain.times.idle == seen.times.idle
    assert plain.times.user_overhead == seen.times.user_overhead
    assert report.conserved


def test_unfaulted_attribution_keeps_golden_trace_identical():
    """Attaching the attributor must not change the canonical trace."""
    import importlib.util
    import json
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    path = root / "scripts" / "regen_golden_trace.py"
    spec = importlib.util.spec_from_file_location("regen_golden_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    from repro.obs import chrome_trace

    obs = module.golden_run()
    with open(root / "tests" / "data" / "embar_trace_golden.json") as fh:
        golden = json.load(fh)
    assert chrome_trace(obs.trace) == golden


# ----------------------------------------------------------------------
# Cause semantics
# ----------------------------------------------------------------------


class TestCauseSemantics:
    def test_original_variant_is_all_never_prefetched(self):
        stats, report = _attributed(ALL_APPS[2], "O")  # EMBAR
        read_causes = {
            c: b for c, b in report.buckets.items()
            if b.count and c != "final_flush"
        }
        assert set(read_causes) == {"never_prefetched"}
        assert read_causes["never_prefetched"].count == (
            stats.faults.nonprefetched_fault
        )

    def test_prefetch_variant_stalls_are_late_prefetches(self):
        stats, report = _attributed(ALL_APPS[2], "P")  # EMBAR
        late = report.buckets["prefetch_too_late"]
        assert late.count == stats.faults.prefetched_fault
        assert report.buckets["never_prefetched"].count == (
            stats.faults.nonprefetched_fault
        )
        # Every late prefetch contributed one lateness sample.
        assert report.lateness.count == late.count
        assert report.lateness.total == pytest.approx(late.total_us)

    def test_faulted_run_attributes_to_fault_injected(self):
        plan = default_plan(CFG.num_disks, seed=2)
        _, clean = _attributed(ALL_APPS[2], "P")
        _, faulted = _attributed(ALL_APPS[2], "P", fault_plan=plan)
        assert clean.buckets["fault_injected"].count == 0
        assert faulted.buckets["fault_injected"].count > 0
        assert faulted.buckets["fault_injected"].total_us > 0
        assert faulted.conserved

    def test_final_flush_bucket_is_the_clock_value(self):
        stats, report = _attributed(ALL_APPS[0], "P")  # BUK writes
        assert report.buckets["final_flush"].total_us == (
            stats.times.stall_flush
        )


class TestClassify:
    def _rec(self, tag="nonprefetched_fault", last=None, injected=False):
        return StallRecord(1, 0.0, tag, 100.0, last, injected, (), "?")

    def test_precedence(self):
        assert classify(self._rec(tag="frame_wait")) == "frame_wait"
        assert classify(self._rec(injected=True)) == "fault_injected"
        assert classify(
            self._rec(tag="prefetched_fault", last=SpanState.DROPPED)
        ) == "dropped_under_pressure"
        assert classify(
            self._rec(tag="prefetched_fault", last=SpanState.ISSUED)
        ) == "prefetch_too_late"
        assert classify(self._rec(last=SpanState.SUPPRESSED)) == "suppressed"
        assert classify(self._rec(last=SpanState.FILTERED)) == "filter_miss"
        assert classify(self._rec(last=SpanState.HINT_FAILED)) == "fault_injected"
        assert classify(self._rec()) == "never_prefetched"

    def test_every_cause_is_reachable_or_flush(self):
        reachable = {
            classify(r) for r in (
                self._rec(tag="frame_wait"),
                self._rec(injected=True),
                self._rec(tag="prefetched_fault", last=SpanState.DROPPED),
                self._rec(tag="prefetched_fault", last=SpanState.ISSUED),
                self._rec(last=SpanState.SUPPRESSED),
                self._rec(last=SpanState.FILTERED),
                self._rec(),
            )
        }
        assert reachable == set(STALL_CAUSES) - {"final_flush"}


# ----------------------------------------------------------------------
# Collapsed stacks and offline mode
# ----------------------------------------------------------------------


class TestStacksAndOffline:
    def test_collapsed_stacks_cover_all_stall_time(self):
        obs = Observer()
        att = StallAttributor(observer=obs)
        stats = _run(ALL_APPS[2], "P", observer=obs)
        att.report(stats)
        lines = att.collapsed_stacks(root="EMBAR")
        assert lines, "a stalling run must produce stack frames"
        assert all(line.startswith("EMBAR;") for line in lines)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == pytest.approx(stats.times.stall_read, abs=len(lines))
        # Sorted hottest-first.
        weights = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert weights == sorted(weights, reverse=True)

    def test_offline_attribution_matches_online_counts(self):
        obs = Observer()
        online = StallAttributor(observer=obs)
        stats = _run(ALL_APPS[2], "P", observer=obs)
        online_report = online.report(stats)
        offline = StallAttributor.from_buffer(obs.trace)
        offline_report = offline.report(stats)
        for cause in STALL_CAUSES:
            assert (offline_report.buckets[cause].count
                    == online_report.buckets[cause].count), cause
        assert offline_report.attributed_read_us == (
            online_report.attributed_read_us
        )
        assert offline_report.conserved

    def test_offline_from_wrapped_ring_warns_not_crashes(self):
        obs = Observer(capacity=64)
        stats = _run(ALL_APPS[2], "P", observer=obs)
        att = StallAttributor.from_buffer(obs.trace)
        report = att.report(stats)
        assert report.truncated is True
        assert any("dropped" in w for w in report.warnings)
        # A truncated ring cannot conserve -- and must say so, not lie.
        assert report.attributed_read_us <= stats.times.stall_read
