"""Replay every committed regression-corpus entry (tests/corpus/).

Each file is a shrunk scenario from a real finding (or a hand-written
witness of a tuned envelope), committed *after* the underlying bug was
fixed -- so every entry must replay green, deterministically, forever.
A red entry here means a fixed bug came back; ``repro fuzz replay
FILE`` reproduces it interactively.
"""

from pathlib import Path

import pytest

from repro.fuzz import corpus_files, load_entry, replay_entry
from repro.fuzz.oracles import ORACLE_NAMES

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = corpus_files(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.name)
def test_entry_names_a_known_oracle(path):
    _scenario, oracle = load_entry(path)
    assert oracle in ORACLE_NAMES
    assert path.name.startswith(f"{oracle}-")


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.name)
def test_entry_replays_green(path):
    replay_entry(path)
