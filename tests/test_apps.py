"""Tests for the NAS application models and the registry."""

import pytest

from repro.apps.registry import ALL_APPS, get_app, table2_rows
from repro.config import PlatformConfig
from repro.core.analysis.planner import PlanKind, plan_program
from repro.core.ir.validate import validate_program
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import ReproError
from repro.interp.tracing import access_trace

# Big enough that every major array exceeds the compiler's effective-memory
# threshold (so plans exist) and pencil grids do not clamp to minimum depth;
# small enough that full access traces stay around a million entries.
SMALL_PAGES = 160
SMALL_CFG = PlatformConfig(memory_pages=64, available_fraction=0.75)
OPTS = CompilerOptions.from_platform(SMALL_CFG)


class TestRegistry:
    def test_eight_applications(self):
        assert len(ALL_APPS) == 8
        assert {s.name for s in ALL_APPS} == {
            "BUK", "CGM", "EMBAR", "FFT", "MGRID", "APPLU", "APPSP", "APPBT"
        }

    def test_lookup_by_paper_and_nas_names(self):
        assert get_app("BUK").nas_name == "IS"
        assert get_app("is").name == "BUK"
        assert get_app("mg").name == "MGRID"

    def test_unknown_app_raises(self):
        with pytest.raises(ReproError):
            get_app("SPLASH")

    def test_table2_rows_complete(self):
        rows = table2_rows()
        assert len(rows) == 8
        for row in rows:
            assert row["description"]
            assert row["pattern"]


@pytest.mark.parametrize("spec", ALL_APPS, ids=lambda s: s.name)
class TestEveryApp:
    def test_builds_and_validates(self, spec):
        program = spec.make(SMALL_PAGES)
        validate_program(program)

    def test_scales_with_data_pages(self, spec):
        small = spec.make(SMALL_PAGES)
        large = spec.make(SMALL_PAGES * 8)
        assert large.total_data_bytes() > small.total_data_bytes()

    def test_deterministic_given_seed(self, spec):
        p1 = spec.make(SMALL_PAGES, seed=7)
        p2 = spec.make(SMALL_PAGES, seed=7)
        assert access_trace(p1, limit=2_000_000) == access_trace(p2, limit=2_000_000)

    def test_transformation_preserves_accesses(self, spec):
        """The central property, on every benchmark."""
        program = spec.make(SMALL_PAGES)
        result = insert_prefetches(program, OPTS)
        limit = 4_000_000
        assert access_trace(program, limit=limit) == access_trace(
            result.program, limit=limit
        )

    def test_compiler_plans_something(self, spec):
        program = spec.make(SMALL_PAGES)
        plan = plan_program(program, OPTS)
        planned = [
            p for p in plan.plans if p.kind in (PlanKind.DENSE, PlanKind.INDIRECT)
        ]
        assert planned, f"{spec.name}: no reference was planned for prefetching"


class TestAppSignatures:
    """Per-app structural signatures the paper's results rely on."""

    def test_buk_has_indirect_plans(self):
        plan = plan_program(get_app("BUK").make(SMALL_PAGES), OPTS)
        kinds = {p.kind for p in plan.plans}
        assert PlanKind.INDIRECT in kinds

    def test_buk_streams_get_releases(self):
        plan = plan_program(get_app("BUK").make(SMALL_PAGES), OPTS)
        released = [p for p in plan.plans if p.kind is PlanKind.DENSE and p.release]
        assert released, "BUK's key/rank streams should be released behind"

    def test_embar_all_dense_with_release(self):
        plan = plan_program(get_app("EMBAR").make(SMALL_PAGES), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert dense and all(p.release for p in dense)
        assert not any(p.kind is PlanKind.INDIRECT for p in plan.plans)

    def test_cgm_gather_is_indirect(self):
        plan = plan_program(get_app("CGM").make(SMALL_PAGES), OPTS)
        indirect = [p for p in plan.plans if p.kind is PlanKind.INDIRECT]
        assert len(indirect) >= 1
        assert indirect[0].ref.array.name == "x"

    def test_mgrid_stencil_groups_elect_leaders(self):
        plan = plan_program(get_app("MGRID").make(SMALL_PAGES), OPTS)
        covered = [p for p in plan.plans if p.kind is PlanKind.COVERED]
        assert len(covered) >= 2  # k+-1 and j+-1 neighbours covered

    def test_stencil_apps_have_no_releases(self):
        for name in ("MGRID", "APPLU", "APPSP"):
            plan = plan_program(get_app(name).make(SMALL_PAGES), OPTS)
            assert not any(
                p.release for p in plan.plans if p.kind is PlanKind.DENSE
            ), f"{name} should not release (its sweeps repeat)"

    def test_appbt_has_inexact_pipeline_decision(self):
        plan = plan_program(get_app("APPBT").make(SMALL_PAGES), OPTS)
        assert plan.inexact_loops, "APPBT's block loop bound must look symbolic"

    def test_appbt_symbolic_dim_hidden_from_compiler(self):
        program = get_app("APPBT").make(SMALL_PAGES)
        assert "B" in program.params
        assert "B" not in program.compile_time_params

    def test_applu_backward_sweep_reverses_leader(self):
        """Negative-stride groups must elect the low-offset leader."""
        plan = plan_program(get_app("APPLU").make(SMALL_PAGES), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        # At least one plan in the backward sweep has a negative stride.
        assert any(
            p.bytes_per_iter > 0 for p in dense
        )  # bytes_per_iter is absolute; presence checked via trace test


class TestSizeClasses:
    def test_classes_scale_monotonically(self):
        from repro.apps.base import SIZE_CLASSES

        spec = get_app("EMBAR")
        sizes = [
            spec.make_class(cls, available_frames=384).total_data_bytes()
            for cls in ("S", "W", "A", "B")
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            get_app("BUK").make_class("Z", available_frames=384)

    def test_class_a_is_out_of_core(self):
        program = get_app("FFT").make_class("A", available_frames=384)
        assert program.total_data_bytes() > 384 * 4096
