"""Tests for the multiprogramming pressure extension."""

import pytest

from repro.apps.registry import get_app
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import MachineError
from repro.interp.executor import Executor
from repro.machine.machine import Machine
from repro.sim.clock import TimeCategory


def machine_with_segment(frames=32):
    cfg = PlatformConfig(memory_pages=frames, available_fraction=1.0, num_disks=2)
    m = Machine(cfg, prefetching=False)
    m.map_segment("x", 1000 * cfg.page_size)
    return m


def vp(machine):
    return machine.address_space.segment("x").base // machine.config.page_size


class TestPressureMechanics:
    def test_frames_reserved_at_deadline(self):
        m = machine_with_segment(frames=32)
        m.manager.schedule_pressure(at_us=1000.0, frames=10)
        m.compute(2000.0)
        m.access(vp(m), False)  # first memory op past the deadline
        assert m.manager.frames.reserved == 10
        m.manager.frames.check_invariant()

    def test_pressure_not_applied_early(self):
        m = machine_with_segment()
        m.manager.schedule_pressure(at_us=1_000_000.0, frames=10)
        m.access(vp(m), False)
        assert m.manager.frames.reserved == 0

    def test_competitor_exit_returns_frames(self):
        m = machine_with_segment(frames=32)
        m.manager.schedule_pressure(at_us=0.0, frames=10, duration_us=5000.0)
        m.access(vp(m), False)
        assert m.manager.frames.reserved == 10
        m.compute(10_000.0)
        m.access(vp(m) + 1, False)
        assert m.manager.frames.reserved == 0
        m.manager.frames.check_invariant()

    def test_pressure_evicts_resident_pages(self):
        m = machine_with_segment(frames=8)
        base = vp(m)
        for k in range(8):
            m.access(base + k, False)
        m.manager.schedule_pressure(at_us=m.clock.now, frames=4)
        m.access(base + 20, False)
        assert m.manager.frames.reserved == 4
        resident = sum(
            1 for page in m.manager.pages.values() if page.state.name == "RESIDENT"
        )
        assert resident <= 4
        m.manager.frames.check_invariant()

    def test_dirty_victims_written_back(self):
        m = machine_with_segment(frames=4)
        base = vp(m)
        for k in range(4):
            m.access(base + k, True)
        writes_before = m.disks.writes
        m.manager.schedule_pressure(at_us=m.clock.now, frames=3)
        m.access(base + 20, False)
        assert m.disks.writes > writes_before

    def test_invalid_pressure_rejected(self):
        m = machine_with_segment()
        with pytest.raises(MachineError):
            m.manager.schedule_pressure(at_us=0.0, frames=0)

    def test_events_applied_in_order(self):
        m = machine_with_segment(frames=32)
        m.manager.schedule_pressure(at_us=2000.0, frames=5)
        m.manager.schedule_pressure(at_us=1000.0, frames=3)
        m.compute(3000.0)
        m.access(vp(m), False)
        assert m.manager.frames.reserved == 8


class TestPressureEndToEnd:
    def _run(self, spec_name, pressure_fraction, prefetching, memory_multiple=2.0):
        platform = PlatformConfig(memory_pages=128)
        spec = get_app(spec_name)
        program = spec.make(max(8, int(memory_multiple * platform.available_frames)))
        if prefetching:
            compiled = insert_prefetches(
                program, CompilerOptions.from_platform(platform)
            )
            program = compiled.program
        machine = Machine(platform, prefetching=prefetching)
        if pressure_fraction:
            frames = int(platform.available_frames * pressure_fraction)
            # Competitor arrives early and stays for the whole run.
            machine.manager.schedule_pressure(at_us=1000.0, frames=frames)
        stats = Executor(machine).run(program)
        return stats

    def test_pressure_slows_the_original(self):
        """A working set that fits until the competitor arrives starts
        thrashing once half of memory disappears.  (A pure out-of-core
        stream would barely notice: it has no retained reuse to lose.)
        BUK re-reads its keys every ranking iteration, so the reuse is
        real."""
        calm = self._run("BUK", 0.0, prefetching=False, memory_multiple=0.6)
        pressured = self._run("BUK", 0.5, prefetching=False, memory_multiple=0.6)
        assert pressured.elapsed_us > 1.2 * calm.elapsed_us

    def test_prefetching_still_wins_under_pressure(self):
        """The paper's motivation for OS-arbitrated hints: the system
        adapts to dynamic resource availability (Sections 1.2, 6)."""
        o = self._run("EMBAR", 0.5, prefetching=False)
        p = self._run("EMBAR", 0.5, prefetching=True)
        assert p.elapsed_us < o.elapsed_us

    def test_release_app_degrades_less_under_pressure(self):
        """EMBAR's releases keep its footprint tiny, so losing half of
        memory barely hurts it -- the Table 3 claim, exercised."""
        calm = self._run("EMBAR", 0.0, prefetching=True)
        pressured = self._run("EMBAR", 0.5, prefetching=True)
        degradation = pressured.elapsed_us / calm.elapsed_us
        assert degradation < 1.3, degradation
