"""Tests for the fault-injection subsystem (repro.faults).

Covers the plan dataclasses (validation, JSON round trip, intensity
scaling), the injector state machines, the degraded execution paths
(fail-slow, retries, reconstruction, hint fallback, storms, bit-vector
lag), seeded determinism, and the Hypothesis safety properties: a
faulted run terminates, never loses a write, and is never faster than
the clean run.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.synthetic import stream
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import ConfigError
from repro.faults import (
    DiskFaultSpec,
    FaultInjector,
    FaultPlan,
    LaggedBitVector,
    PressureStorm,
    SlowWindow,
    chaos_sweep,
    default_plan,
    load_plan,
    save_plan,
)
from repro.interp.executor import Executor
from repro.machine.machine import Machine
from repro.runtime.bitvector import ResidencyBitVector
from repro.sim.clock import Clock, TimeCategory

#: Small out-of-core platform: 64 frames of memory, 80 pages of data.
CFG = PlatformConfig(memory_pages=64, num_disks=4)
ELEMS_PER_PAGE = CFG.page_size // 8
DATA_PAGES = 80


def compiled_stream(writes: bool = False):
    # Low per-element compute keeps the run I/O-bound, so injected disk
    # degradation shows up in elapsed time instead of hiding under
    # compute that the prefetch pipeline overlaps anyway.
    program = stream(DATA_PAGES * ELEMS_PER_PAGE, cost_us=0.2, writes=writes)
    options = CompilerOptions.from_platform(CFG)
    return insert_prefetches(program, options).program


def run_faulted(program, plan, prefetching: bool = True):
    machine = Machine(CFG, prefetching=prefetching, fault_plan=plan)
    stats = Executor(machine).run(program)
    return machine, stats


@pytest.fixture(scope="module")
def read_program():
    return compiled_stream(writes=False)


@pytest.fixture(scope="module")
def write_program():
    return compiled_stream(writes=True)


@pytest.fixture(scope="module")
def clean_stats(read_program):
    return run_faulted(read_program, None)[1]


@pytest.fixture(scope="module")
def clean_write_stats(write_program):
    return run_faulted(write_program, None)[1]


class TestPlanValidation:
    def test_slow_window_multiplier_below_one_rejected(self):
        with pytest.raises(ConfigError):
            SlowWindow(start_us=0.0, duration_us=1.0, multiplier=0.5)

    def test_slow_window_needs_positive_duration(self):
        with pytest.raises(ConfigError):
            SlowWindow(start_us=0.0, duration_us=0.0)

    def test_read_error_rate_range(self):
        with pytest.raises(ConfigError):
            DiskFaultSpec(disk=0, read_error_rate=1.5)

    def test_negative_disk_index_rejected(self):
        with pytest.raises(ConfigError):
            DiskFaultSpec(disk=-1)

    def test_duplicate_disk_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(disks=(DiskFaultSpec(disk=0), DiskFaultSpec(disk=0)))

    def test_multi_burst_storm_needs_period(self):
        with pytest.raises(ConfigError):
            PressureStorm(start_us=0.0, frames=4, bursts=3)

    def test_fallback_after_positive(self):
        with pytest.raises(ConfigError):
            FaultPlan(fallback_after=0)

    def test_reconstruction_penalty_at_least_one(self):
        with pytest.raises(ConfigError):
            FaultPlan(reconstruction_penalty=0.5)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan().scaled(-1.0)


class TestPlanRoundTrip:
    def test_dict_round_trip(self):
        plan = default_plan(4, seed=9)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = default_plan(4, seed=2)
        path = tmp_path / "plan.json"
        save_plan(str(path), plan)
        assert load_plan(str(path)) == plan

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_plan(str(path))

    def test_load_rejects_unknown_field(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"seed": 1, "warp_drive": True}))
        with pytest.raises(ConfigError):
            load_plan(str(path))


class TestScaling:
    def test_zero_intensity_is_noop(self):
        assert default_plan(4).scaled(0.0).is_noop()

    def test_half_intensity_halves_rates_and_spares_disks(self):
        plan = default_plan(4, seed=1)
        half = plan.scaled(0.5)
        assert half.hint_failure_rate == pytest.approx(plan.hint_failure_rate / 2)
        assert all(spec.dead_at_us is None for spec in half.disks)
        full = plan.scaled(1.0)
        assert any(spec.dead_at_us is not None for spec in full.disks)

    def test_multiplier_excess_interpolates(self):
        window = SlowWindow(start_us=0.0, duration_us=1.0, multiplier=5.0)
        plan = FaultPlan(disks=(DiskFaultSpec(disk=0, slow_windows=(window,)),))
        scaled = plan.scaled(0.5)
        assert scaled.disks[0].slow_windows[0].multiplier == pytest.approx(3.0)


class TestInjector:
    def test_plan_killing_every_disk_rejected(self):
        plan = FaultPlan(disks=tuple(
            DiskFaultSpec(disk=i, dead_at_us=0.0) for i in range(4)
        ))
        with pytest.raises(ConfigError):
            FaultInjector(plan, num_disks=4)

    def test_disk_index_out_of_range_rejected(self):
        plan = FaultPlan(disks=(DiskFaultSpec(disk=7),))
        with pytest.raises(ConfigError):
            FaultInjector(plan, num_disks=4)

    def test_storm_bursts_expand(self):
        plan = FaultPlan(storms=(
            PressureStorm(start_us=10.0, frames=4, bursts=3, period_us=100.0),
        ))
        bursts = FaultInjector(plan, num_disks=4).storm_bursts()
        assert [b[0] for b in bursts] == [10.0, 110.0, 210.0]


class TestLaggedBitVector:
    def test_updates_visible_only_after_lag(self):
        clock = Clock()
        lagged = LaggedBitVector(ResidencyBitVector(1), clock, 100.0)
        lagged.set(5)
        assert not lagged.test(5)  # stale: the set has not landed yet
        clock.advance(100.0, TimeCategory.USER_COMPUTE)
        assert lagged.test(5)
        lagged.clear(5)
        assert lagged.test(5)  # stale in the other direction
        clock.advance(100.0, TimeCategory.USER_COMPUTE)
        assert not lagged.test(5)

    def test_raw_applies_pending(self):
        clock = Clock()
        lagged = LaggedBitVector(ResidencyBitVector(1), clock, 50.0)
        lagged.set(3)
        clock.advance(50.0, TimeCategory.USER_COMPUTE)
        assert lagged.raw[3]


class TestDegradedRuns:
    def test_noop_plan_is_bit_identical(self, read_program, clean_stats):
        """An armed but empty plan must not perturb the simulation."""
        _, faulted = run_faulted(read_program, FaultPlan())
        assert faulted.publish().as_dict() == clean_stats.publish().as_dict()

    def test_dead_disk_and_fail_slow_completes(self, read_program, clean_stats):
        plan = FaultPlan(
            seed=3,
            disks=(
                DiskFaultSpec(disk=0, slow_windows=(
                    SlowWindow(start_us=1_000.0, duration_us=200_000.0,
                               multiplier=5.0),
                )),
                DiskFaultSpec(disk=1, dead_at_us=10_000.0),
            ),
        )
        _, stats = run_faulted(read_program, plan)
        assert stats.disk.degraded_reads > 0
        assert stats.elapsed_us > clean_stats.elapsed_us

    def test_transient_errors_are_retried(self, read_program, clean_stats):
        plan = FaultPlan(seed=4, disks=(
            DiskFaultSpec(disk=0, read_error_rate=0.3),
        ))
        _, stats = run_faulted(read_program, plan)
        assert stats.disk.retries > 0
        assert stats.elapsed_us > clean_stats.elapsed_us

    def test_retry_exhaustion_reconstructs(self, read_program):
        plan = FaultPlan(seed=5, max_retries=1, disks=(
            DiskFaultSpec(disk=0, read_error_rate=1.0),
        ))
        _, stats = run_faulted(read_program, plan)
        assert stats.disk.degraded_reads > 0

    def test_hint_failures_degrade_to_demand_paging(
        self, read_program, clean_stats
    ):
        plan = FaultPlan(seed=1, hint_failure_rate=1.0,
                         fallback_after=2, fallback_cooldown=16)
        _, stats = run_faulted(read_program, plan)
        assert stats.robust.hint_failures > 0
        assert stats.robust.fallback_episodes > 0
        assert stats.robust.hints_skipped > 0
        assert stats.prefetch.issued_pages < clean_stats.prefetch.issued_pages
        assert stats.elapsed_us > clean_stats.elapsed_us

    def test_storms_schedule_pressure(self, read_program, clean_stats):
        plan = FaultPlan(storms=(
            PressureStorm(start_us=20_000.0, frames=8, bursts=3,
                          period_us=80_000.0, hold_us=40_000.0),
        ))
        _, stats = run_faulted(read_program, plan)
        assert stats.robust.storm_bursts == 3
        assert stats.elapsed_us >= clean_stats.elapsed_us

    def test_bitvector_lag_completes(self, read_program, clean_stats):
        plan = FaultPlan(bitvector_lag_us=5_000.0)
        _, stats = run_faulted(read_program, plan)
        assert stats.elapsed_us >= clean_stats.elapsed_us

    def test_writes_survive_a_dead_disk(self, write_program):
        plan = FaultPlan(seed=6, disks=(
            DiskFaultSpec(disk=2, dead_at_us=1_000.0),
        ))
        machine, stats = run_faulted(write_program, plan)
        assert stats.disk.degraded_writes > 0
        assert not any(page.dirty for page in machine.manager.pages.values())


class TestDeterminism:
    PLAN = FaultPlan(
        seed=11,
        disks=(
            DiskFaultSpec(disk=0, read_error_rate=0.3, slow_windows=(
                SlowWindow(start_us=0.0, duration_us=100_000.0, multiplier=3.0),
            )),
            DiskFaultSpec(disk=1, dead_at_us=80_000.0),
        ),
        storms=(PressureStorm(start_us=30_000.0, frames=6, hold_us=50_000.0),),
        bitvector_lag_us=800.0,
        hint_failure_rate=0.3,
        fallback_after=2,
        fallback_cooldown=32,
    )

    def test_same_plan_same_run(self, read_program):
        _, first = run_faulted(read_program, self.PLAN)
        _, second = run_faulted(read_program, self.PLAN)
        assert first.publish().as_dict() == second.publish().as_dict()

    def test_reseeding_changes_the_run(self, read_program):
        _, first = run_faulted(read_program, self.PLAN)
        _, second = run_faulted(read_program, self.PLAN.with_seed(12))
        assert first.publish().as_dict() != second.publish().as_dict()


class TestChaosSweep:
    def test_sweep_reports_degradation(self):
        from repro.apps.registry import get_app

        report = chaos_sweep(
            get_app("EMBAR"),
            PlatformConfig(memory_pages=96, num_disks=4),
            intensities=(0.5, 1.0),
            data_pages=120,
            seed=1,
        )
        assert [row.intensity for row in report.rows] == [0.5, 1.0]
        for row in report.rows:
            assert report.slowdown(row) >= 1.0
            assert 0.0 <= row.drop_rate <= 1.0
        full = report.rows[-1]
        assert full.retries > 0
        assert full.degraded_requests > 0

    def test_empty_intensities_rejected(self):
        from repro.apps.registry import get_app

        with pytest.raises(ConfigError):
            chaos_sweep(get_app("EMBAR"), CFG, intensities=())


# ----------------------------------------------------------------------
# Property-based safety: any bounded plan terminates, conserves writes,
# and only ever slows the run down.
# ----------------------------------------------------------------------

_windows = st.builds(
    SlowWindow,
    start_us=st.floats(0.0, 200_000.0),
    duration_us=st.floats(1_000.0, 300_000.0),
    multiplier=st.floats(1.0, 8.0),
)


@st.composite
def _plans(draw):
    specs = []
    for disk in draw(st.lists(st.integers(0, 2), unique=True, max_size=2)):
        specs.append(DiskFaultSpec(
            disk=disk,
            slow_windows=tuple(draw(st.lists(_windows, max_size=2))),
            read_error_rate=draw(st.floats(0.0, 0.5)),
            dead_at_us=draw(st.one_of(st.none(), st.floats(0.0, 400_000.0))),
        ))
    storms = tuple(draw(st.lists(st.builds(
        PressureStorm,
        start_us=st.floats(0.0, 200_000.0),
        frames=st.integers(1, 8),
        hold_us=st.floats(10_000.0, 100_000.0),
    ), max_size=2)))
    return FaultPlan(
        seed=draw(st.integers(0, 10_000)),
        disks=tuple(specs),
        storms=storms,
        bitvector_lag_us=draw(st.floats(0.0, 3_000.0)),
        hint_failure_rate=draw(st.floats(0.0, 0.4)),
        fallback_after=draw(st.integers(1, 6)),
        fallback_cooldown=draw(st.integers(1, 128)),
    )


class TestFaultProperties:
    @settings(max_examples=10, deadline=None)
    @given(plan=_plans())
    def test_faulted_run_is_safe(self, write_program, clean_write_stats, plan):
        machine, stats = run_faulted(write_program, plan)
        # (a) terminated with closed accounting (Executor ran finish()).
        assert stats.elapsed_us > 0
        # (b) no write lost: nothing left dirty, and every scheduled
        # write-back reached a disk (degraded writes redirect, not drop).
        assert not any(page.dirty for page in machine.manager.pages.values())
        assert stats.disk.writes >= (
            stats.release.writebacks + stats.memory.eviction_writebacks
        )
        # (c) binding-resource faults (slow disks, errors, death, storms)
        # only ever cost time on an out-of-core workload.  Hint-dropping
        # faults carry no such bound: hints are non-binding and the paper
        # itself shows prefetch schedules can lose to demand paging
        # (Figure 4(c)), so dropping hints can legitimately speed an
        # I/O-bound run up -- for those plans only (a) and (b) apply.
        if plan.hint_failure_rate == 0 and plan.bitvector_lag_us == 0:
            assert stats.elapsed_us >= clean_write_stats.elapsed_us - 1e-6
