"""Tests for the observability layer (repro.obs).

Covers the trace ring buffer (wraparound, disabled no-op), the metrics
registry (aggregation, type safety), the RunStats publish surface, the
no-perturbation guarantee (observed runs are bit-identical to
unobserved ones), multiprogrammed interleaving, and a golden-file pin
of the Chrome trace export.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.apps import synthetic
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import MachineError
from repro.harness.experiment import run_variant
from repro.harness.report import render_metrics
from repro.multiprog import CoScheduler
from repro.obs import (
    OBS_METRIC_NAMES,
    RUN_METRIC_NAMES,
    MetricsRegistry,
    Observer,
    TraceBuffer,
    TraceKind,
    chrome_trace,
    metrics_json,
    validate_chrome_trace,
)
from repro.obs.metrics import TIMELINESS_BOUNDS_US, Counter, Gauge, Histogram
from repro.sim.stats import RunStats

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "embar_trace_golden.json"


def _load_regen_script():
    """The regen script is the single source of truth for the golden run."""
    path = REPO_ROOT / "scripts" / "regen_golden_trace.py"
    spec = importlib.util.spec_from_file_location("regen_golden_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Trace ring buffer
# ----------------------------------------------------------------------


class TestTraceBuffer:
    def test_records_in_order(self):
        buf = TraceBuffer(capacity=16)
        for i in range(5):
            buf.emit(float(i), TraceKind.FAULT, vpage=i, tag="nonprefetched_fault")
        events = buf.events()
        assert len(buf) == 5
        assert [e.ts_us for e in events] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert all(e.kind is TraceKind.FAULT for e in events)
        assert buf.dropped == 0

    def test_wraparound_keeps_newest(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.emit(float(i), TraceKind.RELEASE, vpage=i)
        assert len(buf) == 4
        assert buf.total_emitted == 10
        assert buf.dropped == 6
        assert [e.vpage for e in buf.events()] == [6, 7, 8, 9]

    def test_wraparound_exact_boundary(self):
        buf = TraceBuffer(capacity=3)
        for i in range(3):
            buf.emit(float(i), TraceKind.CHUNK)
        assert buf.dropped == 0
        assert [e.ts_us for e in buf.events()] == [0.0, 1.0, 2.0]

    def test_disabled_is_a_no_op(self):
        buf = TraceBuffer(capacity=8, enabled=False)
        buf.emit(1.0, TraceKind.FAULT, vpage=3)
        assert len(buf) == 0
        assert buf.total_emitted == 0
        assert buf.events() == []

    def test_counts_by_kind(self):
        buf = TraceBuffer(capacity=8)
        buf.emit(0.0, TraceKind.FAULT)
        buf.emit(1.0, TraceKind.FAULT)
        buf.emit(2.0, TraceKind.EVICTION)
        assert buf.counts_by_kind() == {"fault": 2, "eviction": 1}

    def test_clear(self):
        buf = TraceBuffer(capacity=4)
        buf.emit(0.0, TraceKind.FAULT)
        buf.clear()
        assert len(buf) == 0
        assert buf.total_emitted == 0
        assert buf.capacity == 4

    def test_bad_capacity_rejected(self):
        with pytest.raises(MachineError):
            TraceBuffer(capacity=0)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestInstruments:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(MachineError):
            c.inc(-1)

    def test_gauge_tracks_extremes(self):
        g = Gauge("x")
        for v in (5.0, -2.0, 7.0):
            g.set(v)
        assert g.value == 7.0
        assert g.min == -2.0
        assert g.max == 7.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram("x", bounds=(10.0, 100.0))
        for v in (1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.buckets == [2, 1, 1]  # <=10, <=100, overflow
        assert h.mean == pytest.approx(139.0)
        assert h.min == 1.0 and h.max == 500.0
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 500.0

    def test_histogram_negative_bounds_for_timeliness(self):
        h = Histogram("x", bounds=TIMELINESS_BOUNDS_US)
        h.observe(-200_000.0)  # a badly late prefetch
        h.observe(2_000.0)
        assert h.buckets[0] == 1
        assert h.count == 2
        assert h.min == -200_000.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(MachineError):
            Histogram("x", bounds=(100.0, 10.0))
        with pytest.raises(MachineError):
            Histogram("x", bounds=())

    def test_quantile_domain(self):
        h = Histogram("x")
        with pytest.raises(MachineError):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(MachineError):
            reg.gauge("a.b")

    def test_value_refuses_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        with pytest.raises(MachineError):
            reg.value("h")

    def test_unknown_name_errors(self):
        with pytest.raises(MachineError):
            MetricsRegistry().get("nope")

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        snap = reg.as_dict()
        assert snap["c"] == {"kind": "counter", "value": 2.0}
        assert snap["g"]["min"] == 1.5 and snap["g"]["max"] == 1.5
        assert snap["h"]["count"] == 1
        assert list(snap) == sorted(snap)


# ----------------------------------------------------------------------
# Publish surface and end-to-end observation
# ----------------------------------------------------------------------

CFG = PlatformConfig(memory_pages=96)
OPTS = CompilerOptions.from_platform(CFG)


def _compiled_stream(n=60_000, name="s"):
    prog = synthetic.stream(n, cost_us=10.0, writes=True, name=name)
    return insert_prefetches(prog, OPTS).program


class TestObservedRun:
    def setup_method(self):
        self.obs = Observer()
        self.stats = run_variant(
            _compiled_stream(), CFG, prefetching=True, observer=self.obs
        )

    def test_publish_registers_the_documented_names(self):
        assert set(self.obs.metrics.names()) == (
            set(RUN_METRIC_NAMES) | set(OBS_METRIC_NAMES)
        )

    def test_trace_agrees_with_stats(self):
        counts = self.obs.trace.counts_by_kind()
        f = self.stats.faults
        assert self.obs.trace.dropped == 0
        fault_events = [e for e in self.obs.trace if e.kind is TraceKind.FAULT]
        by_tag = {}
        for e in fault_events:
            by_tag[e.tag] = by_tag.get(e.tag, 0) + 1
        assert by_tag.get("prefetched_hit", 0) == f.prefetched_hit
        assert by_tag.get("prefetched_fault", 0) == f.prefetched_fault
        assert by_tag.get("nonprefetched_fault", 0) == f.nonprefetched_fault
        assert counts.get("release", 0) == self.stats.release.calls

    def test_live_histograms_filled(self):
        f = self.stats.faults
        # Every real stall records one latency sample; every use of a
        # still-tracked prefetch records one timeliness sample (faults on
        # *dropped* prefetches cannot -- the arrival time is gone).
        assert self.obs.stall_latency.count == (
            f.prefetched_fault + f.nonprefetched_fault
        )
        assert self.obs.prefetch_to_use.count >= f.prefetched_hit
        assert self.obs.disk_queue_delay.count > 0

    def test_timestamps_monotonic(self):
        ts = [e.ts_us for e in self.obs.trace]
        assert all(a <= b for a, b in zip(ts, ts[1:]))

    def test_does_not_perturb_the_simulation(self):
        bare = run_variant(_compiled_stream(), CFG, prefetching=True)
        assert bare.elapsed_us == self.stats.elapsed_us
        assert bare.times.idle == self.stats.times.idle
        assert bare.faults.prefetched_hit == self.stats.faults.prefetched_hit
        assert bare.prefetch.filtered == self.stats.prefetch.filtered
        assert bare.prefetch.issued_pages == self.stats.prefetch.issued_pages

    def test_chrome_export_is_valid(self):
        trace = chrome_trace(self.obs.trace)
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["dropped"] == 0

    def test_metrics_json_round_trips(self):
        payload = json.loads(json.dumps(metrics_json(self.obs.metrics)))
        assert set(payload["metrics"]) == set(self.obs.metrics.names())
        assert payload["metrics"]["faults.prefetched_hit"]["value"] == (
            self.stats.faults.prefetched_hit
        )

    def test_render_metrics_lists_everything(self):
        text = render_metrics(self.obs.metrics)
        for name in OBS_METRIC_NAMES:
            assert name in text
        assert "time.elapsed_us" in text


class TestPublishStandalone:
    def test_publish_without_observer(self):
        stats = run_variant(_compiled_stream(), CFG, prefetching=True)
        reg = stats.publish()
        assert set(reg.names()) == set(RUN_METRIC_NAMES)
        assert reg.value("time.elapsed_us") == stats.elapsed_us

    def test_run_metric_names_is_exhaustive(self):
        """publish() must not invent names beyond the documented list."""
        reg = RunStats().publish()
        assert set(reg.names()) == set(RUN_METRIC_NAMES)


# ----------------------------------------------------------------------
# Ring wraparound must degrade the exporters, not break them
# ----------------------------------------------------------------------


class TestWrappedRingExports:
    def setup_method(self):
        # Tiny ring: the run emits far more events than 64.
        self.obs = Observer(capacity=64)
        self.stats = run_variant(
            _compiled_stream(), CFG, prefetching=True, observer=self.obs
        )

    def test_run_actually_wrapped(self):
        assert self.obs.trace.dropped > 0
        assert len(self.obs.trace) == 64

    def test_chrome_trace_still_valid(self):
        trace = chrome_trace(self.obs.trace)
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["dropped"] == self.obs.trace.dropped

    def test_metrics_export_still_complete(self):
        # Metrics live outside the ring; wraparound must not touch them.
        payload = json.loads(json.dumps(metrics_json(self.obs.metrics)))
        assert set(payload["metrics"]) == set(self.obs.metrics.names())
        assert payload["metrics"]["time.elapsed_us"]["value"] == (
            self.stats.elapsed_us
        )

    def test_spans_assemble_from_truncated_buffer_with_warning(self):
        from repro.obs import SpanBuilder

        builder = SpanBuilder.from_buffer(self.obs.trace)
        assert builder.truncated is True
        assert any("dropped" in w for w in builder.warnings)
        assert builder.events_seen == 64

    def test_wrap_does_not_perturb_the_simulation(self):
        bare = run_variant(_compiled_stream(), CFG, prefetching=True)
        assert bare.elapsed_us == self.stats.elapsed_us


# ----------------------------------------------------------------------
# The disk-idle gauge must agree with the stats it is derived from
# ----------------------------------------------------------------------


class TestDiskIdleGauge:
    def test_gauge_matches_busy_fractions(self):
        obs = Observer()
        stats = run_variant(_compiled_stream(), CFG, prefetching=True,
                            observer=obs)
        idle = [max(0.0, 1.0 - busy / stats.elapsed_us)
                for busy in stats.disk.busy_us]
        gauge = obs.disk_idle_fraction
        # One gauge set per disk in index order: value is the last disk,
        # min/max are the array extremes -- the same numbers `repro
        # profile` prints in its idle column.
        assert gauge.value == idle[-1]
        assert gauge.min == min(idle)
        assert gauge.max == max(idle)

    def test_gauge_is_exported(self):
        obs = Observer()
        run_variant(_compiled_stream(), CFG, prefetching=True, observer=obs)
        payload = metrics_json(obs.metrics)
        assert payload["metrics"]["obs.disk_idle_fraction"]["kind"] == "gauge"


# ----------------------------------------------------------------------
# Multiprogrammed interleaving
# ----------------------------------------------------------------------


class TestMultiprogInterleave:
    def test_shared_observer_sees_both_processes(self):
        obs = Observer()
        sched = CoScheduler(CFG, observer=obs)
        sched.add_process(_compiled_stream(name="a"), name="a", prefetching=True)
        sched.add_process(synthetic.stream(40_000, name="b"), name="b",
                          prefetching=False)
        sched.run()
        events = obs.trace.events()
        assert events, "a co-scheduled run must produce trace events"
        ts = [e.ts_us for e in events]
        assert all(x <= y for x, y in zip(ts, ts[1:])), (
            "interleaved processes must emit in simulated-time order"
        )
        kinds = {e.kind for e in events}
        assert TraceKind.FAULT in kinds
        assert TraceKind.PREFETCH_ISSUED in kinds
        assert validate_chrome_trace(chrome_trace(obs.trace)) == []

    def test_scheduler_results_unperturbed_by_observer(self):
        def run(observer):
            sched = CoScheduler(CFG, observer=observer)
            sched.add_process(_compiled_stream(name="a"), name="a",
                              prefetching=True)
            sched.add_process(synthetic.stream(40_000, name="b"), name="b",
                              prefetching=False)
            return sched.run()

        bare, seen = run(None), run(Observer())
        assert bare.elapsed_us == seen.elapsed_us
        assert bare.stats.faults.total_faults == seen.stats.faults.total_faults


# ----------------------------------------------------------------------
# Golden trace
# ----------------------------------------------------------------------


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def golden_module(self):
        return _load_regen_script()

    def test_golden_trace_is_stable(self, golden_module):
        """The canonical EMBAR run exports exactly the checked-in trace.

        If this fails after an intentional schema or scheduling change,
        regenerate with ``PYTHONPATH=src python scripts/regen_golden_trace.py``.
        """
        obs = golden_module.golden_run()
        trace = chrome_trace(obs.trace)
        assert validate_chrome_trace(trace) == []
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert trace == golden

    def test_golden_file_is_itself_valid(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert validate_chrome_trace(golden) == []
        assert golden["otherData"]["dropped"] == 0
