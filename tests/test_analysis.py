"""Tests for the compiler analyses: bounds, locality, grouping, planning."""

import numpy as np
import pytest

from repro.core.analysis.bounds import iteration_cost_us, trip_count
from repro.core.analysis.locality import (
    const_offset_bytes,
    footprint_bytes,
    group_references,
    is_affine,
    is_indirect_in,
    ref_stride_bytes,
)
from repro.core.analysis.planner import PlanKind, plan_program
from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, Var
from repro.core.ir.nodes import ArrayRef, Loop
from repro.core.options import CompilerOptions

OPTS = CompilerOptions()


class TestBounds:
    def test_constant_trip(self):
        lp = Loop("i", 0, 100, [])
        est = trip_count(lp, {}, OPTS)
        assert est.count == 100 and est.exact

    def test_stepped_trip(self):
        lp = Loop("i", 0, 10, [], step=3)
        assert trip_count(lp, {}, OPTS).count == 4

    def test_symbolic_trip_uses_assumption(self):
        lp = Loop("i", 0, Var("N"), [])
        est = trip_count(lp, {}, OPTS)
        assert est.count == OPTS.assumed_symbolic_trip and not est.exact

    def test_symbolic_trip_with_known_param(self):
        lp = Loop("i", 0, Var("N"), [])
        est = trip_count(lp, {"N": 42}, OPTS)
        assert est.count == 42 and est.exact

    def test_empty_trip(self):
        lp = Loop("i", 5, 5, [])
        assert trip_count(lp, {}, OPTS).count == 0

    def test_iteration_cost_nested(self):
        arr = ArrayDecl("x", (1000,))
        body = [
            work([read(arr, Var("i"))], 2.0),
            loop("j", 0, 10, [work([read(arr, Var("j"))], 1.0)]),
        ]
        assert iteration_cost_us(body, {}, OPTS) == pytest.approx(12.0)


class TestLocality:
    def _c(self):
        return ArrayDecl("c", (1000, 100), elem_size=8)

    def test_innermost_stride(self):
        ref = read(self._c(), Var("i"), Var("j"))
        assert ref_stride_bytes(ref, "j", {}) == 8
        assert ref_stride_bytes(ref, "i", {}) == 800

    def test_coefficient_scaling(self):
        ref = read(self._c(), Var("i"), 2 * Var("j"))
        assert ref_stride_bytes(ref, "j", {}) == 16

    def test_absent_var_stride_zero(self):
        ref = read(self._c(), Var("i"), Var("j"))
        assert ref_stride_bytes(ref, "k", {}) == 0

    def test_unknown_dim_gives_none(self):
        arr = ArrayDecl("c", (1000, "N"), elem_size=8)
        ref = read(arr, Var("i"), Var("j"))
        assert ref_stride_bytes(ref, "i", {}) is None
        assert ref_stride_bytes(ref, "j", {}) == 8  # innermost still known

    def test_indirect_detection(self):
        barr = ArrayDecl("b", (100,), data=np.arange(100))
        arr = ArrayDecl("a", (1000,))
        ref = write(arr, ElemOf(barr, Var("i")))
        assert not is_affine(ref)
        assert is_indirect_in(ref, "i")
        assert not is_indirect_in(ref, "j")
        assert ref_stride_bytes(ref, "i", {}) is None

    def test_footprint_single_loop(self):
        arr = ArrayDecl("x", (100_000,), elem_size=8)
        ref = read(arr, Var("i"))
        lp = Loop("i", 0, 1000, [])
        assert footprint_bytes(ref, [lp], {}, OPTS) == 999 * 8 + 8

    def test_footprint_nest(self):
        ref = read(self._c(), Var("i"), Var("j"))
        li = Loop("i", 0, 10, [])
        lj = Loop("j", 0, 100, [])
        fp = footprint_bytes(ref, [li, lj], {}, OPTS)
        assert fp == 9 * 800 + 99 * 8 + 8

    def test_const_offset(self):
        ref = read(self._c(), Var("i"), Var("j") + 3)
        assert const_offset_bytes(ref, {}) == 24
        ref = read(self._c(), Var("i") + 1, Var("j"))
        assert const_offset_bytes(ref, {}) == 800


class TestGrouping:
    def test_stencil_group_elects_leader_and_trailer(self):
        arr = ArrayDecl("x", (100_000,), elem_size=8)
        i = Var("i")
        refs = [read(arr, i - 1), read(arr, i), read(arr, i + 1)]
        groups, ungrouped = group_references(refs, ["i"], {}, OPTS)
        assert not ungrouped
        assert len(groups) == 1
        g = groups[0]
        assert g.leader is refs[2]  # i+1 touches new data first
        assert g.trailer is refs[0]

    def test_page_apart_refs_split(self):
        arr = ArrayDecl("x", (100_000,), elem_size=8)
        i = Var("i")
        refs = [read(arr, i), read(arr, i + 1024)]  # 8 KB apart > 1 page
        groups, _ = group_references(refs, ["i"], {}, OPTS)
        assert len(groups) == 2

    def test_different_signatures_not_grouped(self):
        arr = ArrayDecl("x", (100_000,), elem_size=8)
        i = Var("i")
        refs = [read(arr, i), read(arr, 2 * i)]
        groups, _ = group_references(refs, ["i"], {}, OPTS)
        assert len(groups) == 2

    def test_plane_offset_groups_split(self):
        """A[i][j] and A[i+1][j] are a plane apart: separate groups."""
        arr = ArrayDecl("x", (100, 1000), elem_size=8)
        i, j = Var("i"), Var("j")
        refs = [read(arr, i, j), read(arr, i + 1, j)]
        groups, _ = group_references(refs, ["i", "j"], {}, OPTS)
        assert len(groups) == 2

    def test_indirect_goes_ungrouped(self):
        barr = ArrayDecl("b", (100,), data=np.arange(100))
        arr = ArrayDecl("a", (1000,), elem_size=8)
        refs = [write(arr, ElemOf(barr, Var("i")))]
        groups, ungrouped = group_references(refs, ["i"], {}, OPTS)
        assert not groups and len(ungrouped) == 1


def build_stream(n=100_000, cost=10.0):
    b = ProgramBuilder("stream")
    x = b.array("x", (n,), elem_size=8)
    b.append(loop("i", 0, n, [work([read(x, Var("i"))], cost)]))
    return b.build()


class TestPlanner:
    def test_stream_gets_dense_plan_with_release(self):
        plan = plan_program(build_stream(), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert len(dense) == 1
        p = dense[0]
        assert p.strip_iters == OPTS.block_pages * OPTS.page_size // 8
        assert p.pages_per_hint == OPTS.block_pages
        assert p.release  # top-level sequential stream

    def test_small_array_not_prefetched(self):
        plan = plan_program(build_stream(n=1000), OPTS)
        assert all(p.kind is PlanKind.NONE for p in plan.plans)
        assert "memory-resident" in plan.plans[0].reason

    def test_pipeline_loop_is_first_page_crossing(self):
        """c[i][j] with small rows pipelines across i, not j (Fig. 2)."""
        b = ProgramBuilder("rows")
        c = b.array("c", (10_000, 100), elem_size=8)  # row = 800 B < page
        i, j = Var("i"), Var("j")
        b.append(loop("i", 0, 10_000, [
            loop("j", 0, 100, [work([read(c, i, j)], 1.0)]),
        ]))
        plan = plan_program(b.build(), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert len(dense) == 1
        assert dense[0].pipeline_loop.var == "i"
        # A top-level row-major sweep is a genuine stream (800 bytes per
        # iteration <= one page), so the streaming release policy applies.
        assert dense[0].release

    def test_wide_rows_pipeline_across_inner(self):
        b = ProgramBuilder("wide")
        c = b.array("c", (100, 10_000), elem_size=8)  # row = 80 KB > page
        i, j = Var("i"), Var("j")
        b.append(loop("i", 0, 100, [
            loop("j", 0, 10_000, [work([read(c, i, j)], 1.0)]),
        ]))
        plan = plan_program(b.build(), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert dense[0].pipeline_loop.var == "j"
        assert not dense[0].release  # not the outermost loop

    def test_indirect_plan(self):
        b = ProgramBuilder("ind")
        key = b.array("key", (100_000,), elem_size=8, data=np.zeros(100_000, dtype=np.int64))
        out = b.array("out", (100_000,), elem_size=8)
        i = Var("i")
        b.append(loop("i", 0, 100_000, [
            work([read(key, i), write(out, ElemOf(key, i))], 10.0),
        ]))
        plan = plan_program(b.build(), OPTS)
        kinds = {p.ref.array.name: p.kind for p in plan.plans}
        assert kinds["out"] is PlanKind.INDIRECT
        ind = next(p for p in plan.plans if p.kind is PlanKind.INDIRECT)
        assert 1 <= ind.lookahead_iters <= OPTS.max_indirect_distance

    def test_duplicate_indirect_covered(self):
        b = ProgramBuilder("ind2")
        key = b.array("key", (100_000,), elem_size=8, data=np.zeros(100_000, dtype=np.int64))
        out = b.array("out", (100_000,), elem_size=8)
        i = Var("i")
        b.append(loop("i", 0, 100_000, [
            work([read(out, ElemOf(key, i)), write(out, ElemOf(key, i))], 10.0),
        ]))
        plan = plan_program(b.build(), OPTS)
        indirect = [p for p in plan.plans if p.kind is PlanKind.INDIRECT]
        covered = [p for p in plan.plans if p.kind is PlanKind.COVERED]
        assert len(indirect) == 1
        assert len(covered) == 1

    def test_group_leader_planned_others_covered(self):
        b = ProgramBuilder("stencil")
        x = b.array("x", (500_000,), elem_size=8)
        i = Var("i")
        b.append(loop("i", 1, 499_999, [
            work([read(x, i - 1), read(x, i), read(x, i + 1)], 10.0),
        ]))
        plan = plan_program(b.build(), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        covered = [p for p in plan.plans if p.kind is PlanKind.COVERED]
        assert len(dense) == 1 and len(covered) == 2

    def test_symbolic_bounds_flagged_inexact(self):
        b = ProgramBuilder("sym", params={"N": 5}, compile_time_params={})
        c = b.array("c", (10_000, "N"), elem_size=8)
        i, j = Var("i"), Var("j")
        b.append(loop("i", 0, 10_000, [
            loop("j", 0, Var("N"), [work([read(c, i, j)], 1.0)]),
        ]))
        plan = plan_program(b.build(), OPTS)
        dense = [p for p in plan.plans if p.kind is PlanKind.DENSE]
        assert len(dense) == 1
        # With the "large" assumption the compiler pipelines across j --
        # the APPBT mistake.
        assert dense[0].pipeline_loop.var == "j"
        assert dense[0].inexact
        assert plan.inexact_loops

    def test_distance_scales_inversely_with_cost(self):
        cheap = plan_program(build_stream(cost=0.2), OPTS)
        costly = plan_program(build_stream(cost=50.0), OPTS)
        d_cheap = next(p for p in cheap.plans if p.kind is PlanKind.DENSE).distance_strips
        d_costly = next(p for p in costly.plans if p.kind is PlanKind.DENSE).distance_strips
        assert d_cheap >= d_costly

    def test_release_policy_none(self):
        opts = OPTS.scaled(release_policy="none")
        plan = plan_program(build_stream(), opts)
        dense = next(p for p in plan.plans if p.kind is PlanKind.DENSE)
        assert not dense.release
