"""Tests for the run-time layer: bit vector and prefetch filtering."""

import pytest

from repro.config import PlatformConfig
from repro.errors import ConfigError
from repro.runtime.bitvector import ResidencyBitVector
from repro.runtime.layer import RuntimeLayer
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats
from repro.storage.array_ctl import DiskArray
from repro.vm.manager import MemoryManager


class TestBitVector:
    def test_set_test_clear(self):
        bv = ResidencyBitVector()
        assert not bv.test(5)
        bv.set(5)
        assert bv.test(5)
        bv.clear(5)
        assert not bv.test(5)

    def test_auto_grow(self):
        bv = ResidencyBitVector()
        bv.set(1_000_000)
        assert bv.test(1_000_000)
        assert not bv.test(999_999)

    def test_granularity_groups_pages(self):
        bv = ResidencyBitVector(granularity=4)
        bv.set(5)
        # Pages 4..7 share one bit.
        assert bv.test(4) and bv.test(7)
        assert not bv.test(8)
        bv.clear(6)
        assert not bv.test(5)

    def test_bad_granularity(self):
        with pytest.raises(ConfigError):
            ResidencyBitVector(granularity=0)


def make_layer(frames=16, filter_enabled=True):
    cfg = PlatformConfig(memory_pages=frames, available_fraction=1.0, num_disks=2)
    clock = Clock()
    stats = RunStats()
    disks = DiskArray(cfg)
    disks.register_segment("x", base_vpage=1, npages=1000)
    mgr = MemoryManager(cfg, clock, disks, stats)
    layer = RuntimeLayer(cfg, clock, mgr, stats, filter_enabled=filter_enabled)
    return layer, mgr, clock, stats, cfg


class TestRuntimeLayerFiltering:
    def test_registration_wires_bitvector_into_os(self):
        layer, mgr, _, _, _ = make_layer()
        assert mgr.bitvector is layer.bitvector
        mgr.access(1, False)  # OS sets the bit on a non-prefetched fault
        assert layer.bitvector.test(1)

    def test_resident_prefetch_filtered_without_syscall(self):
        layer, mgr, clock, stats, cfg = make_layer()
        mgr.access(1, False)
        before_sys = clock.spent(TimeCategory.SYS_PREFETCH)
        layer.prefetch(1, 1)
        assert stats.prefetch.filtered == 1
        assert stats.prefetch.issued_calls == 0
        assert clock.spent(TimeCategory.SYS_PREFETCH) == before_sys
        # Filtering costs roughly 1% of a system call (paper, 4.1.1).
        assert clock.spent(TimeCategory.USER_OVERHEAD) < cfg.cost.prefetch_syscall_us / 10

    def test_nonresident_prefetch_issued(self):
        layer, _, _, stats, _ = make_layer()
        layer.prefetch(1, 1)
        assert stats.prefetch.issued_calls == 1
        assert stats.prefetch.disk_reads == 1

    def test_block_scan_skips_leading_residents(self):
        layer, mgr, _, stats, _ = make_layer()
        mgr.access(1, False)
        mgr.access(2, False)
        layer.prefetch(1, 4)  # pages 1,2 resident; 3,4 not
        assert stats.prefetch.filtered == 2
        assert stats.prefetch.issued_pages == 2
        assert stats.prefetch.issued_calls == 1  # at most one syscall

    def test_block_with_resident_tail_issues_rest(self):
        """Residents *after* the first miss still go to the OS (Sec. 2.4)."""
        layer, mgr, _, stats, _ = make_layer()
        mgr.access(2, False)
        layer.prefetch(1, 3)  # page 1 missing, 2 resident, 3 missing
        assert stats.prefetch.issued_pages == 3
        assert stats.prefetch.unnecessary_issued == 1

    def test_fully_resident_block_no_syscall(self):
        layer, mgr, _, stats, _ = make_layer()
        for v in (1, 2, 3, 4):
            mgr.access(v, False)
        layer.prefetch(1, 4)
        assert stats.prefetch.filtered == 4
        assert stats.prefetch.issued_calls == 0

    def test_disabled_filter_always_issues(self):
        layer, mgr, _, stats, _ = make_layer(filter_enabled=False)
        mgr.access(1, False)
        layer.prefetch(1, 1)
        assert stats.prefetch.filtered == 0
        assert stats.prefetch.issued_calls == 1
        assert stats.prefetch.unnecessary_issued == 1

    def test_release_clears_bit_so_prefetch_reissues(self):
        layer, mgr, _, stats, _ = make_layer()
        mgr.access(1, False)
        layer.release([1])
        assert not layer.bitvector.test(1)
        layer.prefetch(1, 1)
        assert stats.prefetch.issued_calls == 1
        assert stats.prefetch.reclaimed == 1

    def test_eviction_clears_bit(self):
        layer, mgr, _, _, _ = make_layer(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        mgr.access(3, False)  # evicts one of 1/2
        evicted = 1 if not layer.bitvector.test(1) else 2
        assert not layer.bitvector.test(evicted)

    def test_prefetch_sets_bit_at_issue(self):
        layer, _, _, _, _ = make_layer()
        layer.prefetch(5, 1)
        assert layer.bitvector.test(5)


class TestBundledPrefetchRelease:
    def test_bundle_pays_one_syscall(self):
        layer, mgr, clock, stats, cfg = make_layer()
        mgr.access(1, False)
        before = clock.spent(TimeCategory.SYS_PREFETCH) + clock.spent(
            TimeCategory.SYS_RELEASE
        )
        layer.prefetch_release(5, 2, [1])
        total = clock.spent(TimeCategory.SYS_PREFETCH) + clock.spent(
            TimeCategory.SYS_RELEASE
        )
        # One syscall overhead, not two.
        assert total - before < cfg.cost.prefetch_syscall_us + cfg.cost.release_syscall_us

    def test_bundle_releases_before_prefetching(self):
        """Released frames must be available to the bundled prefetch."""
        layer, mgr, _, stats, _ = make_layer(frames=2)
        mgr.access(1, False)
        mgr.access(2, False)
        layer.prefetch_release(3, 2, [1, 2])
        assert stats.prefetch.dropped == 0
        assert stats.prefetch.disk_reads == 2

    def test_fully_filtered_bundle_still_releases(self):
        layer, mgr, _, stats, _ = make_layer()
        for v in (1, 2, 3):
            mgr.access(v, False)
        layer.prefetch_release(2, 2, [1])
        assert stats.prefetch.filtered == 2
        assert stats.release.pages_released == 1
