"""End-to-end integration tests: the paper's headline claims at small scale.

Fast (seconds, reduced platform) versions of the properties the benchmark
suite asserts at canonical scale, so ``pytest tests/`` alone demonstrates
the reproduction works.
"""

import pytest

from repro.apps.registry import ALL_APPS, get_app
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.harness.experiment import compare_app

#: Reduced platform: 512 KB of memory, 96 application frames.
SMALL = PlatformConfig(memory_pages=128)


@pytest.fixture(scope="module")
def small_runs():
    """One out-of-core comparison per app on the reduced platform."""
    return {
        spec.name: compare_app(spec, SMALL, include_nofilter=spec.name in ("BUK", "CGM"))
        for spec in ALL_APPS
    }


class TestHeadlineClaims:
    def test_prefetching_speeds_up_every_app(self, small_runs):
        for name, result in small_runs.items():
            assert result.speedup > 1.02, (name, result.speedup)

    def test_majority_speedups_are_large(self, small_runs):
        large = [r for r in small_runs.values() if r.speedup > 1.5]
        assert len(large) >= 5

    def test_stall_mostly_eliminated(self, small_runs):
        over_half = [
            r for r in small_runs.values() if r.stall_eliminated > 0.5
        ]
        assert len(over_half) >= 7

    def test_coverage_high_except_appbt(self, small_runs):
        for name, result in small_runs.items():
            coverage = result.prefetch.stats.faults.coverage
            if name == "APPBT":
                assert coverage < 0.8, coverage
            else:
                assert coverage > 0.75, (name, coverage)

    def test_indirect_apps_need_the_filter(self, small_runs):
        for name in ("BUK", "CGM"):
            result = small_runs[name]
            nofilter = result.extras["P-nofilter"].stats
            assert nofilter.elapsed_us > result.original.elapsed_us, name

    def test_release_apps_keep_memory_free(self, small_runs):
        for name in ("BUK", "EMBAR"):
            p = small_runs[name].prefetch.stats
            assert p.memory.avg_free_fraction(p.elapsed_us) > 0.5, name

    def test_disk_requests_not_inflated(self, small_runs):
        for name, result in small_runs.items():
            o = result.original.stats.disk.total_requests
            p = result.prefetch.stats.disk.total_requests
            assert p < 1.3 * o, (name, o, p)

    def test_prefetch_overhead_offset_by_fault_savings(self, small_runs):
        """Figure 3(a): prefetch system time is offset by fault savings."""
        for name, result in small_runs.items():
            o = result.original.stats.times
            p = result.prefetch.stats.times
            # Total system time must not balloon.
            assert p.system < o.system + 0.2 * result.original.elapsed_us, name


class TestCrossVariantConsistency:
    def test_identical_fault_footprint(self, small_runs):
        """O and P read the same data from disk overall."""
        for name, result in small_runs.items():
            o_reads = result.original.stats.disk.reads_fault
            p = result.prefetch.stats.disk
            p_reads = p.reads_fault + p.reads_prefetch
            assert abs(p_reads - o_reads) <= 0.3 * o_reads + 16, (
                name, o_reads, p_reads
            )

    def test_user_compute_identical(self, small_runs):
        """The transformation never changes the useful work."""
        for name, result in small_runs.items():
            o = result.original.stats.times.user_compute
            p = result.prefetch.stats.times.user_compute
            assert o == pytest.approx(p, rel=1e-9), name


class TestBukSweepSmall:
    def test_discontinuity_and_linearity(self):
        spec = get_app("BUK")
        # Same reduced platform the Figure 8 bench uses: big enough that
        # in-core runs are not dominated by their cold faults.
        platform = PlatformConfig(memory_pages=192)
        avail = platform.available_frames
        times_o, times_p = {}, {}
        for multiple in (0.5, 3.0):
            pages = int(avail * multiple)
            result = compare_app(spec, platform, data_pages=pages)
            times_o[multiple] = result.original.elapsed_us / pages
            times_p[multiple] = result.prefetch.elapsed_us / pages
        assert times_o[3.0] > 1.8 * times_o[0.5]
        assert times_p[3.0] < 1.8 * times_p[0.5]


class TestTwoVersionIntegration:
    def test_fix_recovers_appbt(self):
        spec = get_app("APPBT")
        plain = compare_app(spec, SMALL)
        fixed = compare_app(
            spec, SMALL,
            options=CompilerOptions.from_platform(SMALL, two_version_loops=True),
        )
        assert (
            fixed.prefetch.stats.faults.coverage
            > plain.prefetch.stats.faults.coverage + 0.1
        )
