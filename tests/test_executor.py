"""Tests for the interpreter: vectorized/scalar equivalence, hints, bounds."""

import numpy as np
import pytest

from repro.config import PlatformConfig
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, MinExpr, Var
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import AddressError
from repro.interp.executor import Executor, run_program
from repro.interp.tracing import access_trace
from repro.machine.machine import Machine

CFG = PlatformConfig(memory_pages=128, available_fraction=0.75, num_disks=4)


def run_both_ways(program, prefetching=False):
    """Execute with and without vectorization; stats must agree."""
    m1 = Machine(CFG, prefetching=prefetching)
    s1 = Executor(m1, vectorize=True).run(program)
    m2 = Machine(CFG, prefetching=prefetching)
    s2 = Executor(m2, vectorize=False).run(program)
    return s1, s2


def assert_equivalent(s1, s2):
    assert s1.elapsed_us == pytest.approx(s2.elapsed_us, rel=1e-9)
    assert s1.faults.total_faults == s2.faults.total_faults
    assert s1.faults.prefetched_hit == s2.faults.prefetched_hit
    assert s1.faults.nonprefetched_fault == s2.faults.nonprefetched_fault
    assert s1.prefetch.compiler_inserted == s2.prefetch.compiler_inserted
    assert s1.prefetch.filtered == s2.prefetch.filtered
    assert s1.prefetch.issued_pages == s2.prefetch.issued_pages
    assert s1.release.pages_released == s2.release.pages_released
    assert s1.disk.total_requests == s2.disk.total_requests


def stream_program(n=20_000, cost=10.0):
    b = ProgramBuilder("stream")
    x = b.array("x", (n,), elem_size=8)
    b.append(loop("i", 0, n, [work([read(x, Var("i")), write(x, Var("i"))], cost)]))
    return b.build()


def indirect_program(n=8_000, target_pages=64, seed=3):
    rng = np.random.default_rng(seed)
    b = ProgramBuilder("indirect")
    key = b.array(
        "key", (n,), elem_size=8,
        data=rng.integers(0, target_pages * 512, size=n),
    )
    out = b.array("out", (target_pages * 512,), elem_size=8)
    i = Var("i")
    b.append(loop("i", 0, n, [
        work([read(key, i), write(out, ElemOf(key, i))], 8.0),
    ]))
    return b.build()


class TestScalarVectorEquivalence:
    def test_plain_stream(self):
        s1, s2 = run_both_ways(stream_program())
        assert_equivalent(s1, s2)

    def test_indirect(self):
        s1, s2 = run_both_ways(indirect_program())
        assert_equivalent(s1, s2)

    def test_transformed_stream(self):
        res = insert_prefetches(stream_program(), CompilerOptions.from_platform(CFG))
        s1, s2 = run_both_ways(res.program, prefetching=True)
        assert_equivalent(s1, s2)

    def test_transformed_indirect(self):
        res = insert_prefetches(indirect_program(), CompilerOptions.from_platform(CFG))
        s1, s2 = run_both_ways(res.program, prefetching=True)
        assert_equivalent(s1, s2)

    def test_nested_loops(self):
        b = ProgramBuilder("nest")
        c = b.array("c", (500, 64), elem_size=8)
        i, j = Var("i"), Var("j")
        b.append(loop("i", 0, 500, [
            loop("j", 0, 64, [work([read(c, i, j)], 3.0)]),
        ]))
        s1, s2 = run_both_ways(b.build())
        assert_equivalent(s1, s2)


class TestExecutorSemantics:
    def test_fault_count_matches_pages_touched(self):
        prog = stream_program(n=10 * 512)  # exactly 10 pages
        stats = run_program(prog, Machine(CFG, prefetching=False))
        assert stats.faults.total_faults == 10

    def test_empty_loop_runs_nothing(self):
        b = ProgramBuilder("empty")
        x = b.array("x", (100,), elem_size=8)
        b.append(loop("i", 5, 5, [work([read(x, Var("i"))], 1.0)]))
        stats = run_program(b.build(), Machine(CFG, prefetching=False))
        assert stats.faults.total_faults == 0

    def test_min_bound_loop(self):
        b = ProgramBuilder("minb")
        x = b.array("x", (4096,), elem_size=8)
        b.append(loop("i", 0, MinExpr(Var("N"), 1000), [
            work([read(x, Var("i"))], 1.0)
        ]))
        b.params.update({"N": 600})
        prog = b.build()
        stats = run_program(prog, Machine(CFG, prefetching=False))
        assert stats.times.user_compute == pytest.approx(600.0)

    def test_out_of_bounds_reference_raises(self):
        b = ProgramBuilder("oob")
        x = b.array("x", (100,), elem_size=8)
        b.append(loop("i", 0, 200, [work([read(x, Var("i"))], 1.0)]))
        with pytest.raises(AddressError):
            run_program(b.build(), Machine(CFG, prefetching=False))

    def test_out_of_bounds_scalar_path_raises(self):
        b = ProgramBuilder("oob2")
        x = b.array("x", (100,), elem_size=8)
        b.append(work([read(x, Var("N"))], 1.0))
        b.params.update({"N": 500})
        with pytest.raises(AddressError):
            run_program(b.build(), Machine(CFG, prefetching=False))

    def test_out_of_range_hint_is_noop(self):
        """Hints clamped off an array end are dropped, not errors."""
        prog = stream_program(n=3 * 512)  # 3 pages: lookahead runs off end
        res = insert_prefetches(prog, CompilerOptions.from_platform(CFG))
        machine = Machine(CFG, prefetching=True)
        executor = Executor(machine)
        executor.run(prog and res.program)
        # The run completed; nothing to assert beyond no exception, plus
        # the access stream stayed correct:
        assert machine.stats.faults.total_faults <= 3

    def test_warm_start_eliminates_faults(self):
        prog = stream_program(n=20 * 512)
        machine = Machine(CFG, prefetching=False)
        stats = Executor(machine, warm_start=True).run(prog)
        assert stats.faults.total_faults == 0
        # No read stalls; the final dirty flush is the only idle time.
        assert stats.times.stall_read == pytest.approx(0.0)

    def test_pure_compute_loop_batched(self):
        b = ProgramBuilder("compute")
        b.append(loop("i", 0, 1_000_000, [work([], 0.5)]))
        stats = run_program(b.build(), Machine(CFG, prefetching=False))
        assert stats.times.user_compute == pytest.approx(500_000.0)

    def test_hints_dead_in_nonprefetching_machine(self):
        res = insert_prefetches(stream_program(), CompilerOptions.from_platform(CFG))
        stats = run_program(res.program, Machine(CFG, prefetching=False))
        assert stats.prefetch.compiler_inserted == 0
        assert stats.times.user_overhead == 0.0


class TestTracing:
    def test_trace_matches_simulated_faults(self):
        """Distinct pages in the trace == faults in an O run (cold LRU-free)."""
        prog = stream_program(n=6 * 512)
        trace = access_trace(prog)
        arr = prog.array("x")
        page_size = CFG.page_size
        distinct_pages = {
            (name, (idx * arr.elem_size) // page_size) for name, idx, _ in trace
        }
        stats = run_program(prog, Machine(CFG, prefetching=False))
        assert stats.faults.total_faults == len(distinct_pages)

    def test_trace_limit_enforced(self):
        from repro.errors import ExecutionError

        prog = stream_program(n=10_000)
        with pytest.raises(ExecutionError):
            access_trace(prog, limit=10)

    def test_trace_records_writes(self):
        prog = stream_program(n=16)
        trace = access_trace(prog)
        assert any(is_write for _, _, is_write in trace)
        assert any(not is_write for _, _, is_write in trace)
