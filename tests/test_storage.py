"""Tests for the disk subsystem: disks, striping, extents, the array."""

import pytest
from hypothesis import given, strategies as st

from repro.config import DiskParameters, PlatformConfig
from repro.errors import MachineError
from repro.storage.array_ctl import DiskArray, IOKind
from repro.storage.disk import Disk
from repro.storage.extent import ExtentLayout
from repro.storage.striping import RoundRobinStripe


class TestDisk:
    def _disk(self):
        return Disk(0, DiskParameters())

    def test_first_access_is_random(self):
        disk = self._disk()
        done = disk.submit(0.0, block=10)
        assert done == pytest.approx(DiskParameters().random_service_us(1))
        assert disk.random_count == 1

    def test_consecutive_block_is_sequential(self):
        disk = self._disk()
        disk.submit(0.0, block=10)
        t1 = disk.busy_until
        done = disk.submit(0.0, block=11)
        assert done == pytest.approx(t1 + DiskParameters().sequential_service_us(1))
        assert disk.sequential_count == 1

    def test_backward_block_is_near(self):
        disk = self._disk()
        disk.submit(0.0, block=10)
        disk.submit(0.0, block=9)
        assert disk.random_count == 1
        assert disk.near_count == 1

    def test_far_jump_is_random(self):
        disk = self._disk()
        disk.submit(0.0, block=10)
        disk.submit(0.0, block=10_000)
        assert disk.random_count == 2

    def test_near_service_between_seq_and_random(self):
        params = DiskParameters()
        assert (params.sequential_service_us(1)
                < params.near_service_us(1)
                < params.random_service_us(1))

    def test_fifo_queueing(self):
        disk = self._disk()
        first = disk.submit(0.0, block=0)
        second = disk.submit(0.0, block=100)
        assert second > first  # queued behind the first request

    def test_idle_gap_starts_at_issue_time(self):
        disk = self._disk()
        done = disk.submit(1_000_000.0, block=0)
        assert done == pytest.approx(1_000_000.0 + DiskParameters().random_service_us(1))

    def test_multipage_request(self):
        disk = self._disk()
        done = disk.submit(0.0, block=0, npages=4)
        assert done == pytest.approx(DiskParameters().random_service_us(4))
        # Next block after the run is sequential.
        disk.submit(0.0, block=4)
        assert disk.sequential_count == 1

    def test_zero_pages_rejected(self):
        with pytest.raises(MachineError):
            self._disk().submit(0.0, block=0, npages=0)

    def test_busy_accounting(self):
        disk = self._disk()
        disk.submit(0.0, block=0)
        disk.submit(0.0, block=50)  # within the near window
        params = DiskParameters()
        assert disk.busy_us == pytest.approx(
            params.random_service_us(1) + params.near_service_us(1)
        )


class TestStriping:
    def test_round_robin(self):
        stripe = RoundRobinStripe(7)
        assert [stripe.disk_of(p) for p in range(8)] == [0, 1, 2, 3, 4, 5, 6, 0]
        assert stripe.block_of(7) == 1

    def test_locate(self):
        stripe = RoundRobinStripe(4)
        assert stripe.locate(10) == (2, 2)

    @given(st.integers(1, 16), st.integers(0, 1000), st.integers(1, 64))
    def test_split_run_covers_every_page_once(self, ndisks, start, npages):
        stripe = RoundRobinStripe(ndisks)
        requests = stripe.split_run(start, npages)
        covered = []
        for disk, block0, count in requests:
            for k in range(count):
                # Invert the mapping: page = block * D + disk.
                covered.append((block0 + k) * ndisks + disk)
        assert sorted(covered) == list(range(start, start + npages))

    @given(st.integers(1, 16), st.integers(0, 1000), st.integers(1, 64))
    def test_split_run_at_most_one_request_per_disk(self, ndisks, start, npages):
        stripe = RoundRobinStripe(ndisks)
        requests = stripe.split_run(start, npages)
        disks = [d for d, _, _ in requests]
        assert len(disks) == len(set(disks))


class TestExtentLayout:
    def test_register_and_locate(self):
        layout = ExtentLayout(num_disks=2)
        layout.register("a", base_vpage=10, npages=6)
        # Page 10 -> offset 0 -> disk 0 block 0; page 11 -> disk 1 block 0.
        assert layout.locate(10) == (0, 0)
        assert layout.locate(11) == (1, 0)
        assert layout.locate(12) == (0, 1)

    def test_disjoint_block_ranges(self):
        layout = ExtentLayout(num_disks=2)
        layout.register("a", base_vpage=0, npages=4)
        layout.register("b", base_vpage=100, npages=4)
        _, block_a = layout.locate(0)
        _, block_b = layout.locate(100)
        assert block_b > block_a  # second extent starts past the first

    def test_overlapping_extents_rejected(self):
        layout = ExtentLayout(num_disks=2)
        layout.register("a", base_vpage=0, npages=10)
        with pytest.raises(MachineError):
            layout.register("b", base_vpage=5, npages=10)

    def test_unbacked_page_rejected(self):
        layout = ExtentLayout(num_disks=2)
        with pytest.raises(MachineError):
            layout.locate(3)

    def test_split_run_must_stay_in_extent(self):
        layout = ExtentLayout(num_disks=2)
        layout.register("a", base_vpage=0, npages=4)
        with pytest.raises(MachineError):
            layout.split_run(2, 5)


class TestDiskArray:
    def _array(self, ndisks=7):
        cfg = PlatformConfig(num_disks=ndisks)
        array = DiskArray(cfg)
        array.register_segment("x", base_vpage=1, npages=100)
        return array

    def test_read_counts_by_kind(self):
        array = self._array()
        array.read_page(1, 0.0, IOKind.FAULT)
        array.read_page(2, 0.0, IOKind.PREFETCH)
        array.write_page(3, 0.0)
        stats = array.snapshot_stats()
        assert stats.reads_fault == 1
        assert stats.reads_prefetch == 1
        assert stats.writes == 1

    def test_read_run_returns_every_page(self):
        array = self._array()
        completions = array.read_run(1, 8, 0.0, IOKind.PREFETCH)
        assert sorted(v for v, _ in completions) == list(range(1, 9))

    def test_read_run_parallelism(self):
        """A run across N disks finishes in about one service time."""
        array = self._array(ndisks=7)
        completions = array.read_run(1, 7, 0.0, IOKind.PREFETCH)
        times = {t for _, t in completions}
        one_random = PlatformConfig().disk.random_service_us(1)
        assert max(times) == pytest.approx(one_random)

    def test_drain_time_tracks_latest(self):
        array = self._array()
        done = array.write_page(1, 0.0)
        assert array.drain_time() == pytest.approx(done)

    def test_sequential_stream_detected(self):
        array = self._array(ndisks=2)
        for vpage in range(1, 21):
            array.read_page(vpage, 0.0, IOKind.FAULT)
        stats = array.snapshot_stats()
        # After the first touch per disk, everything is sequential.
        assert stats.sequential == 18
        assert stats.random == 2
