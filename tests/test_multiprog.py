"""Tests for the multiprogrammed co-scheduler."""

import pytest

from repro.apps import synthetic
from repro.apps.registry import get_app
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import MachineError
from repro.harness.experiment import run_variant
from repro.multiprog import CoScheduler

CFG = PlatformConfig(memory_pages=256)
OPTS = CompilerOptions.from_platform(CFG)


def compiled_stream(n=100_000, cost=10.0, name="s"):
    prog = synthetic.stream(n, cost_us=cost, writes=True, name=name)
    return insert_prefetches(prog, OPTS).program


class TestSchedulerBasics:
    def test_single_process_matches_solo_run_roughly(self):
        """One co-scheduled process ~= the plain executor (same machine
        semantics, different drivers)."""
        prog1 = synthetic.stream(100_000, cost_us=10.0, writes=True)
        solo = run_variant(prog1, CFG, prefetching=False)
        sched = CoScheduler(CFG)
        prog2 = synthetic.stream(100_000, cost_us=10.0, writes=True)
        sched.add_process(prog2, name="only", prefetching=False)
        result = sched.run()
        assert result.elapsed_us == pytest.approx(solo.elapsed_us, rel=0.05)
        assert result.stats.faults.total_faults == solo.faults.total_faults

    def test_empty_scheduler_rejected(self):
        with pytest.raises(MachineError):
            CoScheduler(CFG).run()

    def test_run_twice_rejected(self):
        sched = CoScheduler(CFG)
        sched.add_process(synthetic.stream(5_000), prefetching=False)
        sched.run()
        with pytest.raises(MachineError):
            sched.run()
        with pytest.raises(MachineError):
            sched.add_process(synthetic.stream(5_000))

    def test_bad_quantum(self):
        with pytest.raises(MachineError):
            CoScheduler(CFG, quantum_us=0)

    def test_duplicate_programs_get_disjoint_segments(self):
        sched = CoScheduler(CFG)
        sched.add_process(synthetic.stream(20_000, name="same"), prefetching=False)
        sched.add_process(synthetic.stream(20_000, name="same"), prefetching=False)
        result = sched.run()
        # Both processes fault their own copies: ~2x the pages.
        pages = 20_000 * 8 // CFG.page_size
        assert result.stats.faults.total_faults >= 2 * pages - 4

    def test_process_lookup(self):
        sched = CoScheduler(CFG)
        sched.add_process(synthetic.stream(5_000), name="alpha", prefetching=False)
        result = sched.run()
        assert result.process("alpha").finish_us > 0
        with pytest.raises(MachineError):
            result.process("beta")


class TestMultiprogrammingEffects:
    def test_overlap_beats_serial_for_paged_vm(self):
        """Two O processes finish faster together than back to back:
        one's stall is the other's compute."""
        small = PlatformConfig(memory_pages=128)
        solo = run_variant(
            synthetic.stream(100_000, cost_us=10.0, writes=True),
            small, prefetching=False,
        )
        sched = CoScheduler(small)
        for k in range(2):
            sched.add_process(
                synthetic.stream(100_000, cost_us=10.0, writes=True, name=f"s{k}"),
                name=f"proc{k}", prefetching=False,
            )
        result = sched.run()
        assert result.elapsed_us < 2 * solo.elapsed_us * 0.9

    def test_prefetching_pair_beats_paged_pair(self):
        def run_pair(prefetching):
            sched = CoScheduler(CFG)
            for k in range(2):
                prog = synthetic.stream(100_000, cost_us=10.0, writes=True,
                                        name=f"s{k}")
                if prefetching:
                    prog = insert_prefetches(prog, OPTS).program
                sched.add_process(prog, name=f"proc{k}", prefetching=prefetching)
            return sched.run()

        o_pair = run_pair(False)
        p_pair = run_pair(True)
        assert p_pair.elapsed_us < o_pair.elapsed_us
        assert p_pair.times.idle < o_pair.times.idle

    def test_quantum_fairness(self):
        """Equal compute-bound processes finish near each other."""
        sched = CoScheduler(CFG, quantum_us=5_000.0)
        for k in range(3):
            sched.add_process(
                synthetic.stream(60_000, cost_us=10.0, name=f"s{k}"),
                name=f"proc{k}", prefetching=False,
            )
        result = sched.run()
        finishes = [p.finish_us for p in result.processes]
        assert max(finishes) < 1.25 * min(finishes)

    def test_accounting_adds_up(self):
        """Per-process cpu sums to the machine's busy time."""
        sched = CoScheduler(CFG)
        for k in range(2):
            sched.add_process(
                compiled_stream(name=f"s{k}"), name=f"proc{k}", prefetching=True
            )
        result = sched.run()
        total_cpu = sum(p.cpu_us for p in result.processes)
        busy = (result.times.user + result.times.system)
        assert total_cpu == pytest.approx(busy, rel=0.01)

    def test_release_app_leaves_memory_free_for_arrivals(self):
        """Table 3's multiprogramming promise, co-scheduled: a releasing
        stream keeps most of memory *free* while it runs, so a newly
        arriving application could be admitted instantly.  (A co-running
        reuse app is already protected either way -- the clock algorithm
        keeps re-referenced pages over streaming ones -- so the measurable
        difference is the free pool, not the neighbour's faults.)"""
        def co_run(companion_prefetching):
            sched = CoScheduler(CFG)
            companion = synthetic.stream(150_000, cost_us=6.0, writes=True,
                                         name="companion")
            if companion_prefetching:
                companion = insert_prefetches(companion, OPTS).program
            sched.add_process(companion, name="stream",
                              prefetching=companion_prefetching)
            reuse = synthetic.repeated_sweep(40_000, sweeps=4, cost_us=6.0,
                                             name="reuse")
            sched.add_process(reuse, name="reuse", prefetching=False)
            result = sched.run()
            return result.stats.memory.avg_free_fraction(result.elapsed_us)

        free_with = co_run(True)
        free_without = co_run(False)
        assert free_with > free_without + 0.2, (free_with, free_without)


class TestWithNasApps:
    def test_two_nas_apps_complete(self):
        platform = PlatformConfig(memory_pages=128)
        opts = CompilerOptions.from_platform(platform)
        sched = CoScheduler(platform)
        for name in ("EMBAR", "BUK"):
            prog = get_app(name).make(platform.available_frames)
            compiled = insert_prefetches(prog, opts).program
            sched.add_process(compiled, name=name, prefetching=True)
        result = sched.run()
        assert all(p.finish_us > 0 for p in result.processes)
        assert result.stats.release.pages_released > 0
