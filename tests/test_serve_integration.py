"""Integration tests for the supervised job farm (real processes).

These spawn real multiprocessing workers and kill them with real
signals.  The invariants pinned here are the farm's whole contract:

* every submitted job ends in a terminal state (done/quarantined/shed)
  -- never hung -- under SIGKILL chaos, SIGSTOP stalls, poison jobs,
  and overload;
* a job whose worker is SIGKILLed (or preempted) mid-run resumes from
  its newest checkpoint on another worker and produces a result
  **bit-identical** to an uninterrupted solo run;
* the documented ``serve.*`` metrics registry is fully populated and
  counts what actually happened.

Footprints are the golden-trace sizes (EMBAR 120 pages / 96 memory
pages ~ 0.5 s; MGRID 480 pages ~ 1 s) so each farm run stays in the
seconds range; strike delays land mid-job on any plausible host.
"""

import asyncio

from repro.errors import ExitCode
from repro.faults.farm import FarmChaosPlan, WorkerFault
from repro.obs.metrics import SERVE_METRIC_NAMES
from repro.serve import (
    Farm,
    FarmConfig,
    JobSpec,
    JobState,
    RetryPolicy,
    demo_jobs,
    run_farm,
)
from repro.serve.worker import execute_job

FAST_RETRY = RetryPolicy(base_s=0.01, cap_s=0.05, seed=1)

# A job long enough (~1 s wall) that a strike 0.3 s in reliably lands
# mid-run, with checkpoints every 10k simulated us to resume from.
LONG_RUN = JobSpec(kind="run", app="MGRID", pages=480, memory_pages=96,
                   job_id="long", seed=2)
SHORT_RUN = JobSpec(kind="run", app="EMBAR", pages=120, memory_pages=96,
                    job_id="short", seed=2)


def solo_result(spec: JobSpec, tmp_path, sub: str = "solo"):
    """The uninterrupted single-process result of one job spec."""
    job_dir = tmp_path / sub
    job_dir.mkdir()
    return execute_job(spec, job_dir, resume=False)


def test_small_batch_all_done_and_metrics_populated(tmp_path):
    specs = demo_jobs(4, seed=3)
    report = run_farm(specs, FarmConfig(workers=2, retry=FAST_RETRY),
                      tmp_path)
    assert report.all_terminal
    assert report.all_done
    counts = report.counts()
    assert counts[JobState.DONE] == 4
    metrics = report.metrics.as_dict()
    assert set(SERVE_METRIC_NAMES) <= set(metrics)
    assert metrics["serve.jobs_submitted"]["value"] == 4
    assert metrics["serve.jobs_done"]["value"] == 4
    assert metrics["serve.job_latency_us"]["count"] == 4
    assert report.p99_latency_s() > 0
    payload = report.to_dict()
    assert payload["summary"]["done"] == 4
    assert len(payload["jobs"]) == 4


def test_sigkilled_job_resumes_bit_identical(tmp_path):
    baseline = solo_result(LONG_RUN, tmp_path)
    chaos = FarmChaosPlan(faults=(
        WorkerFault(on_start=1, delay_s=0.3, op="kill"),))
    report = run_farm([LONG_RUN],
                      FarmConfig(workers=2, retry=FAST_RETRY),
                      tmp_path / "farm", chaos=chaos)
    rec = report.records[0]
    assert rec.state == JobState.DONE
    assert rec.attempts == 2
    assert rec.retries == 1
    assert rec.result == baseline  # bit-identical across the kill
    assert report.metrics.value("serve.worker_kills") == 1
    assert report.metrics.value("serve.worker_restarts") == 1
    assert report.metrics.value("serve.resumes") == 1


def test_stalled_worker_is_detected_and_job_resumes(tmp_path):
    baseline = solo_result(LONG_RUN, tmp_path)
    chaos = FarmChaosPlan(faults=(
        WorkerFault(on_start=1, delay_s=0.3, op="stall"),))
    config = FarmConfig(workers=1, hb_interval_s=0.05, hb_timeout_s=0.5,
                        retry=FAST_RETRY)
    report = run_farm([LONG_RUN], config, tmp_path / "farm", chaos=chaos)
    rec = report.records[0]
    assert rec.state == JobState.DONE
    assert rec.result == baseline
    assert report.metrics.value("serve.worker_stalls") == 1
    assert report.metrics.value("serve.heartbeat_timeouts") >= 1


def test_poison_job_is_quarantined_after_max_attempts(tmp_path):
    poison = JobSpec(kind="run", app="NO-SUCH-APP", job_id="poison",
                     max_attempts=3)
    report = run_farm([poison], FarmConfig(workers=1, retry=FAST_RETRY),
                      tmp_path)
    rec = report.records[0]
    assert rec.state == JobState.QUARANTINED
    assert rec.attempts == 3
    assert rec.retries == 2
    assert len(rec.failures) == 4  # 3 attempt errors + the verdict
    assert "quarantined after 3 failed attempts" in rec.failures[-1]
    assert report.metrics.value("serve.jobs_quarantined") == 1
    assert report.metrics.value("serve.jobs_failed_attempts") == 3


def test_overload_sheds_explicitly(tmp_path):
    specs = [JobSpec(kind="run", app="EMBAR", pages=120, memory_pages=96,
                     job_id=f"s{i}", priority=(2 if i >= 3 else 0))
             for i in range(5)]
    config = FarmConfig(workers=1, queue_depth=2, preemption=False,
                        retry=FAST_RETRY)
    report = run_farm(specs, config, tmp_path)
    assert report.all_terminal
    by_id = {r.spec.job_id: r for r in report.records}
    # Both high-priority jobs survive; the low band is shed to make room.
    assert by_id["s3"].state == JobState.DONE
    assert by_id["s4"].state == JobState.DONE
    shed = [r for r in report.records if r.state == JobState.SHED]
    assert len(shed) == 3
    assert all(r.spec.priority == 0 for r in shed)
    assert report.metrics.value("serve.jobs_shed") == 3


def test_preemption_resumes_the_victim_bit_identical(tmp_path):
    baseline = solo_result(LONG_RUN, tmp_path)
    high = JobSpec(kind="run", app="EMBAR", pages=120, memory_pages=96,
                   job_id="vip", priority=5)

    async def drive():
        farm = Farm(FarmConfig(workers=1, retry=FAST_RETRY),
                    tmp_path / "farm")
        farm.submit([LONG_RUN])
        task = asyncio.create_task(farm.run())
        await asyncio.sleep(0.4)  # let the long job run and checkpoint
        farm.submit([high])
        return await task

    report = asyncio.run(drive())
    by_id = {r.spec.job_id: r for r in report.records}
    assert by_id["vip"].state == JobState.DONE
    victim = by_id["long"]
    assert victim.state == JobState.DONE
    assert victim.preemptions == 1
    assert victim.result == baseline  # preemption is invisible in results
    assert report.metrics.value("serve.preemptions") == 1


def test_deadline_timeout_costs_an_attempt(tmp_path):
    # A deadline far shorter than the job: every attempt times out, the
    # job is quarantined, and nothing hangs.
    doomed = JobSpec(kind="run", app="MGRID", pages=480, memory_pages=96,
                     job_id="doomed", timeout_s=0.2, max_attempts=2)
    config = FarmConfig(workers=1, retry=FAST_RETRY)
    report = run_farm([doomed], config, tmp_path)
    rec = report.records[0]
    assert rec.state == JobState.QUARANTINED
    assert rec.attempts == 2
    assert report.metrics.value("serve.deadline_timeouts") >= 1


def test_max_wall_quarantines_outstanding_jobs(tmp_path):
    specs = [JobSpec(kind="run", app="MGRID", pages=480, memory_pages=96,
                     job_id=f"w{i}") for i in range(3)]
    config = FarmConfig(workers=1, retry=FAST_RETRY, max_wall_s=0.3)
    report = run_farm(specs, config, tmp_path)
    assert report.all_terminal
    assert any(r.state == JobState.QUARANTINED for r in report.records)
    for rec in report.records:
        if rec.state == JobState.QUARANTINED:
            assert "drain deadline" in rec.failures[-1]


def test_twenty_job_demo_under_chaos_all_terminal(tmp_path):
    """The acceptance demo: >= 20 mixed jobs, kills + stalls, no hangs."""
    specs = demo_jobs(18, seed=1, poison=2)
    chaos = FarmChaosPlan(faults=(
        WorkerFault(on_start=2, delay_s=0.15, op="kill"),
        WorkerFault(on_start=7, delay_s=0.15, op="kill"),
        WorkerFault(on_start=12, delay_s=0.15, op="stall"),
    ))
    config = FarmConfig(workers=4, hb_interval_s=0.05, hb_timeout_s=1.0,
                        retry=FAST_RETRY, max_wall_s=120.0)
    report = run_farm(specs, config, tmp_path, chaos=chaos)
    assert len(report.records) == 20
    assert report.all_terminal  # the "never hung" guarantee
    counts = report.counts()
    assert counts[JobState.DONE] == 18
    assert counts[JobState.QUARANTINED] == 2  # exactly the poison jobs
    quarantined = [r.spec.app for r in report.records
                   if r.state == JobState.QUARANTINED]
    assert quarantined == ["NO-SUCH-APP", "NO-SUCH-APP"]
    assert report.metrics.value("serve.worker_kills") == 2
    assert report.metrics.value("serve.worker_stalls") == 1
    assert report.metrics.value("serve.worker_restarts") >= 3


def test_serve_cli_submit_status_and_exit_codes(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "results.json"
    metrics_out = tmp_path / "metrics.json"
    code = main(["serve", "submit", "--demo", "4", "--workers", "2",
                 "--out", str(out), "--metrics-out", str(metrics_out)])
    assert code == ExitCode.OK
    assert out.exists() and metrics_out.exists()
    captured = capsys.readouterr().out
    assert "4 jobs: 4 done" in captured

    import json

    metrics = json.loads(metrics_out.read_text())
    assert set(SERVE_METRIC_NAMES) <= set(metrics["metrics"])

    assert main(["serve", "status", "--out", str(out)]) == ExitCode.OK
    assert main(["serve", "drain", "--out", str(out)]) == ExitCode.OK
    assert main(["serve", "submit"]) == ExitCode.USAGE
    assert main(["serve", "status", "--results",
                 str(tmp_path / "nope.json")]) == ExitCode.USAGE


def test_serve_cli_poison_batch_exits_job_failed(tmp_path):
    from repro.cli import main

    out = tmp_path / "results.json"
    code = main(["serve", "submit", "--demo", "1", "--poison", "1",
                 "--workers", "2", "--out", str(out)])
    assert code == ExitCode.JOB_FAILED
