"""Differential gate: the vectorized chunk kernel vs the scalar loop.

The vectorized hot path (:meth:`repro.machine.machine.Machine.run_chunk`)
claims *bit identity* with the scalar event loop -- not "close", not
"statistically equal": the same RunStats, the same page-table end state,
the same published metrics, for every application.  This module is the
enforcement: each NAS app runs O and P twice, once through the numpy
kernel (the default) and once through the scalar loop
(``scalar_chunks=True``, the same code path the ``REPRO_SCALAR=1``
environment hatch selects), and everything observable must match
exactly.

A hypothesis property additionally pins the classification primitive
itself: for arbitrary flag vectors and page-number arrays,
:meth:`repro.vm.residency.PageFlagVector.take` must agree with the
scalar ``test`` loop element for element.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import ALL_APPS, get_app
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.interp.executor import Executor
from repro.machine.machine import Machine
from repro.vm.residency import PageFlagVector

# The golden-trace footprint: small enough that all sixteen configs run
# in test time, out-of-core enough (data > memory) that every machinery
# layer -- faults, evictions, prefetches, releases, the filter -- fires.
MEMORY_PAGES = 96
DATA_PAGES = 120

APP_NAMES = tuple(spec.name for spec in ALL_APPS)


def _run(app_name: str, prefetching: bool, scalar: bool):
    """One fresh O or P run; returns (stats, machine) for inspection."""
    platform = PlatformConfig(memory_pages=MEMORY_PAGES)
    program = get_app(app_name).make(DATA_PAGES, seed=1)
    if prefetching:
        program = insert_prefetches(
            program, CompilerOptions.from_platform(platform)
        ).program
    machine = Machine(platform, prefetching=prefetching,
                      scalar_chunks=scalar)
    stats = Executor(machine).run(program)
    return stats, machine


def _page_table(machine: Machine) -> dict:
    """Everything the page table knows, per page."""
    return {
        vpage: (
            page.state,
            page.dirty,
            page.ref_bit,
            page.version,
            page.via_prefetch,
            page.used_since_arrival,
            page.arrival_us,
        )
        for vpage, page in machine.manager.pages.items()
    }


@pytest.mark.parametrize("variant", ["O", "P"])
@pytest.mark.parametrize("app_name", APP_NAMES)
def test_vector_kernel_is_bit_identical(app_name, variant):
    prefetching = variant == "P"
    vec_stats, vec_machine = _run(app_name, prefetching, scalar=False)
    sca_stats, sca_machine = _run(app_name, prefetching, scalar=True)

    # RunStats is a dataclass tree of plain counters/floats: == is exact.
    assert vec_stats == sca_stats

    # Full page-table end state, including the columnar fields the
    # kernel scatters in bulk and the scalar loop writes one at a time.
    assert _page_table(vec_machine) == _page_table(sca_machine)

    # The residency indexes the kernel classifies from must agree too.
    fast_vec = vec_machine.manager.fast.raw
    fast_sca = sca_machine.manager.fast.raw
    n = max(len(fast_vec), len(fast_sca))
    assert np.array_equal(
        np.pad(fast_vec, (0, n - len(fast_vec))),
        np.pad(fast_sca, (0, n - len(fast_sca))),
    )

    # Published metrics (the CLI/JSON export surface) must be identical.
    vec_metrics = vec_stats.publish().as_dict()
    sca_metrics = sca_stats.publish().as_dict()
    assert vec_metrics == sca_metrics


def test_scalar_env_hatch_forces_scalar_loop(monkeypatch):
    monkeypatch.setenv("REPRO_SCALAR", "1")
    assert Machine(PlatformConfig()).scalar_chunks
    monkeypatch.setenv("REPRO_SCALAR", "0")
    assert not Machine(PlatformConfig()).scalar_chunks
    monkeypatch.delenv("REPRO_SCALAR")
    assert not Machine(PlatformConfig()).scalar_chunks


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_flag_vector_take_matches_scalar_test(data):
    """Property: bulk classification == per-page scalar classification.

    Random residency vectors and random query pages, including pages
    past the end of the flag array (never marked, so never fast).
    """
    capacity = data.draw(st.integers(min_value=1, max_value=64))
    marked = data.draw(
        st.lists(st.integers(min_value=0, max_value=capacity - 1),
                 max_size=32)
    )
    unmarked = data.draw(
        st.lists(st.integers(min_value=0, max_value=capacity - 1),
                 max_size=32)
    )
    flags = PageFlagVector(capacity=capacity)
    for vpage in marked:
        flags.mark(vpage)
    for vpage in unmarked:
        flags.unmark(vpage)
    queries = data.draw(
        st.lists(st.integers(min_value=0, max_value=4 * capacity),
                 min_size=1, max_size=64)
    )
    vpages = np.asarray(queries, dtype=np.int64)
    bulk = flags.take(vpages)
    scalar = np.array([flags.test(int(v)) for v in queries], dtype=bool)
    assert np.array_equal(bulk, scalar)
