"""Tests for the experiment harness and the report renderers."""

import pytest

from repro.apps.registry import get_app
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.harness.experiment import compare_app, default_data_pages, run_variant
from repro.harness.report import ascii_bars, pct, render_table, stacked_time_bar
from repro.sim.stats import TimeBreakdown

SMALL = PlatformConfig(memory_pages=96, available_fraction=0.75)


class TestExperiment:
    def test_default_data_pages_is_out_of_core(self):
        pages = default_data_pages(SMALL)
        assert pages == 2 * SMALL.available_frames

    def test_compare_app_prefetching_wins_out_of_core(self):
        result = compare_app(get_app("EMBAR"), SMALL)
        assert result.speedup > 1.2
        assert result.stall_eliminated > 0.5
        assert result.pass_result is not None

    def test_compare_app_nofilter_variant(self):
        result = compare_app(get_app("BUK"), SMALL, include_nofilter=True)
        assert "P-nofilter" in result.extras
        nf = result.extras["P-nofilter"].stats
        # Without the filter, nothing is filtered at user level.
        assert nf.prefetch.filtered == 0
        assert nf.prefetch.issued_pages >= result.prefetch.stats.prefetch.issued_pages

    def test_same_workload_for_o_and_p(self):
        """O and P must fault on the same data (identical index arrays)."""
        result = compare_app(get_app("BUK"), SMALL, seed=5)
        o = result.original.stats
        p = result.prefetch.stats
        # Reads that ultimately come from disk cover the same pages, so
        # total disk reads agree within the prefetch over-fetch margin.
        o_reads = o.disk.reads_fault
        p_reads = p.disk.reads_fault + p.disk.reads_prefetch
        assert abs(o_reads - p_reads) / o_reads < 0.25

    def test_warm_start_flag(self):
        spec = get_app("EMBAR")
        pages = SMALL.available_frames // 3
        cold = compare_app(spec, SMALL, data_pages=pages)
        warm = compare_app(spec, SMALL, data_pages=pages, warm=True)
        assert warm.original.elapsed_us < cold.original.elapsed_us

    def test_run_variant_standalone(self):
        program = get_app("EMBAR").make(32)
        stats = run_variant(program, SMALL, prefetching=False)
        assert stats.elapsed_us > 0
        assert stats.prefetch.compiler_inserted == 0

    def test_custom_compiler_options_respected(self):
        options = CompilerOptions.from_platform(SMALL, release_policy="none")
        result = compare_app(get_app("EMBAR"), SMALL, options=options)
        assert result.prefetch.stats.release.pages_released == 0


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "long_header"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len({len(line) for line in lines if line.strip()}) <= 2
        assert "long_header" in lines[0]

    def test_render_table_title(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.startswith("My Table\n========")

    def test_ascii_bars_scales_to_peak(self):
        text = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_ascii_bars_empty(self):
        assert ascii_bars([], []) == "(no data)"

    def test_ascii_bars_zero_value(self):
        text = ascii_bars(["z"], [0.0])
        assert "#" not in text

    def test_stacked_time_bar_proportions(self):
        breakdown = TimeBreakdown(user_compute=50.0, sys_fault=25.0, stall_read=25.0)
        bar = stacked_time_bar(breakdown, normalize_to=100.0, width=20)
        assert bar.count("u") == 10
        assert bar.count("s") == 5
        assert bar.count(".") == 5
        assert "(100%)" in bar

    def test_pct(self):
        assert pct(0.5) == "50.0%"
