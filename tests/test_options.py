"""Tests for CompilerOptions validation and platform derivation."""

import pytest

from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        CompilerOptions()

    @pytest.mark.parametrize("field,value", [
        ("page_size", 0),
        ("block_pages", 0),
        ("fault_latency_us", 0.0),
        ("min_distance_strips", 0),
        ("max_indirect_distance", 0),
        ("assumed_symbolic_trip", 0),
    ])
    def test_positive_fields(self, field, value):
        with pytest.raises(ConfigError):
            CompilerOptions(**{field: value})

    def test_distance_ordering(self):
        with pytest.raises(ConfigError):
            CompilerOptions(min_distance_strips=4, max_distance_strips=2)

    def test_release_policy_values(self):
        for policy in ("none", "streaming", "aggressive"):
            CompilerOptions(release_policy=policy)
        with pytest.raises(ConfigError):
            CompilerOptions(release_policy="sometimes")


class TestFromPlatform:
    def test_inherits_page_and_block(self):
        platform = PlatformConfig(prefetch_block_pages=8)
        opts = CompilerOptions.from_platform(platform)
        assert opts.page_size == platform.page_size
        assert opts.block_pages == 8

    def test_latency_from_platform(self):
        platform = PlatformConfig()
        opts = CompilerOptions.from_platform(platform)
        assert opts.fault_latency_us == pytest.approx(
            platform.average_fault_latency_us()
        )

    def test_effective_memory_scales(self):
        big = CompilerOptions.from_platform(PlatformConfig(memory_pages=2048))
        small = CompilerOptions.from_platform(PlatformConfig(memory_pages=128))
        assert big.effective_memory_bytes > small.effective_memory_bytes

    def test_effective_memory_floor(self):
        tiny = CompilerOptions.from_platform(PlatformConfig(memory_pages=8))
        assert tiny.effective_memory_bytes == 16 * 4096

    def test_overrides_win(self):
        opts = CompilerOptions.from_platform(
            PlatformConfig(), block_pages=2, release_policy="none"
        )
        assert opts.block_pages == 2
        assert opts.release_policy == "none"

    def test_scaled_copy(self):
        opts = CompilerOptions()
        other = opts.scaled(max_distance_strips=16)
        assert other.max_distance_strips == 16
        assert opts.max_distance_strips == 8

    def test_dsm_platform_shortens_distance_inputs(self):
        disk = CompilerOptions.from_platform(PlatformConfig())
        dsm = CompilerOptions.from_platform(PlatformConfig.dsm())
        assert dsm.fault_latency_us < disk.fault_latency_us
