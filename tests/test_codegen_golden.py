"""Golden tests: the generated code's shape must stay recognizable.

These pin the *structural landmarks* of the compiler's output -- the same
landmarks the paper's Figure 2(b) shows -- rather than byte-exact text, so
cost-model tweaks do not break them but structural regressions do.
"""

import re

import numpy as np

from repro.config import PlatformConfig
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, Var
from repro.core.ir.printer import format_program
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches

CFG = PlatformConfig()
OPTS = CompilerOptions.from_platform(CFG)


def figure2a(n=80_000, m=10):
    rng = np.random.default_rng(0)
    b = ProgramBuilder("fig2a")
    i, j = Var("i"), Var("j")
    a = b.array("a", (250_000,), elem_size=4)
    barr = b.array("b", (n,), elem_size=4,
                   data=rng.integers(0, 250_000, size=n))
    c = b.array("c", (n, m), elem_size=4)
    b.append(loop("i", 0, n, [
        loop("j", 0, m, [work([read(c, i, j)], 2.0)]),
        work([read(barr, i), write(a, ElemOf(barr, i))], 4.0),
    ]))
    return b.build()


class TestFigure2Landmarks:
    def setup_method(self):
        self.text = format_program(
            insert_prefetches(figure2a(), OPTS).program, include_decls=False
        )

    def test_prolog_block_prefetches_precede_the_nest(self):
        first_for = self.text.index("for (")
        prolog = self.text[:first_for]
        # The indirect warm-up loop is itself a 'for', so check the dense
        # prologs exist before the *strip* loop.
        strip_start = self.text.index("i__s0")
        assert self.text.index("prefetch_block(&c[0][0]") < strip_start
        assert self.text.index("prefetch_block(&b[0]") < strip_start

    def test_strip_mined_control_loops(self):
        assert re.search(r"for \(i__s0 = 0; .* i__s0 \+= \d+\)", self.text)
        assert re.search(r"for \(i__s1 = i__s0; .* i__s1 \+= \d+\)", self.text)

    def test_innermost_keeps_original_variable(self):
        assert re.search(r"for \(i = i__s1; i < min\(i__s1 \+ \d+, \d+\); i\+\+\)", self.text)

    def test_steady_state_bundles_prefetch_and_release(self):
        assert "prefetch_release_block(&b[i__s0 + " in self.text
        assert "prefetch_release_block(&c[i__s1 + " in self.text

    def test_indirect_prefetch_with_lookahead(self):
        assert re.search(r"prefetch\(&a\[b\[i \+ \d+\]\]\);", self.text)

    def test_epilog_loop_without_block_hints(self):
        epilog_start = self.text.rindex("for (i = max(")
        epilog = self.text[epilog_start:]
        assert "prefetch_block" not in epilog
        assert "prefetch_release_block" not in epilog

    def test_steady_loop_stops_short_of_the_end(self):
        match = re.search(r"for \(i__s0 = 0; i__s0 < (\d+);", self.text)
        assert match is not None
        assert int(match.group(1)) < 80_000  # hi - max_lookahead


class TestDeterminism:
    def test_codegen_is_deterministic(self):
        a = format_program(insert_prefetches(figure2a(), OPTS).program)
        b = format_program(insert_prefetches(figure2a(), OPTS).program)
        # Indirect prolog counters differ across passes; normalize them.
        normalize = lambda s: re.sub(r"i__p\d+", "i__pN", s)
        assert normalize(a) == normalize(b)
