"""Tests for the causal span layer (repro.obs.spans).

Synthetic event sequences pin the correlation rules (issue -> use,
drops, injection taint, supersession); real runs pin online assembly,
offline replay equivalence, and the truncated-ring degradation.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.apps import synthetic
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.harness.experiment import run_variant
from repro.obs import (
    Observer,
    SpanBuilder,
    SpanState,
    TraceBuffer,
    TraceKind,
    chrome_trace,
    validate_chrome_trace,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "embar_trace_golden.json"

CFG = PlatformConfig(memory_pages=96)
OPTS = CompilerOptions.from_platform(CFG)


def _compiled_stream(n=60_000, name="s"):
    prog = synthetic.stream(n, cost_us=10.0, writes=True, name=name)
    return insert_prefetches(prog, OPTS).program


def _load_regen_script():
    path = REPO_ROOT / "scripts" / "regen_golden_trace.py"
    spec = importlib.util.spec_from_file_location("regen_golden_trace", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Synthetic correlation rules
# ----------------------------------------------------------------------


class TestSyntheticChains:
    def test_issue_then_hit_closes_used_hit(self):
        b = SpanBuilder()
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 10, 4, 0.0, "")
        b.on_event(5.0, TraceKind.FAULT, 11, 1, 0.0, "prefetched_hit")
        assert 11 not in b.open
        assert b.outcome_counts == {"used_hit": 1}
        assert len(b.open) == 3  # the rest of the run is still open
        span = b.completed[-1]
        assert span.run_id == 0
        assert [s for _, s, _ in span.states] == [
            SpanState.ISSUED, SpanState.USED_HIT,
        ]

    def test_issue_then_stall_reports_record(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 10, 2, 0.0, "")
        b.on_event(3.0, TraceKind.FAULT, 10, 1, 250.0, "prefetched_fault")
        assert b.outcome_counts == {"used_stall": 1}
        (rec,) = records
        assert rec.vpage == 10
        assert rec.stall_us == 250.0
        assert rec.last_state is SpanState.ISSUED
        assert not rec.injected

    def test_dropped_page_keeps_dropped_as_last_state(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 5, 1, 0.0, "")
        b.on_event(1.0, TraceKind.PREFETCH_DROPPED, 5, 1, 0.0, "")
        # The page still faults with a prefetched tag (the bit vector was
        # set before the drop); classification must see DROPPED.
        b.on_event(9.0, TraceKind.FAULT, 5, 1, 800.0, "prefetched_fault")
        (rec,) = records
        assert rec.last_state is SpanState.DROPPED

    def test_demand_fault_without_chain_is_implicit(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        b.on_event(2.0, TraceKind.FAULT, 7, 1, 1000.0, "nonprefetched_fault")
        assert b.implicit_spans == 1
        assert records[0].last_state is None
        assert b.outcome_counts == {"used_stall": 1}

    def test_hits_do_not_reach_the_stall_sink(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        b.on_event(0.0, TraceKind.FAULT, 7, 1, 0.0, "prefetched_hit")
        b.on_event(1.0, TraceKind.FAULT, 8, 1, 0.0, "reclaim")
        assert records == []

    def test_retry_taints_the_whole_issue_run(self):
        b = SpanBuilder()
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 20, 4, 0.0, "")
        # Striping reports the run-start page for every sub-request.
        b.on_event(1.0, TraceKind.DISK_RETRY, 20, 2, 500.0, "disk1:read_error")
        assert all(b.open[p].injected for p in range(20, 24))
        assert b.open[20].last_state is SpanState.RETRIED

    def test_retry_before_demand_fault_taints_it(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        # A demand-fault read retries before its FAULT event is emitted.
        b.on_event(1.0, TraceKind.DISK_RETRY, 33, 1, 500.0, "disk0:read_error")
        b.on_event(2.0, TraceKind.FAULT, 33, 1, 9000.0, "nonprefetched_fault")
        assert records[0].injected

    def test_hint_failed_marks_injected(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        b.on_event(0.0, TraceKind.HINT_FAILED, 40, 2, 0.0, "")
        b.on_event(5.0, TraceKind.FAULT, 40, 1, 700.0, "nonprefetched_fault")
        assert records[0].injected
        assert records[0].last_state is SpanState.HINT_FAILED

    def test_reissue_supersedes_open_chain(self):
        b = SpanBuilder()
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 10, 1, 0.0, "")
        b.on_event(1.0, TraceKind.PREFETCH_DROPPED, 10, 1, 0.0, "")
        b.on_event(2.0, TraceKind.PREFETCH_ISSUED, 10, 1, 0.0, "")
        assert b.open[10].run_id == 1
        assert b.outcome_counts == {"dropped": 1}  # old chain closed as-is

    def test_release_and_eviction_close_spans(self):
        b = SpanBuilder()
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 10, 2, 0.0, "")
        b.on_event(1.0, TraceKind.RELEASE, 10, 2, 0.0, "")
        b.on_event(2.0, TraceKind.EVICTION, 11, 1, 0.0, "pressure")
        assert b.outcome_counts == {"released": 1, "evicted": 1}
        assert b.completed[-1].states[-1][2] == "pressure"

    def test_frame_wait_reaches_sink_without_a_span(self):
        records = []
        b = SpanBuilder()
        b.stall_sink = records.append
        b.on_event(4.0, TraceKind.STALL_FRAME_WAIT, -1, 1, 321.0, "")
        assert records[0].tag == "frame_wait"
        assert records[0].stall_us == 321.0
        assert b.open == {}

    def test_disk_requests_feed_the_timeline(self):
        b = SpanBuilder()
        b.on_event(1.0, TraceKind.DISK_REQUEST, 10, 3, 0.0, "disk2:prefetch")
        b.on_event(2.0, TraceKind.DISK_REQUEST, 50, 1, 0.0, "disk0:write")
        assert b.disk_timeline[2] == [(1.0, 3)]
        assert b.disk_timeline[0] == [(2.0, 1)]
        # Writes never mark page spans (the page is leaving, not arriving).
        assert 50 not in b.open

    def test_finish_warns_about_open_spans(self):
        b = SpanBuilder()
        b.on_event(0.0, TraceKind.PREFETCH_ISSUED, 10, 3, 0.0, "")
        b.finish()
        assert any("still open" in w for w in b.warnings)
        assert b.summary()["open"] == 3


# ----------------------------------------------------------------------
# Real runs: online assembly, offline equivalence, truncation
# ----------------------------------------------------------------------


class TestRealRunAssembly:
    def setup_method(self):
        self.obs = Observer()
        self.builder = SpanBuilder(observer=self.obs)
        self.obs.sink = self.builder
        self.stats = run_variant(
            _compiled_stream(), CFG, prefetching=True, observer=self.obs
        )

    def test_every_stalling_fault_closed_a_span(self):
        f = self.stats.faults
        assert self.builder.outcome_counts.get("used_stall", 0) == (
            f.prefetched_fault + f.nonprefetched_fault
        )
        assert self.builder.outcome_counts.get("used_hit", 0) == (
            f.prefetched_hit + f.reclaim_fault
        )

    def test_online_does_not_perturb_the_simulation(self):
        bare = run_variant(_compiled_stream(), CFG, prefetching=True)
        assert bare.elapsed_us == self.stats.elapsed_us
        assert bare.times.idle == self.stats.times.idle

    def test_offline_replay_matches_online(self):
        offline = SpanBuilder.from_buffer(self.obs.trace)
        assert offline.truncated is False
        assert offline.outcome_counts == self.builder.outcome_counts
        assert offline.implicit_spans == self.builder.implicit_spans
        assert sorted(offline.open) == sorted(self.builder.open)
        assert offline.disk_timeline == self.builder.disk_timeline

    def test_golden_trace_unchanged_by_span_assembly(self):
        """The span layer must not alter the canonical EMBAR trace."""
        module = _load_regen_script()
        obs = module.golden_run()
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert chrome_trace(obs.trace) == golden


class TestTruncatedBuffer:
    def test_wrapped_ring_degrades_with_warning(self):
        obs = Observer(capacity=64)
        run_variant(_compiled_stream(), CFG, prefetching=True, observer=obs)
        assert obs.trace.dropped > 0
        builder = SpanBuilder.from_buffer(obs.trace)
        assert builder.truncated is True
        assert any("dropped" in w for w in builder.warnings)
        # The surviving suffix still assembles *something* coherent.
        assert builder.events_seen == len(obs.trace)
        assert builder.outcome_counts or builder.open

    def test_wrapped_ring_still_exports_valid_chrome_trace(self):
        obs = Observer(capacity=64)
        run_variant(_compiled_stream(), CFG, prefetching=True, observer=obs)
        trace = chrome_trace(obs.trace)
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["dropped"] == obs.trace.dropped > 0

    def test_unwrapped_buffer_not_marked_truncated(self):
        buf = TraceBuffer(capacity=16)
        buf.emit(0.0, TraceKind.FAULT, vpage=1, tag="nonprefetched_fault")
        builder = SpanBuilder.from_buffer(buf)
        assert builder.truncated is False
        assert builder.warnings == []
