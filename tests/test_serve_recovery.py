"""Controller crash recovery: the write-ahead ledger's whole contract.

The farm's durability story (docs/serving.md, *Controller failure &
recovery*) is pinned here end to end:

* the ledger is append-only, checksummed, and torn-tail tolerant: a
  crash mid-append costs exactly the un-flushed suffix, never history;
* rotation compacts atomically and folds to the same per-job state;
* ``recovery_plan`` is a pure function: the same ledger prefix and the
  same seed yield byte-identical plans -- retry backoff included -- at
  *any* kill point (the hypothesis property promised by
  ``repro.serve.retry``'s docstring);
* SIGKILLing a real controller mid-batch and running
  ``repro serve recover`` produces results bit-identical to an
  uninterrupted run, with no job lost, duplicated, or double-counted;
* orphan workers that survive the controller are adopted, their results
  folded exactly once;
* the satellite CLI behaviors: ``serve recover`` usage errors,
  auto-recovery on ``submit`` over a stale ledger, ``serve drain``
  stale-state cleanup, and the telemetry freshness verdicts.

Integration tests reuse the golden-trace footprints from
``test_serve_integration`` (EMBAR ~0.5 s, MGRID ~1 s) so real crashes
land mid-job on any plausible host.
"""

import json
import multiprocessing
import os
import signal
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ExitCode
from repro.faults.farm import (
    FARM_FAULT_OPS,
    FarmChaosPlan,
    WorkerFault,
    default_farm_plan,
)
from repro.serve import (
    Farm,
    FarmConfig,
    JobSpec,
    JobState,
    RetryPolicy,
    demo_jobs,
    fold_ledger,
    ledger_is_stale,
    read_ledger,
    recover_farm,
    recovery_plan,
    run_farm,
)
from repro.serve.ledger import (
    LEDGER_RECORD_KINDS,
    LEDGER_VERSION,
    RECOVERY_SEMANTICS,
    JobLedger,
    ledger_path,
    liveness_path,
)
from repro.serve.supervisor import (
    cleanup_worker_state,
    scan_worker_state,
    worker_state_paths,
)
from repro.serve.worker import execute_job

FAST_RETRY = RetryPolicy(base_s=0.01, cap_s=0.05, seed=1)

LONG_RUN = JobSpec(kind="run", app="MGRID", pages=480, memory_pages=96,
                   job_id="long", seed=2)


def _recovery_config() -> FarmConfig:
    """One config shared by the crashed and the recovering controller
    (the retry seed must match for the backoff timetable to replay)."""
    return FarmConfig(workers=2, hb_interval_s=0.05, hb_timeout_s=1.0,
                      retry=FAST_RETRY, max_wall_s=60.0)


def _crashed_controller(specs_json: str, workdir: str, on_start: int,
                        delay_s: float) -> None:
    """Child-process target: run a farm whose controller SIGKILLs
    itself mid-batch (module-level so spawn contexts can pickle it)."""
    specs = [JobSpec.from_dict(d) for d in json.loads(specs_json)]
    chaos = FarmChaosPlan(faults=(
        WorkerFault(on_start=on_start, delay_s=delay_s,
                    op="controller_crash"),))
    run_farm(specs, _recovery_config(), workdir, chaos=chaos)


def _crash_farm_in_child(specs, workdir, on_start: int,
                         delay_s: float) -> None:
    """Run the farm in a child and assert the controller really died
    by SIGKILL, leaving a replayable ledger behind."""
    proc = multiprocessing.Process(
        target=_crashed_controller,
        args=(json.dumps([s.to_dict() for s in specs]), str(workdir),
              on_start, delay_s))
    proc.start()
    # Poll is_alive (waitpid) rather than join(timeout): the orphaned
    # workers inherit the child's sentinel pipe, so a sentinel-based
    # join would block until *they* die -- which recovery does later.
    deadline = time.monotonic() + 90.0
    while proc.is_alive() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not proc.is_alive()
    proc.join(timeout=5.0)
    assert proc.exitcode == -signal.SIGKILL
    assert ledger_path(workdir).is_file()
    assert read_ledger(ledger_path(workdir))


# ----------------------------------------------------------------------
# Ledger unit tests
# ----------------------------------------------------------------------


def test_ledger_appends_are_checksummed_and_replayable(tmp_path):
    ledger = JobLedger(tmp_path)
    ledger.append("admitted", job="a", seq=1,
                  spec={"job_id": "a", "kind": "run", "app": "FFT"})
    ledger.append("dispatched", job="a", attempt=1, worker=0, resume=False)
    ledger.append("done", job="a", attempt=1, digest="ab" * 8)
    assert len(ledger) == 3
    ledger.close()
    records = read_ledger(ledger.path)
    assert [r["n"] for r in records] == [1, 2, 3]
    assert [r["kind"] for r in records] == ["admitted", "dispatched", "done"]
    assert all(r["v"] == LEDGER_VERSION for r in records)
    with pytest.raises(ConfigError, match="unknown ledger record kind"):
        ledger.append("exploded", job="a")


def test_ledger_torn_tail_and_corrupt_record_drop_the_suffix(tmp_path):
    ledger = JobLedger(tmp_path)
    for n in (1, 2, 3):
        ledger.append("admitted", job=f"j{n}", seq=n, spec={"job_id": f"j{n}"})
    ledger.close()
    # Torn tail: a crash mid-append leaves half a line. Only it is lost.
    intact = ledger.path.read_text()
    ledger.path.write_text(
        intact + '{"v": 1, "kind": "done", "job": "j1", "att')
    assert [r["job"] for r in read_ledger(ledger.path)] == ["j1", "j2", "j3"]
    # A corrupt *interior* record (flipped bits, checksum mismatch)
    # truncates to the longest valid prefix before it.
    lines = intact.splitlines()
    tampered = json.loads(lines[1])
    tampered["job"] = "evil"  # sha no longer matches
    lines[1] = json.dumps(tampered, sort_keys=True)
    ledger.path.write_text("\n".join(lines) + "\n")
    assert [r["job"] for r in read_ledger(ledger.path)] == ["j1"]


def test_ledger_rotation_compacts_and_folds_equivalently(tmp_path):
    ledger = JobLedger(tmp_path)
    ledger.append("admitted", job="j1", seq=1, spec={"job_id": "j1"})
    ledger.append("dispatched", job="j1", attempt=1, worker=0, resume=False)
    ledger.append("retry_scheduled", job="j1", attempt=1, resume=False,
                  delay_s=0.01, reason="boom")
    ledger.append("dispatched", job="j1", attempt=2, worker=1, resume=False)
    ledger.append("done", job="j1", attempt=2, digest="cd" * 8)
    ledger.append("admitted", job="j2", seq=2, spec={"job_id": "j2"})
    ledger.append("dispatched", job="j2", attempt=1, worker=0, resume=False)
    before = fold_ledger(read_ledger(ledger.path))
    # Compact the way recovery does: one admitted record per job with
    # the counters carried forward, plus terminal records.
    ledger.rotate([
        {"v": LEDGER_VERSION, "t": 0.0, "kind": "recovered", "jobs": 2},
        {"v": LEDGER_VERSION, "t": 0.0, "kind": "admitted", "job": "j1",
         "seq": 1, "spec": {"job_id": "j1"}, "attempts": 2, "retries": 1,
         "preemptions": 0},
        {"v": LEDGER_VERSION, "t": 0.0, "kind": "done", "job": "j1",
         "attempt": 2, "digest": "cd" * 8},
        {"v": LEDGER_VERSION, "t": 0.0, "kind": "admitted", "job": "j2",
         "seq": 2, "spec": {"job_id": "j2"}, "attempts": 1, "retries": 0,
         "preemptions": 0},
    ])
    records = read_ledger(ledger.path)
    assert len(records) == 4  # compacted: 7 history lines became 4
    after = fold_ledger(records)
    done = after["j1"]
    assert (done.phase, done.digest, done.attempts, done.retries) == \
        ("done", before["j1"].digest, 2, 1)
    # The in-flight job's counters survive compaction; its dispatch does
    # not (the attempt was adopted or voided before the rotate).
    assert after["j2"].attempts == before["j2"].attempts == 1
    assert after["j2"].phase == "pending"
    # Appends continue numbered after the compacted generation.
    record = ledger.append("heartbeat_epoch", epoch=1)
    ledger.close()
    assert record["n"] == 5
    assert len(read_ledger(ledger.path)) == 5


def test_fold_and_recovery_plan_cover_every_action(tmp_path):
    assert set(RECOVERY_SEMANTICS) == set(LEDGER_RECORD_KINDS)
    ledger = JobLedger(tmp_path)
    for seq, job in enumerate(("a", "b", "c", "d", "p", "q", "s"), start=1):
        ledger.append("admitted", job=job, seq=seq, spec={"job_id": job})
    ledger.append("dispatched", job="a", attempt=1, worker=0, resume=False)
    ledger.append("done", job="a", attempt=1, digest="ef" * 8)
    ledger.append("dispatched", job="b", attempt=1, worker=0, resume=False)
    ledger.append("retry_scheduled", job="b", attempt=1, resume=False,
                  delay_s=0.01, reason="flaky")
    ledger.append("dispatched", job="b", attempt=2, worker=1, resume=False)
    ledger.append("dispatched", job="c", attempt=1, worker=2, resume=False)
    ledger.append("retry_scheduled", job="c", attempt=1, resume=False,
                  delay_s=0.01, reason="flaky")
    ledger.append("dispatched", job="p", attempt=1, worker=3, resume=False)
    ledger.append("preempted", job="p", attempt=1)
    ledger.append("dispatched", job="q", attempt=1, worker=0, resume=False)
    ledger.append("quarantined", job="q", reason="poison")
    ledger.append("shed", job="s", reason="overload")
    ledger.close()

    entries = fold_ledger(read_ledger(ledger.path))
    plan = recovery_plan(entries, FAST_RETRY)
    by_job = {item["job"]: item for item in plan}
    assert [item["job"] for item in plan] == list("abcdpqs")  # seq order
    assert by_job["a"]["action"] == "fold_done"
    assert by_job["a"]["digest"] == "ef" * 8
    adopt = by_job["b"]
    assert (adopt["action"], adopt["worker"], adopt["attempt"]) == \
        ("adopt", 1, 2)
    assert adopt["delay_s"] == 0.0
    retry = by_job["c"]
    assert (retry["action"], retry["resume"]) == ("readmit", False)
    assert retry["delay_s"] == FAST_RETRY.delay_s("c", 1)
    assert by_job["d"] == {"job": "d", "seq": 4, "attempts": 0,
                           "retries": 0, "preemptions": 0,
                           "action": "readmit", "resume": False,
                           "delay_s": 0.0}
    preempted = by_job["p"]
    assert (preempted["action"], preempted["resume"]) == ("readmit", True)
    assert preempted["preemptions"] == 1
    assert by_job["q"] == {"job": "q", "seq": 6, "attempts": 1,
                           "retries": 0, "preemptions": 0,
                           "action": "fold_quarantined", "reason": "poison"}
    assert by_job["s"]["action"] == "fold_shed"


# ----------------------------------------------------------------------
# Determinism property (hypothesis, random kill points)
# ----------------------------------------------------------------------


@hypothesis_settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       jobs=st.integers(min_value=1, max_value=6),
       events=st.integers(min_value=0, max_value=30),
       kill_at=st.integers(min_value=0, max_value=40))
def test_recovery_schedule_is_deterministic_at_any_kill_point(
        seed, jobs, events, kill_at):
    """Same ledger prefix + same seed => byte-identical recovery plan.

    This is the property ``repro.serve.retry`` promises: the recovered
    retry timetable (jittered delays) and dispatch order (seq order)
    are pure functions of the journal and the policy seed, whatever
    line the controller died on.
    """
    from repro.fuzz.oracles import _synthesize_ledger

    with tempfile.TemporaryDirectory(prefix="repro-ledger-") as workdir:
        _synthesize_ledger(workdir, {"jobs": jobs, "seed": seed,
                                     "events": events})
        path = ledger_path(workdir)
        lines = path.read_text().splitlines(keepends=True)
        cut = min(kill_at, len(lines))
        path.write_text("".join(lines[:cut]))

        def replay():
            policy = RetryPolicy(seed=seed)  # rebuilt from scratch
            return recovery_plan(fold_ledger(read_ledger(path)), policy)

        first, second = replay(), replay()
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)
    assert [item["seq"] for item in first] == \
        sorted(item["seq"] for item in first)
    policy = RetryPolicy(seed=seed)
    for item in first:
        if item["action"] == "readmit" and item["attempts"]:
            assert item["delay_s"] == policy.delay_s(item["job"],
                                                     item["attempts"])
        elif item["action"] in ("readmit", "adopt"):
            assert item["delay_s"] == 0.0


# ----------------------------------------------------------------------
# Real crashes (integration)
# ----------------------------------------------------------------------


def test_controller_kill_then_recover_is_bit_identical(tmp_path):
    """The acceptance path: SIGKILL the controller mid-batch, recover,
    and every job's result matches an uninterrupted run exactly once."""
    specs = demo_jobs(4, seed=11)
    baseline = run_farm(specs, _recovery_config(), tmp_path / "base")
    assert baseline.all_done
    expected = {r.spec.job_id: r.result for r in baseline.records}

    workdir = tmp_path / "farm"
    _crash_farm_in_child(specs, workdir, on_start=2, delay_s=0.05)
    assert ledger_is_stale(workdir)

    report = recover_farm(_recovery_config(), workdir)
    assert report.all_terminal
    assert report.all_done
    ids = [r.spec.job_id for r in report.records]
    assert sorted(ids) == sorted(expected)  # no job lost
    assert len(ids) == len(set(ids))        # no job duplicated
    for record in report.records:
        assert record.result == expected[record.spec.job_id]
    assert report.metrics.value("serve.recoveries") == 1
    assert report.metrics.value("serve.jobs_recovered") >= 1
    # Exactly-once accounting: submissions equal jobs, not jobs + replays.
    assert report.metrics.value("serve.jobs_submitted") == len(specs)
    assert not ledger_is_stale(workdir)


def test_orphan_worker_is_adopted_and_its_result_lands_once(tmp_path):
    """A worker that outlives the controller delivers its in-flight
    job: the recovering controller adopts the result instead of
    re-running the attempt."""
    baseline = execute_job(LONG_RUN, tmp_path / "solo", resume=False)

    workdir = tmp_path / "farm"
    _crash_farm_in_child([LONG_RUN], workdir, on_start=1, delay_s=0.1)

    report = recover_farm(_recovery_config(), workdir)
    record = report.records[0]
    assert record.spec.job_id == "long"
    assert record.state == JobState.DONE
    assert record.result == baseline
    assert record.attempts == 1  # the orphan's attempt, not a re-run
    assert record.retries == 0
    assert report.metrics.value("serve.orphans_adopted") == 1
    assert report.metrics.value("serve.results_deduped") == 1
    # Adoption still reclaims the slot: no orphan state files linger.
    assert scan_worker_state(workdir / "workers") == []


def test_recover_refuses_a_live_controller(tmp_path):
    ledger = JobLedger(tmp_path)
    ledger.append("admitted", job="j1", seq=1, spec={"job_id": "j1"})
    ledger.close()
    # pid 1 is always alive and never ours.
    liveness_path(tmp_path).write_text(json.dumps(
        {"version": 1, "pid": 1, "started_t": 0.0}))
    assert not ledger_is_stale(tmp_path)
    farm = Farm(_recovery_config(), tmp_path)
    with pytest.raises(ConfigError, match="refusing to recover"):
        farm.recover()


def test_recover_without_replayable_history_raises(tmp_path):
    with pytest.raises(ConfigError):
        Farm(_recovery_config(), tmp_path / "never-ran").recover()
    empty = tmp_path / "empty"
    empty.mkdir()
    ledger_path(empty).write_text("")
    with pytest.raises(ConfigError, match="nothing to recover"):
        Farm(_recovery_config(), empty).recover()


def test_recover_on_a_finished_workdir_is_an_idempotent_fold(tmp_path):
    """Recovering a batch that actually finished re-lands every result
    by digest exactly once and re-runs nothing."""
    specs = demo_jobs(3, seed=5)
    first = run_farm(specs, _recovery_config(), tmp_path)
    assert first.all_done
    assert not ledger_is_stale(tmp_path)  # every entry terminal

    report = recover_farm(_recovery_config(), tmp_path)
    assert report.all_done
    assert len(report.records) == 3
    assert report.metrics.value("serve.results_deduped") == 3
    assert report.metrics.value("serve.jobs_recovered") == 0
    expected = {r.spec.job_id: r.result for r in first.records}
    for record in report.records:
        assert record.result == expected[record.spec.job_id]


# ----------------------------------------------------------------------
# Satellite regressions: drain cleanup, CLI verbs, freshness verdicts
# ----------------------------------------------------------------------


def _noop():
    pass


def _dead_pid() -> int:
    """A pid guaranteed dead: a child we already reaped."""
    proc = multiprocessing.Process(target=_noop)
    proc.start()
    proc.join()
    return proc.pid


def _write_worker_state(state_dir: Path, worker_id: int, pid: int) -> None:
    state_dir.mkdir(parents=True, exist_ok=True)
    pid_path, hb_path = worker_state_paths(state_dir, worker_id)
    pid_path.write_text(json.dumps(
        {"version": 1, "worker_id": worker_id, "pid": pid,
         "spawned_t": 0.0}))
    hb_path.touch()


def test_cleanup_worker_state_spares_live_pids(tmp_path):
    state = tmp_path / "workers"
    _write_worker_state(state, 0, _dead_pid())
    _write_worker_state(state, 1, os.getpid())
    rows = {row["worker_id"]: row for row in scan_worker_state(state)}
    assert rows[0]["alive"] is False
    assert rows[1]["alive"] is True
    assert cleanup_worker_state(state) == 2  # the dead slot's pid + hb
    pid0, hb0 = worker_state_paths(state, 0)
    pid1, hb1 = worker_state_paths(state, 1)
    assert not pid0.exists() and not hb0.exists()
    assert pid1.exists() and hb1.exists()  # a live farm is not touched


def test_cli_drain_cleans_stale_state_and_reports(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "results.json"
    assert main(["serve", "submit", "--demo", "1", "--workers", "1",
                 "--out", str(out)]) == ExitCode.OK
    workdir = tmp_path / "farm"
    _write_worker_state(workdir / "workers", 0, _dead_pid())
    liveness_path(workdir).write_text(json.dumps(
        {"version": 1, "pid": _dead_pid(), "started_t": 0.0}))
    capsys.readouterr()
    code = main(["serve", "drain", "--out", str(out),
                 "--workdir", str(workdir)])
    assert code is ExitCode.OK  # the enum, not a bare literal
    captured = capsys.readouterr().out
    assert "cleaned 3 stale worker/controller state file(s)" in captured
    assert "nothing to drain" in captured
    assert not liveness_path(workdir).exists()
    assert scan_worker_state(workdir / "workers") == []


def test_cli_recover_requires_workdir(capsys):
    from repro.cli import main

    assert main(["serve", "recover"]) is ExitCode.USAGE
    assert "serve recover needs --workdir DIR" in capsys.readouterr().err


def test_cli_submit_auto_recovers_a_stale_ledger(tmp_path, capsys):
    """``submit`` landing on a dead controller's workdir replays its
    ledger before taking the new work -- nothing is silently lost."""
    from repro.cli import main

    workdir = tmp_path / "farm"
    ghost = JobSpec(kind="run", app="EMBAR", pages=120, memory_pages=96,
                    job_id="ghost", seed=2)
    ledger = JobLedger(workdir)
    ledger.append("admitted", job="ghost", seq=1, spec=ghost.to_dict())
    ledger.close()
    assert ledger_is_stale(workdir)

    out = tmp_path / "results.json"
    code = main(["serve", "submit", "--demo", "1", "--workers", "1",
                 "--seed", "3", "--workdir", str(workdir),
                 "--out", str(out)])
    assert code is ExitCode.OK
    captured = capsys.readouterr().out
    assert "stale ledger" in captured
    assert "recovering its jobs first" in captured
    payload = json.loads(out.read_text())
    ids = [job["spec"]["job_id"] for job in payload["jobs"]]
    assert "ghost" in ids
    assert len(ids) == 2 and len(set(ids)) == 2
    assert all(job["state"] == "done" for job in payload["jobs"])
    assert not ledger_is_stale(workdir)


def test_snapshot_freshness_verdicts(tmp_path):
    from repro.cli import SNAPSHOT_STALE_AFTER_S, _snapshot_freshness

    path = tmp_path / "telemetry.json"
    snap, note = _snapshot_freshness(str(path))
    assert snap is None and "no telemetry yet" in note

    path.write_text('{"farm": {"jo')  # caught mid-rewrite
    snap, note = _snapshot_freshness(str(path))
    assert snap is None and "unreadable" in note

    path.write_text(json.dumps({"something": "else"}))
    snap, note = _snapshot_freshness(str(path))
    assert snap is None and "not a farm telemetry snapshot" in note

    payload = {"farm": {}, "state": "running", "trace_id": "t",
               "updated_s": 1.0}
    path.write_text(json.dumps(payload))
    stale_t = time.time() - (SNAPSHOT_STALE_AFTER_S + 5.0)
    os.utime(path, (stale_t, stale_t))
    snap, note = _snapshot_freshness(str(path))
    assert snap == payload
    assert "stale snapshot" in note and "serve recover" in note

    path.write_text(json.dumps({**payload, "state": "finished"}))
    snap, note = _snapshot_freshness(str(path))
    assert snap is not None and note is None


def test_cli_status_explains_missing_telemetry(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "results.json"
    assert main(["serve", "submit", "--demo", "1", "--workers", "1",
                 "--no-telemetry", "--out", str(out)]) == ExitCode.OK
    empty = tmp_path / "never-a-farm"
    empty.mkdir()
    capsys.readouterr()
    code = main(["serve", "status", "--workdir", str(empty),
                 "--out", str(out)])
    assert code is ExitCode.OK
    assert "no telemetry yet" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Chaos schema: controller_crash is a first-class fault op
# ----------------------------------------------------------------------


def test_controller_crash_is_a_first_class_fault_op():
    assert "controller_crash" in FARM_FAULT_OPS
    WorkerFault(on_start=3, delay_s=0.0, op="controller_crash")  # valid
    with pytest.raises(ConfigError):
        WorkerFault(on_start=1, delay_s=0.0, op="reboot")
    plan = default_farm_plan(kills=1, stalls=1, controller_crashes=1)
    assert [fault.op for fault in plan.faults] == \
        ["kill", "stall", "controller_crash"]
    assert plan.faults[-1].on_start == 8  # first_start=2, stride=3
    assert FarmChaosPlan.from_dict(plan.to_dict()) == plan
    with pytest.raises(ConfigError):
        default_farm_plan(controller_crashes=-1)
