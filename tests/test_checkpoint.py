"""Crash-consistent checkpoint/restart (repro/checkpoint/).

The headline invariant: a run killed at an arbitrary simulated cycle
and resumed from its newest checkpoint finishes with **bit-identical**
``RunStats`` -- across every application, both variants, clean and
faulted.  Around it: checkpointing is pure observation (attached but
idle, or actively writing, the simulated run does not change), corrupt
checkpoints are detected and skipped in favour of the previous retained
one, the container format round-trips, the fault plan's ``crashes`` /
``version`` fields behave, and a Hypothesis round-trip pins full state
equality (pages, frames, disk queues, RNG streams) after a restore
into a fresh machine.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.registry import ALL_APPS, get_app
from repro.apps.synthetic import stream
from repro.checkpoint import (
    CheckpointConfig,
    Checkpointer,
    CheckpointStore,
    Snapshot,
    describe_state,
    read_checkpoint_file,
    run_with_recovery,
)
from repro.checkpoint.runner import setup_checkpointing
from repro.checkpoint.store import CONTAINER_VERSION, encode_checkpoint
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import CheckpointError, ConfigError, ProcessCrash
from repro.faults import FaultPlan, default_plan, load_plan, save_plan
from repro.harness.experiment import run_variant
from repro.interp.executor import Executor
from repro.machine.machine import Machine
from repro.obs import Observer, TraceKind

#: Small out-of-core platform: 64 frames of memory, 80 pages of data.
CFG = PlatformConfig(memory_pages=64)
DATA_PAGES = 80
ELEMS_PER_PAGE = CFG.page_size // 8

APP_NAMES = sorted(spec.name for spec in ALL_APPS)

_CKPT_KINDS = (TraceKind.CHECKPOINT_WRITE, TraceKind.CHECKPOINT_RESTORE)


@pytest.fixture(scope="module")
def programs():
    """{(app, prefetching): program} -- built and compiled once."""
    cache = {}
    options = CompilerOptions.from_platform(CFG)
    for app in APP_NAMES:
        program = get_app(app).make(DATA_PAGES, seed=1)
        cache[(app, False)] = program
        cache[(app, True)] = insert_prefetches(program, options).program
    return cache


@pytest.fixture(scope="module")
def stream_program():
    program = stream(DATA_PAGES * ELEMS_PER_PAGE, cost_us=0.2)
    return insert_prefetches(program, CompilerOptions.from_platform(CFG)).program


def _factory(prefetching, plan=None, observer=None):
    def make():
        machine = Machine(CFG, prefetching=prefetching, observer=observer,
                          fault_plan=plan)
        return machine, Executor(machine)
    return make


def _uninterrupted(program, prefetching, plan=None):
    machine, executor = _factory(prefetching, plan)()
    return executor.run(program)


class _SafePointProbe:
    """Duck-typed checkpointer that only records safe-point cycles."""

    def __init__(self, machine):
        self.machine = machine
        self.cycles = []

    def at_safe_point(self, executor):
        self.cycles.append(self.machine.clock.now)


def _probe_run(program, prefetching, plan=None):
    """(uninterrupted stats, sorted positive safe-point cycles)."""
    machine, executor = _factory(prefetching, plan)()
    probe = _SafePointProbe(machine)
    executor.checkpointer = probe
    stats = executor.run(program)
    return stats, sorted({c for c in probe.cycles if c > 0})


# ----------------------------------------------------------------------
# The headline invariant: crash + resume == uninterrupted, bitwise
# ----------------------------------------------------------------------


class TestCrashResumeInvariant:
    @pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faulted"])
    @pytest.mark.parametrize("variant", ["O", "P"])
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_resume_is_bit_identical(self, programs, app, variant, faulted):
        prefetching = variant == "P"
        program = programs[(app, prefetching)]
        plan = default_plan(CFG.num_disks, seed=1) if faulted else None
        base, cycles = _probe_run(program, prefetching, plan)
        assert len(cycles) >= 3, "workload too small to crash mid-run"
        # Checkpoint cadence and crash cycle are picked from observed
        # safe points, so a checkpoint is guaranteed to strictly precede
        # the kill.  The crash is config-level, so the fault plan -- and
        # with it the machine's code path -- is identical to the
        # control run's.
        config = CheckpointConfig(
            every_us=cycles[0],
            crash_at_us=(cycles[max(1, len(cycles) // 2)],),
        )
        rec = run_with_recovery(_factory(prefetching, plan), program, config)
        assert rec.crashes == 1
        assert rec.resumes == 1
        assert rec.checkpoints >= 1
        assert dataclasses.asdict(rec.stats) == dataclasses.asdict(base)

    def test_double_crash_double_resume(self, programs):
        program = programs[("EMBAR", True)]
        base, cycles = _probe_run(program, True)
        config = CheckpointConfig(
            every_us=cycles[0],
            crash_at_us=(cycles[len(cycles) // 3],
                         cycles[2 * len(cycles) // 3]),
        )
        rec = run_with_recovery(_factory(True), program, config)
        assert rec.crashes == 2
        assert rec.resumes == 2
        assert dataclasses.asdict(rec.stats) == dataclasses.asdict(base)

    def test_crash_with_no_checkpoint_restarts_from_scratch(self, programs):
        program = programs[("EMBAR", True)]
        base = _uninterrupted(program, True)
        # No cadence: the crash kills a checkpoint-less incarnation and
        # the next one replays the whole run.
        config = CheckpointConfig(crash_at_us=(base.elapsed_us * 0.5,))
        rec = run_with_recovery(_factory(True), program, config)
        assert rec.crashes == 1
        assert rec.resumes == 0
        assert rec.checkpoints == 0
        assert dataclasses.asdict(rec.stats) == dataclasses.asdict(base)


# ----------------------------------------------------------------------
# Checkpointing is pure observation
# ----------------------------------------------------------------------


class TestPureObservation:
    def test_active_checkpointing_does_not_change_stats(self, programs):
        program = programs[("EMBAR", True)]
        base = _uninterrupted(program, True)
        machine, executor = _factory(True)()
        setup_checkpointing(machine, executor,
                            CheckpointConfig(every_us=base.elapsed_us * 0.15))
        stats = executor.run(program)
        assert executor.checkpointer.writes >= 1
        assert dataclasses.asdict(stats) == dataclasses.asdict(base)

    def test_observed_trace_unchanged_modulo_checkpoint_events(self, programs):
        program = programs[("EMBAR", True)]

        def observed_run(config):
            obs = Observer()
            machine, executor = _factory(True, observer=obs)()
            if config is not None:
                setup_checkpointing(machine, executor, config)
            executor.run(program)
            return obs.trace.events()

        plain = observed_run(None)
        elapsed = plain[-1].ts_us
        ckpted = observed_run(CheckpointConfig(every_us=elapsed * 0.2))
        writes = [e for e in ckpted if e.kind in _CKPT_KINDS]
        assert writes and all(e.kind is TraceKind.CHECKPOINT_WRITE
                              for e in writes)
        assert [e for e in ckpted if e.kind not in _CKPT_KINDS] == plain


# ----------------------------------------------------------------------
# The store: container format, retention ring, corruption fallback
# ----------------------------------------------------------------------


class TestStore:
    def _completed_run_with_store(self, program, tmp_path, every_frac=0.2):
        base = _uninterrupted(program, True)
        config = CheckpointConfig(every_us=base.elapsed_us * every_frac,
                                  directory=tmp_path, label="t")
        machine, executor = _factory(True)()
        setup_checkpointing(machine, executor, config)
        executor.run(program)
        return base, executor.checkpointer

    def test_retention_ring_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for _ in range(4):
            store.save("x", {"cycle_us": 0.0}, b"payload")
        assert store.sequences("x") == [3, 4]
        meta, payload, path, skipped = store.load_latest_good("x")
        assert (meta["seq"], payload, skipped) == (4, b"payload", 0)
        assert path == store.path_for("x", 4)

    def test_flipped_byte_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path, _seq = store.save("x", {"cycle_us": 1.0}, b"some payload bytes")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum|truncated|magic"):
            read_checkpoint_file(path)

    def test_unknown_container_version_rejected(self, tmp_path):
        blob = encode_checkpoint({"cycle_us": 0.0}, b"p")
        # The version field sits right after the magic, little-endian.
        from repro.checkpoint.store import MAGIC
        bad = bytearray(blob)
        bad[len(MAGIC)] = CONTAINER_VERSION + 1
        path = tmp_path / "x.00000001.ckpt"
        path.write_bytes(bytes(bad))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint_file(path)

    def test_corrupt_newest_falls_back_to_previous(self, stream_program, tmp_path):
        base, ckpt = self._completed_run_with_store(stream_program, tmp_path)
        store = ckpt.store
        seqs = store.sequences("t")
        assert len(seqs) >= 2
        newest = store.path_for("t", seqs[-1])
        blob = bytearray(newest.read_bytes())
        blob[-1] ^= 0xFF
        newest.write_bytes(bytes(blob))
        meta, _payload, path, skipped = store.load_latest_good("t")
        assert skipped == 1
        assert meta["seq"] == seqs[-2]
        assert path == store.path_for("t", seqs[-2])

    def test_resume_from_corrupt_newest_still_bit_identical(
            self, stream_program, tmp_path):
        base, ckpt = self._completed_run_with_store(stream_program, tmp_path)
        store = ckpt.store
        newest = store.path_for("t", store.sequences("t")[-1])
        newest.write_bytes(b"REPRO-CKPT" + b"\x00" * 8)  # truncated garbage
        machine, executor = _factory(True)()
        setup_checkpointing(
            machine, executor,
            CheckpointConfig(directory=tmp_path, label="t",
                             resume_from=tmp_path),
        )
        stats = executor.run(stream_program)
        assert executor.checkpointer.restores == 1
        assert dataclasses.asdict(stats) == dataclasses.asdict(base)

    def test_all_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path, _ = store.save("x", {"cycle_us": 0.0}, b"p")
        path.write_bytes(b"junk")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load_latest_good("x")

    def test_missing_label_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            CheckpointStore(tmp_path).load_latest_good("nope")

    def test_crash_ledger_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.crashes_delivered("x") == 0
        assert store.record_crash("x") == 1
        assert store.record_crash("x") == 2
        assert store.crashes_delivered("x") == 2
        assert store.crashes_delivered("other") == 0

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("x", {"cycle_us": 0.0}, b"p")
        store.record_crash("x")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["x.00000001.ckpt", "x.crashes.json"]


# ----------------------------------------------------------------------
# process_crash faults in the plan
# ----------------------------------------------------------------------


class TestPlanCrashes:
    def test_plan_crash_raises_through_run_variant(self, stream_program):
        _base, cycles = _probe_run(stream_program, True)
        crash_at = cycles[len(cycles) // 2]
        plan = FaultPlan(seed=1, crashes=(crash_at,))
        with pytest.raises(ProcessCrash) as exc:
            run_variant(stream_program, CFG, prefetching=True, fault_plan=plan)
        assert exc.value.scheduled_us == crash_at
        assert exc.value.at_us >= crash_at

    def test_suppressed_equals_recovered(self, stream_program):
        _base, cycles = _probe_run(stream_program, True)
        plan = FaultPlan(seed=1, crashes=(cycles[len(cycles) // 2],))
        suppressed = run_variant(
            stream_program, CFG, prefetching=True, fault_plan=plan,
            checkpoint=CheckpointConfig(suppress_plan_crashes=True),
        )
        rec = run_with_recovery(
            _factory(True, plan), stream_program,
            CheckpointConfig(every_us=cycles[0]),
        )
        assert rec.crashes == 1
        assert rec.resumes == 1
        assert dataclasses.asdict(rec.stats) == dataclasses.asdict(suppressed)

    def test_chaos_sweep_survives_crashes(self):
        from repro.apps.base import AppSpec
        from repro.apps.synthetic import repeated_sweep
        from repro.faults.chaos import CHAOS_CHECKPOINT_EVERY_US, chaos_sweep

        # Several sweeps over an out-of-core array run far past the
        # chaos harness's fixed checkpoint cadence, so the killed row
        # resumes from a checkpoint rather than restarting.
        spec = AppSpec(
            name="SWEEP", nas_name="-", full_name="synthetic sweeps",
            description="repeated sequential passes",
            build=lambda pages, seed: repeated_sweep(
                pages * ELEMS_PER_PAGE, sweeps=3, cost_us=0.2),
        )
        crash_at = CHAOS_CHECKPOINT_EVERY_US * 4
        plan = FaultPlan(seed=1, crashes=(crash_at,))
        report = chaos_sweep(spec, CFG, base_plan=plan,
                             intensities=(0.5, 1.0), data_pages=DATA_PAGES)
        half, full = report.rows
        # Below intensity 1 the crash is dropped (all-or-nothing).
        assert (half.crashes, half.resumes) == (0, 0)
        assert report.clean.elapsed_us > crash_at
        assert full.crashes == 1
        assert full.resumes == 1
        assert dataclasses.asdict(full.stats) == dataclasses.asdict(report.clean)


# ----------------------------------------------------------------------
# FaultPlan: crashes field, version field
# ----------------------------------------------------------------------


class TestPlanSchema:
    def test_crashes_round_trip(self, tmp_path):
        plan = FaultPlan(seed=3, crashes=(200.0, 100.0))
        assert plan.crashes == (100.0, 200.0)  # normalized sorted
        assert not plan.is_noop()
        again = FaultPlan.from_dict(plan.to_dict())
        assert again == plan
        path = tmp_path / "plan.json"
        save_plan(path, plan)
        assert load_plan(path) == plan
        assert json.loads(path.read_text())["version"] == 1

    def test_negative_crash_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=(-1.0,))

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigError, match="version"):
            FaultPlan(version=2)

    def test_unknown_version_rejected_before_field_parsing(self):
        # A future plan with renamed fields must fail on the version,
        # not on "unknown field".
        with pytest.raises(ConfigError, match="version"):
            FaultPlan.from_dict({"version": 99, "renamed_field": 1})

    def test_scaled_drops_crashes_below_one(self):
        plan = FaultPlan(crashes=(10.0,), hint_failure_rate=0.5)
        assert plan.scaled(0.5).crashes == ()
        assert plan.scaled(1.0).crashes == (10.0,)
        assert plan.scaled(2.0).crashes == (10.0,)


# ----------------------------------------------------------------------
# Config validation and signature guard
# ----------------------------------------------------------------------


class TestGuards:
    def test_bad_cadence_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointConfig(every_us=0)
        with pytest.raises(CheckpointError):
            CheckpointConfig(keep=0)

    def test_snapshot_rejects_mismatched_machine(self, programs):
        program = programs[("EMBAR", True)]
        machine, executor = _factory(True)()
        ckpt = Checkpointer(machine, executor,
                            CheckpointConfig(every_us=1.0))
        captured = []
        ckpt.on_write = captured.append
        executor.checkpointer = ckpt
        executor.run(program)
        snap = captured[0]
        other = Machine(CFG, prefetching=False)  # O, not P
        other_ex = Executor(other)
        other_ex._bind_arrays(programs[("EMBAR", False)])
        with pytest.raises(CheckpointError, match="signature"):
            snap.restore_into(other, other_ex)


# ----------------------------------------------------------------------
# Hypothesis: snapshot -> restore -> full state equality
# ----------------------------------------------------------------------


class TestRoundTripProperty:
    @settings(max_examples=8, deadline=None)
    @given(fraction=st.floats(min_value=0.05, max_value=0.95))
    def test_restore_reproduces_full_state(self, stream_program, fraction):
        plan = default_plan(CFG.num_disks, seed=2)
        machine, executor = _factory(True, plan)()
        base = executor.run(stream_program)
        machine, executor = _factory(True, plan)()
        captured = []
        ckpt = Checkpointer(
            machine, executor,
            CheckpointConfig(every_us=max(1.0, base.elapsed_us * fraction)),
        )
        ckpt.on_write = lambda snap: captured.append(
            (snap, describe_state(machine, executor.units))
        )
        executor.checkpointer = ckpt
        executor.run(stream_program)
        assert captured
        snap, expected = captured[0]
        fresh_machine, fresh_executor = _factory(True, plan)()
        fresh_executor._bind_arrays(stream_program)
        snap.restore_into(fresh_machine, fresh_executor)
        restored = describe_state(fresh_machine, fresh_executor._skip_until)
        assert restored == expected


# ----------------------------------------------------------------------
# End-to-end through the CLI (the CI smoke job in miniature)
# ----------------------------------------------------------------------


class TestCli:
    def test_kill_resume_loop_matches_control(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.metrics import RUN_METRIC_NAMES

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            '{"version": 1, "seed": 1, "crashes": [300000.0]}\n')
        ckpt_dir = tmp_path / "ckpts"
        common = [
            "--memory-pages", "96", "run", "EMBAR", "--pages", "120",
            "--faults", str(plan_path),
            "--checkpoint-dir", str(ckpt_dir),
        ]
        control = tmp_path / "control.json"
        assert main(common + ["--ignore-crash-faults",
                              "--metrics-out", str(control)]) == 0
        crash_metrics = tmp_path / "crash.json"
        code = main(common + ["--checkpoint-every", "100000",
                              "--metrics-out", str(crash_metrics)])
        assert code == 3
        err = capsys.readouterr().err
        assert "process crashed" in err and "--resume-from" in err
        assert list(ckpt_dir.glob("EMBAR-P.*.ckpt"))
        resumed = tmp_path / "resumed.json"
        assert main(common + ["--resume-from", str(ckpt_dir),
                              "--metrics-out", str(resumed)]) == 0
        a = json.loads(control.read_text())["metrics"]
        b = json.loads(resumed.read_text())["metrics"]
        for name in RUN_METRIC_NAMES:
            assert a.get(name) == b.get(name), name
        assert b["ckpt.restores"]["value"] == 1.0
