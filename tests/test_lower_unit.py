"""Direct unit tests for the vectorized leaf lowering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.builder import loop, read, work, write
from repro.core.ir.expr import Var
from repro.errors import AddressError
from repro.interp.lower import analyze_leaf, lower_leaf
from repro.machine.events import PREFETCH, READ, WRITE

PAGE = 4096


def lower(loop_node, env=None, segments=None, strides=None, lo=0, hi=None):
    recipe = analyze_leaf(loop_node)
    assert recipe is not None
    hi = hi if hi is not None else loop_node.upper.eval(env or {})
    values = np.arange(lo, hi, loop_node.step, dtype=np.int64)
    kinds, pages, costs, tail = lower_leaf(
        recipe, loop_node.var, values, env or {}, PAGE, segments, strides
    )
    return kinds.tolist(), pages.tolist(), costs.tolist(), tail


class TestLowering:
    def _setup(self, nelems=4 * 512):
        arr = ArrayDecl("x", (nelems,), elem_size=8)
        arr.base = PAGE  # page 1
        segments = {"x": (PAGE, nelems * 8)}
        strides = {"x": (1,)}
        return arr, segments, strides

    def test_sequential_read_collapses_per_page(self):
        arr, segments, strides = self._setup()
        lp = loop("i", 0, 4 * 512, [work([read(arr, Var("i"))], 1.0)])
        kinds, pages, costs, tail = lower(lp, {}, segments, strides)
        assert len(pages) == 4
        assert pages == [1, 2, 3, 4]
        assert all(k == READ for k in kinds)

    def test_costs_conserved(self):
        arr, segments, strides = self._setup()
        lp = loop("i", 0, 4 * 512, [work([read(arr, Var("i"))], 1.5)])
        kinds, pages, costs, tail = lower(lp, {}, segments, strides)
        assert sum(costs) + tail == pytest.approx(4 * 512 * 1.5)

    def test_first_cost_only_before_first_event(self):
        """Timing fidelity: a merged run charges only its first pre-cost
        before the access; the rest moves to the next event."""
        arr, segments, strides = self._setup()
        lp = loop("i", 0, 2 * 512, [work([read(arr, Var("i"))], 2.0)])
        kinds, pages, costs, tail = lower(lp, {}, segments, strides)
        assert costs[0] == pytest.approx(2.0)
        # Remainder of page 1's run plus page 2's own first cost.
        assert costs[1] == pytest.approx(511 * 2.0 + 2.0)
        # The final run's remainder is charged after the chunk.
        assert tail == pytest.approx(511 * 2.0)

    def test_read_write_same_page_merges_to_write(self):
        arr, segments, strides = self._setup()
        lp = loop("i", 0, 512, [
            work([read(arr, Var("i")), write(arr, Var("i"))], 1.0)
        ])
        kinds, pages, costs, tail = lower(lp, {}, segments, strides)
        assert kinds == [WRITE]
        assert pages == [1]

    def test_hints_never_merge(self):
        from repro.core.ir.nodes import AddrOf, Hint, HintKind

        arr, segments, strides = self._setup()
        lp = loop("i", 0, 8, [
            Hint(HintKind.PREFETCH, AddrOf(arr, (Var("i"),)), npages=1),
            work([read(arr, Var("i"))], 1.0),
        ])
        kinds, pages, costs, tail = lower(lp, {}, segments, strides)
        assert kinds.count(PREFETCH) == 8  # one per iteration

    def test_out_of_segment_raises(self):
        arr, segments, strides = self._setup(nelems=100)
        lp = loop("i", 0, 200, [work([read(arr, Var("i"))], 1.0)])
        with pytest.raises(AddressError):
            lower(lp, {}, segments, strides)

    def test_empty_range(self):
        arr, segments, strides = self._setup()
        lp = loop("i", 5, 5, [work([read(arr, Var("i"))], 1.0)])
        recipe = analyze_leaf(lp)
        kinds, pages, costs, tail = lower_leaf(
            recipe, "i", np.arange(0), {}, PAGE, segments, strides
        )
        assert len(kinds) == len(pages) == len(costs) == 0
        assert tail == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 3000),
        cost=st.floats(0.1, 20.0),
        stride=st.integers(1, 5),
    )
    def test_cost_conservation_property(self, n, cost, stride):
        arr = ArrayDecl("x", (16_000,), elem_size=8)
        arr.base = PAGE
        segments = {"x": (PAGE, 16_000 * 8)}
        strides = {"x": (1,)}
        lp = loop("i", 0, n, [work([read(arr, Var("i"))], cost)], step=stride)
        recipe = analyze_leaf(lp)
        values = np.arange(0, n, stride, dtype=np.int64)
        kinds, pages, costs, tail = lower_leaf(
            recipe, "i", values, {}, PAGE, segments, strides
        )
        assert sum(costs) + tail == pytest.approx(len(values) * cost)
        # Page sequence is non-decreasing for a forward stream.
        pages = pages.tolist()
        assert pages == sorted(pages)
