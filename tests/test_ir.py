"""Tests for IR nodes, arrays, the builder, validation, and the printer."""

import numpy as np
import pytest

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Const, ElemOf, Var
from repro.core.ir.nodes import AddrOf, ArrayRef, Cmp, Hint, HintKind, If, Loop, Program, Work
from repro.core.ir.printer import format_program
from repro.core.ir.validate import validate_program
from repro.core.ir.visit import count_stmts, transform_stmts, walk_hints, walk_loops, walk_refs
from repro.errors import ExecutionError, IRError


class TestArrayDecl:
    def test_strides_row_major(self):
        arr = ArrayDecl("c", (10, 20, 30))
        assert arr.strides_elems({}) == (600, 30, 1)

    def test_symbolic_shape_resolution(self):
        arr = ArrayDecl("c", (10, "N"))
        assert arr.resolved_shape({"N": 5}) == (10, 5)
        with pytest.raises(ExecutionError):
            arr.resolved_shape({})

    def test_compile_time_strides_with_unknowns(self):
        arr = ArrayDecl("c", ("M", "N", 8))
        strides = arr.compile_time_strides({"N": 4})
        assert strides == (32, 8, 1)
        strides = arr.compile_time_strides({})
        assert strides == (None, 8, 1)

    def test_nbytes(self):
        arr = ArrayDecl("x", (100,), elem_size=4)
        assert arr.nbytes({}) == 400

    def test_bad_shapes(self):
        with pytest.raises(IRError):
            ArrayDecl("x", ())
        with pytest.raises(IRError):
            ArrayDecl("x", (0,))
        with pytest.raises(IRError):
            ArrayDecl("x", (3.5,))  # type: ignore[arg-type]

    def test_index_data_must_be_1d(self):
        with pytest.raises(IRError):
            ArrayDecl("b", (2, 2), data=np.zeros(4))


class TestNodes:
    def test_ref_arity_checked(self):
        arr = ArrayDecl("c", (10, 10))
        with pytest.raises(IRError):
            ArrayRef(arr, (Const(1),))

    def test_loop_requires_positive_step(self):
        with pytest.raises(IRError):
            Loop("i", 0, 10, [], step=0)
        with pytest.raises(IRError):
            Loop("i", 0, 10, [], step=-1)

    def test_negative_work_cost_rejected(self):
        with pytest.raises(IRError):
            Work([], cost_us=-1.0)

    def test_hint_requires_targets(self):
        arr = ArrayDecl("x", (10,))
        with pytest.raises(IRError):
            Hint(HintKind.PREFETCH, None)
        with pytest.raises(IRError):
            Hint(HintKind.PREFETCH_RELEASE, AddrOf(arr, (Const(0),)))

    def test_release_shorthand(self):
        arr = ArrayDecl("x", (10,))
        h = Hint(HintKind.RELEASE, AddrOf(arr, (Const(0),)))
        assert h.release_target is not None
        assert h.target is None

    def test_cmp(self):
        assert Cmp(Var("n"), ">", 4).eval({"n": 5})
        assert not Cmp(Var("n"), "<=", 4).eval({"n": 5})
        with pytest.raises(IRError):
            Cmp(Var("n"), "~", 4)

    def test_duplicate_array_names_rejected(self):
        a1 = ArrayDecl("x", (10,))
        a2 = ArrayDecl("x", (20,))
        with pytest.raises(IRError):
            Program("p", [a1, a2], [])


class TestValidation:
    def _program(self, body, arrays=None, params=None):
        return Program("p", arrays or [], body, params=params or {})

    def test_valid_nest(self):
        arr = ArrayDecl("x", (100,))
        prog = self._program(
            [loop("i", 0, 100, [work([read(arr, Var("i"))], 1.0)])], [arr]
        )
        validate_program(prog)

    def test_unbound_loop_var_in_ref(self):
        arr = ArrayDecl("x", (100,))
        prog = self._program([work([read(arr, Var("i"))], 1.0)], [arr])
        with pytest.raises(IRError):
            validate_program(prog)

    def test_undeclared_array(self):
        arr = ArrayDecl("x", (100,))
        prog = self._program([work([read(arr, Const(0))], 1.0)], [])
        with pytest.raises(IRError):
            validate_program(prog)

    def test_shadowed_loop_var(self):
        prog = self._program([loop("i", 0, 2, [loop("i", 0, 2, [])])])
        with pytest.raises(IRError):
            validate_program(prog)

    def test_symbolic_dim_must_be_param(self):
        arr = ArrayDecl("x", ("N",))
        prog = self._program([], [arr])
        with pytest.raises(IRError):
            validate_program(prog)

    def test_symbolic_dim_with_param_ok(self):
        arr = ArrayDecl("x", ("N",))
        prog = self._program([], [arr], params={"N": 10})
        validate_program(prog)


class TestVisitors:
    def _nest(self):
        arr = ArrayDecl("x", (100, 100))
        inner = loop("j", 0, 10, [work([read(arr, Var("i"), Var("j"))], 1.0)])
        outer = loop("i", 0, 10, [inner])
        return arr, outer

    def test_walk_refs_paths(self):
        arr, outer = self._nest()
        entries = list(walk_refs([outer]))
        assert len(entries) == 1
        ref, _, path = entries[0]
        assert [lp.var for lp in path] == ["i", "j"]

    def test_walk_loops_order(self):
        _, outer = self._nest()
        assert [lp.var for lp in walk_loops([outer])] == ["i", "j"]

    def test_transform_preserves_loop_id(self):
        _, outer = self._nest()
        new = transform_stmts([outer], lambda s: [s])
        assert isinstance(new[0], Loop)
        assert new[0].loop_id == outer.loop_id
        assert new[0] is not outer  # rebuilt, not mutated

    def test_transform_replacement(self):
        _, outer = self._nest()

        def drop_works(stmt):
            return [] if isinstance(stmt, Work) else [stmt]

        new = transform_stmts([outer], drop_works)
        assert count_stmts(new) == 2  # two loops, no work

    def test_walk_hints(self):
        arr = ArrayDecl("x", (100,))
        h = Hint(HintKind.PREFETCH, AddrOf(arr, (Const(0),)), 4)
        body = [loop("i", 0, 2, [h])]
        assert list(walk_hints(body)) == [h]


class TestPrinter:
    def test_figure2_style_output(self):
        b = ProgramBuilder("fig2a")
        i, j = Var("i"), Var("j")
        bdata = np.zeros(100_000, dtype=np.int64)
        a = b.array("a", (100_000,), elem_size=4)
        barr = b.array("b", (100_000,), elem_size=4, data=bdata)
        c = b.array("c", (100_000, 100), elem_size=4)
        b.append(
            loop("i", 0, 100_000, [
                loop("j", 0, 100, [
                    work(
                        [read(barr, i), read(c, i, j), write(a, ElemOf(barr, i))],
                        2.0,
                        text="a[b[i]] += c[i][j] * b[i];",
                    ),
                ]),
            ])
        )
        text = format_program(b.build())
        assert "for (i = 0; i < 100000; i++) {" in text
        assert "for (j = 0; j < 100; j++) {" in text
        assert "a[b[i]] += c[i][j] * b[i];" in text
        assert "int a[100000];" in text

    def test_hint_rendering(self):
        arr = ArrayDecl("x", (1000,))
        prog = Program("p", [arr], [
            Hint(HintKind.PREFETCH, AddrOf(arr, (Const(0),)), 4),
            Hint(HintKind.PREFETCH, AddrOf(arr, (Var("i"),)), 1),
            Hint(
                HintKind.PREFETCH_RELEASE,
                AddrOf(arr, (Var("i") + 512,)),
                4,
                release_target=AddrOf(arr, (Var("i") - 512,)),
                release_npages=4,
            ),
        ], params={"i": 0})
        text = format_program(prog, include_decls=False)
        assert "prefetch_block(&x[0], 4);" in text
        assert "prefetch(&x[i]);" in text
        assert "prefetch_release_block(&x[i + 512], &x[i - 512], 4);" in text

    def test_if_rendering(self):
        prog = Program("p", [], [
            If(Cmp(Var("N"), ">", 512), [], [])
        ], params={"N": 1})
        text = format_program(prog, include_decls=False)
        assert "if (N > 512) {" in text
