"""Tests for the OS sequential-readahead baseline (paper Section 5)."""

import pytest

from repro.apps import synthetic
from repro.apps.registry import get_app
from repro.config import PlatformConfig
from repro.harness.experiment import compare_app, run_variant
from repro.machine.machine import Machine
from repro.vm.page import PageState

CFG = PlatformConfig(memory_pages=128)


def ra_machine(frames=64):
    cfg = PlatformConfig(memory_pages=frames, available_fraction=1.0, num_disks=2)
    m = Machine(cfg, prefetching=False, os_readahead=True)
    m.map_segment("x", 500 * cfg.page_size)
    m.map_segment("y", 500 * cfg.page_size)
    return m


def base(machine, name="x"):
    return machine.address_space.segment(name).base // machine.config.page_size


class TestReadaheadHeuristic:
    def test_first_fault_triggers_nothing(self):
        m = ra_machine()
        m.access(base(m), False)
        assert m.stats.prefetch.readahead_pages == 0

    def test_second_sequential_fault_opens_window(self):
        m = ra_machine()
        m.access(base(m), False)
        m.access(base(m) + 1, False)
        assert m.stats.prefetch.readahead_pages >= 1

    def test_window_doubles_with_run_length(self):
        m = ra_machine()
        b = base(m)
        m.access(b, False)
        m.access(b + 1, False)
        after_one = m.stats.prefetch.readahead_pages
        # The next *fault* lands past the first window; walk until one.
        v = b + 2
        while m.stats.prefetch.readahead_pages == after_one and v < b + 40:
            m.access(v, False)
            v += 1
        assert m.stats.prefetch.readahead_pages > after_one

    def test_random_faults_never_trigger(self):
        m = ra_machine()
        b = base(m)
        for offset in (0, 17, 3, 250, 90, 44):
            m.access(b + offset, False)
        assert m.stats.prefetch.readahead_pages == 0

    def test_backward_sweep_defeats_readahead(self):
        """The paper's point: pattern detection misses non-forward runs."""
        m = ra_machine()
        b = base(m)
        for offset in range(60, 0, -1):
            m.access(b + offset, False)
        assert m.stats.prefetch.readahead_pages == 0

    def test_streams_tracked_per_segment(self):
        """Interleaving two sequential segments must not break detection."""
        m = ra_machine()
        bx, by = base(m, "x"), base(m, "y")
        for k in range(4):
            m.access(bx + k, False)
            m.access(by + k, False)
        assert m.stats.prefetch.readahead_pages > 0

    def test_readahead_pages_become_hits(self):
        m = ra_machine()
        b = base(m)
        m.access(b, False)
        m.access(b + 1, False)  # readahead starts
        m.compute(1_000_000.0)  # let the reads land
        hits_before = m.stats.faults.prefetched_hit
        m.access(b + 2, False)
        assert m.stats.faults.prefetched_hit == hits_before + 1

    def test_readahead_never_evicts(self):
        m = ra_machine(frames=4)
        b = base(m)
        for k in range(4):
            m.access(b + k, False)
        evictions_before = m.stats.memory.evictions
        # Window wants frames, but the daemon target for 4 frames is 0:
        # whatever is free limits it; no evictions on behalf of readahead.
        m.access(b + 4, False)
        assert m.stats.memory.evictions <= evictions_before + 2

    def test_disabled_by_default(self):
        cfg = PlatformConfig(memory_pages=64, available_fraction=1.0, num_disks=2)
        m = Machine(cfg, prefetching=False)
        m.map_segment("x", 100 * cfg.page_size)
        b = base(m)
        for k in range(10):
            m.access(b + k, False)
        assert m.stats.prefetch.readahead_pages == 0


class TestReadaheadEndToEnd:
    def test_helps_sequential_streams(self):
        program = synthetic.stream(2 * CFG.available_frames * 512, cost_us=10.0)
        plain = run_variant(program, CFG, prefetching=False)
        ra = run_variant(program, CFG, prefetching=False, os_readahead=True)
        assert ra.elapsed_us < plain.elapsed_us

    def test_useless_for_gathers(self):
        """Indirect access patterns never establish a run."""
        program = synthetic.gather(20_000, 4 * CFG.available_frames * 512 // 4,
                                   cost_us=20.0)
        plain = run_variant(program, CFG, prefetching=False)
        ra = run_variant(program, CFG, prefetching=False, os_readahead=True)
        assert ra.elapsed_us >= plain.elapsed_us * 0.9  # no real win

    def test_compiler_prefetching_beats_readahead(self):
        """The paper's thesis versus its Section 5 alternatives."""
        result = compare_app(get_app("EMBAR"), CFG, include_readahead=True)
        ra = result.extras["O-readahead"].stats
        assert result.prefetch.elapsed_us < ra.elapsed_us

    def test_readahead_beats_nothing_on_applu_reverse(self):
        """Half of APPLU runs backward: readahead covers at most half."""
        result = compare_app(get_app("APPLU"), CFG, include_readahead=True)
        ra = result.extras["O-readahead"].stats
        o = result.original.stats
        p = result.prefetch.stats
        # Readahead helps some (the forward sweep) but far less than the
        # compiler, which understands the reversed indices too.
        assert p.elapsed_us < ra.elapsed_us <= o.elapsed_us * 1.02
