"""Tests for adaptive prefetch suppression (the Section 4.3.1 extension)."""

import pytest

from repro.apps.registry import get_app
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.harness.experiment import compare_app, run_variant
from repro.machine.machine import Machine
from repro.runtime.layer import SUPPRESS_AFTER, SUPPRESS_SPAN


def layer_machine(frames=64):
    cfg = PlatformConfig(memory_pages=frames, available_fraction=1.0, num_disks=2)
    m = Machine(cfg, prefetching=True, adaptive_prefetch=True)
    m.map_segment("x", 4000 * cfg.page_size)
    return m


def vp(machine):
    return machine.address_space.segment("x").base // machine.config.page_size


class TestSuppressionStateMachine:
    def test_engages_after_streak(self):
        m = layer_machine()
        base = vp(m)
        m.access(base, False)  # page resident: every prefetch filtered
        for _ in range(SUPPRESS_AFTER):
            m.prefetch(base, 1)
        before = m.stats.prefetch.suppressed
        m.prefetch(base, 1)
        m.prefetch(base, 1)
        assert m.stats.prefetch.suppressed > before

    def test_not_engaged_below_streak(self):
        m = layer_machine()
        base = vp(m)
        m.access(base, False)
        for _ in range(SUPPRESS_AFTER // 2):
            m.prefetch(base, 1)
        assert m.stats.prefetch.suppressed == 0

    def test_issue_resets_streak(self):
        m = layer_machine()
        base = vp(m)
        m.access(base, False)
        for _ in range(SUPPRESS_AFTER - 1):
            m.prefetch(base, 1)
        m.prefetch(base + 100, 1)  # non-resident: streak resets
        for _ in range(SUPPRESS_AFTER - 1):
            m.prefetch(base, 1)
        assert m.stats.prefetch.suppressed == 0

    def test_suppression_is_sampled(self):
        """Within a span, every 64th request still reaches the filter."""
        m = layer_machine()
        base = vp(m)
        m.access(base, False)
        for _ in range(SUPPRESS_AFTER):
            m.prefetch(base, 1)
        filtered_before = m.stats.prefetch.filtered
        for _ in range(640):
            m.prefetch(base, 1)
        sampled = m.stats.prefetch.filtered - filtered_before
        assert 5 <= sampled <= 15  # ~640/64

    def test_span_bounded(self):
        m = layer_machine()
        base = vp(m)
        m.access(base, False)
        for _ in range(SUPPRESS_AFTER + SUPPRESS_SPAN + 10):
            m.prefetch(base, 1)
        # After exhausting the span, the filter re-engages (the next
        # streak builds toward another suppression window).
        assert m.stats.prefetch.suppressed <= SUPPRESS_SPAN

    def test_disabled_by_default(self):
        cfg = PlatformConfig(memory_pages=64, available_fraction=1.0, num_disks=2)
        m = Machine(cfg, prefetching=True)
        m.map_segment("x", 100 * cfg.page_size)
        base = vp(m)
        m.access(base, False)
        for _ in range(SUPPRESS_AFTER + 10):
            m.prefetch(base, 1)
        assert m.stats.prefetch.suppressed == 0


class TestAdaptiveEndToEnd:
    def test_reduces_warm_incore_overhead(self):
        """The point of the extension: warm in-core BUK pays much less."""
        platform = PlatformConfig()
        spec = get_app("BUK")
        pages = int(platform.available_frames * 0.35)
        plain = compare_app(spec, platform, data_pages=pages, warm=True)
        adaptive = compare_app(
            spec, platform, data_pages=pages, warm=True, include_adaptive=True
        )
        ad = adaptive.extras["P-adaptive"].stats
        p = plain.prefetch.stats
        assert ad.prefetch.suppressed > 0
        assert ad.times.user_overhead < p.times.user_overhead * 0.5
        assert ad.elapsed_us < p.elapsed_us

    def test_out_of_core_performance_preserved(self):
        """Suppression must not engage while data is streaming from disk."""
        platform = PlatformConfig(memory_pages=128)
        spec = get_app("EMBAR")
        program = spec.make(2 * platform.available_frames)
        compiled = insert_prefetches(
            program, CompilerOptions.from_platform(platform)
        )
        plain = run_variant(compiled.program, platform, prefetching=True)
        program2 = spec.make(2 * platform.available_frames)
        compiled2 = insert_prefetches(
            program2, CompilerOptions.from_platform(platform)
        )
        adaptive = run_variant(
            compiled2.program, platform, prefetching=True, adaptive=True
        )
        assert adaptive.elapsed_us == pytest.approx(plain.elapsed_us, rel=0.05)

    def test_semantics_unchanged(self):
        """Suppressed hints change timing only, never faults vs hits."""
        platform = PlatformConfig(memory_pages=128)
        spec = get_app("BUK")
        pages = platform.available_frames // 3
        program = spec.make(pages)
        compiled = insert_prefetches(program, CompilerOptions.from_platform(platform))
        plain = run_variant(compiled.program, platform, prefetching=True, warm=True)
        adaptive = run_variant(
            compiled.program, platform, prefetching=True, warm=True, adaptive=True
        )
        assert plain.faults.total_faults == adaptive.faults.total_faults == 0
