"""Tests for repro.config: platform validation and derived quantities."""

import pytest

from repro.config import CostModel, DiskParameters, PlatformConfig
from repro.errors import ConfigError


class TestPlatformValidation:
    def test_default_platform_is_valid(self):
        cfg = PlatformConfig()
        assert cfg.page_size == 4096
        assert cfg.num_disks == 7

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            PlatformConfig(page_size=3000)

    def test_page_size_must_be_positive(self):
        with pytest.raises(ConfigError):
            PlatformConfig(page_size=0)

    def test_memory_pages_positive(self):
        with pytest.raises(ConfigError):
            PlatformConfig(memory_pages=0)

    def test_available_fraction_range(self):
        with pytest.raises(ConfigError):
            PlatformConfig(available_fraction=0.0)
        with pytest.raises(ConfigError):
            PlatformConfig(available_fraction=1.5)
        PlatformConfig(available_fraction=1.0)  # boundary is legal

    def test_num_disks_positive(self):
        with pytest.raises(ConfigError):
            PlatformConfig(num_disks=0)

    def test_block_pages_positive(self):
        with pytest.raises(ConfigError):
            PlatformConfig(prefetch_block_pages=0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            PlatformConfig(cost=CostModel(fault_service_us=-1.0))


class TestDerivedQuantities:
    def test_available_frames(self):
        cfg = PlatformConfig(memory_pages=1000, available_fraction=0.75)
        assert cfg.available_frames == 750

    def test_available_frames_at_least_one(self):
        cfg = PlatformConfig(memory_pages=1, available_fraction=0.1)
        assert cfg.available_frames == 1

    def test_memory_bytes(self):
        cfg = PlatformConfig(memory_pages=512, page_size=4096)
        assert cfg.memory_bytes == 512 * 4096

    def test_fault_latency_includes_service_and_disk(self):
        cfg = PlatformConfig()
        latency = cfg.average_fault_latency_us()
        assert latency > cfg.cost.fault_service_us
        assert latency == cfg.cost.fault_service_us + cfg.disk.random_service_us(1)

    def test_scaled_returns_modified_copy(self):
        cfg = PlatformConfig()
        small = cfg.scaled(memory_pages=128)
        assert small.memory_pages == 128
        assert cfg.memory_pages == 512
        assert small.num_disks == cfg.num_disks


class TestDiskParameters:
    def test_sequential_cheaper_than_random(self):
        disk = DiskParameters()
        assert disk.sequential_service_us(1) < disk.random_service_us(1)

    def test_multi_page_transfers_scale(self):
        disk = DiskParameters()
        one = disk.random_service_us(1)
        four = disk.random_service_us(4)
        assert four == pytest.approx(one + 3 * disk.transfer_us_per_page)

    def test_sequential_has_no_seek(self):
        disk = DiskParameters(avg_seek_us=9999.0, rotational_us=1111.0)
        assert disk.sequential_service_us(1) == pytest.approx(
            disk.command_overhead_us + disk.transfer_us_per_page
        )

    def test_negative_times_rejected(self):
        for field in ("avg_seek_us", "short_seek_us", "rotational_us",
                      "command_overhead_us"):
            with pytest.raises(ConfigError):
                DiskParameters(**{field: -1.0})

    def test_zero_seek_and_rotation_allowed(self):
        # The DSM profile is position independent; zero is legal there.
        disk = DiskParameters(avg_seek_us=0.0, short_seek_us=0.0,
                              rotational_us=0.0)
        assert disk.random_service_us(1) > 0

    def test_transfer_time_must_be_positive(self):
        with pytest.raises(ConfigError):
            DiskParameters(transfer_us_per_page=0.0)
        with pytest.raises(ConfigError):
            DiskParameters(transfer_us_per_page=-5.0)

    def test_negative_near_window_rejected(self):
        with pytest.raises(ConfigError):
            DiskParameters(near_window_blocks=-1)


class TestDsmPlatform:
    def test_dsm_profile_is_position_independent(self):
        dsm = DiskParameters.dsm_network()
        assert dsm.random_service_us(1) == pytest.approx(dsm.near_service_us(1) + dsm.rotational_us / 2)
        assert dsm.avg_seek_us == 0.0

    def test_dsm_platform_factory(self):
        platform = PlatformConfig.dsm(home_nodes=4)
        assert platform.num_disks == 4
        assert platform.average_fault_latency_us() < PlatformConfig().average_fault_latency_us()

    def test_dsm_overrides(self):
        platform = PlatformConfig.dsm(home_nodes=2, memory_pages=128)
        assert platform.memory_pages == 128

    def test_dsm_end_to_end_prefetching_wins(self):
        from repro.apps import synthetic
        from repro.core.options import CompilerOptions
        from repro.core.prefetch_pass import insert_prefetches
        from repro.harness.experiment import run_variant

        platform = PlatformConfig.dsm(home_nodes=4, memory_pages=128)
        program = synthetic.stream(2 * platform.available_frames * 512, cost_us=8.0)
        compiled = insert_prefetches(program, CompilerOptions.from_platform(platform))
        o = run_variant(program, platform, prefetching=False)
        p = run_variant(compiled.program, platform, prefetching=True)
        assert p.elapsed_us < o.elapsed_us
