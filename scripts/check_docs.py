#!/usr/bin/env python
"""Lint: reference tables in docs/ must match the code, both ways.

Eighteen authoritative reference tables are checked:

* **Event schema reference** (docs/observability.md) -- one row per
  ``TraceKind`` value;
* **Metric reference** (docs/observability.md) -- one row per name in
  ``RUN_METRIC_NAMES`` + ``OBS_METRIC_NAMES``;
* **Span state reference** (docs/observability.md) -- one row per
  ``SpanState`` value;
* **Stall cause reference** (docs/observability.md) -- one row per
  entry of ``STALL_CAUSES``;
* **FaultPlan schema reference** (docs/robustness.md) -- one row per
  field of the fault-plan dataclasses (``FaultPlan``, ``DiskFaultSpec``,
  ``SlowWindow``, ``PressureStorm``);
* **Checkpoint metric reference** (docs/robustness.md) -- one row per
  name in ``CKPT_METRIC_NAMES``;
* **Bench profile reference** (docs/performance.md) -- one row per
  profile in ``repro.harness.bench.BENCH_PROFILES``;
* **JobSpec schema reference** (docs/serving.md) -- one row per field
  of ``repro.serve.jobspec.JobSpec``;
* **Serve metric reference** (docs/serving.md) -- one row per name in
  ``SERVE_METRIC_NAMES``;
* **Strategy reference** (docs/robustness.md) -- one row per name in
  ``repro.fuzz.strategies.STRATEGY_NAMES``;
* **Oracle reference** (docs/robustness.md) -- one row per name in
  ``repro.fuzz.oracles.ORACLE_NAMES``;
* **Fuzz metric reference** (docs/robustness.md) -- one row per name in
  ``FUZZ_METRIC_NAMES``;
* **SLO rule schema reference** (docs/observability.md) -- one row per
  field of ``repro.obs.telemetry.SloRule``;
* **SLO metric reference** (docs/observability.md) -- one row per name
  in ``SLO_METRIC_NAMES``;
* **Telemetry metric reference** (docs/observability.md) -- one row per
  name in ``TELEMETRY_METRIC_NAMES``;
* **Farm timeline reference** (docs/observability.md) -- one row per
  name in ``FARM_SPAN_NAMES`` + ``FARM_INSTANT_NAMES`` +
  ``FARM_COUNTER_NAMES``;
* **Ledger record reference** (docs/serving.md) -- one row per kind in
  ``repro.serve.ledger.LEDGER_RECORD_KINDS``;
* **Recovery semantics** (docs/serving.md) -- one row per key of
  ``repro.serve.ledger.RECOVERY_SEMANTICS``.

This script parses those sections (and only those sections -- other
tables in the docs may legitimately backtick other things) and fails
when a kind / metric / field exists in code but is undocumented, or is
documented but no longer exists.  CI runs it next to the test suite;
``tests/test_check_docs.py`` runs the same check under pytest.

Usage::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "observability.md"
ROBUSTNESS_DOC_PATH = REPO_ROOT / "docs" / "robustness.md"
PERFORMANCE_DOC_PATH = REPO_ROOT / "docs" / "performance.md"
SERVING_DOC_PATH = REPO_ROOT / "docs" / "serving.md"

#: Section heading -> what its table's first column enumerates.
SECTIONS = {
    "## Event schema reference": "kinds",
    "## Metric reference": "metrics",
    "## Span state reference": "span_states",
    "## Stall cause reference": "stall_causes",
}

_ROW_TOKEN = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|")


def _section_text(doc: str, heading: str) -> str:
    """The body of one ``##`` section (up to the next ``##`` heading)."""
    start = doc.index(heading) + len(heading)
    rest = doc[start:]
    next_heading = re.search(r"^## ", rest, flags=re.MULTILINE)
    return rest[: next_heading.start()] if next_heading else rest


def documented_tokens(doc_path: Path = DOC_PATH) -> dict[str, set[str]]:
    """First-column backticked tokens of each reference table."""
    doc = doc_path.read_text()
    tokens: dict[str, set[str]] = {bucket: set() for bucket in SECTIONS.values()}
    for heading, bucket in SECTIONS.items():
        if heading not in doc:
            raise SystemExit(f"{doc_path}: missing section {heading!r}")
        for line in _section_text(doc, heading).splitlines():
            match = _ROW_TOKEN.match(line.strip())
            if match:
                tokens[bucket].add(match.group(1))
    return tokens


def documented_plan_fields(doc_path: Path = ROBUSTNESS_DOC_PATH) -> set[str]:
    """First-column tokens of the FaultPlan schema table.

    Nested fields are documented as ``owner.field`` (for example
    ``disks.read_error_rate``); top-level ``FaultPlan`` fields are bare.
    """
    heading = "## FaultPlan schema reference"
    doc = doc_path.read_text()
    if heading not in doc:
        raise SystemExit(f"{doc_path}: missing section {heading!r}")
    fields = set()
    for line in _section_text(doc, heading).splitlines():
        match = _ROW_TOKEN.match(line.strip())
        if match:
            fields.add(match.group(1))
    return fields


def documented_ckpt_metrics(doc_path: Path = ROBUSTNESS_DOC_PATH) -> set[str]:
    """First-column tokens of the checkpoint metric table."""
    heading = "## Checkpoint metric reference"
    doc = doc_path.read_text()
    if heading not in doc:
        raise SystemExit(f"{doc_path}: missing section {heading!r}")
    metrics = set()
    for line in _section_text(doc, heading).splitlines():
        match = _ROW_TOKEN.match(line.strip())
        if match:
            metrics.add(match.group(1))
    return metrics


def documented_bench_profiles(doc_path: Path = PERFORMANCE_DOC_PATH) -> set[str]:
    """First-column tokens of the bench profile table."""
    heading = "## Bench profile reference"
    doc = doc_path.read_text()
    if heading not in doc:
        raise SystemExit(f"{doc_path}: missing section {heading!r}")
    profiles = set()
    for line in _section_text(doc, heading).splitlines():
        match = _ROW_TOKEN.match(line.strip())
        if match:
            profiles.add(match.group(1))
    return profiles


def documented_serve_tokens(doc_path: Path = SERVING_DOC_PATH) -> dict[str, set[str]]:
    """First-column tokens of the serving doc's two reference tables."""
    doc = doc_path.read_text()
    tokens: dict[str, set[str]] = {}
    for heading, bucket in (("## JobSpec schema reference", "jobspec_fields"),
                            ("## Serve metric reference", "serve_metrics")):
        if heading not in doc:
            raise SystemExit(f"{doc_path}: missing section {heading!r}")
        tokens[bucket] = set()
        for line in _section_text(doc, heading).splitlines():
            match = _ROW_TOKEN.match(line.strip())
            if match:
                tokens[bucket].add(match.group(1))
    return tokens


def documented_fuzz_tokens(doc_path: Path = ROBUSTNESS_DOC_PATH) -> dict[str, set[str]]:
    """First-column tokens of the robustness doc's three fuzz tables.

    The fuzz tables live under ``###`` headings inside the Scenario
    fuzzing section, so the body of each runs to the next heading of
    *either* level.
    """
    doc = doc_path.read_text()
    tokens: dict[str, set[str]] = {}
    for heading, bucket in (("### Strategy reference", "strategies"),
                            ("### Oracle reference", "oracles"),
                            ("### Fuzz metric reference", "fuzz_metrics")):
        if heading not in doc:
            raise SystemExit(f"{doc_path}: missing section {heading!r}")
        start = doc.index(heading) + len(heading)
        rest = doc[start:]
        next_heading = re.search(r"^#{2,3} ", rest, flags=re.MULTILINE)
        body = rest[: next_heading.start()] if next_heading else rest
        tokens[bucket] = set()
        for line in body.splitlines():
            match = _ROW_TOKEN.match(line.strip())
            if match:
                tokens[bucket].add(match.group(1))
    return tokens


def documented_ledger_tokens(doc_path: Path = SERVING_DOC_PATH) -> dict[str, set[str]]:
    """First-column tokens of the serving doc's two ledger tables.

    The ledger tables live under ``###`` headings inside the Controller
    failure & recovery section, so the body of each runs to the next
    heading of *either* level.
    """
    doc = doc_path.read_text()
    tokens: dict[str, set[str]] = {}
    for heading, bucket in (("### Ledger record reference", "ledger_kinds"),
                            ("### Recovery semantics", "recovery_kinds")):
        if heading not in doc:
            raise SystemExit(f"{doc_path}: missing section {heading!r}")
        start = doc.index(heading) + len(heading)
        rest = doc[start:]
        next_heading = re.search(r"^#{2,3} ", rest, flags=re.MULTILINE)
        body = rest[: next_heading.start()] if next_heading else rest
        tokens[bucket] = set()
        for line in body.splitlines():
            match = _ROW_TOKEN.match(line.strip())
            if match:
                tokens[bucket].add(match.group(1))
    return tokens


def documented_telemetry_tokens(doc_path: Path = DOC_PATH) -> dict[str, set[str]]:
    """First-column tokens of the observability doc's four farm tables.

    The telemetry tables live under ``###`` headings inside the Farm
    telemetry section, so the body of each runs to the next heading of
    *either* level.
    """
    doc = doc_path.read_text()
    tokens: dict[str, set[str]] = {}
    for heading, bucket in (("### SLO rule schema reference", "slo_fields"),
                            ("### SLO metric reference", "slo_metrics"),
                            ("### Telemetry metric reference", "telemetry_metrics"),
                            ("### Farm timeline reference", "farm_timeline")):
        if heading not in doc:
            raise SystemExit(f"{doc_path}: missing section {heading!r}")
        start = doc.index(heading) + len(heading)
        rest = doc[start:]
        next_heading = re.search(r"^#{2,3} ", rest, flags=re.MULTILINE)
        body = rest[: next_heading.start()] if next_heading else rest
        tokens[bucket] = set()
        for line in body.splitlines():
            match = _ROW_TOKEN.match(line.strip())
            if match:
                tokens[bucket].add(match.group(1))
    return tokens


def plan_fields_in_code() -> set[str]:
    """Every fault-plan dataclass field, named as the doc table names it."""
    import dataclasses

    from repro.faults.plan import DiskFaultSpec, FaultPlan, PressureStorm, SlowWindow

    fields = {f.name for f in dataclasses.fields(FaultPlan)}
    for owner, cls in (("disks", DiskFaultSpec),
                       ("disks.slow_windows", SlowWindow),
                       ("storms", PressureStorm)):
        fields |= {f"{owner}.{f.name}" for f in dataclasses.fields(cls)}
    return fields


def check(
    doc_path: Path = DOC_PATH,
    robustness_doc_path: Path = ROBUSTNESS_DOC_PATH,
    performance_doc_path: Path = PERFORMANCE_DOC_PATH,
    serving_doc_path: Path = SERVING_DOC_PATH,
) -> list[str]:
    """Returns a list of problems; empty means docs and code agree."""
    import dataclasses

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.fuzz.oracles import ORACLE_NAMES
    from repro.fuzz.strategies import STRATEGY_NAMES
    from repro.harness.bench import BENCH_PROFILES
    from repro.obs.attrib import STALL_CAUSES
    from repro.obs.export import (
        FARM_COUNTER_NAMES,
        FARM_INSTANT_NAMES,
        FARM_SPAN_NAMES,
    )
    from repro.obs.metrics import (
        CKPT_METRIC_NAMES,
        FUZZ_METRIC_NAMES,
        OBS_METRIC_NAMES,
        RUN_METRIC_NAMES,
        SERVE_METRIC_NAMES,
        SLO_METRIC_NAMES,
        TELEMETRY_METRIC_NAMES,
    )
    from repro.obs.spans import SpanState
    from repro.obs.telemetry import SloRule
    from repro.obs.trace import TraceKind
    from repro.serve.jobspec import JobSpec
    from repro.serve.ledger import LEDGER_RECORD_KINDS, RECOVERY_SEMANTICS

    doc = documented_tokens(doc_path)
    in_code = {
        "kinds": ("event kind", {kind.value for kind in TraceKind}),
        "metrics": ("metric",
                    set(RUN_METRIC_NAMES) | set(OBS_METRIC_NAMES)),
        "span_states": ("span state", {state.value for state in SpanState}),
        "stall_causes": ("stall cause", set(STALL_CAUSES)),
    }

    problems = []
    for bucket, (label, code_tokens) in in_code.items():
        for missing in sorted(code_tokens - doc[bucket]):
            problems.append(f"{label} {missing!r} is in code but not documented")
        for stale in sorted(doc[bucket] - code_tokens):
            problems.append(f"{label} {stale!r} is documented but not in code")

    code_fields = plan_fields_in_code()
    doc_fields = documented_plan_fields(robustness_doc_path)
    for missing in sorted(code_fields - doc_fields):
        problems.append(f"fault-plan field {missing!r} is in code but not documented")
    for stale in sorted(doc_fields - code_fields):
        problems.append(f"fault-plan field {stale!r} is documented but not in code")

    doc_ckpt = documented_ckpt_metrics(robustness_doc_path)
    for missing in sorted(set(CKPT_METRIC_NAMES) - doc_ckpt):
        problems.append(
            f"checkpoint metric {missing!r} is in code but not documented")
    for stale in sorted(doc_ckpt - set(CKPT_METRIC_NAMES)):
        problems.append(
            f"checkpoint metric {stale!r} is documented but not in code")

    doc_profiles = documented_bench_profiles(performance_doc_path)
    for missing in sorted(set(BENCH_PROFILES) - doc_profiles):
        problems.append(
            f"bench profile {missing!r} is in code but not documented")
    for stale in sorted(doc_profiles - set(BENCH_PROFILES)):
        problems.append(
            f"bench profile {stale!r} is documented but not in code")

    serve_doc = documented_serve_tokens(serving_doc_path)
    jobspec_fields = {f.name for f in dataclasses.fields(JobSpec)}
    for missing in sorted(jobspec_fields - serve_doc["jobspec_fields"]):
        problems.append(
            f"job-spec field {missing!r} is in code but not documented")
    for stale in sorted(serve_doc["jobspec_fields"] - jobspec_fields):
        problems.append(
            f"job-spec field {stale!r} is documented but not in code")
    for missing in sorted(set(SERVE_METRIC_NAMES) - serve_doc["serve_metrics"]):
        problems.append(
            f"serve metric {missing!r} is in code but not documented")
    for stale in sorted(serve_doc["serve_metrics"] - set(SERVE_METRIC_NAMES)):
        problems.append(
            f"serve metric {stale!r} is documented but not in code")

    ledger_doc = documented_ledger_tokens(serving_doc_path)
    for bucket, label, code_tokens in (
        ("ledger_kinds", "ledger record kind", set(LEDGER_RECORD_KINDS)),
        ("recovery_kinds", "recovery-semantics kind",
         set(RECOVERY_SEMANTICS)),
    ):
        for missing in sorted(code_tokens - ledger_doc[bucket]):
            problems.append(
                f"{label} {missing!r} is in code but not documented")
        for stale in sorted(ledger_doc[bucket] - code_tokens):
            problems.append(
                f"{label} {stale!r} is documented but not in code")
    if set(RECOVERY_SEMANTICS) != set(LEDGER_RECORD_KINDS):
        problems.append(
            "RECOVERY_SEMANTICS keys do not match LEDGER_RECORD_KINDS")

    fuzz_doc = documented_fuzz_tokens(robustness_doc_path)
    for bucket, label, code_tokens in (
        ("strategies", "fuzz strategy", set(STRATEGY_NAMES)),
        ("oracles", "fuzz oracle", set(ORACLE_NAMES)),
        ("fuzz_metrics", "fuzz metric", set(FUZZ_METRIC_NAMES)),
    ):
        for missing in sorted(code_tokens - fuzz_doc[bucket]):
            problems.append(
                f"{label} {missing!r} is in code but not documented")
        for stale in sorted(fuzz_doc[bucket] - code_tokens):
            problems.append(
                f"{label} {stale!r} is documented but not in code")

    telemetry_doc = documented_telemetry_tokens(doc_path)
    farm_timeline_names = (set(FARM_SPAN_NAMES) | set(FARM_INSTANT_NAMES)
                           | set(FARM_COUNTER_NAMES))
    for bucket, label, code_tokens in (
        ("slo_fields", "SLO rule field",
         {f.name for f in dataclasses.fields(SloRule)}),
        ("slo_metrics", "SLO metric", set(SLO_METRIC_NAMES)),
        ("telemetry_metrics", "telemetry metric", set(TELEMETRY_METRIC_NAMES)),
        ("farm_timeline", "farm timeline name", farm_timeline_names),
    ):
        for missing in sorted(code_tokens - telemetry_doc[bucket]):
            problems.append(
                f"{label} {missing!r} is in code but not documented")
        for stale in sorted(telemetry_doc[bucket] - code_tokens):
            problems.append(
                f"{label} {stale!r} is documented but not in code")

    if len(set(RUN_METRIC_NAMES)) != len(RUN_METRIC_NAMES):
        problems.append("RUN_METRIC_NAMES contains duplicates")
    if len(set(CKPT_METRIC_NAMES)) != len(CKPT_METRIC_NAMES):
        problems.append("CKPT_METRIC_NAMES contains duplicates")
    if len(set(SERVE_METRIC_NAMES)) != len(SERVE_METRIC_NAMES):
        problems.append("SERVE_METRIC_NAMES contains duplicates")
    overlap = set(RUN_METRIC_NAMES) & set(OBS_METRIC_NAMES)
    if overlap:
        problems.append(f"names in both RUN and OBS lists: {sorted(overlap)}")
    overlap = set(CKPT_METRIC_NAMES) & (set(RUN_METRIC_NAMES)
                                        | set(OBS_METRIC_NAMES))
    if overlap:
        problems.append(
            f"names in both CKPT and RUN/OBS lists: {sorted(overlap)}")
    overlap = set(SERVE_METRIC_NAMES) & (set(RUN_METRIC_NAMES)
                                         | set(OBS_METRIC_NAMES)
                                         | set(CKPT_METRIC_NAMES))
    if overlap:
        problems.append(
            f"names in both SERVE and other lists: {sorted(overlap)}")
    if len(set(FUZZ_METRIC_NAMES)) != len(FUZZ_METRIC_NAMES):
        problems.append("FUZZ_METRIC_NAMES contains duplicates")
    overlap = set(FUZZ_METRIC_NAMES) & (set(RUN_METRIC_NAMES)
                                        | set(OBS_METRIC_NAMES)
                                        | set(CKPT_METRIC_NAMES)
                                        | set(SERVE_METRIC_NAMES))
    if overlap:
        problems.append(
            f"names in both FUZZ and other lists: {sorted(overlap)}")
    others = (set(RUN_METRIC_NAMES) | set(OBS_METRIC_NAMES)
              | set(CKPT_METRIC_NAMES) | set(SERVE_METRIC_NAMES)
              | set(FUZZ_METRIC_NAMES))
    if len(set(TELEMETRY_METRIC_NAMES)) != len(TELEMETRY_METRIC_NAMES):
        problems.append("TELEMETRY_METRIC_NAMES contains duplicates")
    if len(set(SLO_METRIC_NAMES)) != len(SLO_METRIC_NAMES):
        problems.append("SLO_METRIC_NAMES contains duplicates")
    overlap = (set(TELEMETRY_METRIC_NAMES) | set(SLO_METRIC_NAMES)) & others
    if overlap:
        problems.append(
            f"names in both TELEMETRY/SLO and other lists: {sorted(overlap)}")
    overlap = set(TELEMETRY_METRIC_NAMES) & set(SLO_METRIC_NAMES)
    if overlap:
        problems.append(
            f"names in both TELEMETRY and SLO lists: {sorted(overlap)}")
    return problems


def main() -> int:
    problems = check()
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    if problems:
        return 1
    tokens = documented_tokens()
    serve_tokens = documented_serve_tokens()
    fuzz_tokens = documented_fuzz_tokens()
    telemetry_tokens = documented_telemetry_tokens()
    ledger_tokens = documented_ledger_tokens()
    print(f"check_docs: OK ({len(tokens['kinds'])} event kinds, "
          f"{len(tokens['metrics'])} metrics, "
          f"{len(tokens['span_states'])} span states, "
          f"{len(tokens['stall_causes'])} stall causes, "
          f"{len(documented_plan_fields())} fault-plan fields, "
          f"{len(documented_ckpt_metrics())} checkpoint metrics, "
          f"{len(documented_bench_profiles())} bench profiles, "
          f"{len(serve_tokens['jobspec_fields'])} job-spec fields, "
          f"{len(serve_tokens['serve_metrics'])} serve metrics, "
          f"{len(fuzz_tokens['strategies'])} fuzz strategies, "
          f"{len(fuzz_tokens['oracles'])} fuzz oracles, "
          f"{len(fuzz_tokens['fuzz_metrics'])} fuzz metrics, "
          f"{len(telemetry_tokens['slo_fields'])} SLO rule fields, "
          f"{len(telemetry_tokens['slo_metrics'])} SLO metrics, "
          f"{len(telemetry_tokens['telemetry_metrics'])} telemetry metrics, "
          f"{len(telemetry_tokens['farm_timeline'])} farm timeline names, "
          f"{len(ledger_tokens['ledger_kinds'])} ledger record kinds, "
          f"{len(ledger_tokens['recovery_kinds'])} recovery-semantics kinds "
          "in sync)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
