#!/usr/bin/env python
"""Regenerate the golden observability trace.

The golden file (``tests/data/embar_trace_golden.json``) pins the exact
Chrome ``trace_event`` export of one small, fully deterministic EMBAR
run; ``tests/test_obs.py::TestGoldenTrace`` fails when the export
drifts.  After an *intentional* change to the trace schema or to the
simulation's event sequence, re-run::

    PYTHONPATH=src python scripts/regen_golden_trace.py

and commit the updated file together with the change that caused it.
The test imports :func:`golden_run` from this script, so the run
recorded here and the run the test performs are the same by
construction.
"""

from __future__ import annotations

from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "tests" / "data" / "embar_trace_golden.json"

#: The canonical run: small enough to finish in ~1 s, out-of-core
#: enough to exercise faults, prefetches, releases, and evictions.
APP = "EMBAR"
MEMORY_PAGES = 96
DATA_PAGES = 120
SEED = 1


def golden_run():
    """Execute the canonical run; returns the attached Observer."""
    from repro.apps.registry import get_app
    from repro.config import PlatformConfig
    from repro.core.options import CompilerOptions
    from repro.core.prefetch_pass import insert_prefetches
    from repro.harness.experiment import run_variant
    from repro.obs import Observer

    platform = PlatformConfig(memory_pages=MEMORY_PAGES)
    program = get_app(APP).make(DATA_PAGES, seed=SEED)
    compiled = insert_prefetches(program, CompilerOptions.from_platform(platform))
    obs = Observer()
    run_variant(compiled.program, platform, prefetching=True, observer=obs)
    return obs


def main() -> int:
    from repro.obs import chrome_trace, validate_chrome_trace

    obs = golden_run()
    trace = chrome_trace(obs.trace)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    from repro.ioutil import atomic_write_json

    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_json(GOLDEN_PATH, trace)
    print(f"wrote {GOLDEN_PATH} ({len(trace['traceEvents'])} trace records)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
