"""Calibration driver: run every app O vs P and print the paper-shape
metrics (speedup, stall elimination, coverage, unnecessary %, free memory,
disk utilization).  Used during development to tune per-app costs; kept in
the repo because it is the fastest way to eyeball all shapes at once.

Usage: python scripts/calibrate.py [APP ...]
"""

from __future__ import annotations

import sys
import time

from repro.apps.registry import ALL_APPS, get_app
from repro.config import PlatformConfig
from repro.harness.experiment import compare_app
from repro.harness.report import render_table


def main(argv: list[str]) -> None:
    platform = PlatformConfig()
    specs = [get_app(a) for a in argv] if argv else list(ALL_APPS)
    rows = []
    for spec in specs:
        t0 = time.time()
        cmp_result = compare_app(spec, platform, include_nofilter=True)
        wall = time.time() - t0
        o, p = cmp_result.original.stats, cmp_result.prefetch.stats
        nf = cmp_result.extras["P-nofilter"].stats
        rows.append([
            spec.name,
            cmp_result.data_pages,
            f"{o.elapsed_us/1e6:.2f}s",
            f"{100*o.times.idle/o.elapsed_us:.0f}%",
            f"{cmp_result.speedup:.2f}x",
            f"{100*cmp_result.stall_eliminated:.0f}%",
            f"{100*p.faults.coverage:.0f}%",
            f"{100*p.prefetch.unnecessary_fraction:.0f}%",
            f"{100*p.prefetch.issued_useful_fraction:.0f}%",
            f"{(p.times.user/o.times.user - 1)*100:+.0f}%",
            f"{o.elapsed_us/nf.elapsed_us:.2f}x",
            f"{100*p.memory.avg_free_fraction(p.elapsed_us):.0f}%",
            f"{100*o.disk.utilization(o.elapsed_us):.0f}/{100*p.disk.utilization(p.elapsed_us):.0f}%",
            p.release.pages_released,
            f"{wall:.1f}s",
        ])
    print(render_table(
        ["app", "pages", "O time", "O idle", "speedup", "stall-elim",
         "coverage", "unnec", "issued-useful", "user+", "nofilter-spdup",
         "free-mem", "util O/P", "released", "wall"],
        rows,
        title="Calibration: paper shapes per application",
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
