"""Regenerate the full evaluation and collate it into RESULTS.md.

Runs the entire benchmark suite (which writes each figure/table rendering
to ``benchmarks/results/*.txt``) and stitches the renderings into a single
``RESULTS.md`` in the paper's order, so the whole regenerated evaluation
can be read top to bottom.

Usage: python scripts/regen_experiments.py [--skip-benchmarks]
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

#: The paper's presentation order (file stem, section heading).
ORDER = [
    ("fig1_binding", "Figure 1 — non-binding prefetch semantics"),
    ("table1_platform", "Table 1 — platform characteristics"),
    ("table2_apps", "Table 2 — applications"),
    ("fig3a_overall", "Figure 3(a) — overall performance"),
    ("fig3b_faults_stall", "Figure 3(b) — faults and stall time"),
    ("fig4a_coverage", "Figure 4(a) — compiler coverage"),
    ("fig4b_filtering", "Figure 4(b) — run-time filtering"),
    ("fig4c_nofilter", "Figure 4(c) — removing the run-time layer"),
    ("fig5_disk", "Figure 5 — disk requests and utilization"),
    ("table3_memory", "Table 3 — memory activity and free memory"),
    ("fig6_incore_35", "Figure 6 — in-core problem sizes (35%)"),
    ("fig6_incore_15", "Figure 6 (extra) — tiny problem sizes (15%)"),
    ("fig7_larger", "Figure 7 — larger out-of-core sizes"),
    ("fig8_buk_sweep", "Figure 8 — BUK problem-size sweep"),
    ("readahead_baseline", "Baseline — OS fault-history readahead"),
    ("multiprog_coscheduled", "Extension — co-scheduled pairs"),
    ("multiprogramming", "Extension — memory pressure"),
    ("ablation_block_pages", "Ablation — block prefetch size"),
    ("ablation_distance", "Ablation — prefetch distance"),
    ("ablation_release_buk", "Ablation — release policy (BUK)"),
    ("ablation_release_embar", "Ablation — release policy (EMBAR)"),
    ("ablation_bitvector", "Ablation — bit-vector granularity"),
    ("ablation_twoversion", "Ablation — two-version loops"),
    ("ablation_adaptive", "Ablation — adaptive suppression"),
    ("locality_curves", "Extension — locality curves"),
]


def main(argv: list[str]) -> int:
    if "--skip-benchmarks" not in argv:
        print("running the benchmark suite (a few minutes)...", flush=True)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "benchmarks/",
             "--benchmark-only", "-q"],
            cwd=REPO,
        )
        if proc.returncode != 0:
            print("benchmark suite failed", file=sys.stderr)
            return proc.returncode

    sections = [
        "# RESULTS — regenerated evaluation",
        "",
        "Produced by `python scripts/regen_experiments.py`. Shapes are",
        "compared against the paper in EXPERIMENTS.md.",
        "",
    ]
    missing = []
    for stem, heading in ORDER:
        path = RESULTS / f"{stem}.txt"
        if not path.exists():
            missing.append(stem)
            continue
        sections.append(f"## {heading}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```")
        sections.append("")
    sys.path.insert(0, str(REPO / "src"))
    from repro.ioutil import atomic_write_text

    out = REPO / "RESULTS.md"
    atomic_write_text(out, "\n".join(sections))
    print(f"wrote {out} ({len(ORDER) - len(missing)} sections)")
    if missing:
        print("missing renderings:", ", ".join(missing))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
