"""Hiding DSM page-fetch latency with the unchanged compiler pass.

The paper's Section 6 proposes applying the same compiler technology to
distributed shared memory: the "disk" becomes a set of remote home nodes,
a page fault becomes a remote fetch over the network, and nothing about
the compiler, hints, or run-time layer changes.

This example runs the same stencil program on the disk platform and on a
4-node DSM platform, compiling once per platform (the pass picks its
prefetch distance from the platform's fault latency).

Run:  python examples/dsm_prefetch.py
"""

from __future__ import annotations

from repro import CompilerOptions, Machine, PlatformConfig, insert_prefetches, run_program
from repro.apps import synthetic
from repro.harness.report import render_table


def run_on(platform: PlatformConfig, label: str, rows: list) -> None:
    # A 2x-memory stencil sweep: the same source program each time.
    nelems = 2 * platform.available_frames * 512
    program = synthetic.stencil1d(nelems, radius=2, cost_us=8.0)
    options = CompilerOptions.from_platform(platform)
    compiled = insert_prefetches(program, options)

    stats_o = run_program(program, Machine(platform, prefetching=False))
    stats_p = run_program(compiled.program, Machine(platform, prefetching=True))
    rows.append([
        label,
        f"{platform.average_fault_latency_us() / 1000:.1f} ms",
        f"{stats_o.elapsed_us / 1e6:.2f} s",
        f"{stats_p.elapsed_us / 1e6:.2f} s",
        f"{stats_o.elapsed_us / stats_p.elapsed_us:.2f}x",
        f"{100 * (1 - stats_p.times.idle / max(stats_o.times.idle, 1e-9)):.0f}%",
    ])


def main() -> None:
    rows: list = []
    run_on(PlatformConfig(), "7 local disks", rows)
    run_on(PlatformConfig.dsm(home_nodes=4), "4 DSM home nodes", rows)
    print(render_table(
        ["substrate", "fault latency", "paged VM", "prefetching",
         "speedup", "stall eliminated"],
        rows,
        title="Same compiler pass, two latency domains (paper Section 6)",
    ))
    print()
    print("The pass re-derives its prefetch distance from each platform's")
    print("fault latency; the program and every mechanism stay identical.")


if __name__ == "__main__":
    main()
