"""Job farm: a supervised worker pool that survives a worker kill.

Submits a small mixed batch (runs, a compare, a sweep) to a two-worker
farm while a declarative chaos plan SIGKILLs the worker running the
first dispatched job 0.3 s in.  The farm detects the death, respawns
the slot, and retries the job with ``resume=True`` -- it restarts from
its newest checkpoint on the other worker and finishes **bit-identical**
to an uninterrupted run, which this script verifies directly.

Run:  python examples/job_farm.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.faults.farm import FarmChaosPlan, WorkerFault
from repro.serve import FarmConfig, JobSpec, RetryPolicy, run_farm
from repro.serve.worker import execute_job

#: The job the chaos plan will kill mid-run: ~1 s of wall time with a
#: checkpoint every 10k simulated us, so the retry resumes most of it.
VICTIM = JobSpec(kind="run", app="MGRID", pages=480, memory_pages=96,
                 job_id="victim", seed=2, priority=2)

BATCH = [
    VICTIM,
    JobSpec(kind="run", app="EMBAR", pages=120, memory_pages=96,
            job_id="embar", seed=1),
    JobSpec(kind="compare", app="BUK", pages=200, memory_pages=96,
            job_id="buk-compare", seed=1),
    JobSpec(kind="sweep", app="EMBAR", memory_pages=96, job_id="sweep",
            multiples=(0.5, 1.5)),
]

#: Strike the worker running the 1st dispatched attempt (the victim --
#: highest priority, so it dispatches first), 0.3 s after it starts.
CHAOS = FarmChaosPlan(faults=(WorkerFault(on_start=1, delay_s=0.3,
                                          op="kill"),))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        baseline_dir = workdir / "baseline"
        baseline_dir.mkdir()
        print("solo baseline run of the victim job (no farm, no kill)...")
        baseline = execute_job(VICTIM, baseline_dir, resume=False)

        print(f"farm: 2 workers, {len(BATCH)} jobs, 1 scheduled SIGKILL\n")
        config = FarmConfig(workers=2,
                            retry=RetryPolicy(base_s=0.05, cap_s=0.2))
        report = run_farm(BATCH, config, workdir / "farm", chaos=CHAOS)

        for rec in report.records:
            note = rec.failures[-1] if rec.failures else ""
            if rec.preemptions:
                note = (f"preempted x{rec.preemptions} by a"
                        f" higher-priority retry {note}").strip()
            print(f"  {rec.spec.job_id:12s} {rec.state:6s}"
                  f" attempts={rec.attempts} {note}")
        victim = next(r for r in report.records
                      if r.spec.job_id == "victim")
        assert victim.attempts == 2, "the kill should cost one attempt"
        assert victim.result == baseline, "resume must be bit-identical"
        print(f"\nvictim was killed, resumed on the other worker, and its"
              f" result is bit-identical to the solo run")
        print(f"farm wall time {report.wall_s:.2f} s;"
              f" restarts={report.metrics.value('serve.worker_restarts'):g}"
              f" resumes={report.metrics.value('serve.resumes'):g}")


if __name__ == "__main__":
    main()
