"""Out-of-core 3-D stencil relaxation (the MGRID workload).

Shows what the compiler does with a 7-point stencil whose grid is twice
the size of memory: group locality merges the neighbours that share pages,
the plane-apart neighbours become three parallel prefetch streams, and the
run-time layer silently filters the duplicate prefetches those streams
generate.

Run:  python examples/stencil_solver.py
"""

from __future__ import annotations

from repro import CompilerOptions, PlatformConfig, insert_prefetches
from repro.apps.registry import get_app
from repro.core.analysis.planner import PlanKind
from repro.core.ir.printer import format_program
from repro.harness.experiment import compare_app, default_data_pages


def main() -> None:
    platform = PlatformConfig()
    spec = get_app("MGRID")
    pages = default_data_pages(platform)
    program = spec.make(pages)

    options = CompilerOptions.from_platform(platform)
    compiled = insert_prefetches(program, options)

    print("=== What the compiler found in the stencil ===")
    for plan in compiled.plan.plans:
        if plan.kind is PlanKind.COVERED:
            print(f"  {plan.ref!r}: covered by its group leader (group locality)")
        elif plan.kind is PlanKind.DENSE:
            print(
                f"  {plan.ref!r}: prefetch stream, pipelined across "
                f"'{plan.pipeline_loop.var}', {plan.pages_per_hint} pages per "
                f"hint, {plan.distance_strips} strips ahead"
            )
        elif plan.kind is PlanKind.NONE:
            print(f"  {plan.ref!r}: not prefetched ({plan.reason})")
    print()

    print("=== First lines of the transformed relaxation sweep ===")
    text = format_program(compiled.program, include_decls=False)
    print("\n".join(text.splitlines()[:14]))
    print("  ...")
    print()

    print("=== Out-of-core run (grid ~2x memory) ===")
    result = compare_app(spec, platform)
    o, p = result.original.stats, result.prefetch.stats
    print(f"  paged VM:    {o.elapsed_us / 1e6:6.2f}s "
          f"({100 * o.times.idle / o.elapsed_us:.0f}% I/O stall)")
    print(f"  prefetching: {p.elapsed_us / 1e6:6.2f}s "
          f"({100 * p.times.idle / p.elapsed_us:.0f}% I/O stall)")
    print(f"  speedup:     {result.speedup:.2f}x, "
          f"{100 * result.stall_eliminated:.0f}% of the stall eliminated")
    print(f"  run-time layer filtered "
          f"{100 * p.prefetch.unnecessary_fraction:.0f}% of the inserted "
          f"prefetches (the overlapping plane streams)")


if __name__ == "__main__":
    main()
