"""Symbolic loop bounds, lost coverage, and the two-version-loop fix.

Reproduces the paper's APPBT pathology end to end (Section 4.1.1): an
inner loop whose bound only exists at run time makes the compiler pipeline
prefetches across the wrong loop, so "the software pipeline never gets
started" and coverage craters.  The paper's proposed fix -- compile two
versions of the loop and pick one with a runtime bound test -- is
implemented in this package and demonstrated here.

Run:  python examples/adaptive_twoversion.py
"""

from __future__ import annotations

from repro import CompilerOptions, PlatformConfig, insert_prefetches
from repro.apps.registry import get_app
from repro.core.ir.nodes import If
from repro.core.ir.printer import format_program
from repro.harness.experiment import compare_app


def main() -> None:
    platform = PlatformConfig()
    spec = get_app("APPBT")

    print("APPBT's 5x5 block solves hide their loop bound from the compiler:")
    print("the grid array is declared u[.][.][.][B] with B a runtime argument.\n")

    baseline_opts = CompilerOptions.from_platform(platform)
    fixed_opts = CompilerOptions.from_platform(platform, two_version_loops=True)

    baseline = compare_app(spec, platform, options=baseline_opts)
    fixed = compare_app(spec, platform, options=fixed_opts)

    print("=== Baseline pass (assumes symbolic trips are large) ===")
    f = baseline.prefetch.stats.faults
    print(f"  coverage: {100 * f.coverage:.0f}%  "
          f"speedup: {baseline.speedup:.2f}x  "
          f"(missed faults: {f.nonprefetched_fault})")
    print()

    print("=== Two-version loops (the Section 4.1.1 fix) ===")
    f = fixed.prefetch.stats.faults
    print(f"  coverage: {100 * f.coverage:.0f}%  "
          f"speedup: {fixed.speedup:.2f}x  "
          f"(missed faults: {f.nonprefetched_fault})")
    print()

    # Show the runtime test the fix emits.
    compiled = insert_prefetches(spec.make(64), fixed_opts)
    guard = next(
        (stmt for stmt in compiled.program.body if isinstance(stmt, If)), None
    )
    if guard is not None:
        text = format_program(compiled.program, include_decls=False)
        first_if = next(
            line for line in text.splitlines() if line.lstrip().startswith("if")
        )
        print("The generated code chooses a version at run time:")
        print(f"  {first_if.strip()}")
        print("  ... <large-trip pipelining> ... else ... <small-trip pipelining> ...")


if __name__ == "__main__":
    main()
