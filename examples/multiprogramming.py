"""Multiprogramming: two out-of-core applications sharing one machine.

The paper's Section 6 looks ahead to multiprogrammed workloads.  This
example co-schedules two applications on one simulated machine (one CPU,
one memory, one disk array) and shows the two headline effects:

1. co-scheduling alone already overlaps some paging stall (one process
   computes while the other waits on the disks) -- and compiler-inserted
   prefetching still wins on top of it;
2. an application that releases behind itself (EMBAR) keeps most of
   memory free *while running with a neighbour*, leaving instant room
   for further arrivals.

Run:  python examples/multiprogramming.py
"""

from __future__ import annotations

from repro import CompilerOptions, PlatformConfig, insert_prefetches
from repro.apps.registry import get_app
from repro.harness.report import render_table
from repro.multiprog import CoScheduler


def run_pair(platform, prefetching: bool):
    options = CompilerOptions.from_platform(platform)
    sched = CoScheduler(platform)
    for k, app_name in enumerate(("EMBAR", "MGRID")):
        program = get_app(app_name).make(
            2 * platform.available_frames, seed=k + 1
        )
        if prefetching:
            program = insert_prefetches(program, options).program
        sched.add_process(program, name=app_name, prefetching=prefetching)
    return sched.run()


def main() -> None:
    platform = PlatformConfig()
    rows = []
    for label, prefetching in (("paged VM", False), ("prefetching", True)):
        result = run_pair(platform, prefetching)
        free = result.stats.memory.avg_free_fraction(result.elapsed_us)
        for proc in result.processes:
            rows.append([
                label,
                proc.name,
                f"{proc.finish_us / 1e6:.2f}s",
                f"{proc.cpu_us / 1e6:.2f}s",
                f"{proc.blocked_us / 1e6:.2f}s",
                f"{proc.queued_us / 1e6:.2f}s",
            ])
        rows.append([
            label, "(machine)",
            f"{result.elapsed_us / 1e6:.2f}s",
            f"idle {100 * result.times.idle / result.elapsed_us:.0f}%",
            f"free mem {100 * free:.0f}%",
            "",
        ])
    print(render_table(
        ["variant", "process", "finish", "cpu", "blocked on I/O",
         "waiting for CPU"],
        rows,
        title="EMBAR + MGRID sharing one machine",
    ))
    print()
    print("Prefetching converts 'blocked on I/O' into 'waiting for CPU':")
    print("the machine stops idling, and EMBAR's releases keep memory free")
    print("for whoever arrives next.")


if __name__ == "__main__":
    main()
