"""Out-of-core bucket sort: the paper's BUK case study (Figure 8).

A scientist writes a plain bucket sort over keys that no longer fit in
memory.  Without prefetching, execution time jumps discontinuously the
moment the keys outgrow memory; with compiler-inserted prefetching the
same source code keeps scaling almost linearly -- and the release hints
keep most of memory free for other applications while it runs.

Run:  python examples/out_of_core_sort.py
"""

from __future__ import annotations

from repro.apps.registry import get_app
from repro.config import PlatformConfig
from repro.harness.experiment import compare_app
from repro.harness.report import ascii_bars, render_table


def main() -> None:
    platform = PlatformConfig(memory_pages=192)  # 144 app frames
    spec = get_app("BUK")
    available = platform.available_frames

    print("Sorting ever larger key sets on a machine with "
          f"{platform.available_bytes // 1024} KB of application memory\n")

    rows = []
    labels, values = [], []
    for multiple in (0.5, 0.75, 1.0, 1.5, 2.0, 3.0):
        pages = int(available * multiple)
        result = compare_app(spec, platform, data_pages=pages)
        rows.append([
            f"{multiple:.2f}x memory",
            f"{pages * platform.page_size // 1024} KB",
            f"{result.original.elapsed_us / 1e6:.2f}s",
            f"{result.prefetch.elapsed_us / 1e6:.2f}s",
            f"{result.speedup:.2f}x",
            f"{100 * result.prefetch.stats.memory.avg_free_fraction(result.prefetch.elapsed_us):.0f}%",
        ])
        labels += [f"{multiple:.2f}x O", f"{multiple:.2f}x P"]
        values += [result.original.elapsed_us / 1e6,
                   result.prefetch.elapsed_us / 1e6]

    print(render_table(
        ["problem size", "keys+ranks", "paged VM", "prefetching",
         "speedup", "memory kept free"],
        rows,
        title="BUK across problem sizes (the Figure 8 story)",
    ))
    print()
    print(ascii_bars(labels, values, unit="s"))
    print()
    print("Note the paged-VM discontinuity at 1.0x memory -- and that the")
    print("prefetching version also wins in-core, by hiding cold faults.")


if __name__ == "__main__":
    main()
