"""Quickstart: compile the paper's Figure 2(a) loop and watch it speed up.

Builds the loop nest of the paper's Figure 2(a)::

    for (i = 0; i < 100000; i++)
      for (j = 0; j < 10; j++)
        a[b[i]] += c[i][j] * b[i];

runs the prefetching compiler pass over it (printing the Figure 2(b)
analog it produces), and executes both versions on the simulated
out-of-core platform.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CompilerOptions, Machine, PlatformConfig, insert_prefetches, run_program
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, Var
from repro.core.ir.printer import format_program


def build_figure2a(n: int = 80_000, m: int = 10, target_elems: int = 250_000):
    """The Figure 2(a) loop nest, sized out-of-core for the platform."""
    rng = np.random.default_rng(42)
    builder = ProgramBuilder("figure2a")
    i, j = Var("i"), Var("j")
    b_data = rng.integers(0, target_elems, size=n)
    a = builder.array("a", (target_elems,), elem_size=4)
    b = builder.array("b", (n,), elem_size=4, data=b_data)
    c = builder.array("c", (n, m), elem_size=4)
    builder.append(
        loop("i", 0, n, [
            loop("j", 0, m, [
                work([read(c, i, j)], cost=2.5, text="sum += c[i][j];"),
            ]),
            work(
                [read(b, i), write(a, ElemOf(b, i))],
                cost=4.0,
                text="a[b[i]] += sum * b[i];",
            ),
        ])
    )
    return builder.build()


def main() -> None:
    platform = PlatformConfig()
    program = build_figure2a()

    print("=== Input program (Figure 2(a)) ===")
    print(format_program(program))
    print()

    options = CompilerOptions.from_platform(platform)
    result = insert_prefetches(program, options)
    print("=== Compiler decisions ===")
    print(result.report())
    print()
    print("=== Output of the prefetching compiler (Figure 2(b) analog) ===")
    print(format_program(result.program, include_decls=False))
    print()

    print("=== Executing on the simulated platform ===")
    stats_o = run_program(program, Machine(platform, prefetching=False))
    stats_p = run_program(result.program, Machine(platform, prefetching=True))

    for label, stats in (("original (paged VM)", stats_o), ("with prefetching", stats_p)):
        t = stats.times
        print(
            f"{label:>22}: {stats.elapsed_us / 1e6:6.2f}s "
            f"(user {t.user / 1e6:.2f}s, system {t.system / 1e6:.2f}s, "
            f"I/O stall {t.idle / 1e6:.2f}s)"
        )
    print(f"{'speedup':>22}: {stats_o.elapsed_us / stats_p.elapsed_us:.2f}x")
    f = stats_p.faults
    print(
        f"{'fault coverage':>22}: {100 * f.coverage:.1f}% "
        f"({f.prefetched_hit} hidden, {f.prefetched_fault} partial, "
        f"{f.nonprefetched_fault} missed)"
    )
    p = stats_p.prefetch
    print(
        f"{'prefetch filtering':>22}: {p.compiler_inserted} inserted, "
        f"{p.filtered} dropped at user level, {p.issued_pages} issued to OS"
    )


if __name__ == "__main__":
    main()
