"""Deterministic seed derivation, centralized.

Every stochastic corner of the system -- fault injection RNGs, retry
jitter, fuzz strategies, synthetic data generators -- derives its random
stream from a *root seed* plus a path of salt parts, so that

* the same root seed always reproduces the same behaviour everywhere
  (runs, fault schedules, retry delays, generated scenarios), and
* independent consumers (two disks, two jobs, two fuzz families) get
  *uncorrelated* streams even though they share one root seed.

The derivation is a stable string key: ``derive_key(7, "disk", 2)`` is
``"7:disk:2"``.  ``random.Random`` accepts the string directly (it
hashes it internally, version-stable since Python 3), which is exactly
the idiom the fault and serve layers used before this module existed --
so routing them through here keeps every pinned stream bit-identical.

For consumers that need an *integer* seed (numpy generators, hypothesis)
``derive_int`` hashes the same key with SHA-256, so it is stable across
processes and Python versions (``hash()`` is salted per process and must
never be used for this).
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_key", "derive_rng", "derive_int"]


def derive_key(*parts: object) -> str:
    """The canonical salt key: parts joined with ``:``."""
    return ":".join(str(part) for part in parts)


def derive_rng(*parts: object) -> random.Random:
    """A ``random.Random`` seeded from the derived key.

    ``derive_rng(seed, "disk", 2)`` is exactly
    ``random.Random(f"{seed}:disk:2")`` -- the historical call-site
    spelling -- so existing pinned streams do not move.
    """
    return random.Random(derive_key(*parts))


def derive_int(*parts: object, bits: int = 64) -> int:
    """A stable non-negative integer derived from the key.

    Process-independent (SHA-256, not ``hash()``); suitable for numpy
    ``default_rng`` seeds and hypothesis ``seed()`` values.
    """
    digest = hashlib.sha256(derive_key(*parts).encode()).digest()
    return int.from_bytes(digest, "big") % (1 << bits)
