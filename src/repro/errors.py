"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch everything the library throws
with a single ``except`` clause while letting genuine bugs (``TypeError``,
``KeyError``, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid :class:`~repro.config.PlatformConfig` was supplied."""


class IRError(ReproError):
    """An IR construction or validation problem (malformed loop nest)."""


class AnalysisError(ReproError):
    """The compiler analysis encountered a program it cannot reason about."""


class ExecutionError(ReproError):
    """The interpreter encountered an unevaluable expression or bad state."""


class AddressError(ExecutionError):
    """An array reference evaluated to an out-of-segment address."""


class MachineError(ReproError):
    """Inconsistent machine/VM state detected at run time."""
