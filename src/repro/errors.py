"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch everything the library throws
with a single ``except`` clause while letting genuine bugs (``TypeError``,
``KeyError``, ...) propagate.
"""

from __future__ import annotations

import enum


class ExitCode(enum.IntEnum):
    """Process exit codes the ``repro`` CLI is allowed to return.

    Every command returns one of these (``main()`` converts the raised
    :class:`ProcessCrash` to :attr:`CRASH`); harnesses and CI scripts
    branch on the numbers, so the meanings are frozen:

    * ``OK`` (0) -- the command succeeded.
    * ``FAILURE`` (1) -- the command ran but its gate failed: a trace
      failed validation, a benchmark regressed, a stall-attribution
      conservation check broke.
    * ``USAGE`` (2) -- bad invocation (argparse also exits 2 on its own).
    * ``CRASH`` (3) -- a planned ``process_crash`` fault killed the
      simulated process; stderr carries the ``--resume-from`` hint.
    * ``JOB_FAILED`` (4) -- ``repro serve`` drove every job to a
      terminal state but at least one ended quarantined or shed.
    """

    OK = 0
    FAILURE = 1
    USAGE = 2
    CRASH = 3
    JOB_FAILED = 4


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid :class:`~repro.config.PlatformConfig` was supplied."""


def ensure_finite(value: float, what: str,
                  exc: type[ReproError] = ConfigError) -> float:
    """Reject NaN and infinities with a clear :class:`ReproError`.

    Range checks alone let non-finite values through (``nan < 0`` is
    false), and a single NaN cost or timestamp silently poisons every
    clock accumulator downstream -- the fuzzer found this the hard way.
    Returns ``value`` so validators can use it inline.
    """
    import math

    if not math.isfinite(value):
        raise exc(f"{what} must be finite, got {value}")
    return value


class IRError(ReproError):
    """An IR construction or validation problem (malformed loop nest)."""


class AnalysisError(ReproError):
    """The compiler analysis encountered a program it cannot reason about."""


class ExecutionError(ReproError):
    """The interpreter encountered an unevaluable expression or bad state."""


class AddressError(ExecutionError):
    """An array reference evaluated to an out-of-segment address."""


class MachineError(ReproError):
    """Inconsistent machine/VM state detected at run time."""


class CheckpointError(ReproError):
    """A checkpoint file or snapshot could not be written, read, or applied."""


class ProcessCrash(Exception):
    """An injected process death (the ``crashes`` fault kind).

    Deliberately *not* a :class:`ReproError`: a crash is simulated control
    flow, not a library failure, and must not be swallowed by blanket
    ``except ReproError`` handlers.  Raised at an interpreter safe point,
    so the machine state it abandons is always snapshot-consistent.
    """

    def __init__(self, scheduled_us: float, at_us: float, cursor: int,
                 checkpoint_path: str | None = None) -> None:
        super().__init__(
            f"process crashed at simulated cycle {at_us:.0f} us "
            f"(scheduled at {scheduled_us:.0f} us, interpreter unit {cursor})"
        )
        #: The cycle the plan asked the crash to happen at.
        self.scheduled_us = scheduled_us
        #: The safe-point cycle the crash was actually delivered at.
        self.at_us = at_us
        #: Interpreter unit cursor at the moment of death.
        self.cursor = cursor
        #: Newest checkpoint written before the crash, when one exists.
        self.checkpoint_path = checkpoint_path
