"""Platform configuration: the Table-1 analog of the paper.

The paper evaluates on the Hector multiprocessor running the Hurricane OS
with 64 MB of memory (roughly 48 MB available to the application) and seven
disks, with pages striped round-robin across all disks (paper, Section 3.1
and Table 1).  We reproduce the same *structure* at a smaller scale so that
the trace-driven simulation stays tractable in pure Python: the default
platform has 2 MB of physical memory (512 four-KB pages) of which 75% is
available to the application, and seven simulated disks.

All times in this package are simulated **microseconds**.  The disk timing
parameters are modeled on a mid-1990s SCSI disk (~10 ms average seek,
5400 RPM, ~5 MB/s media rate) matching the era of the paper's platform.

Scaling note (recorded in DESIGN.md): the paper's results are ratios --
speedups, stall fractions, coverage and filtering percentages -- which are
preserved under proportional scaling of memory and data-set size as long as
the compute-per-page to disk-latency ratio is kept in the same regime.  The
benchmark harness documents the scale used for every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError, ensure_finite

#: Number of bytes in one virtual-memory page on the default platform.
DEFAULT_PAGE_SIZE = 4096

#: Default number of physical page frames (2 MB of memory).
DEFAULT_MEMORY_PAGES = 512

#: Fraction of physical memory available to the application.  The paper's
#: 64 MB machine left roughly 48 MB (75%) to the application (Section 4.3.3).
DEFAULT_AVAILABLE_FRACTION = 0.75

#: Number of disks the file system stripes across (paper, Section 3.1).
DEFAULT_NUM_DISKS = 7


@dataclass(frozen=True)
class DiskParameters:
    """Service-time model for one disk.

    A *random* access pays seek + rotational latency + transfer; a
    *sequential* access (the next block of the same extent, detected by the
    disk model from the previously served block address) pays only the
    transfer time plus a small command overhead.  The extent-based on-disk
    layout of the paper's file system (Section 3.1) makes sequential file
    blocks sequential on disk, which is what makes striping + extents pay
    off for the prefetching version.
    """

    avg_seek_us: float = 10_000.0
    short_seek_us: float = 2_500.0
    rotational_us: float = 5_600.0  # half a revolution at 5400 RPM
    transfer_us_per_page: float = 800.0  # 4 KB at ~5 MB/s
    command_overhead_us: float = 300.0
    #: Block distance within which a seek counts as short (a streaming
    #: read interleaved with its own trailing write-backs stays inside
    #: this window, as it would under a real elevator scheduler).
    near_window_blocks: int = 128

    def __post_init__(self) -> None:
        # Zero seek / rotation is legal (the DSM profile is position
        # independent), but negative time is not, and the transfer term
        # must stay positive so every service time is > 0.
        for name in ("avg_seek_us", "short_seek_us", "rotational_us",
                     "command_overhead_us", "transfer_us_per_page"):
            value = ensure_finite(getattr(self, name), f"disk parameter {name!r}")
            if value < 0:
                raise ConfigError(f"disk parameter {name!r} must be >= 0, got {value}")
        if self.transfer_us_per_page <= 0:
            raise ConfigError(
                f"transfer_us_per_page must be > 0, got {self.transfer_us_per_page}"
            )
        if self.near_window_blocks < 0:
            raise ConfigError(
                f"near_window_blocks must be >= 0, got {self.near_window_blocks}"
            )

    def random_service_us(self, pages: int = 1) -> float:
        """Service time for a random access of ``pages`` contiguous pages."""
        return (
            self.command_overhead_us
            + self.avg_seek_us
            + self.rotational_us
            + pages * self.transfer_us_per_page
        )

    def near_service_us(self, pages: int = 1) -> float:
        """Service time for a short seek within the near window."""
        return (
            self.command_overhead_us
            + self.short_seek_us
            + self.rotational_us / 2
            + pages * self.transfer_us_per_page
        )

    def sequential_service_us(self, pages: int = 1) -> float:
        """Service time when the head is already positioned (same extent)."""
        return self.command_overhead_us + pages * self.transfer_us_per_page

    @classmethod
    def dsm_network(cls) -> "DiskParameters":
        """A DSM latency profile instead of a disk (paper Section 6).

        "Page-based prefetching is applicable to domains other than disk
        I/O; for example, we are adapting our compiler technology to
        prefetch the page-sized chunks of data that are communicated
        between workstations in distributed shared memory (DSM) systems."

        A remote page fetch is a software RPC plus a network transfer:
        position-independent (no seek or rotation), a few milliseconds
        flat at mid-90s LAN speeds.
        """
        return cls(
            avg_seek_us=0.0,
            short_seek_us=0.0,
            rotational_us=0.0,
            transfer_us_per_page=3_300.0,  # 4 KB at ~10 Mbit/s
            command_overhead_us=1_200.0,  # RPC + protocol handling
            near_window_blocks=1,
        )


@dataclass(frozen=True)
class CostModel:
    """CPU-side cost model (simulated microseconds).

    The paper reports that dropping an unnecessary prefetch in the run-time
    layer costs roughly 1% of issuing it to the OS (Section 4.1.1), and that
    fault handling and prefetch system calls are inflated by instrumentation
    and uncached OS data structures (Section 3.1).  The defaults below keep
    those ratios.
    """

    #: OS time to handle one page fault (trap, page-table walk, map-in).
    fault_service_us: float = 400.0
    #: OS time to reclaim a page that is still on the free list (no I/O).
    fault_reclaim_us: float = 120.0
    #: System-call overhead of one prefetch request reaching the OS.
    prefetch_syscall_us: float = 150.0
    #: Incremental OS cost per page within one block prefetch call.
    prefetch_per_page_us: float = 15.0
    #: System-call overhead of one release request.
    release_syscall_us: float = 120.0
    #: Incremental OS cost per page within one release call.
    release_per_page_us: float = 10.0
    #: User-level run-time layer cost of checking one page in the bit vector.
    filter_check_us: float = 1.5
    #: User-level cost of computing one prefetch address (address generation
    #: instructions inserted by the compiler).
    addr_gen_us: float = 0.4

    def validate(self) -> None:
        for name, value in vars(self).items():
            ensure_finite(value, f"cost model field {name!r}")
            if value < 0:
                raise ConfigError(f"cost model field {name!r} must be >= 0, got {value}")


@dataclass(frozen=True)
class PlatformConfig:
    """Complete description of the simulated machine (Table 1 analog)."""

    page_size: int = DEFAULT_PAGE_SIZE
    memory_pages: int = DEFAULT_MEMORY_PAGES
    available_fraction: float = DEFAULT_AVAILABLE_FRACTION
    num_disks: int = DEFAULT_NUM_DISKS
    disk: DiskParameters = field(default_factory=DiskParameters)
    cost: CostModel = field(default_factory=CostModel)
    #: Pages fetched per block prefetch for references with spatial locality
    #: (paper Section 2.3: "four pages are fetched at a time").
    prefetch_block_pages: int = 4
    #: Virtual pages represented by one bit of the shared residency bit
    #: vector (paper Section 2.4: granularity chosen by the run-time layer).
    bitvector_granularity: int = 1
    #: Fraction of application frames the page-out daemon keeps free.
    #: Like every paged VM of the era, Hurricane replenishes a free pool
    #: in the background (the paper's OS drops prefetches only when "all
    #: memory is in use", which the daemon makes rare); the daemon runs on
    #: another processor of the Hector machine, so it costs no CPU time
    #: here -- only the disk traffic of its dirty write-backs.
    free_target_fraction: float = 0.08

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigError(f"page_size must be a positive power of two, got {self.page_size}")
        if self.memory_pages <= 0:
            raise ConfigError(f"memory_pages must be positive, got {self.memory_pages}")
        if not 0.0 < self.available_fraction <= 1.0:
            raise ConfigError(
                f"available_fraction must be in (0, 1], got {self.available_fraction}"
            )
        if self.num_disks <= 0:
            raise ConfigError(f"num_disks must be positive, got {self.num_disks}")
        if self.prefetch_block_pages <= 0:
            raise ConfigError(
                f"prefetch_block_pages must be positive, got {self.prefetch_block_pages}"
            )
        if self.bitvector_granularity <= 0:
            raise ConfigError(
                f"bitvector_granularity must be positive, got {self.bitvector_granularity}"
            )
        if not 0.0 <= self.free_target_fraction < 1.0:
            raise ConfigError(
                f"free_target_fraction must be in [0, 1), got {self.free_target_fraction}"
            )
        self.cost.validate()

    @property
    def available_frames(self) -> int:
        """Physical frames usable by the application (the rest is the OS)."""
        return max(1, int(self.memory_pages * self.available_fraction))

    @property
    def memory_bytes(self) -> int:
        return self.memory_pages * self.page_size

    @property
    def available_bytes(self) -> int:
        return self.available_frames * self.page_size

    def scaled(self, **overrides: Any) -> "PlatformConfig":
        """Return a copy with the given fields replaced.

        Convenience for experiments that shrink memory (Figure 8's problem
        size sweep) or disable block prefetching (ablations).
        """
        return replace(self, **overrides)

    def average_fault_latency_us(self) -> float:
        """Rough end-to-end latency of one demand page fault.

        Used by the compiler's software-pipelining stage to choose the
        prefetch distance, mirroring how the paper's compiler was given the
        page-fault latency as an input parameter (Section 2.3).
        """
        return self.cost.fault_service_us + self.disk.random_service_us(1)

    @classmethod
    def dsm(cls, home_nodes: int = 4, **overrides: Any) -> "PlatformConfig":
        """A DSM platform: remote home nodes instead of disks (Section 6).

        Pages stripe round-robin across ``home_nodes`` peer workstations;
        a "read" is a remote page fetch, a "write-back" pushes the page
        home.  Everything else -- the compiler, the hints, the run-time
        layer -- is unchanged, which is the paper's point.
        """
        base = dict(
            num_disks=home_nodes,
            disk=DiskParameters.dsm_network(),
        )
        base.update(overrides)
        return cls(**base)


#: The default simulated platform, used by tests and examples.
DEFAULT_PLATFORM = PlatformConfig()
