"""The co-scheduler: round-robin quanta over shared hardware.

One clock, one memory manager (with its page-out daemon and drop-under-
pressure prefetch semantics), one run-time layer, one disk array -- and
any number of processes.  A process runs until its quantum expires or it
blocks on a page fault; the CPU then switches.  The machine is idle only
when *every* process is blocked, which is exactly the multiprogramming
payoff the paper anticipates: prefetching turns one process's stall into
another's runtime, and releases keep a streaming process from crowding
out its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PlatformConfig
from repro.core.ir.nodes import Program
from repro.errors import MachineError, ensure_finite
from repro.faults.inject import FaultInjector, LaggedBitVector
from repro.multiprog.stream import ProcessStream
from repro.obs.trace import TraceKind
from repro.runtime.layer import RuntimeLayer
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats, TimeBreakdown
from repro.storage.array_ctl import DiskArray
from repro.vm.manager import MemoryManager
from repro.vm.page_table import AddressSpace


@dataclass
class ProcessResult:
    """Per-process outcome of a co-scheduled run."""

    name: str
    prefetching: bool
    #: CPU time attributed to this process (compute + its syscalls).
    cpu_us: float = 0.0
    #: Time spent blocked on its own page faults.
    blocked_us: float = 0.0
    #: Time spent runnable but waiting for the CPU.
    queued_us: float = 0.0
    finish_us: float = 0.0
    faults: int = 0


@dataclass
class ScheduleResult:
    """Outcome of one co-scheduled run."""

    elapsed_us: float
    processes: list[ProcessResult]
    stats: RunStats
    times: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: CPU-idle time accumulated by the scheduler itself (every process
    #: blocked on the disks).  Together with the memory manager's
    #: frame-pin waits this accounts for ``times.stall_read`` *exactly*
    #: -- the multiprog stall-conservation oracle (tests/test_fuzz.py).
    idle_wait_us: float = 0.0

    def process(self, name: str) -> ProcessResult:
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise MachineError(f"no process named {name!r}")


class _Proc:
    __slots__ = ("name", "prefetching", "result", "gen", "chunk", "chunk_pos",
                 "blocked_until", "block_start", "runnable_since", "done")

    def __init__(self, name: str, prefetching: bool, gen) -> None:
        self.name = name
        self.prefetching = prefetching
        self.result = ProcessResult(name, prefetching)
        self.gen = gen
        self.blocked_until = 0.0
        self.block_start = 0.0
        self.runnable_since = 0.0
        self.done = False


class CoScheduler:
    """Runs several programs on one shared simulated machine."""

    def __init__(self, platform: PlatformConfig | None = None,
                 quantum_us: float = 20_000.0, observer=None,
                 fault_plan=None) -> None:
        ensure_finite(quantum_us, "quantum", MachineError)
        if quantum_us <= 0:
            raise MachineError(f"quantum must be positive, got {quantum_us}")
        self.platform = platform or PlatformConfig()
        self.quantum_us = quantum_us
        self.clock = Clock()
        self.stats = RunStats()
        #: Attached :class:`repro.obs.Observer`, or None.  The machine is
        #: shared, so one observer sees every process's events interleaved
        #: in simulated-time order.
        self.obs = observer
        #: Active :class:`repro.faults.FaultInjector`, or None -- the same
        #: wiring as :class:`repro.machine.machine.Machine`, applied to
        #: the *shared* hardware so every tenant suffers the same storms,
        #: slow disks, and stale residency bits.  ``crashes`` entries are
        #: ignored: process crashes are delivered at interpreter safe
        #: points, and the co-scheduler replays event streams that have
        #: none.
        self.injector = (
            FaultInjector(fault_plan, self.platform.num_disks)
            if fault_plan is not None else None
        )
        self.address_space = AddressSpace(self.platform.page_size)
        self.disks = DiskArray(
            self.platform, observer=observer,
            faults=self.injector.storage if self.injector is not None else None,
        )
        self.manager = MemoryManager(
            self.platform, self.clock, self.disks, self.stats,
            observer=observer,
        )
        if self.injector is not None:
            for at_us, frames, hold_us in self.injector.storm_bursts():
                self.manager.schedule_pressure(at_us, frames, hold_us)
                self.stats.robust.storm_bursts += 1
        self.layer = RuntimeLayer(
            self.platform, self.clock, self.manager, self.stats,
            observer=observer,
        )
        if self.injector is not None:
            self.layer.hint_faults = self.injector.hints
            if self.injector.plan.bitvector_lag_us > 0:
                lagged = LaggedBitVector(
                    self.layer.bitvector, self.clock,
                    self.injector.plan.bitvector_lag_us,
                )
                self.layer.bitvector = lagged
                self.manager.bitvector = lagged
        self._procs: list[_Proc] = []
        self._ran = False
        self.idle_wait_us = 0.0

    # ------------------------------------------------------------------

    def add_process(
        self, program: Program, name: str | None = None, prefetching: bool = True
    ) -> None:
        """Register a program as one process (compile it first for P)."""
        if self._ran:
            raise MachineError("cannot add processes after run()")
        name = name or f"p{len(self._procs)}:{program.name}"
        stream = ProcessStream(
            program,
            self.address_space,
            self.platform.page_size,
            name,
            self.disks.register_segment,
        )
        self._procs.append(_Proc(name, prefetching, stream.events()))

    # ------------------------------------------------------------------

    def _fault_count(self) -> int:
        f = self.stats.faults
        return f.prefetched_fault + f.nonprefetched_fault

    def _handle(self, proc: _Proc, op: tuple) -> bool:
        """Execute one operation; True if the process blocked."""
        clock = self.clock
        kind = op[0]
        if kind == "compute":
            clock.advance(op[1], TimeCategory.USER_COMPUTE)
            return False
        if kind == "event":
            _, ev_kind, vpage, cost = op
            if cost:
                clock.advance(cost, TimeCategory.USER_COMPUTE)
            if ev_kind <= 1:
                ready = self.manager.access_async(vpage, ev_kind == 1)
                if ready > clock.now:
                    proc.blocked_until = ready
                    proc.block_start = clock.now
                    return True
                return False
            if not proc.prefetching:
                return False
            if ev_kind == 2:
                self.layer.prefetch(vpage, 1)
            else:
                self.layer.release([vpage])
            return False
        if not proc.prefetching:
            return False
        if kind == "prefetch":
            self.layer.prefetch(op[1], op[2])
        elif kind == "release":
            self.layer.release(op[1])
        elif kind == "prefetch_release":
            self.layer.prefetch_release(op[1], op[2], op[3])
        else:  # pragma: no cover - stream and scheduler evolve together
            raise MachineError(f"unknown stream operation {op!r}")
        return False

    def run(self) -> ScheduleResult:
        """Execute all processes to completion; returns the outcome."""
        if self._ran:
            raise MachineError("CoScheduler.run() called twice")
        if not self._procs:
            raise MachineError("no processes to run")
        self._ran = True
        clock = self.clock
        procs = self._procs
        turn = 0

        while True:
            live = [p for p in procs if not p.done]
            if not live:
                break
            runnable = [p for p in live if p.blocked_until <= clock.now]
            if not runnable:
                # Everybody is waiting on the disks: the CPU idles.
                earliest = min(p.blocked_until for p in live)
                waited = clock.wait_until(earliest, TimeCategory.STALL_READ)
                self.idle_wait_us += waited
                if waited and self.obs is not None:
                    # Same event the memory manager emits for its
                    # frame-pin waits: every STALL_READ advance of a
                    # co-scheduled run is then on the trace, which is
                    # what makes the stall-conservation oracle exact.
                    self.obs.emit(clock.now, TraceKind.STALL_FRAME_WAIT,
                                  -1, 1, waited, tag="scheduler")
                runnable = [p for p in live if p.blocked_until <= clock.now]

            # Round-robin among the runnable processes.
            proc = runnable[turn % len(runnable)]
            turn += 1

            if proc.block_start:
                # I/O wait ends at the page's arrival; any further delay
                # before being picked is CPU-queueing, counted below.
                proc.result.blocked_us += (
                    min(proc.blocked_until, clock.now) - proc.block_start
                )
                proc.block_start = 0.0
            proc.result.queued_us += max(
                0.0, clock.now - max(proc.runnable_since, proc.blocked_until)
            )

            slice_start = clock.now
            faults_before = self._fault_count()
            blocked = False
            while clock.now - slice_start < self.quantum_us:
                try:
                    op = next(proc.gen)
                except StopIteration:
                    proc.done = True
                    proc.result.finish_us = clock.now
                    break
                if self._handle(proc, op):
                    blocked = True
                    break
            proc.result.cpu_us += clock.now - slice_start
            proc.result.faults += self._fault_count() - faults_before
            proc.runnable_since = proc.blocked_until if blocked else clock.now

        self.manager.flush_dirty()
        result = ScheduleResult(
            elapsed_us=clock.now,
            processes=[p.result for p in procs],
            stats=self.stats,
            times=TimeBreakdown.from_clock(clock),
            idle_wait_us=self.idle_wait_us,
        )
        self.stats.elapsed_us = clock.now
        self.stats.times = result.times
        self.stats.disk = self.disks.snapshot_stats()
        return result
