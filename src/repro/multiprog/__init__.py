"""Multiprogrammed execution: several programs sharing one machine.

The paper's Section 6 agenda -- "multiple applications compete for shared
resources" -- made concrete: a round-robin CPU scheduler interleaves any
number of programs over one clock, one memory manager, one run-time layer,
and one disk array.  A process that faults *blocks* and the CPU switches
to another, so one process's I/O stall becomes another's compute time;
prefetch hints keep their drop-under-pressure semantics, now with real
competitors creating the pressure.
"""

from repro.multiprog.scheduler import CoScheduler, ProcessResult, ScheduleResult
from repro.multiprog.stream import ProcessStream

__all__ = ["CoScheduler", "ProcessResult", "ScheduleResult", "ProcessStream"]
