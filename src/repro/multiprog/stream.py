"""Per-process event streams.

A :class:`ProcessStream` walks one program's statement tree and yields a
flat sequence of machine operations, so a scheduler can interleave several
programs at event granularity.  Leaf loops go through the same vectorized
lowering as the single-process executor (`repro.interp.lower`), so the
event stream stays compact: one event per page transition, prefetch, or
release, with compute time carried on the events.

Event tuples:

* ``("event", kind, vpage, pre_cost_us)`` -- kind is a
  :mod:`repro.machine.events` int (READ/WRITE/PREFETCH/RELEASE); the
  compute time is charged before the operation.
* ``("compute", us)`` -- pure computation.
* ``("prefetch", start_vpage, npages)`` / ``("release", [vpages])`` /
  ``("prefetch_release", start, npages, [vpages])`` -- block hints from
  the scalar path, already clamped to their array's segment.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.ir.nodes import Hint, HintKind, If, Loop, Program, Stmt, Work
from repro.errors import AddressError, ExecutionError
from repro.interp.lower import analyze_leaf, lower_leaf
from repro.vm.page_table import AddressSpace


class ProcessStream:
    """Generates one program's machine operations, for co-scheduling."""

    def __init__(
        self,
        program: Program,
        address_space: AddressSpace,
        page_size: int,
        name: str,
        register_segment,
    ) -> None:
        """Bind the program's arrays into the *shared* address space.

        Segment names are prefixed with the process name so two processes
        (even of the same application) never collide.  ``register_segment``
        is called with ``(segment_name, base_vpage, npages)`` so the disk
        array can back each segment.
        """
        self.program = program
        self.page_size = page_size
        self.name = name
        self._segments: dict[str, tuple[int, int]] = {}
        self._strides: dict[str, tuple[int, ...]] = {}
        self._leaf_cache: dict[int, object] = {}
        params = program.params
        for arr in program.arrays:
            seg_name = f"{name}:{arr.name}"
            seg = address_space.map_segment(seg_name, arr.nbytes(params))
            register_segment(seg_name, seg.base // page_size, seg.npages)
            arr.base = seg.base
            self._segments[arr.name] = (seg.base, arr.nbytes(params))
            self._strides[arr.name] = arr.strides_elems(params)

    # ------------------------------------------------------------------

    def events(self) -> Iterator[tuple]:
        yield from self._walk(self.program.body, dict(self.program.params))

    def _walk(self, body: list[Stmt], env: dict) -> Iterator[tuple]:
        for stmt in body:
            if isinstance(stmt, Work):
                if stmt.cost_us:
                    yield ("compute", stmt.cost_us)
                for ref in stmt.refs:
                    vpage = self._ref_page(ref, env)
                    yield ("event", 1 if ref.is_write else 0, vpage, 0.0)
            elif isinstance(stmt, Loop):
                yield from self._walk_loop(stmt, env)
            elif isinstance(stmt, Hint):
                op = self._resolve_hint(stmt, env)
                if op is not None:
                    yield op
            elif isinstance(stmt, If):
                branch = stmt.then_body if stmt.cond.eval(env) else stmt.else_body
                yield from self._walk(branch, env)
            else:
                raise ExecutionError(f"cannot stream statement {stmt!r}")

    def _walk_loop(self, loop: Loop, env: dict) -> Iterator[tuple]:
        lower = loop.lower.eval(env)
        upper = loop.upper.eval(env)
        if upper <= lower:
            return
        recipe = self._leaf_cache.get(loop.loop_id, False)
        if recipe is False:
            recipe = analyze_leaf(loop)
            self._leaf_cache[loop.loop_id] = recipe
        if recipe is not None:
            if not recipe.templates:
                iters = -(-(upper - lower) // loop.step)
                yield ("compute", iters * recipe.iter_cost)
                return
            values = np.arange(lower, upper, loop.step, dtype=np.int64)
            kinds, pages, costs, tail = lower_leaf(
                recipe, loop.var, values, env, self.page_size,
                self._segments, self._strides,
            )
            kinds = kinds.tolist()
            pages = pages.tolist()
            costs = costs.tolist()
            for k in range(len(kinds)):
                yield ("event", kinds[k], pages[k], costs[k])
            if tail:
                yield ("compute", tail)
            return
        for value in range(lower, upper, loop.step):
            env[loop.var] = value
            yield from self._walk(loop.body, env)
        del env[loop.var]

    # ------------------------------------------------------------------

    def _addr(self, array, indices, env: dict) -> int:
        strides = self._strides[array.name]
        linear = 0
        for ix, stride in zip(indices, strides):
            linear += ix.eval(env) * stride
        return array.base + linear * array.elem_size

    def _ref_page(self, ref, env: dict) -> int:
        addr = self._addr(ref.array, ref.indices, env)
        base, nbytes = self._segments[ref.array.name]
        if not base <= addr < base + nbytes:
            raise AddressError(
                f"[{self.name}] reference {ref!r} outside its segment"
            )
        return addr // self.page_size

    def _hint_pages(self, array, indices, npages: int, env: dict) -> tuple[int, int]:
        addr = self._addr(array, indices, env)
        base, nbytes = self._segments[array.name]
        first = base // self.page_size
        last = (base + nbytes - 1) // self.page_size
        start = max(addr // self.page_size, first)
        end = min(addr // self.page_size + npages - 1, last)
        if end < start:
            return 0, 0
        return start, end - start + 1

    def _resolve_hint(self, hint: Hint, env: dict) -> tuple | None:
        pf_start = pf_n = 0
        if hint.target is not None:
            npages = max(0, hint.npages.eval(env))
            pf_start, pf_n = self._hint_pages(
                hint.target.array, hint.target.indices, npages, env
            )
        rel: list[int] = []
        if hint.release_target is not None:
            rn = max(0, hint.release_npages.eval(env))
            r_start, r_n = self._hint_pages(
                hint.release_target.array, hint.release_target.indices, rn, env
            )
            rel = list(range(r_start, r_start + r_n))
        if hint.kind is HintKind.PREFETCH:
            return ("prefetch", pf_start, pf_n) if pf_n else None
        if hint.kind is HintKind.RELEASE:
            return ("release", rel) if rel else None
        if pf_n and rel:
            return ("prefetch_release", pf_start, pf_n, rel)
        if pf_n:
            return ("prefetch", pf_start, pf_n)
        if rel:
            return ("release", rel)
        return None
