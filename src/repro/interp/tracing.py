"""Independent scalar access tracer.

Used as the oracle for the package's central correctness property: the
prefetching transformation must not change the program's data accesses in
any way (prefetch and release are *non-binding hints* -- paper Section
2.2.1 and Figure 1).  The tracer deliberately shares no code with the
vectorized execution path: it walks the tree one iteration at a time and
records every work reference as ``(array_name, linear_index, is_write)``.

Tests assert ``access_trace(original) == access_trace(transformed)`` and
also cross-check the tracer against the vectorized executor's fault
accounting on small programs.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.ir.nodes import Hint, If, Loop, Program, Stmt, Work
from repro.errors import ExecutionError

TraceEntry = tuple[str, int, bool]


def _linear_index(ref, env: dict, strides: dict[str, tuple[int, ...]]) -> int:
    total = 0
    for ix, stride in zip(ref.indices, strides[ref.array.name]):
        total += ix.eval(env) * stride
    return total


def _walk(body: list[Stmt], env: dict, strides: dict) -> Iterator[TraceEntry]:
    for stmt in body:
        if isinstance(stmt, Work):
            for ref in stmt.refs:
                yield (ref.array.name, _linear_index(ref, env, strides), ref.is_write)
        elif isinstance(stmt, Loop):
            lower = stmt.lower.eval(env)
            upper = stmt.upper.eval(env)
            for value in range(lower, upper, stmt.step):
                env[stmt.var] = value
                yield from _walk(stmt.body, env, strides)
            env.pop(stmt.var, None)
        elif isinstance(stmt, Hint):
            continue  # hints touch nothing: that is the property under test
        elif isinstance(stmt, If):
            branch = stmt.then_body if stmt.cond.eval(env) else stmt.else_body
            yield from _walk(branch, env, strides)
        else:
            raise ExecutionError(f"cannot trace statement {stmt!r}")


def access_trace(program: Program, limit: int | None = None) -> list[TraceEntry]:
    """Full ordered list of work accesses performed by ``program``.

    ``limit`` guards against tracing huge programs by accident.
    """
    strides = {
        arr.name: arr.strides_elems(program.params) for arr in program.arrays
    }
    out: list[TraceEntry] = []
    for entry in _walk(list(program.body), dict(program.params), strides):
        out.append(entry)
        if limit is not None and len(out) > limit:
            raise ExecutionError(
                f"access trace exceeded the {limit}-entry limit; "
                "use a smaller program for trace-based tests"
            )
    return out
