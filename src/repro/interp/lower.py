"""Vectorized lowering of leaf loops into event chunks.

A *leaf* loop is one whose body is a flat sequence of work statements and
single-page hints -- exactly what the innermost loops of both the original
and the strip-mined transformed programs look like.  For such loops the
interpreter does not iterate in Python: numpy evaluates every reference's
page number across the whole iteration range at once, interleaves the
columns in program order, collapses consecutive same-page accesses (a run
of accesses to one page is one access plus bulk compute time -- the page
cannot leave memory while nothing else is touched), and hands the machine
one compact chunk.

This is what makes simulating hundreds of thousands of iterations per
second feasible while keeping *every* fault, prefetch, and filter decision
exact: only provably-hit events are batched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.expr import Const
from repro.core.ir.nodes import Hint, HintKind, Loop, Work
from repro.errors import AddressError, ExecutionError
from repro.machine.events import PREFETCH, READ, RELEASE, WRITE


@dataclass
class EventTemplate:
    """One column of the chunk matrix: a ref or hint inside the leaf body."""

    kind: int
    array: ArrayDecl
    indices: tuple
    #: Compute time charged before this event (first event of the
    #: iteration carries the whole iteration's cost).
    pre_cost: float


@dataclass
class LeafRecipe:
    """Pre-analyzed lowering of one leaf loop body."""

    templates: list[EventTemplate]
    iter_cost: float


def analyze_leaf(loop: Loop) -> LeafRecipe | None:
    """Classify a loop as leaf-vectorizable; None if it is not.

    Leaf bodies contain only :class:`Work` statements and single-page
    prefetch/release hints (the per-iteration indirect hints and the
    indirect prolog loops).  Block hints and nested loops disqualify.
    """
    templates: list[EventTemplate] = []
    iter_cost = 0.0
    pending_cost = 0.0
    for stmt in loop.body:
        if isinstance(stmt, Work):
            pending_cost += stmt.cost_us
            iter_cost += stmt.cost_us
            for ref in stmt.refs:
                templates.append(
                    EventTemplate(
                        kind=WRITE if ref.is_write else READ,
                        array=ref.array,
                        indices=ref.indices,
                        pre_cost=pending_cost,
                    )
                )
                pending_cost = 0.0
        elif isinstance(stmt, Hint):
            if stmt.kind is HintKind.PREFETCH:
                if not (isinstance(stmt.npages, Const) and stmt.npages.value == 1):
                    return None
                templates.append(
                    EventTemplate(
                        kind=PREFETCH,
                        array=stmt.target.array,
                        indices=stmt.target.indices,
                        pre_cost=pending_cost,
                    )
                )
                pending_cost = 0.0
            elif stmt.kind is HintKind.RELEASE:
                if not (
                    isinstance(stmt.release_npages, Const)
                    and stmt.release_npages.value == 1
                ):
                    return None
                templates.append(
                    EventTemplate(
                        kind=RELEASE,
                        array=stmt.release_target.array,
                        indices=stmt.release_target.indices,
                        pre_cost=pending_cost,
                    )
                )
                pending_cost = 0.0
            else:
                return None  # bundled hints take the scalar path
        else:
            return None  # nested loop or If: not a leaf
    if pending_cost and templates:
        # Trailing cost with no event to carry it: fold into the first
        # event so totals stay exact (order within an iteration does not
        # affect simulated interleaving at this granularity).
        templates[0].pre_cost += pending_cost
    return LeafRecipe(templates=templates, iter_cost=iter_cost)


def lower_leaf(
    recipe: LeafRecipe,
    loop_var: str,
    values: np.ndarray,
    env: dict,
    page_size: int,
    segments: dict[str, tuple[int, int]],
    strides_map: dict[str, tuple[int, ...]],
) -> tuple[list[int], list[int], list[float], float]:
    """Materialize the chunk for one execution of a leaf loop.

    ``segments`` maps array names to their (base, nbytes); every work
    access is bounds-checked against its segment, and hint events whose
    clamped addresses stay in range by construction are passed through.
    ``strides_map`` holds each array's resolved row-major element strides.
    Returns parallel ``(kinds, pages, costs)`` lists plus the tail compute
    time left over after the final event.
    """
    n = len(values)
    ncols = len(recipe.templates)
    if n == 0 or ncols == 0:
        return [], [], [], 0.0

    pages = np.empty((n, ncols), dtype=np.int64)
    kinds_row = np.empty(ncols, dtype=np.int64)

    for col, tmpl in enumerate(recipe.templates):
        array = tmpl.array
        base, nbytes = segments[array.name]
        strides = strides_map[array.name]
        linear: np.ndarray | int = 0
        for ix, stride in zip(tmpl.indices, strides):
            linear = linear + ix.eval_vec(env, loop_var, values) * stride
        addr = base + linear * array.elem_size
        if tmpl.kind <= WRITE:
            low = addr.min() if isinstance(addr, np.ndarray) else addr
            high = addr.max() if isinstance(addr, np.ndarray) else addr
            if low < base or high >= base + nbytes:
                raise AddressError(
                    f"reference to {array.name!r} runs outside its segment "
                    f"(addresses [{low}, {high}], segment [{base}, {base + nbytes}))"
                )
        pages[:, col] = addr // page_size
        kinds_row[col] = tmpl.kind

    flat_pages = pages.reshape(-1)
    flat_kinds = np.tile(kinds_row, n)
    flat_costs = np.zeros(n * ncols, dtype=np.float64)
    col_costs = np.array([t.pre_cost for t in recipe.templates], dtype=np.float64)
    flat_costs.reshape(n, ncols)[:, :] = col_costs

    # Collapse consecutive same-page access runs.  Hints never collapse
    # (each must reach the filter), and an access never merges across a
    # hint boundary.
    is_access = flat_kinds <= WRITE
    same_page = np.empty(len(flat_pages), dtype=bool)
    same_page[0] = False
    same_page[1:] = flat_pages[1:] == flat_pages[:-1]
    prev_access = np.empty(len(flat_pages), dtype=bool)
    prev_access[0] = False
    prev_access[1:] = is_access[:-1]
    mergeable = same_page & is_access & prev_access
    starts = np.flatnonzero(~mergeable)

    group_pages = flat_pages[starts]
    group_kinds = np.maximum.reduceat(flat_kinds, starts)
    # Cost attribution must preserve event timing: only the compute that
    # precedes a run's *first* access happens before the merged event; the
    # rest of the run's compute happens after it (before the next event),
    # and the final run's tail is charged after the chunk.
    group_sums = np.add.reduceat(flat_costs, starts)
    first_costs = flat_costs[starts]
    remainders = group_sums - first_costs
    costs = first_costs.copy()
    if len(costs) > 1:
        costs[1:] += remainders[:-1]
    tail_cost = float(remainders[-1])

    return group_kinds.tolist(), group_pages.tolist(), costs.tolist(), tail_cost
