"""Vectorized lowering of leaf loops into event chunks.

A *leaf* loop is one whose body is a flat sequence of work statements and
single-page hints -- exactly what the innermost loops of both the original
and the strip-mined transformed programs look like.  For such loops the
interpreter does not iterate in Python: numpy evaluates every reference's
page number across the whole iteration range at once, interleaves the
columns in program order, collapses consecutive same-page accesses (a run
of accesses to one page is one access plus bulk compute time -- the page
cannot leave memory while nothing else is touched), and hands the machine
one compact chunk.

This is what makes simulating hundreds of thousands of iterations per
second feasible while keeping *every* fault, prefetch, and filter decision
exact: only provably-hit events are batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.expr import Const
from repro.core.ir.nodes import Hint, HintKind, Loop, Work
from repro.errors import AddressError, ExecutionError
from repro.machine.events import PREFETCH, READ, RELEASE, WRITE


@dataclass(slots=True)
class EventTemplate:
    """One column of the chunk matrix: a ref or hint inside the leaf body."""

    kind: int
    array: ArrayDecl
    indices: tuple
    #: Compute time charged before this event (first event of the
    #: iteration carries the whole iteration's cost).
    pre_cost: float


@dataclass(slots=True)
class LeafRecipe:
    """Pre-analyzed lowering of one leaf loop body."""

    templates: list[EventTemplate]
    iter_cost: float
    #: Per-iteration-count cache of the data-independent chunk columns
    #: (kinds, cost template, merge masks); see :func:`lower_leaf`.
    cache: dict = field(default_factory=dict)


def analyze_leaf(loop: Loop) -> LeafRecipe | None:
    """Classify a loop as leaf-vectorizable; None if it is not.

    Leaf bodies contain only :class:`Work` statements and single-page
    prefetch/release hints (the per-iteration indirect hints and the
    indirect prolog loops).  Block hints and nested loops disqualify.
    """
    templates: list[EventTemplate] = []
    iter_cost = 0.0
    pending_cost = 0.0
    for stmt in loop.body:
        if isinstance(stmt, Work):
            pending_cost += stmt.cost_us
            iter_cost += stmt.cost_us
            for ref in stmt.refs:
                templates.append(
                    EventTemplate(
                        kind=WRITE if ref.is_write else READ,
                        array=ref.array,
                        indices=ref.indices,
                        pre_cost=pending_cost,
                    )
                )
                pending_cost = 0.0
        elif isinstance(stmt, Hint):
            if stmt.kind is HintKind.PREFETCH:
                if not (isinstance(stmt.npages, Const) and stmt.npages.value == 1):
                    return None
                templates.append(
                    EventTemplate(
                        kind=PREFETCH,
                        array=stmt.target.array,
                        indices=stmt.target.indices,
                        pre_cost=pending_cost,
                    )
                )
                pending_cost = 0.0
            elif stmt.kind is HintKind.RELEASE:
                if not (
                    isinstance(stmt.release_npages, Const)
                    and stmt.release_npages.value == 1
                ):
                    return None
                templates.append(
                    EventTemplate(
                        kind=RELEASE,
                        array=stmt.release_target.array,
                        indices=stmt.release_target.indices,
                        pre_cost=pending_cost,
                    )
                )
                pending_cost = 0.0
            else:
                return None  # bundled hints take the scalar path
        else:
            return None  # nested loop or If: not a leaf
    if pending_cost and templates:
        # Trailing cost with no event to carry it: fold into the first
        # event so totals stay exact (order within an iteration does not
        # affect simulated interleaving at this granularity).
        templates[0].pre_cost += pending_cost
    return LeafRecipe(templates=templates, iter_cost=iter_cost)


def lower_leaf(
    recipe: LeafRecipe,
    loop_var: str,
    values: np.ndarray,
    env: dict,
    page_size: int,
    segments: dict[str, tuple[int, int]],
    strides_map: dict[str, tuple[int, ...]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Materialize the chunk for one execution of a leaf loop.

    ``segments`` maps array names to their (base, nbytes); every work
    access is bounds-checked against its segment, and hint events whose
    clamped addresses stay in range by construction are passed through.
    ``strides_map`` holds each array's resolved row-major element strides.
    Returns parallel ``(kinds, pages, costs)`` numpy arrays plus the tail
    compute time left over after the final event; the arrays feed
    ``Machine.run_chunk``'s vectorized kernel without conversion.
    """
    n = len(values)
    ncols = len(recipe.templates)
    if n == 0 or ncols == 0:
        empty_i = np.empty(0, dtype=np.int64)
        return empty_i, empty_i, np.empty(0, dtype=np.float64), 0.0

    # Everything that does not depend on the evaluated page numbers --
    # the interleaved kind pattern, the per-event cost template, and the
    # merge masks derived from kinds alone -- is identical for every
    # strip of the same length, so it is computed once per (recipe, n)
    # and reused across the loop's whole execution.
    cached = recipe.cache.get(n)
    if cached is None:
        kinds_row = np.array([t.kind for t in recipe.templates], dtype=np.int64)
        flat_kinds = np.tile(kinds_row, n)
        flat_costs = np.zeros(n * ncols, dtype=np.float64)
        col_costs = np.array(
            [t.pre_cost for t in recipe.templates], dtype=np.float64
        )
        flat_costs.reshape(n, ncols)[:, :] = col_costs
        is_access = flat_kinds <= WRITE
        acc_and_prev = np.empty(n * ncols, dtype=bool)
        acc_and_prev[0] = False
        acc_and_prev[1:] = is_access[:-1] & is_access[1:]
        # Running count of writes; lets the merged-run kind be computed
        # with two gathers instead of a reduceat over the flat array (a
        # run collapses to WRITE exactly when it contains a write).
        is_write = flat_kinds == WRITE
        write_csum = np.cumsum(is_write)
        cached = (flat_kinds, flat_costs, acc_and_prev, is_write, write_csum)
        if len(recipe.cache) >= 4:  # strips come in at most a couple lengths
            recipe.cache.clear()
        recipe.cache[n] = cached
    flat_kinds, flat_costs, acc_and_prev, is_write, write_csum = cached

    pages = np.empty((n, ncols), dtype=np.int64)
    for col, tmpl in enumerate(recipe.templates):
        array = tmpl.array
        base, nbytes = segments[array.name]
        strides = strides_map[array.name]
        linear: np.ndarray | int = 0
        for ix, stride in zip(tmpl.indices, strides):
            linear = linear + ix.eval_vec(env, loop_var, values) * stride
        addr = base + linear * array.elem_size
        if tmpl.kind <= WRITE:
            low = addr.min() if isinstance(addr, np.ndarray) else addr
            high = addr.max() if isinstance(addr, np.ndarray) else addr
            if low < base or high >= base + nbytes:
                raise AddressError(
                    f"reference to {array.name!r} runs outside its segment "
                    f"(addresses [{low}, {high}], segment [{base}, {base + nbytes}))"
                )
        pages[:, col] = addr // page_size

    flat_pages = pages.reshape(-1)

    # Collapse consecutive same-page access runs.  Hints never collapse
    # (each must reach the filter), and an access never merges across a
    # hint boundary.
    mergeable = np.empty(n * ncols, dtype=bool)
    mergeable[0] = False
    np.equal(flat_pages[1:], flat_pages[:-1], out=mergeable[1:])
    mergeable &= acc_and_prev
    starts = (~mergeable).nonzero()[0]
    total = n * ncols
    ngroups = len(starts)

    if ngroups == total:
        # No merges at all: the flat columns *are* the chunk.  The cached
        # kinds/costs arrays are returned directly -- every consumer
        # treats them as read-only -- and every run's remainder is zero,
        # so there is no tail.
        return flat_kinds, flat_pages, flat_costs, 0.0

    nmerged = total - ngroups
    if nmerged <= 64:
        # Near-singleton chunk (e.g. a data-dependent access stream that
        # rarely repeats a page): gather the groups as if every run were
        # a singleton, then patch the handful of multi-event runs in
        # Python.  ``np.add.reduce`` over a run's slice is exactly what
        # ``np.add.reduceat`` computes for that run, so the patched
        # costs are bitwise those of the vector path below.
        sizes = np.empty(ngroups, dtype=np.int64)
        np.subtract(starts[1:], starts[:-1], out=sizes[:-1])
        sizes[-1] = total - starts[-1]
        multi = (sizes > 1).nonzero()[0]
        if int(sizes.max()) <= 64:
            group_pages = flat_pages[starts]
            group_kinds = flat_kinds[starts]
            costs = flat_costs[starts]
            tail_cost = 0.0
            for gi in multi.tolist():
                s = int(starts[gi])
                e = s + int(sizes[gi])
                if flat_kinds[s:e].max() == WRITE:
                    group_kinds[gi] = WRITE
                run = flat_costs[s:e]
                rem = float(np.add.reduce(run) - run[0])
                if gi + 1 < ngroups:
                    costs[gi + 1] += rem
                else:
                    tail_cost = rem
            return group_kinds, group_pages, costs, tail_cost

    group_pages = flat_pages[starts]
    # A merged run's kind: WRITE if the run contains any write, else the
    # run's first kind (hints never merge, so a hint run is a singleton
    # and keeps its own kind).  Counting writes per run from the cached
    # running sum is exact integer math.
    ends1 = np.empty(ngroups, dtype=np.int64)
    np.subtract(starts[1:], 1, out=ends1[:-1])
    ends1[-1] = total - 1
    run_writes = write_csum[ends1] - write_csum[starts] + is_write[starts]
    group_kinds = np.where(run_writes > 0, WRITE, flat_kinds[starts])
    # Cost attribution must preserve event timing: only the compute that
    # precedes a run's *first* access happens before the merged event; the
    # rest of the run's compute happens after it (before the next event),
    # and the final run's tail is charged after the chunk.
    group_sums = np.add.reduceat(flat_costs, starts)
    first_costs = flat_costs[starts]
    remainders = group_sums - first_costs
    costs = first_costs.copy()
    if len(costs) > 1:
        costs[1:] += remainders[:-1]
    tail_cost = float(remainders[-1])

    return group_kinds, group_pages, costs, tail_cost
