"""The IR interpreter.

Walks a program's statement tree against a :class:`Machine`:

* work statements charge compute time and perform their accesses;
* hints go through the run-time layer (prefetch filtering) or the OS
  (releases), clamped to the target array's segment -- an address outside
  the array is a silent no-op, preserving the non-binding semantics;
* leaf loops (flat bodies of work + single-page hints) take the
  vectorized path in :mod:`repro.interp.lower`.

The same interpreter runs both the original and the transformed program:
the original simply contains no hints.

**Safe points and the unit cursor.**  Execution is counted in *units*:
one work statement, one hint, one vectorized leaf chunk, or one
pure-compute leaf loop.  After each live unit the executor calls the
attached checkpointer's ``at_safe_point`` hook (crash delivery and
checkpoint cadence live there, see :mod:`repro.checkpoint.runner`) --
between units no chunk is half-replayed, which is what makes a snapshot
crash-consistent.  Resume is *skip-replay*: the control flow (loop
bounds, ``If`` conditions, environment bindings) is re-walked without
touching the machine until the unit cursor passes the snapshot's
cursor, then execution goes live.  This is sound because control flow
depends only on ``env``/params, never on machine state.  When no
checkpointer is attached the instrumentation is two integer compares
per unit, and the simulated run is bit-identical either way.
"""

from __future__ import annotations

import numpy as np

from repro.core.ir.nodes import Hint, HintKind, If, Loop, Program, Stmt, Work
from repro.errors import AddressError, ExecutionError
from repro.interp.lower import LeafRecipe, analyze_leaf, lower_leaf
from repro.machine.machine import Machine
from repro.sim.stats import RunStats


class Executor:
    """Runs one program on one machine."""

    def __init__(
        self,
        machine: Machine,
        warm_start: bool = False,
        vectorize: bool = True,
    ) -> None:
        self.machine = machine
        self.warm_start = warm_start
        #: Disable the numpy fast path (differential testing: the scalar
        #: and vectorized executions must produce identical statistics).
        self.vectorize = vectorize
        self._segments: dict[str, tuple[int, int]] = {}
        self._strides: dict[str, tuple[int, ...]] = {}
        self._leaf_cache: dict[int, LeafRecipe | None] = {}
        #: Hints whose addresses fell outside their array (dropped no-ops).
        self.out_of_range_hints = 0
        #: Executed-unit cursor (work stmts, hints, leaf chunks).
        self.units = 0
        #: Units to skip-replay before going live (armed on resume).
        self._skip_until = 0
        #: Safe-point hook (a repro.checkpoint.runner.Checkpointer) or None.
        self.checkpointer = None
        #: One-shot callable run after array binding (snapshot restore).
        self._resume_hook = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _bind_arrays(self, program: Program) -> None:
        params = program.params
        for arr in program.arrays:
            seg = self.machine.map_segment(arr.name, arr.nbytes(params))
            arr.base = seg.base
            self._segments[arr.name] = (seg.base, arr.nbytes(params))
            self._strides[arr.name] = arr.strides_elems(params)
            if self.warm_start:
                self.machine.warm_load_segment(seg)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, program: Program, finish: bool = True) -> RunStats | None:
        """Execute ``program``; returns its stats when ``finish`` is set."""
        self._bind_arrays(program)
        if self._resume_hook is not None:
            # Restore the snapshot over the (deterministic) bound setup,
            # then skip-replay to its cursor inside _exec_body below.
            hook, self._resume_hook = self._resume_hook, None
            hook(self)
        env = dict(program.params)
        obs = self.machine.obs
        if obs is not None:
            obs.push_context(program.name)
        try:
            self._exec_body(program.body, env)
        finally:
            if obs is not None:
                obs.pop_context()
        if finish:
            return self.machine.finish()
        return None

    def _unit_done(self) -> None:
        """Close one executed unit: advance the cursor, hit the safe point."""
        self.units += 1
        if self.checkpointer is not None:
            self.checkpointer.at_safe_point(self)

    def _exec_body(self, body: list[Stmt], env: dict) -> None:
        machine = self.machine
        for stmt in body:
            if isinstance(stmt, Work):
                if self.units < self._skip_until:
                    self.units += 1
                    continue
                if stmt.cost_us:
                    machine.compute(stmt.cost_us)
                for ref in stmt.refs:
                    vpage = self._ref_page(ref, env)
                    machine.access(vpage, ref.is_write)
                self._unit_done()
            elif isinstance(stmt, Loop):
                self._exec_loop(stmt, env)
            elif isinstance(stmt, Hint):
                if self.units < self._skip_until:
                    self.units += 1
                    continue
                self._exec_hint(stmt, env)
                self._unit_done()
            elif isinstance(stmt, If):
                branch = stmt.then_body if stmt.cond.eval(env) else stmt.else_body
                self._exec_body(branch, env)
            else:
                raise ExecutionError(f"cannot execute statement {stmt!r}")

    def _exec_loop(self, loop: Loop, env: dict) -> None:
        obs = self.machine.obs
        if obs is None:
            self._exec_loop_body(loop, env)
            return
        # Label by loop variable: stable across runs (loop_id is a
        # process-global counter) and what the collapsed stacks show.
        obs.push_context(loop.var)
        try:
            self._exec_loop_body(loop, env)
        finally:
            obs.pop_context()

    def _exec_loop_body(self, loop: Loop, env: dict) -> None:
        lower = loop.lower.eval(env)
        upper = loop.upper.eval(env)
        if upper <= lower:
            return
        if self.vectorize:
            recipe = self._leaf_cache.get(loop.loop_id, False)
            if recipe is False:  # not analyzed yet
                recipe = analyze_leaf(loop)
                self._leaf_cache[loop.loop_id] = recipe
        else:
            recipe = None
        if recipe is not None:
            # Either leaf form is one unit; skip mode never lowers it.
            if self.units < self._skip_until:
                self.units += 1
                return
            if not recipe.templates:
                # Pure compute: charge the whole loop in one step.
                iters = -(-(upper - lower) // loop.step)
                self.machine.compute(iters * recipe.iter_cost)
                self._unit_done()
                return
            values = np.arange(lower, upper, loop.step, dtype=np.int64)
            kinds, pages, costs, tail_cost = lower_leaf(
                recipe,
                loop.var,
                values,
                env,
                self.machine.config.page_size,
                self._segments,
                self._strides,
            )
            self.machine.run_chunk(kinds, pages, costs)
            if tail_cost:
                self.machine.compute(tail_cost)
            self._unit_done()
            return
        for value in range(lower, upper, loop.step):
            env[loop.var] = value
            self._exec_body(loop.body, env)
        del env[loop.var]

    # ------------------------------------------------------------------
    # Addresses and hints
    # ------------------------------------------------------------------

    def _addr(self, array, indices, env: dict) -> int:
        strides = self._strides[array.name]
        linear = 0
        for ix, stride in zip(indices, strides):
            linear += ix.eval(env) * stride
        base = array.base
        if base is None:
            raise ExecutionError(f"array {array.name!r} is not bound to a segment")
        return base + linear * array.elem_size

    def _ref_page(self, ref, env: dict) -> int:
        addr = self._addr(ref.array, ref.indices, env)
        base, nbytes = self._segments[ref.array.name]
        if not base <= addr < base + nbytes:
            raise AddressError(
                f"reference {ref!r} evaluates to address {addr} outside "
                f"segment [{base}, {base + nbytes})"
            )
        return addr // self.machine.config.page_size

    def _hint_pages(self, array, indices, npages: int, env: dict) -> tuple[int, int]:
        """(start_vpage, npages) clamped to the array's segment; (0,0) if none."""
        addr = self._addr(array, indices, env)
        base, nbytes = self._segments[array.name]
        page_size = self.machine.config.page_size
        first_page = base // page_size
        last_page = (base + nbytes - 1) // page_size
        start = addr // page_size
        end = start + npages - 1
        if start < first_page:
            start = first_page
        if end > last_page:
            end = last_page
        if end < start:
            return 0, 0
        return start, end - start + 1

    def _exec_hint(self, hint: Hint, env: dict) -> None:
        machine = self.machine
        if machine.runtime is None:
            return  # non-prefetching run: hints are dead code
        pf_start = pf_n = 0
        if hint.target is not None:
            npages = max(0, hint.npages.eval(env))
            pf_start, pf_n = self._hint_pages(
                hint.target.array, hint.target.indices, npages, env
            )
        rel_pages: list[int] = []
        if hint.release_target is not None:
            rn = max(0, hint.release_npages.eval(env))
            r_start, r_n = self._hint_pages(
                hint.release_target.array, hint.release_target.indices, rn, env
            )
            rel_pages = list(range(r_start, r_start + r_n))

        if hint.kind is HintKind.PREFETCH:
            if pf_n:
                machine.prefetch(pf_start, pf_n)
            else:
                self.out_of_range_hints += 1
        elif hint.kind is HintKind.RELEASE:
            if rel_pages:
                machine.release(rel_pages)
            else:
                self.out_of_range_hints += 1
        else:  # PREFETCH_RELEASE
            if pf_n and rel_pages:
                machine.prefetch_release(pf_start, pf_n, rel_pages)
            elif pf_n:
                machine.prefetch(pf_start, pf_n)
            elif rel_pages:
                machine.release(rel_pages)
            else:
                self.out_of_range_hints += 1


def run_program(
    program: Program,
    machine: Machine | None = None,
    warm_start: bool = False,
) -> RunStats:
    """Convenience: execute ``program`` on a fresh (or given) machine."""
    if machine is None:
        machine = Machine()
    executor = Executor(machine, warm_start=warm_start)
    stats = executor.run(program)
    assert stats is not None
    return stats
