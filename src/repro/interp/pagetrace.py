"""Page-reference trace extraction and locality analytics.

Research companions to the simulator: extract a program's page-reference
trace (work accesses only, at page granularity) and compute the classic
locality curves -- LRU miss counts across capacities (via reuse/stack
distances, one pass), working-set sizes, and reuse-distance histograms.

These are the tools one uses to *choose* experiment scales: the paper's
"~2x memory" out-of-core operating point is exactly the knee these curves
expose (see ``examples``/``benchmarks``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence

import numpy as np

from repro.core.ir.nodes import Program
from repro.errors import ExecutionError
from repro.interp.tracing import access_trace

DEFAULT_PAGE_SIZE = 4096


def page_trace(
    program: Program,
    page_size: int = DEFAULT_PAGE_SIZE,
    limit: int | None = 8_000_000,
    collapse: bool = True,
) -> np.ndarray:
    """The program's ordered page-reference string.

    Pages are global (array segments laid out back to back, page-aligned,
    in declaration order).  With ``collapse`` (the default), consecutive
    repeats are merged -- they are guaranteed hits under every
    demand-paging policy and only inflate the trace.
    """
    strides: Mapping[str, tuple[int, ...]] = {}
    bases: dict[str, int] = {}
    next_page = 0
    for arr in program.arrays:
        bases[arr.name] = next_page * page_size
        next_page += -(-arr.nbytes(program.params) // page_size) + 1
    entries = access_trace(program, limit=limit)
    if not entries:
        return np.empty(0, dtype=np.int64)
    elem_sizes = {arr.name: arr.elem_size for arr in program.arrays}
    pages = np.fromiter(
        (
            (bases[name] + index * elem_sizes[name]) // page_size
            for name, index, _ in entries
        ),
        dtype=np.int64,
        count=len(entries),
    )
    if collapse and len(pages) > 1:
        keep = np.empty(len(pages), dtype=bool)
        keep[0] = True
        keep[1:] = pages[1:] != pages[:-1]
        pages = pages[keep]
    return pages


class _FenwickTree:
    """Prefix-sum tree over trace positions (for stack distances)."""

    __slots__ = ("size", "tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self.tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self.size:
            self.tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self.tree[index]
            index -= index & (-index)
        return total


def reuse_distances(trace: Sequence[int]) -> np.ndarray:
    """LRU stack distance of every reference (-1 for cold references).

    The distance of a reference is the number of *distinct* pages touched
    since its page was last touched.  Computed with the textbook
    Fenwick-tree algorithm in O(N log N): keep a 1 at each page's most
    recent position; the distance at position i for a page last seen at
    position j is the number of ones in (j, i).
    """
    n = len(trace)
    out = np.empty(n, dtype=np.int64)
    tree = _FenwickTree(n)
    last_pos: dict[int, int] = {}
    for i, page in enumerate(trace):
        prev = last_pos.get(page)
        if prev is None:
            out[i] = -1
        else:
            # Ones strictly between prev and i = distinct pages touched
            # since (each page contributes only its latest position).
            out[i] = tree.prefix_sum(i - 1) - tree.prefix_sum(prev)
            tree.add(prev, -1)
        tree.add(i, 1)
        last_pos[page] = i
    return out


def reuse_distances_naive(trace: Sequence[int]) -> np.ndarray:
    """Reference implementation (move-to-front list, O(N*depth)).

    Kept as the oracle for differential tests of the Fenwick version.
    """
    stack: OrderedDict[int, None] = OrderedDict()
    out = np.empty(len(trace), dtype=np.int64)
    for i, page in enumerate(trace):
        if page in stack:
            depth = 0
            for key in reversed(stack):
                if key == page:
                    break
                depth += 1
            out[i] = depth
            stack.move_to_end(page)
        else:
            out[i] = -1
            stack[page] = None
    return out


def lru_miss_counts(
    trace: Sequence[int], capacities: Sequence[int]
) -> dict[int, int]:
    """Misses under LRU for every capacity, from one distance pass.

    Mattson's inclusion property: a reference misses in an LRU cache of
    capacity C iff its stack distance is >= C (cold references miss
    everywhere).
    """
    for cap in capacities:
        if cap <= 0:
            raise ExecutionError(f"capacity must be positive, got {cap}")
    distances = reuse_distances(trace)
    cold = int(np.count_nonzero(distances < 0))
    warm = distances[distances >= 0]
    return {
        cap: cold + int(np.count_nonzero(warm >= cap)) for cap in capacities
    }


def working_set_sizes(trace: Sequence[int], window: int) -> np.ndarray:
    """Denning working-set size |W(t, window)| at every position."""
    if window <= 0:
        raise ExecutionError(f"window must be positive, got {window}")
    trace = np.asarray(trace, dtype=np.int64)
    out = np.empty(len(trace), dtype=np.int64)
    counts: dict[int, int] = {}
    for i, page in enumerate(trace):
        counts[page] = counts.get(page, 0) + 1
        if i >= window:
            old = int(trace[i - window])
            remaining = counts[old] - 1
            if remaining:
                counts[old] = remaining
            else:
                del counts[old]
        out[i] = len(counts)
    return out


def reuse_histogram(
    trace: Sequence[int], bin_edges: Sequence[int]
) -> dict[str, int]:
    """Histogram of stack distances over ``bin_edges`` (plus cold/beyond)."""
    distances = reuse_distances(trace)
    out: dict[str, int] = {"cold": int(np.count_nonzero(distances < 0))}
    warm = distances[distances >= 0]
    previous = 0
    for edge in bin_edges:
        label = f"<{edge}"
        out[label] = int(np.count_nonzero((warm >= previous) & (warm < edge)))
        previous = edge
    out[f">={previous}"] = int(np.count_nonzero(warm >= previous))
    return out
