"""Execution of IR programs on the simulated machine.

* :mod:`repro.interp.executor` -- the interpreter: walks the loop nest,
  executing work statements and hints against a :class:`Machine`.
* :mod:`repro.interp.lower` -- vectorized lowering of innermost loops into
  event chunks (the performance path; numpy computes per-iteration page
  streams and collapses same-page runs).
* :mod:`repro.interp.tracing` -- an independent, purely scalar access
  tracer used as the oracle for the non-binding-hints equivalence tests.
"""

from repro.interp.executor import Executor, run_program
from repro.interp.tracing import access_trace

__all__ = ["Executor", "run_program", "access_trace"]
