"""The chaos harness: sweep fault intensities, report the degradation.

``chaos_sweep`` compiles one application once, runs it clean, then runs
it again under ``base_plan.scaled(i)`` for each requested intensity.
Every run uses the same program, platform, and workload seed, so the
whole table isolates the cost of the injected faults.  The CLI front
door is ``python -m repro chaos`` (see docs/robustness.md).

Plans that schedule ``process_crash`` faults run through the in-process
kill/resume loop (:func:`repro.checkpoint.run_with_recovery`): each
crash kills the incarnation and the next one resumes from the newest
in-memory checkpoint, so the row's stats are those of the *completed*
run and the row also reports how many crashes/resumes it survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.base import AppSpec
from repro.checkpoint.runner import CheckpointConfig, run_with_recovery
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, default_plan
from repro.harness.experiment import default_data_pages, run_variant
from repro.interp.executor import Executor
from repro.machine.machine import Machine
from repro.sim.stats import RunStats

#: Checkpoint cadence for crash-bearing chaos rows (simulated us).  A
#: fixed deterministic cadence keeps the sweep reproducible; it only
#: bounds how much work a resume replays, never the row's statistics
#: (checkpointing is pure observation).
CHAOS_CHECKPOINT_EVERY_US = 50_000.0


def dropped_hint_pages(stats: RunStats) -> int:
    """Prefetch pages that never reached the OS because of hint faults.

    Every compiler-inserted page is either filtered, suppressed, issued
    to the OS, or lost to a failed/gated hint call; the conservation
    identity makes the loss directly computable from the run's stats.
    """
    p = stats.prefetch
    return max(0, p.compiler_inserted - p.filtered - p.suppressed - p.issued_pages)


@dataclass
class ChaosRow:
    """One faulted run of the sweep."""

    intensity: float
    plan: FaultPlan
    stats: RunStats
    #: Process crashes delivered (and resumes survived) to finish the row.
    crashes: int = 0
    resumes: int = 0

    @property
    def elapsed_us(self) -> float:
        return self.stats.elapsed_us

    @property
    def drop_rate(self) -> float:
        """Fraction of compiler-inserted prefetch pages lost to faults."""
        inserted = self.stats.prefetch.compiler_inserted
        if inserted == 0:
            return 0.0
        return dropped_hint_pages(self.stats) / inserted

    @property
    def retries(self) -> int:
        return self.stats.disk.retries

    @property
    def degraded_requests(self) -> int:
        return self.stats.disk.degraded_reads + self.stats.disk.degraded_writes

    @property
    def fallback_episodes(self) -> int:
        return self.stats.robust.fallback_episodes


@dataclass
class ChaosReport:
    """The clean baseline plus one row per fault intensity."""

    app: str
    variant: str
    data_pages: int
    clean: RunStats
    rows: list[ChaosRow]

    def slowdown(self, row: ChaosRow) -> float:
        return row.elapsed_us / self.clean.elapsed_us if self.clean.elapsed_us else 1.0


def chaos_report_dict(report: ChaosReport) -> dict:
    """JSON-ready view of a report (``chaos --out``, farm chaos jobs)."""
    return {
        "kind": "chaos",
        "app": report.app,
        "variant": report.variant,
        "data_pages": report.data_pages,
        "clean_elapsed_us": report.clean.elapsed_us,
        "rows": [
            {
                "intensity": row.intensity,
                "elapsed_us": row.elapsed_us,
                "slowdown": report.slowdown(row),
                "drop_rate": row.drop_rate,
                "retries": row.retries,
                "degraded_requests": row.degraded_requests,
                "fallback_episodes": row.fallback_episodes,
                "crashes": row.crashes,
                "resumes": row.resumes,
            }
            for row in report.rows
        ],
    }


def chaos_sweep(
    spec: AppSpec,
    platform: PlatformConfig,
    base_plan: FaultPlan | None = None,
    intensities: Sequence[float] = (0.25, 0.5, 1.0),
    data_pages: int | None = None,
    seed: int = 1,
    variant: str = "p",
) -> ChaosReport:
    """Run one app clean and at each fault intensity of ``base_plan``.

    ``variant`` follows the CLI's run command: ``o`` (no prefetching),
    ``p`` (the default), ``nofilter``, or ``adaptive``.  With no
    ``base_plan``, :func:`repro.faults.plan.default_plan` supplies a
    representative all-taxonomy plan sized to the platform's array.
    """
    if not intensities:
        raise ConfigError("chaos sweep needs at least one intensity")
    if data_pages is None:
        data_pages = default_data_pages(platform, spec.default_memory_multiple)
    if base_plan is None:
        base_plan = default_plan(platform.num_disks, seed=seed)
    program = spec.make(data_pages, seed=seed)
    prefetching = variant != "o"
    if prefetching:
        options = CompilerOptions.from_platform(platform)
        program = insert_prefetches(program, options).program

    def execute(plan: FaultPlan | None) -> tuple[RunStats, int, int]:
        if plan is not None and plan.crashes:
            # Crash-bearing plans go through the kill/resume loop: a
            # fresh machine per incarnation, in-memory checkpoints.
            def factory():
                machine = Machine(
                    platform,
                    prefetching=prefetching,
                    runtime_filter=variant != "nofilter",
                    adaptive_prefetch=variant == "adaptive",
                    fault_plan=plan,
                )
                return machine, Executor(machine)

            rec = run_with_recovery(
                factory, program,
                CheckpointConfig(every_us=CHAOS_CHECKPOINT_EVERY_US),
            )
            return rec.stats, rec.crashes, rec.resumes
        stats = run_variant(
            program,
            platform,
            prefetching=prefetching,
            runtime_filter=variant != "nofilter",
            adaptive=variant == "adaptive",
            fault_plan=plan,
        )
        return stats, 0, 0

    clean, _, _ = execute(None)
    rows = []
    for intensity in intensities:
        plan = base_plan.scaled(intensity)
        stats, crashes, resumes = execute(None if plan.is_noop() else plan)
        rows.append(ChaosRow(intensity=intensity, plan=plan, stats=stats,
                             crashes=crashes, resumes=resumes))
    return ChaosReport(
        app=spec.name,
        variant=variant,
        data_pages=data_pages,
        clean=clean,
        rows=rows,
    )
