"""Farm-level chaos: killing and stalling the workers themselves.

The fault plans in :mod:`repro.faults.plan` degrade the *simulated*
machine; this module degrades the **real** processes serving the farm,
the service-level analogue of the paper's misbehaving disks.  A
:class:`FarmChaosPlan` schedules two operations against the worker
pool:

* ``kill`` -- SIGKILL the worker, the farm's equivalent of a crashed
  disk: no warning, no cleanup, any half-written artifact is torn
  (which is why every worker artifact goes through the atomic writer);
* ``stall`` -- SIGSTOP the worker, the fail-slow/hung regime: the
  process is alive but stops heartbeating, and only the supervisor's
  missed-heartbeat detection (followed by its own SIGKILL) recovers it;
* ``controller_crash`` -- SIGKILL the **controller itself** mid-batch,
  the single-point-of-failure regime.  Recovery comes from the
  write-ahead job ledger: ``repro serve recover`` replays it and the
  batch finishes bit-identical (docs/serving.md, *Controller failure &
  recovery*).

Events trigger on the farm's global job-start counter (the ``n``-th
dispatched attempt), ``delay_s`` wall seconds after that job starts --
a schedule in *work* rather than wall time, so the same plan hits
mid-job on fast and slow hosts alike.  Either way the injected death is
invisible in the results: the killed job resumes from its newest
checkpoint on another worker and finishes bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError

#: The farm-chaos JSON schema version this build reads and writes.
FARM_PLAN_VERSION = 1

#: Operations a farm fault may apply to a farm process.  ``kill`` and
#: ``stall`` strike the worker running the triggering attempt;
#: ``controller_crash`` strikes the controller process itself.
FARM_FAULT_OPS: tuple[str, ...] = ("kill", "stall", "controller_crash")


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled strike against whichever worker runs a job.

    ``on_start`` counts dispatched attempts farm-wide, starting at 1:
    ``WorkerFault(on_start=3, delay_s=0.2)`` SIGKILLs the worker running
    the third-dispatched attempt 0.2 s after it starts.
    """

    on_start: int
    delay_s: float = 0.1
    op: str = "kill"

    def __post_init__(self) -> None:
        if self.on_start < 1:
            raise ConfigError(f"on_start must be >= 1, got {self.on_start}")
        if self.delay_s < 0:
            raise ConfigError(f"delay_s must be >= 0, got {self.delay_s}")
        if self.op not in FARM_FAULT_OPS:
            raise ConfigError(
                f"farm fault op must be one of {FARM_FAULT_OPS}, got {self.op!r}"
            )


@dataclass(frozen=True)
class FarmChaosPlan:
    """The complete kill/stall schedule for one farm run."""

    faults: tuple[WorkerFault, ...] = ()
    version: int = FARM_PLAN_VERSION

    def __post_init__(self) -> None:
        if self.version != FARM_PLAN_VERSION:
            raise ConfigError(
                f"farm chaos plan version {self.version!r} is not supported "
                f"(this build reads version {FARM_PLAN_VERSION})"
            )
        object.__setattr__(self, "faults", tuple(self.faults))
        starts = [f.on_start for f in self.faults]
        if len(starts) != len(set(starts)):
            raise ConfigError("farm chaos plan schedules one job start twice")

    def for_start(self, start_index: int) -> WorkerFault | None:
        """The fault (if any) armed by the ``start_index``-th dispatch."""
        for fault in self.faults:
            if fault.on_start == start_index:
                return fault
        return None

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FarmChaosPlan":
        if not isinstance(payload, dict):
            raise ConfigError("farm chaos plan must be a JSON object")
        data = dict(payload)
        try:
            faults = tuple(WorkerFault(**f) for f in data.pop("faults", ()))
            return cls(faults=faults, **data)
        except TypeError as exc:
            raise ConfigError(f"malformed farm chaos plan: {exc}") from None


def load_farm_plan(path: str) -> FarmChaosPlan:
    """Load a :class:`FarmChaosPlan` from JSON (``--farm-chaos``)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load farm chaos plan {path!r}: {exc}") from None
    return FarmChaosPlan.from_dict(payload)


def default_farm_plan(kills: int = 1, stalls: int = 0,
                      first_start: int = 2, stride: int = 3,
                      delay_s: float = 0.1,
                      controller_crashes: int = 0) -> FarmChaosPlan:
    """An evenly spread kill/stall schedule (``--chaos-kills/--chaos-stalls``).

    Strikes land on every ``stride``-th dispatched attempt beginning at
    ``first_start``, kills first, then stalls, so a 20-job batch with
    ``kills=2, stalls=1`` loses workers at the 2nd, 5th, and 8th starts.
    ``controller_crashes`` appends controller-SIGKILL strikes after the
    worker strikes (normally 0 or 1 -- each one ends the run until
    ``repro serve recover`` resumes it).
    """
    if kills < 0 or stalls < 0 or controller_crashes < 0:
        raise ConfigError("kills, stalls, and controller_crashes must be >= 0")
    if stride < 1:
        raise ConfigError(f"stride must be >= 1, got {stride}")
    faults = []
    start = first_start
    for _ in range(kills):
        faults.append(WorkerFault(on_start=start, delay_s=delay_s, op="kill"))
        start += stride
    for _ in range(stalls):
        faults.append(WorkerFault(on_start=start, delay_s=delay_s, op="stall"))
        start += stride
    for _ in range(controller_crashes):
        faults.append(WorkerFault(on_start=start, delay_s=delay_s,
                                  op="controller_crash"))
        start += stride
    return FarmChaosPlan(faults=tuple(faults))
