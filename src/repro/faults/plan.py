"""Fault plans: declarative, seeded descriptions of injected failures.

A :class:`FaultPlan` is the *entire* input of the fault-injection
subsystem: which disks misbehave and how, when memory-pressure storms
hit, how far the residency bit vector lags reality, and how often hint
system calls fail.  Everything stochastic inside a faulted run draws
from generators derived from ``FaultPlan.seed`` alone, so the same plan
plus the same workload produces a bit-identical run -- the property
``tests/test_faults.py`` pins.

Plans are plain frozen dataclasses with a JSON round trip
(:meth:`FaultPlan.to_dict` / :meth:`FaultPlan.from_dict` /
:meth:`load_plan`), so adversarial experiments are files that can be
committed next to their results.  ``docs/robustness.md`` documents every
field; ``scripts/check_docs.py`` fails the build when that schema table
and these dataclasses drift apart.

Fault injection is strictly opt-in: no ``FaultPlan`` means no injector
object exists anywhere in the machine, and every simulated result stays
bit-identical to an unfaulted build (pinned by the golden EMBAR trace).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError, ensure_finite
from repro.ioutil import atomic_write_json

#: The fault-plan JSON schema version this build reads and writes.
PLAN_VERSION = 1


@dataclass(frozen=True)
class SlowWindow:
    """One fail-slow episode: service times multiplied inside a window.

    Models a disk that degrades without failing -- vibration, thermal
    throttling, a firmware retry storm -- the "fail-slow" regime that
    adversarial prefetching evaluations care about most, because a slow
    disk stretches the prefetch pipeline instead of breaking it.
    """

    start_us: float
    duration_us: float
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        ensure_finite(self.start_us, "slow window start_us")
        ensure_finite(self.duration_us, "slow window duration_us")
        ensure_finite(self.multiplier, "slow window multiplier")
        if self.start_us < 0:
            raise ConfigError(f"slow window start_us must be >= 0, got {self.start_us}")
        if self.duration_us <= 0:
            raise ConfigError(
                f"slow window duration_us must be > 0, got {self.duration_us}"
            )
        if self.multiplier < 1.0:
            raise ConfigError(
                f"slow window multiplier must be >= 1 (a fault never speeds a "
                f"disk up), got {self.multiplier}"
            )

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    def covers(self, at_us: float) -> bool:
        return self.start_us <= at_us < self.end_us


@dataclass(frozen=True)
class DiskFaultSpec:
    """Fault model for one disk of the array.

    ``read_error_rate`` is the per-read-request probability of a
    transient medium error (discovered at the end of the failed service,
    retried by the :class:`~repro.storage.array_ctl.DiskArray` with
    exponential backoff).  ``dead_at_us`` marks the disk failed from
    that simulated time on: reads and writes are redirected to the
    surviving disks through the penalized reconstruction path.
    """

    disk: int
    slow_windows: tuple[SlowWindow, ...] = ()
    read_error_rate: float = 0.0
    dead_at_us: float | None = None

    def __post_init__(self) -> None:
        if self.disk < 0:
            raise ConfigError(f"disk index must be >= 0, got {self.disk}")
        if not 0.0 <= self.read_error_rate <= 1.0:
            raise ConfigError(
                f"read_error_rate must be in [0, 1], got {self.read_error_rate}"
            )
        if self.dead_at_us is not None:
            ensure_finite(self.dead_at_us, "dead_at_us")
            if self.dead_at_us < 0:
                raise ConfigError(f"dead_at_us must be >= 0, got {self.dead_at_us}")
        # Tuples survive JSON round trips as lists; normalize.
        object.__setattr__(self, "slow_windows", tuple(self.slow_windows))


@dataclass(frozen=True)
class PressureStorm:
    """A burst train of memory-pressure claims (generalized competitor).

    Each burst claims ``frames`` frames at ``start_us + k * period_us``
    and (with ``hold_us``) returns them ``hold_us`` later, driving the
    existing :meth:`~repro.vm.manager.MemoryManager.schedule_pressure`
    machinery.  ``hold_us=None`` means the frames never come back.
    """

    start_us: float
    frames: int
    bursts: int = 1
    period_us: float = 0.0
    hold_us: float | None = None

    def __post_init__(self) -> None:
        ensure_finite(self.start_us, "storm start_us")
        ensure_finite(self.period_us, "storm period_us")
        if self.hold_us is not None:
            ensure_finite(self.hold_us, "storm hold_us")
        if self.start_us < 0:
            raise ConfigError(f"storm start_us must be >= 0, got {self.start_us}")
        if self.frames <= 0:
            raise ConfigError(f"storm must claim >= 1 frame, got {self.frames}")
        if self.bursts <= 0:
            raise ConfigError(f"storm needs >= 1 burst, got {self.bursts}")
        if self.bursts > 1 and self.period_us <= 0:
            raise ConfigError("multi-burst storm needs period_us > 0")
        if self.hold_us is not None and self.hold_us <= 0:
            raise ConfigError(f"storm hold_us must be > 0, got {self.hold_us}")

    def schedule(self) -> list[tuple[float, int, float | None]]:
        """Expand into ``(at_us, frames, hold_us)`` burst triples."""
        return [
            (self.start_us + k * self.period_us, self.frames, self.hold_us)
            for k in range(self.bursts)
        ]


@dataclass(frozen=True)
class FaultPlan:
    """The complete, seeded description of one faulted run.

    Identical plan + identical workload => bit-identical faulted run:
    all randomness comes from streams derived from ``seed``, and every
    injected delay is computed in simulated time at issue, never from
    wall-clock state.
    """

    seed: int = 0
    disks: tuple[DiskFaultSpec, ...] = ()
    storms: tuple[PressureStorm, ...] = ()
    #: Residency bit-vector updates become visible this much simulated
    #: time late, so the run-time filter can be stale in both directions.
    bitvector_lag_us: float = 0.0
    #: Per-syscall probability that a prefetch hint call fails/times out.
    hint_failure_rate: float = 0.0
    #: CPU time one failed hint call burns before the error returns.
    hint_timeout_us: float = 200.0
    #: Bounded retries for transient read errors before reconstruction.
    max_retries: int = 3
    #: Base of the exponential retry backoff (simulated microseconds).
    retry_backoff_us: float = 2_000.0
    #: Service-time multiplier of the degraded reconstruction path.
    reconstruction_penalty: float = 4.0
    #: Consecutive hint-call failures before demand-paging fallback.
    fallback_after: int = 4
    #: Prefetch requests skipped per fallback episode before re-probing.
    fallback_cooldown: int = 256
    #: Simulated cycles (us) at which the whole process is killed -- the
    #: ``process_crash`` fault kind.  Delivered at interpreter safe
    #: points; a checkpointed run resumes past them, an unchckpointed
    #: run dies and must restart from scratch.
    crashes: tuple[float, ...] = ()
    #: Schema version of the plan (see :data:`PLAN_VERSION`).
    version: int = PLAN_VERSION

    def __post_init__(self) -> None:
        if self.version != PLAN_VERSION:
            raise ConfigError(
                f"fault plan version {self.version!r} is not supported "
                f"(this build reads version {PLAN_VERSION})"
            )
        object.__setattr__(self, "disks", tuple(self.disks))
        object.__setattr__(self, "storms", tuple(self.storms))
        crashes = tuple(sorted(float(c) for c in self.crashes))
        for cycle in crashes:
            ensure_finite(cycle, "crash cycle")
            if cycle < 0:
                raise ConfigError(f"crash cycle must be >= 0, got {cycle}")
        object.__setattr__(self, "crashes", crashes)
        seen = set()
        for spec in self.disks:
            if spec.disk in seen:
                raise ConfigError(f"disk {spec.disk} configured twice in the plan")
            seen.add(spec.disk)
        if not 0.0 <= self.hint_failure_rate <= 1.0:
            raise ConfigError(
                f"hint_failure_rate must be in [0, 1], got {self.hint_failure_rate}"
            )
        ensure_finite(self.bitvector_lag_us, "bitvector_lag_us")
        ensure_finite(self.hint_timeout_us, "hint_timeout_us")
        ensure_finite(self.retry_backoff_us, "retry_backoff_us")
        ensure_finite(self.reconstruction_penalty, "reconstruction_penalty")
        if self.bitvector_lag_us < 0:
            raise ConfigError(f"bitvector_lag_us must be >= 0, got {self.bitvector_lag_us}")
        if self.hint_timeout_us < 0:
            raise ConfigError(f"hint_timeout_us must be >= 0, got {self.hint_timeout_us}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_us < 0:
            raise ConfigError(f"retry_backoff_us must be >= 0, got {self.retry_backoff_us}")
        if self.reconstruction_penalty < 1.0:
            raise ConfigError(
                f"reconstruction_penalty must be >= 1, got {self.reconstruction_penalty}"
            )
        if self.fallback_after <= 0:
            raise ConfigError(f"fallback_after must be >= 1, got {self.fallback_after}")
        if self.fallback_cooldown <= 0:
            raise ConfigError(f"fallback_cooldown must be >= 1, got {self.fallback_cooldown}")

    # ------------------------------------------------------------------
    # Derived plans
    # ------------------------------------------------------------------

    def is_noop(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.disks
            and not self.storms
            and self.bitvector_lag_us == 0.0
            and self.hint_failure_rate == 0.0
            and not self.crashes
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def scaled(self, intensity: float) -> "FaultPlan":
        """Interpolate between a clean run (0.0) and this plan (1.0).

        Rates, lags, and the *excess* of multipliers over 1 scale
        linearly; whole-disk death is all-or-nothing and only survives
        at ``intensity >= 1``.  Storms scale their claimed frames.
        The chaos sweep drives this to build its intensity grid.
        """
        if intensity < 0:
            raise ConfigError(f"intensity must be >= 0, got {intensity}")
        if intensity == 0:
            return FaultPlan(seed=self.seed)
        disks = []
        for spec in self.disks:
            windows = tuple(
                replace(w, multiplier=1.0 + (w.multiplier - 1.0) * min(intensity, 1.0))
                for w in spec.slow_windows
            )
            disks.append(replace(
                spec,
                slow_windows=windows,
                read_error_rate=min(1.0, spec.read_error_rate * intensity),
                dead_at_us=spec.dead_at_us if intensity >= 1.0 else None,
            ))
        storms = []
        for storm in self.storms:
            frames = int(round(storm.frames * min(intensity, 1.0)))
            if frames > 0:
                storms.append(replace(storm, frames=frames))
        return replace(
            self,
            disks=tuple(disks),
            storms=tuple(storms),
            bitvector_lag_us=self.bitvector_lag_us * intensity,
            hint_failure_rate=min(1.0, self.hint_failure_rate * intensity),
            # Like whole-disk death, process death is all-or-nothing.
            crashes=self.crashes if intensity >= 1.0 else (),
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigError("fault plan must be a JSON object")
        data = dict(payload)
        # Reject unknown versions before field-level parsing: a future
        # schema may rename fields, and "malformed plan" would mislead.
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise ConfigError(
                f"fault plan version {version!r} is not supported "
                f"(this build reads version {PLAN_VERSION})"
            )
        try:
            disks = tuple(
                DiskFaultSpec(**{
                    **d, "slow_windows": tuple(
                        SlowWindow(**w) for w in d.get("slow_windows", ())
                    ),
                })
                for d in data.pop("disks", ())
            )
            storms = tuple(PressureStorm(**s) for s in data.pop("storms", ()))
            return cls(disks=disks, storms=storms, **data)
        except TypeError as exc:
            raise ConfigError(f"malformed fault plan: {exc}") from None


def load_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file (the ``--faults`` flag)."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load fault plan {path!r}: {exc}") from None
    return FaultPlan.from_dict(payload)


def save_plan(path: str, plan: FaultPlan) -> None:
    """Write a plan as JSON, atomically (for committing chaos experiments)."""
    atomic_write_json(path, plan.to_dict(), indent=1, sort_keys=True)


def default_plan(num_disks: int, seed: int = 1) -> FaultPlan:
    """A representative adversarial plan for chaos sweeps.

    One disk dies mid-run, another fail-slows, a third throws transient
    read errors; two pressure storms hit; the bit vector lags one fault
    service; hints fail occasionally.  Scaled by intensity this covers
    the whole taxonomy in one sweep -- supply ``--faults`` for anything
    bespoke.
    """
    if num_disks <= 0:
        raise ConfigError(f"need >= 1 disk, got {num_disks}")
    disks = [DiskFaultSpec(
        disk=0,
        slow_windows=(SlowWindow(start_us=50_000.0, duration_us=400_000.0,
                                 multiplier=6.0),),
    )]
    if num_disks > 1:
        disks.append(DiskFaultSpec(disk=1, read_error_rate=0.05))
    if num_disks > 2:
        disks.append(DiskFaultSpec(disk=2, dead_at_us=250_000.0))
    return FaultPlan(
        seed=seed,
        disks=tuple(disks),
        storms=(PressureStorm(start_us=100_000.0, frames=8, bursts=3,
                              period_us=300_000.0, hold_us=150_000.0),),
        bitvector_lag_us=500.0,
        hint_failure_rate=0.02,
    )
