"""Deterministic fault injection with degraded-mode recovery.

The subsystem has three parts: :mod:`repro.faults.plan` (the declarative,
seeded :class:`FaultPlan` and its JSON round trip), :mod:`repro.faults.
inject` (the per-run state the machine threads through the disk, VM, and
run-time layers), and :mod:`repro.faults.chaos` (the intensity-sweep
harness behind ``python -m repro chaos``).  See docs/robustness.md.
"""

from repro.faults.farm import (
    FarmChaosPlan,
    WorkerFault,
    default_farm_plan,
    load_farm_plan,
)
from repro.faults.inject import (
    DiskFaultState,
    FaultInjector,
    HintFaultState,
    LaggedBitVector,
    StorageFaults,
)
from repro.faults.plan import (
    DiskFaultSpec,
    FaultPlan,
    PressureStorm,
    SlowWindow,
    default_plan,
    load_plan,
    save_plan,
)

#: Chaos-harness exports resolved lazily: ``repro.faults.chaos`` imports
#: the experiment harness, which imports the machine, which imports
#: ``repro.faults.inject`` -- an eager import here would close that loop
#: while the machine module is still half-initialized.
_CHAOS_EXPORTS = ("ChaosReport", "ChaosRow", "chaos_report_dict",
                  "chaos_sweep", "dropped_hint_pages")

__all__ = [
    "DiskFaultSpec",
    "DiskFaultState",
    "FarmChaosPlan",
    "FaultInjector",
    "FaultPlan",
    "HintFaultState",
    "LaggedBitVector",
    "PressureStorm",
    "SlowWindow",
    "StorageFaults",
    "WorkerFault",
    "default_farm_plan",
    "default_plan",
    "load_farm_plan",
    "load_plan",
    "save_plan",
    *_CHAOS_EXPORTS,
]


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
