"""Runtime state of an active fault plan, threaded through the layers.

One :class:`FaultInjector` is built per faulted :class:`~repro.machine.
machine.Machine` and hands each layer its slice of the plan:

* the :class:`~repro.storage.array_ctl.DiskArray` gets a
  :class:`StorageFaults` policy (dead-disk checks, retry/backoff and
  reconstruction parameters) and each :class:`~repro.storage.disk.Disk`
  gets its own :class:`DiskFaultState` (fail-slow multiplier, seeded
  transient-error stream);
* the :class:`~repro.vm.manager.MemoryManager` gets the plan's pressure
  storms expanded into ``schedule_pressure`` bursts;
* the :class:`~repro.runtime.layer.RuntimeLayer` gets a
  :class:`HintFaultState` (seeded hint-call failures plus the
  demand-paging fallback state machine) and, with ``bitvector_lag_us``
  set, its bit vector is wrapped in a :class:`LaggedBitVector`.

Determinism: every random stream is derived via
:func:`repro.seeding.derive_rng` from ``plan.seed`` plus a fixed
per-layer salt, and all draws happen at well-defined points of the
(single-threaded) simulation, so a plan is exactly reproducible.  No
injector exists when no plan is given -- the opt-out costs one
``is None`` check per already-slow path.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigError
from repro.faults.plan import DiskFaultSpec, FaultPlan
from repro.seeding import derive_rng


class DiskFaultState:
    """Per-disk fault state: fail-slow windows and the error stream."""

    __slots__ = ("spec", "_rng", "_has_errors")

    def __init__(self, spec: DiskFaultSpec, seed: int) -> None:
        self.spec = spec
        self._rng = derive_rng(seed, "disk", spec.disk)
        self._has_errors = spec.read_error_rate > 0.0

    def service_scale(self, at_us: float) -> float:
        """Fail-slow multiplier for a service starting at ``at_us``."""
        scale = 1.0
        for window in self.spec.slow_windows:
            if window.covers(at_us):
                scale *= window.multiplier
        return scale

    def dead(self, at_us: float) -> bool:
        return self.spec.dead_at_us is not None and at_us >= self.spec.dead_at_us

    def draw_read_error(self) -> bool:
        """One seeded draw per read attempt (including retries)."""
        return self._has_errors and self._rng.random() < self.spec.read_error_rate


class StorageFaults:
    """The disk array's view of the plan: per-disk states plus policy."""

    __slots__ = ("plan", "states")

    def __init__(self, plan: FaultPlan, num_disks: int) -> None:
        self.plan = plan
        self.states: dict[int, DiskFaultState] = {}
        dead = 0
        for spec in plan.disks:
            if spec.disk >= num_disks:
                raise ConfigError(
                    f"fault plan names disk {spec.disk} but the array has "
                    f"only {num_disks} disks"
                )
            self.states[spec.disk] = DiskFaultState(spec, plan.seed)
            if spec.dead_at_us is not None:
                dead += 1
        if dead >= num_disks:
            raise ConfigError(
                "fault plan kills every disk; at least one must survive "
                "for the reconstruction path"
            )

    def state(self, disk_index: int) -> DiskFaultState | None:
        return self.states.get(disk_index)

    def dead(self, disk_index: int, at_us: float) -> bool:
        state = self.states.get(disk_index)
        return state is not None and state.dead(at_us)


class HintFaultState:
    """Seeded hint-call failures and the demand-paging fallback machine.

    The run-time layer consults this in two places: :meth:`gate` before
    doing any per-request work (a layer in fallback does not even check
    the bit vector -- it is running as plain demand paging), and
    :meth:`draw_failure` at the moment a prefetch system call would be
    issued.  The layer itself charges the timeout cost and emits the
    trace events; this object only holds the seeded decisions.
    """

    __slots__ = ("plan", "_rng", "consecutive_failures", "cooldown_remaining",
                 "in_fallback")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = derive_rng(plan.seed, "hints")
        self.consecutive_failures = 0
        self.cooldown_remaining = 0
        self.in_fallback = False

    def gate(self) -> bool:
        """Consume one request; False while the fallback cooldown runs.

        When the cooldown expires the state exits fallback and the
        *current* request proceeds -- that is the re-probe.
        """
        if not self.in_fallback:
            return True
        if self.cooldown_remaining > 0:
            self.cooldown_remaining -= 1
            return False
        self.in_fallback = False
        return True

    def draw_failure(self) -> bool:
        """One seeded draw per prefetch call reaching the OS boundary."""
        return self._rng.random() < self.plan.hint_failure_rate

    def note_failure(self) -> bool:
        """Record one failed call; True when it tips into fallback."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.plan.fallback_after:
            self.consecutive_failures = 0
            self.in_fallback = True
            self.cooldown_remaining = self.plan.fallback_cooldown
            return True
        return False

    def note_success(self) -> None:
        self.consecutive_failures = 0


class LaggedBitVector:
    """A residency bit vector whose updates become visible late.

    Wraps the real :class:`~repro.runtime.bitvector.ResidencyBitVector`:
    ``set``/``clear`` are queued for ``lag_us`` simulated microseconds
    and applied (in order) the next time anyone reads the vector.  The
    filter can therefore be stale in both directions -- it may filter a
    prefetch for a page that was just evicted (the page faults later;
    hints are non-binding, so this only costs time) and it may pass a
    prefetch for a page that is already resident (the OS finds it and
    counts it unnecessary).
    """

    __slots__ = ("inner", "clock", "lag_us", "_pending")

    def __init__(self, inner, clock, lag_us: float) -> None:
        if lag_us <= 0:
            raise ConfigError(f"bit-vector lag must be > 0, got {lag_us}")
        self.inner = inner
        self.clock = clock
        self.lag_us = lag_us
        #: Queued ``(visible_at_us, op, vpage)`` updates, oldest first.
        self._pending: deque[tuple[float, bool, int]] = deque()

    @property
    def granularity(self) -> int:
        return self.inner.granularity

    def _apply_due(self) -> None:
        now = self.clock.now
        pending = self._pending
        while pending and pending[0][0] <= now:
            _, is_set, vpage = pending.popleft()
            if is_set:
                self.inner.set(vpage)
            else:
                self.inner.clear(vpage)

    def set(self, vpage: int) -> None:
        self._pending.append((self.clock.now + self.lag_us, True, vpage))

    def clear(self, vpage: int) -> None:
        self._pending.append((self.clock.now + self.lag_us, False, vpage))

    def test(self, vpage: int) -> bool:
        self._apply_due()
        return self.inner.test(vpage)

    @property
    def raw(self):
        self._apply_due()
        return self.inner.raw


class FaultInjector:
    """Per-machine bundle of the plan's layer states."""

    __slots__ = ("plan", "storage", "hints", "crash_cursor")

    def __init__(self, plan: FaultPlan, num_disks: int) -> None:
        self.plan = plan
        self.storage = StorageFaults(plan, num_disks) if plan.disks else None
        self.hints = HintFaultState(plan) if plan.hint_failure_rate > 0 else None
        #: Index of the next undelivered ``plan.crashes`` entry.  This is
        #: per-process-incarnation state and deliberately *excluded* from
        #: snapshots: a resumed run must not re-die at the crash it is
        #: recovering from.  Across processes the checkpoint store's crash
        #: ledger carries the delivered count instead.
        self.crash_cursor = 0

    def next_crash_us(self) -> float | None:
        """The next undelivered crash cycle, or None when exhausted."""
        if self.crash_cursor < len(self.plan.crashes):
            return self.plan.crashes[self.crash_cursor]
        return None

    def suppress_crashes(self) -> None:
        """Mark every planned crash delivered (``--ignore-crash-faults``)."""
        self.crash_cursor = len(self.plan.crashes)

    def storm_bursts(self) -> list[tuple[float, int, float | None]]:
        """Every storm burst of the plan as ``(at_us, frames, hold_us)``."""
        bursts: list[tuple[float, int, float | None]] = []
        for storm in self.plan.storms:
            bursts.extend(storm.schedule())
        return bursts
