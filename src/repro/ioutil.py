"""Crash-safe file writes shared by every artifact producer.

A half-written JSON report or checkpoint is worse than none: the bench
gate, ``--resume-from``, and fault-plan loaders would all choke on a
file truncated by a crash mid-``write``.  Every artifact writer in the
repo therefore goes through one helper that writes to a temporary file
in the destination directory and atomically renames it into place, so
readers only ever observe the old complete file or the new complete
file.

``fsync`` is optional: checkpoints ask for it (they must survive the
very crash they guard against), ordinary reports skip it (atomicity is
enough; durability against power loss is not their contract).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def atomic_write_bytes(path: str | Path, data: bytes, *,
                       fsync: bool = False) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    With ``fsync=True`` the file contents are flushed to stable storage
    before the rename, and the directory entry after it -- the full
    crash-consistency dance a checkpoint needs.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        # Persist the rename itself; best-effort (not all filesystems
        # support directory fsync).
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)


def atomic_write_text(path: str | Path, text: str, *,
                      fsync: bool = False) -> None:
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(path: str | Path, obj: Any, *, indent: int = 1,
                      sort_keys: bool = True, fsync: bool = False) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)
