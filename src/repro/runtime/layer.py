"""The run-time layer proper: filtering compiler-inserted prefetches.

Every prefetch the compiler inserted reaches this layer first.  The layer
checks the shared bit vector and drops requests whose pages are already
believed resident -- at roughly 1% of the cost of a system call.  For block
requests it checks each page "until one is found that is not in memory,
then pass[es] all remaining pages to the OS.  In this way, at most one
system call is required for a block prefetch." (paper, Section 2.4)

The layer can be constructed disabled (``filter_enabled=False``) to
reproduce Figure 4(c), where every compiler-inserted prefetch goes straight
to the OS and half the applications become slower than not prefetching at
all.

**Adaptive suppression** (``adaptive=True``) implements the paper's
Section 4.3.1 future-work proposal: "we can generate code that dynamically
adapts its behavior ... suppressing prefetches (after the cold faults have
been prefetched in) if the data fits within memory".  When a long run of
consecutive prefetch requests is entirely filtered (the data evidently
fits), the layer stops even checking the bit vector for a span of
requests, sampling occasionally so it re-engages the moment residency
changes.  Suppression only skips *hint* work; hints are non-binding, so
at worst a suppressed prefetch becomes an ordinary fault.
"""

from __future__ import annotations

from repro.config import PlatformConfig
from repro.obs.trace import TraceKind
from repro.runtime.bitvector import ResidencyBitVector
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats
from repro.vm.manager import MemoryManager

#: Consecutive fully-filtered requests before suppression engages.
SUPPRESS_AFTER = 1024
#: Requests skipped per suppression span (before fully re-evaluating).
SUPPRESS_SPAN = 8192
#: Within a span, every Nth request is still checked as a sample.
SAMPLE_EVERY = 64


class RuntimeLayer:
    """User-level prefetch filter in front of the OS hint interface."""

    def __init__(
        self,
        config: PlatformConfig,
        clock: Clock,
        manager: MemoryManager,
        stats: RunStats,
        filter_enabled: bool = True,
        adaptive: bool = False,
        observer=None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.manager = manager
        self.stats = stats
        #: Attached :class:`repro.obs.Observer`, or None (tracing off).
        self.obs = observer
        self.filter_enabled = filter_enabled
        #: Section 4.3.1 extension: suppress prefetching while everything
        #: is resident.
        self.adaptive = adaptive
        self._filtered_streak = 0
        self._suppressed_remaining = 0
        #: Attached :class:`repro.faults.inject.HintFaultState`, or None
        #: (the default: hint calls never fail).  Set by the machine when
        #: a fault plan with ``hint_failure_rate > 0`` is active.
        self.hint_faults = None
        self.bitvector = ResidencyBitVector(config.bitvector_granularity)
        # Register with the OS: wire the shared page into the memory
        # manager so the OS side sets bits on faults and clears them on
        # release / reclaim (paper: "Applications that prefetch are
        # required to register with the OS to initiate sharing").
        manager.bitvector = self.bitvector

    # ------------------------------------------------------------------
    # Adaptive suppression (Section 4.3.1 extension)
    # ------------------------------------------------------------------

    def _suppression_active(self, npages: int) -> bool:
        """Consume one request from the suppression state machine."""
        if not self.adaptive:
            return False
        if self._suppressed_remaining > 0:
            self._suppressed_remaining -= 1
            if self._suppressed_remaining % SAMPLE_EVERY == 0:
                return False  # sampled request: go through the filter
            self.stats.prefetch.suppressed += npages
            return True
        return False

    def _note_outcome(self, fully_filtered: bool) -> None:
        if not self.adaptive:
            return
        if fully_filtered:
            self._filtered_streak += 1
            if self._filtered_streak >= SUPPRESS_AFTER:
                self._suppressed_remaining = SUPPRESS_SPAN
                self._filtered_streak = 0
        else:
            # Residency changed: re-engage full filtering immediately.
            self._filtered_streak = 0
            self._suppressed_remaining = 0

    # ------------------------------------------------------------------
    # Hint-call fault injection (active only under a FaultPlan)
    # ------------------------------------------------------------------

    def _hint_gate(self, npages: int) -> bool:
        """Consume one request from the fallback state machine.

        False means the layer is degraded to plain demand paging for
        this request: no bit-vector check, no OS call.  Hints are
        non-binding, so skipping them is always safe -- the pages fault
        in on demand instead.
        """
        faults = self.hint_faults
        was_fallback = faults.in_fallback
        if not faults.gate():
            self.stats.robust.hints_skipped += npages
            return False
        if was_fallback and self.obs is not None:
            self.obs.emit(self.clock.now, TraceKind.HINT_FALLBACK,
                          -1, npages, 0.0, "reprobe")
        return True

    def _hint_call_fails(self, start_vpage: int, npages: int) -> bool:
        """Draw one failure at the OS boundary; charge the timeout if so."""
        faults = self.hint_faults
        if faults is None:
            return False
        if not faults.draw_failure():
            faults.note_success()
            return False
        # The failed call still costs a (timed-out) kernel crossing.
        self.clock.advance(faults.plan.hint_timeout_us, TimeCategory.SYS_PREFETCH)
        self.stats.robust.hint_failures += 1
        if self.obs is not None:
            self.obs.emit(self.clock.now, TraceKind.HINT_FAILED,
                          start_vpage, npages)
        if faults.note_failure():
            self.stats.robust.fallback_episodes += 1
            if self.obs is not None:
                self.obs.emit(self.clock.now, TraceKind.HINT_FALLBACK,
                              start_vpage, npages, 0.0, "enter")
        return True

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def prefetch(self, start_vpage: int, npages: int = 1) -> None:
        """Handle one compiler-inserted prefetch request."""
        clock = self.clock
        cost = self.config.cost
        pstats = self.stats.prefetch
        pstats.compiler_inserted += npages
        clock.advance(cost.addr_gen_us, TimeCategory.USER_OVERHEAD)
        if self.hint_faults is not None and not self._hint_gate(npages):
            return
        if not self.filter_enabled:
            if self._hint_call_fails(start_vpage, npages):
                return
            self.manager.prefetch_call(start_vpage, npages)
            return
        if self._suppression_active(npages):
            if self.obs is not None:
                self.obs.emit(clock.now, TraceKind.PREFETCH_SUPPRESSED,
                              start_vpage, npages)
            return
        test = self.bitvector.test
        checked = 0
        first_missing = -1
        for vpage in range(start_vpage, start_vpage + npages):
            checked += 1
            if not test(vpage):
                first_missing = vpage
                break
        clock.advance(cost.filter_check_us * checked, TimeCategory.USER_OVERHEAD)
        if first_missing < 0:
            pstats.filtered += npages
            if self.obs is not None:
                self.obs.emit(clock.now, TraceKind.PREFETCH_FILTERED,
                              start_vpage, npages)
            self._note_outcome(fully_filtered=True)
            return
        self._note_outcome(fully_filtered=False)
        leading_resident = first_missing - start_vpage
        pstats.filtered += leading_resident
        if self.obs is not None and leading_resident:
            self.obs.emit(clock.now, TraceKind.PREFETCH_FILTERED,
                          start_vpage, leading_resident)
        if self._hint_call_fails(first_missing, npages - leading_resident):
            return
        self.manager.prefetch_call(first_missing, npages - leading_resident)

    def prefetch_release(
        self, start_vpage: int, npages: int, release_vpages: list[int]
    ) -> None:
        """Handle a bundled prefetch+release request (Figure 2(b)).

        The release part must always reach the OS (only the OS can move
        pages to the free list), but if the prefetch part is entirely
        filtered the call degenerates to a plain release.
        """
        clock = self.clock
        cost = self.config.cost
        pstats = self.stats.prefetch
        pstats.compiler_inserted += npages
        clock.advance(cost.addr_gen_us, TimeCategory.USER_OVERHEAD)
        if self.hint_faults is not None and not self._hint_gate(npages):
            # Only the prefetch half degrades; the release must still
            # reach the OS (only the OS can free the frames).
            self.manager.release_call(release_vpages)
            return
        first_missing = -1
        if self.filter_enabled:
            test = self.bitvector.test
            checked = 0
            for vpage in range(start_vpage, start_vpage + npages):
                checked += 1
                if not test(vpage):
                    first_missing = vpage
                    break
            clock.advance(cost.filter_check_us * checked, TimeCategory.USER_OVERHEAD)
        else:
            first_missing = start_vpage
        if first_missing < 0:
            pstats.filtered += npages
            if self.obs is not None:
                self.obs.emit(clock.now, TraceKind.PREFETCH_FILTERED,
                              start_vpage, npages)
            self.manager.release_call(release_vpages)
            return
        leading_resident = first_missing - start_vpage
        pstats.filtered += leading_resident
        if self.obs is not None and leading_resident:
            self.obs.emit(clock.now, TraceKind.PREFETCH_FILTERED,
                          start_vpage, leading_resident)
        if self._hint_call_fails(first_missing, npages - leading_resident):
            self.manager.release_call(release_vpages)
            return
        self.manager.prefetch_release_call(
            first_missing, npages - leading_resident, release_vpages
        )

    # ------------------------------------------------------------------
    # Release path
    # ------------------------------------------------------------------

    def release(self, vpages: list[int]) -> None:
        """Handle one compiler-inserted release request."""
        self.clock.advance(self.config.cost.addr_gen_us, TimeCategory.USER_OVERHEAD)
        self.manager.release_call(vpages)
