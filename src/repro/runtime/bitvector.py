"""The shared residency bit vector.

"The shared page is used as a bit vector with each bit representing one or
more contiguous pages of the application's virtual memory space (a set bit
indicates that the corresponding page is in memory).  The granularity of
the bit vector is determined by the run-time layer at program start-up.
Bits are set by the run-time layer when a prefetch request is issued, and
by the OS when non-prefetched page faults occur.  The OS also clears bits
when release requests are issued and when the memory manager reclaims
pages." (paper, Section 2.4)

At granularity > 1 the vector is deliberately *approximate*, exactly as a
real shared page would be: evicting one page of a group clears the whole
group's bit, so the filter errs toward issuing (correct but slower), while
a resident sibling can mask a non-resident page, in which case the dropped
prefetch simply shows up later as an ordinary fault.  Hints are
non-binding, so neither error affects correctness.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ResidencyBitVector:
    """Auto-growing bit vector over virtual pages, ``granularity`` pages/bit."""

    __slots__ = ("granularity", "_bits")

    def __init__(self, granularity: int = 1) -> None:
        if granularity <= 0:
            raise ConfigError(f"bit-vector granularity must be positive, got {granularity}")
        self.granularity = granularity
        self._bits = bytearray(1024)

    def _ensure(self, index: int) -> None:
        if index >= len(self._bits):
            grown = bytearray(max(index + 1, 2 * len(self._bits)))
            grown[: len(self._bits)] = self._bits
            self._bits = grown

    def set(self, vpage: int) -> None:
        """The OS or run-time layer believes ``vpage`` is (becoming) resident."""
        index = vpage // self.granularity
        self._ensure(index)
        self._bits[index] = 1

    def clear(self, vpage: int) -> None:
        """``vpage`` left memory (released or reclaimed)."""
        index = vpage // self.granularity
        if index < len(self._bits):
            self._bits[index] = 0

    def test(self, vpage: int) -> bool:
        """Is ``vpage`` believed resident?"""
        index = vpage // self.granularity
        if index < len(self._bits):
            return bool(self._bits[index])
        return False

    # Exposed for the machine's inlined fast path.
    @property
    def raw(self) -> bytearray:
        return self._bits
