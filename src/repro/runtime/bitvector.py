"""The shared residency bit vector.

"The shared page is used as a bit vector with each bit representing one or
more contiguous pages of the application's virtual memory space (a set bit
indicates that the corresponding page is in memory).  The granularity of
the bit vector is determined by the run-time layer at program start-up.
Bits are set by the run-time layer when a prefetch request is issued, and
by the OS when non-prefetched page faults occur.  The OS also clears bits
when release requests are issued and when the memory manager reclaims
pages." (paper, Section 2.4)

At granularity > 1 the vector is deliberately *approximate*, exactly as a
real shared page would be: evicting one page of a group clears the whole
group's bit, so the filter errs toward issuing (correct but slower), while
a resident sibling can mask a non-resident page, in which case the dropped
prefetch simply shows up later as an ordinary fault.  Hints are
non-binding, so neither error affects correctness.

The backing store is a numpy ``uint8`` array so that the machine's
vectorized chunk kernel can evaluate the run-time filter for a whole
batch of prefetch requests with one gather (:meth:`test_many`) instead
of one Python call per request.  The scalar ``set``/``clear``/``test``
API is unchanged; ``test_many(pages)`` is provably equivalent to
``[test(p) for p in pages]`` because both read the same array with the
same ``vpage // granularity`` index and out-of-range indices are False
either way (see docs/performance.md).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ResidencyBitVector:
    """Auto-growing bit vector over virtual pages, ``granularity`` pages/bit."""

    __slots__ = ("granularity", "_bits", "drops")

    def __init__(self, granularity: int = 1) -> None:
        if granularity <= 0:
            raise ConfigError(f"bit-vector granularity must be positive, got {granularity}")
        self.granularity = granularity
        self._bits = np.zeros(1024, dtype=np.uint8)
        #: Count of 1 -> 0 bit transitions.  Mirrors
        #: :attr:`repro.vm.residency.PageFlagVector.drops`: the chunk
        #: kernel uses it to detect when cached filter classifications
        #: may have turned optimistic (a set bit went away).
        self.drops = 0

    def _ensure(self, index: int) -> None:
        if index >= len(self._bits):
            grown = np.zeros(max(index + 1, 2 * len(self._bits)), dtype=np.uint8)
            grown[: len(self._bits)] = self._bits
            self._bits = grown

    def set(self, vpage: int) -> None:
        """The OS or run-time layer believes ``vpage`` is (becoming) resident."""
        index = vpage // self.granularity
        self._ensure(index)
        self._bits[index] = 1

    def clear(self, vpage: int) -> None:
        """``vpage`` left memory (released or reclaimed)."""
        index = vpage // self.granularity
        if index < len(self._bits):
            if self._bits[index]:
                self.drops += 1
            self._bits[index] = 0

    def test(self, vpage: int) -> bool:
        """Is ``vpage`` believed resident?"""
        index = vpage // self.granularity
        if index < len(self._bits):
            return bool(self._bits[index])
        return False

    def test_many(self, vpages: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`test` over an int64 array of page numbers.

        Returns a boolean array; element i is exactly ``test(vpages[i])``
        evaluated against the current bits.
        """
        bits = self._bits
        if self.granularity != 1:
            index = vpages // self.granularity
        else:
            index = vpages
        in_range = index < len(bits)
        clipped = np.where(in_range, index, 0)
        return (bits[clipped] != 0) & in_range

    def reserve(self, vpage: int) -> np.ndarray:
        """Grow to cover ``vpage``'s bit and return the raw bit array.

        Lets the chunk kernel test a whole window with a direct gather
        (``bits[index] != 0``) instead of per-call bounds handling.
        """
        self._ensure(vpage // self.granularity)
        return self._bits

    # Serialization (checkpoint snapshots).
    def to_bytes(self) -> bytes:
        return self._bits.tobytes()

    def load_bytes(self, blob: bytes) -> None:
        self.drops += 1
        bits = np.frombuffer(blob, dtype=np.uint8).copy()
        if len(bits) < 1024:
            grown = np.zeros(1024, dtype=np.uint8)
            grown[: len(bits)] = bits
            bits = grown
        self._bits = bits

    # Exposed for the machine's inlined fast path.
    @property
    def raw(self) -> np.ndarray:
        return self._bits
