"""The user-level run-time layer.

The paper's run-time layer (Section 2.2.2 and 2.4) keeps a bit vector --
on a physical page shared with the OS -- recording which virtual pages are
believed resident, and uses it to drop compiler-inserted prefetches for
already-resident pages *without* a system call.  The paper measures this
filtering to be essential: dropping a prefetch in the run-time layer costs
roughly 1% of issuing it to the OS, and over 96% of the compiler-inserted
prefetches are unnecessary in most applications (Figure 4(b,c)).
"""

from repro.runtime.bitvector import ResidencyBitVector
from repro.runtime.layer import RuntimeLayer

__all__ = ["ResidencyBitVector", "RuntimeLayer"]
