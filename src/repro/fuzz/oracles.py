"""The seven metamorphic / differential oracle families.

Each oracle is a function ``check_<name>(scenario)`` that rebuilds the
scenario's program and platform, drives one or more full runs through
the machine / checkpoint / multiprog layers, and raises
:class:`OracleViolation` when the property fails.  The families (the
"Oracle reference" table in docs/robustness.md documents each one;
``scripts/check_docs.py`` keeps the two in sync):

``stall_bound``
    P never stalls catastrophically more than O: prefetching may lose a
    little time to mis-scheduled I/O on adversarial geometries, but the
    scenario declares how much (``stall_factor`` / ``stall_slack_us``)
    and the run must honour its declaration.
``explain_conservation``
    ``repro explain``'s attributed stall cycles equal the clock's
    ``RunStats`` stall cycles **bitwise** -- on clean and faulted runs.
``filter_soundness``
    The run-time filter never suppresses a prefetch for a page that is
    actually on disk: at the instant of every ``prefetch_filtered``
    event, every covered page is RESIDENT or IN_TRANSIT in the memory
    manager's own page table (valid at bit-vector lag 0, granularity 1
    -- the strategies only attach this oracle then).
``checkpoint_equivalence``
    Kill the process at scheduled points and resume from the newest
    checkpoint: the recovered run's final ``RunStats`` is bit-identical
    to the uninterrupted run's.
``vector_equivalence``
    The vectorized chunk-replay kernel and the scalar loop produce
    bit-identical ``RunStats``.
``chaos_termination``
    A run under a composed fault plan (slow disks, dead disks, read
    errors, hint failures, pressure storms, stale bit vectors, crashes)
    terminates, within a budget derived from the clean run and declared
    by the scenario.  With ``tenants > 1`` this is the multiprogrammed
    variant: co-scheduled O/P tenants on one faulted machine must
    terminate *and* every stall-read microsecond must be attributable
    exactly (scheduler idle + frame-pin waits == clock, bitwise).
``farm_recovery``
    Controller crash recovery is a pure fold of the write-ahead job
    ledger: journal a synthetic farm history, kill the controller at a
    random record boundary (optionally leaving a torn tail line),
    and the surviving prefix must replay into a byte-identical
    :func:`repro.serve.ledger.recovery_plan` twice over, with every
    admitted job accounted for exactly once (terminal jobs folded,
    in-flight ones adopted, the rest re-admitted) -- no real worker
    processes, just the ledger algebra, so this family runs in
    milliseconds.
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
from pathlib import Path

from repro.checkpoint.runner import CheckpointConfig, run_with_recovery
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import ReproError
from repro.fuzz.scenario import Scenario
from repro.harness.experiment import run_variant
from repro.interp.executor import Executor
from repro.machine.machine import Machine
from repro.multiprog.scheduler import CoScheduler
from repro.obs import Observer, StallAttributor
from repro.obs.trace import TraceKind
from repro.seeding import derive_rng
from repro.serve.ledger import (
    JobLedger,
    fold_ledger,
    read_ledger,
    recovery_plan,
)
from repro.serve.retry import RetryPolicy
from repro.vm.page import PageState

#: Every oracle family, in the order the runner exercises them.
ORACLE_NAMES: tuple[str, ...] = (
    "stall_bound",
    "explain_conservation",
    "filter_soundness",
    "checkpoint_equivalence",
    "vector_equivalence",
    "chaos_termination",
    "farm_recovery",
)


class RunCounter:
    """Counts full machine runs so ``fuzz.runs`` is exact, not estimated."""

    def __init__(self) -> None:
        self.count = 0


#: Incremented once per machine run any oracle performs (the fuzz
#: runner reads and resets it around a campaign).
RUNS = RunCounter()


class OracleViolation(ReproError):
    """One oracle failed on one scenario.

    Carries the scenario so the fuzz runner can serialize the (shrunk)
    failing case into the regression corpus.
    """

    def __init__(self, oracle: str, scenario: Scenario, detail: str) -> None:
        super().__init__(f"oracle {oracle!r} violated: {detail}")
        self.oracle = oracle
        self.scenario = scenario
        self.detail = detail


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------


def _programs(scenario: Scenario):
    """Fresh (O, P) programs -- binding mutates arrays, so never reuse."""
    platform = scenario.platform.build()
    original = scenario.program.build()
    compiled = insert_prefetches(
        scenario.program.build(), CompilerOptions.from_platform(platform)
    ).program
    return platform, original, compiled


# ----------------------------------------------------------------------
# (a) stall bound
# ----------------------------------------------------------------------


def check_stall_bound(scenario: Scenario) -> None:
    platform, original, compiled = _programs(scenario)
    RUNS.count += 2
    o_stats = run_variant(original, platform, prefetching=False)
    p_stats = run_variant(compiled, platform, prefetching=True)
    bound = (o_stats.times.idle * scenario.stall_factor
             + scenario.stall_slack_us)
    if p_stats.times.idle > bound:
        raise OracleViolation(
            "stall_bound", scenario,
            f"P idled {p_stats.times.idle:.1f}us, O idled "
            f"{o_stats.times.idle:.1f}us; declared bound was {bound:.1f}us "
            f"(factor {scenario.stall_factor}, "
            f"slack {scenario.stall_slack_us})",
        )


# ----------------------------------------------------------------------
# (b) explain conservation
# ----------------------------------------------------------------------


def check_explain_conservation(scenario: Scenario) -> None:
    platform, _original, compiled = _programs(scenario)
    obs = Observer()
    attrib = StallAttributor(observer=obs)
    RUNS.count += 1
    stats = run_variant(compiled, platform, prefetching=True, observer=obs,
                        fault_plan=scenario.fault_plan)
    report = attrib.report(stats)
    if not report.conserved:
        raise OracleViolation(
            "explain_conservation", scenario,
            f"attributed {report.attributed_read_us!r}us of stall-read vs "
            f"clock {report.stall_read_us!r}us (total "
            f"{report.attributed_total_us!r} vs idle {report.idle_us!r}); "
            f"warnings: {report.warnings}",
        )


# ----------------------------------------------------------------------
# (c) filter soundness
# ----------------------------------------------------------------------


class FilterSoundnessChecker:
    """Observer sink proving every filtered prefetch was justified.

    The sink runs synchronously inside ``Observer.emit``, so at each
    ``prefetch_filtered`` event it can interrogate the memory manager's
    page table *at that exact simulated instant*: a page the filter
    suppressed must be RESIDENT or IN_TRANSIT right now -- suppressing a
    prefetch for an ON_DISK page would manufacture a future demand
    fault, the unsoundness the paper's run-time layer must never commit.

    Only meaningful when the filter's bit vector is exact: lag 0 and
    granularity 1 (a coarse-grained or stale bit is *allowed* to be
    wrong; the strategies attach this oracle only in the exact regime).
    """

    def __init__(self, manager, scenario: Scenario) -> None:
        self.manager = manager
        self.scenario = scenario
        self.checked = 0

    def on_event(self, ts_us, kind, vpage, npages, value, tag) -> None:
        if kind is not TraceKind.PREFETCH_FILTERED:
            return
        for page_no in range(vpage, vpage + npages):
            page = self.manager.pages.get(page_no)
            state = page.state if page is not None else PageState.ON_DISK
            self.checked += 1
            if state not in (PageState.RESIDENT, PageState.IN_TRANSIT):
                raise OracleViolation(
                    "filter_soundness", self.scenario,
                    f"filter suppressed a prefetch of page {page_no} "
                    f"(event at t={ts_us:.1f}us covering "
                    f"[{vpage}, {vpage + npages}), tag={tag!r}) but the "
                    f"page is {state.name}, not resident or in transit",
                )


def check_filter_soundness(scenario: Scenario) -> None:
    platform, _original, compiled = _programs(scenario)
    obs = Observer()
    machine = Machine(platform, prefetching=True, observer=obs,
                      fault_plan=scenario.fault_plan)
    checker = FilterSoundnessChecker(machine.manager, scenario)
    obs.sink = checker
    RUNS.count += 1
    Executor(machine).run(compiled)


# ----------------------------------------------------------------------
# (d) checkpoint / kill / resume equivalence
# ----------------------------------------------------------------------


def check_checkpoint_equivalence(scenario: Scenario) -> None:
    spec = scenario.checkpoint
    if spec is None:
        raise OracleViolation(
            "checkpoint_equivalence", scenario,
            "scenario has no checkpoint spec to exercise",
        )
    platform, _original, _ = _programs(scenario)
    plan = scenario.fault_plan

    def factory():
        machine = Machine(platform, prefetching=True, fault_plan=plan)
        return machine, Executor(machine)

    # The uninterrupted control run also yields the crash schedule: the
    # spec's fractions are anchored to its elapsed time, so a shrunk
    # scenario always crashes somewhere inside its own (shorter) run.
    machine, executor = factory()
    RUNS.count += 1
    base = executor.run(insert_prefetches(
        scenario.program.build(), CompilerOptions.from_platform(platform)
    ).program)
    if base.elapsed_us <= 0:
        return  # an empty program has nothing to kill or resume
    config = CheckpointConfig(
        every_us=max(base.elapsed_us * spec.every_frac, 1.0),
        crash_at_us=tuple(base.elapsed_us * f for f in spec.crash_fracs),
    )
    compiled = insert_prefetches(
        scenario.program.build(), CompilerOptions.from_platform(platform)
    ).program
    recovered = run_with_recovery(factory, compiled, config)
    RUNS.count += 1 + recovered.crashes
    base_dict = dataclasses.asdict(base)
    rec_dict = dataclasses.asdict(recovered.stats)
    if base_dict != rec_dict:
        diffs = [
            key for key in base_dict
            if base_dict[key] != rec_dict[key]
        ]
        raise OracleViolation(
            "checkpoint_equivalence", scenario,
            f"recovered run diverged from uninterrupted run in {diffs} "
            f"after {recovered.crashes} crash(es), {recovered.resumes} "
            f"resume(s), {recovered.checkpoints} checkpoint(s)",
        )


# ----------------------------------------------------------------------
# (e) scalar / vectorized equivalence
# ----------------------------------------------------------------------


def check_vector_equivalence(scenario: Scenario) -> None:
    platform = scenario.platform.build()
    results = []
    for scalar in (True, False):
        compiled = insert_prefetches(
            scenario.program.build(), CompilerOptions.from_platform(platform)
        ).program
        machine = Machine(platform, prefetching=True, scalar_chunks=scalar)
        RUNS.count += 1
        results.append(Executor(machine).run(compiled))
    scalar_dict = dataclasses.asdict(results[0])
    vector_dict = dataclasses.asdict(results[1])
    if scalar_dict != vector_dict:
        diffs = [
            key for key in scalar_dict
            if scalar_dict[key] != vector_dict[key]
        ]
        raise OracleViolation(
            "vector_equivalence", scenario,
            f"scalar and vectorized chunk replay diverged in {diffs}",
        )


# ----------------------------------------------------------------------
# (f) chaos termination (single- and multi-programmed)
# ----------------------------------------------------------------------


class StallWaitAccumulator:
    """Observer sink replaying the co-scheduler's stall-read accumulator.

    Every STALL_READ advance of a multiprogrammed run is carried by a
    ``stall_frame_wait`` event -- the memory manager's frame-pin waits
    and (since the fuzz PR) the scheduler's own all-blocked idling.  The
    events arrive in chronological order, so summing their values with
    the same ``+=`` the clock uses reproduces ``times.stall_read``
    bitwise; any gap means a stall advanced the clock untraced.
    """

    def __init__(self) -> None:
        self.total_us = 0.0
        self.events = 0

    def on_event(self, ts_us, kind, vpage, npages, value, tag) -> None:
        if kind is TraceKind.STALL_FRAME_WAIT:
            self.total_us += value
            self.events += 1


def _multiprog_run(scenario: Scenario, platform, fault_plan, observer=None):
    """One co-scheduled run: tenants alternate P, O, P, ... ."""
    sched = CoScheduler(platform, observer=observer, fault_plan=fault_plan)
    options = CompilerOptions.from_platform(platform)
    for tenant in range(scenario.tenants):
        prefetching = tenant % 2 == 0
        program = scenario.program.build()
        if prefetching:
            program = insert_prefetches(program, options).program
        sched.add_process(program, name=f"t{tenant}", prefetching=prefetching)
    RUNS.count += 1
    return sched.run()


def _chaos_multiprog(scenario: Scenario, platform) -> None:
    # The metamorphic baseline must co-schedule the same tenants: a
    # single-tenant clean run says nothing about multiprogrammed
    # contention, only the fault plan's own slowdown is under test.
    clean = _multiprog_run(scenario, platform, None)
    budget = (clean.elapsed_us * scenario.budget_factor
              + scenario.budget_slack_us)
    obs = Observer()
    sink = StallWaitAccumulator()
    obs.sink = sink
    result = _multiprog_run(scenario, platform, scenario.fault_plan,
                            observer=obs)
    if result.elapsed_us > budget:
        raise OracleViolation(
            "chaos_termination", scenario,
            f"{scenario.tenants} co-scheduled tenants took "
            f"{result.elapsed_us:.1f}us under the fault plan; clean "
            f"co-scheduled run took {clean.elapsed_us:.1f}us, declared "
            f"budget {budget:.1f}us",
        )
    if sink.total_us != result.times.stall_read:
        raise OracleViolation(
            "chaos_termination", scenario,
            f"multiprog stall attribution leaked: {sink.events} "
            f"stall_frame_wait events sum to {sink.total_us!r}us but the "
            f"clock accumulated {result.times.stall_read!r}us of "
            f"stall-read",
        )


def check_chaos_termination(scenario: Scenario) -> None:
    platform, _original, compiled = _programs(scenario)
    if scenario.tenants > 1:
        _chaos_multiprog(scenario, platform)
        return
    RUNS.count += 1
    clean = run_variant(
        insert_prefetches(
            scenario.program.build(), CompilerOptions.from_platform(platform)
        ).program,
        platform, prefetching=True,
    )
    budget = (clean.elapsed_us * scenario.budget_factor
              + scenario.budget_slack_us)
    plan = scenario.fault_plan
    if plan is not None and plan.crashes:

        def factory():
            machine = Machine(platform, prefetching=True, fault_plan=plan)
            return machine, Executor(machine)

        config = CheckpointConfig(
            every_us=max(clean.elapsed_us * 0.2, 1.0))
        recovered = run_with_recovery(factory, compiled, config)
        RUNS.count += 1 + recovered.crashes
        stats = recovered.stats
    else:
        RUNS.count += 1
        stats = run_variant(compiled, platform, prefetching=True,
                            fault_plan=plan)
    if stats.elapsed_us > budget:
        raise OracleViolation(
            "chaos_termination", scenario,
            f"faulted run took {stats.elapsed_us:.1f}us; clean run took "
            f"{clean.elapsed_us:.1f}us, declared budget {budget:.1f}us "
            f"(factor {scenario.budget_factor}, "
            f"slack {scenario.budget_slack_us})",
        )


# ----------------------------------------------------------------------
# (g) farm recovery (write-ahead ledger replay algebra)
# ----------------------------------------------------------------------


def _synthesize_ledger(workdir: str, farm: dict) -> int:
    """Journal a random-but-seeded farm history; returns lines written.

    The generator walks each job through the real transition grammar
    (admitted -> dispatched -> {done, retry_scheduled, preempted,
    quarantined, shed} -> ...), sprinkling heartbeat epochs, so the
    truncated prefix the oracle replays is shaped exactly like what a
    crashed controller leaves behind.
    """
    rng = derive_rng(int(farm.get("seed", 0)), "fuzz", "farm_recovery")
    ledger = JobLedger(workdir)
    jobs = int(farm.get("jobs", 3))
    phases: dict[str, str] = {}
    attempts: dict[str, int] = {}
    for n in range(1, jobs + 1):
        job_id = f"job{n}"
        ledger.append("admitted", job=job_id, seq=n,
                      spec={"job_id": job_id, "kind": "run", "app": "FFT",
                            "seed": n})
        phases[job_id] = "pending"
        attempts[job_id] = 0
    epoch = 0
    for _ in range(int(farm.get("events", 10))):
        live = sorted(j for j, phase in phases.items()
                      if phase in ("pending", "running"))
        if not live:
            break
        if rng.random() < 0.15:
            epoch += 1
            ledger.append("heartbeat_epoch", epoch=epoch)
            continue
        job_id = rng.choice(live)
        if phases[job_id] == "pending":
            attempts[job_id] += 1
            ledger.append("dispatched", job=job_id,
                          attempt=attempts[job_id],
                          worker=rng.randrange(4),
                          resume=rng.random() < 0.3)
            phases[job_id] = "running"
            continue
        kind = rng.choice(["done", "retry_scheduled", "preempted",
                           "quarantined", "shed"])
        if kind == "done":
            ledger.append("done", job=job_id, attempt=attempts[job_id],
                          digest=f"{rng.getrandbits(64):016x}")
        elif kind == "retry_scheduled":
            ledger.append("retry_scheduled", job=job_id,
                          attempt=attempts[job_id],
                          resume=rng.random() < 0.5,
                          delay_s=rng.random(), reason="worker crashed")
        elif kind == "preempted":
            ledger.append("preempted", job=job_id)
        else:
            ledger.append(kind, job=job_id, reason=f"synthetic {kind}")
        phases[job_id] = "pending" if kind in ("retry_scheduled",
                                               "preempted") else kind
    count = len(ledger)
    ledger.close()
    return count


def check_farm_recovery(scenario: Scenario) -> None:
    farm = scenario.farm
    if farm is None:
        raise OracleViolation(
            "farm_recovery", scenario,
            "scenario has no farm spec to exercise",
        )

    def fail(detail: str) -> OracleViolation:
        return OracleViolation("farm_recovery", scenario, detail)

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-ledger-") as workdir:
        total = _synthesize_ledger(workdir, farm)
        path = Path(workdir) / "ledger.jsonl"
        # Kill the controller: keep the first ``kill_at`` journal lines,
        # optionally leaving half of the next append as a torn tail.
        lines = path.read_text().splitlines(keepends=True)
        kill_at = max(0, min(int(farm.get("kill_at", total)), len(lines)))
        kept, dropped = lines[:kill_at], lines[kill_at:]
        tail = (dropped[0][:max(1, len(dropped[0]) // 2)]
                if dropped and farm.get("torn") else "")
        path.write_text("".join(kept) + tail)

        records = read_ledger(path)
        if len(records) != kill_at:
            raise fail(
                f"longest valid prefix has {len(records)} records, "
                f"expected the {kill_at} whole lines that survived "
                f"(torn tail {'present' if tail else 'absent'})"
            )
        policy = RetryPolicy(seed=int(farm.get("seed", 0)))
        entries = fold_ledger(records)
        plans = [
            json.dumps(recovery_plan(fold_ledger(read_ledger(path)),
                                     policy), sort_keys=True)
            for _ in range(2)
        ]
        if plans[0] != plans[1]:
            raise fail(
                "recovery plan is not deterministic: two replays of the "
                "same ledger prefix diverged"
            )
        plan = recovery_plan(entries, policy)
        admitted = [r["job"] for r in records if r["kind"] == "admitted"]
        planned = sorted(item["job"] for item in plan)
        if planned != sorted(set(admitted)):
            raise fail(
                f"job conservation violated: admitted {sorted(admitted)} "
                f"but the plan covers {planned}"
            )
        for item in plan:
            entry = entries[item["job"]]
            terminal_fold = item["action"].startswith("fold_")
            if entry.terminal != terminal_fold:
                raise fail(
                    f"job {item['job']} is phase {entry.phase!r} but the "
                    f"plan says {item['action']!r}"
                )
            if not entry.terminal and item["action"] not in ("adopt",
                                                             "readmit"):
                raise fail(
                    f"unfinished job {item['job']} got unknown recovery "
                    f"action {item['action']!r}"
                )


#: Dispatch table the runner and the replayer share.
ORACLE_CHECKS = {
    "stall_bound": check_stall_bound,
    "explain_conservation": check_explain_conservation,
    "filter_soundness": check_filter_soundness,
    "checkpoint_equivalence": check_checkpoint_equivalence,
    "vector_equivalence": check_vector_equivalence,
    "chaos_termination": check_chaos_termination,
    "farm_recovery": check_farm_recovery,
}

assert tuple(ORACLE_CHECKS) == ORACLE_NAMES


def run_oracles(scenario: Scenario) -> int:
    """Run every oracle the scenario declares; returns checks performed.

    Any unexpected exception (a crash inside the machine rather than a
    clean property failure) is wrapped into an :class:`OracleViolation`
    too -- a fuzzer-found crash is a finding, and wrapping it keeps the
    scenario attached for corpus serialization.
    """
    checks = 0
    for name in scenario.oracles:
        try:
            ORACLE_CHECKS[name](scenario)
        except OracleViolation:
            raise
        except Exception as exc:  # noqa: BLE001 - the fuzzer's whole point
            raise OracleViolation(
                name, scenario,
                f"unexpected {type(exc).__name__} while checking: {exc}",
            ) from exc
        checks += 1
    return checks
