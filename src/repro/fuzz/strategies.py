"""Hypothesis strategies composing random fuzz scenarios.

Each public strategy is documented in the "Strategy reference" table of
docs/robustness.md (``scripts/check_docs.py`` keeps that table in sync
with :data:`STRATEGY_NAMES`).  The composition rules encode which
combinations are *meaningful*, not just valid:

* ``filter_soundness`` scenarios only get exact bit vectors (lag 0,
  granularity 1) -- a stale or coarse bit is allowed to be wrong;
* ``vector_equivalence`` scenarios run clean and unobserved, because an
  observer or injector forces the scalar path and the comparison would
  be vacuous;
* ``checkpoint_equivalence`` scenarios put process deaths in the
  checkpoint spec (fractions of the run), not the fault plan, so the
  uninterrupted control run stays uninterrupted;
* ``chaos_termination`` scenarios get the full fault taxonomy at once,
  and sometimes co-schedule 2-3 tenants on the shared faulted machine;
* ``farm_recovery`` scenarios carry no interesting program at all --
  the oracle replays a synthetic write-ahead job ledger truncated at a
  drawn controller-kill point, so the strategy draws the ledger recipe
  (jobs, transitions, kill line, torn tail) instead;
* ``farm_chaos_plans`` draws ``controller_crash`` strikes alongside
  worker kills and stalls -- the runner's real-farm phase runs such
  plans in a child process and drives ``repro serve recover`` itself.

Sizes are bounded so one generated run stays well under a second: loop
nests cap the product of extents, patterns cap their element counts,
and every time field lives within the first couple of simulated
seconds.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import strategies as st

from repro.faults.farm import FarmChaosPlan, WorkerFault
from repro.faults.plan import (
    DiskFaultSpec,
    FaultPlan,
    PressureStorm,
    SlowWindow,
)
from repro.fuzz.scenario import (
    PATTERN_BUILDERS,
    CheckpointSpec,
    LoopSpec,
    PlatformSpec,
    ProgramSpec,
    RefSpec,
    Scenario,
    WorkSpec,
)

#: Public strategies, mirrored by docs/robustness.md's strategy table.
STRATEGY_NAMES: tuple[str, ...] = (
    "loop_nests",
    "pattern_programs",
    "platforms",
    "fault_plans",
    "checkpoint_schedules",
    "farm_chaos_plans",
    "scenarios",
)

#: Extent cap per loop level, by nest depth: the product of extents --
#: the iteration count the pure-Python interpreter must execute -- stays
#: <= 4096 whatever the drawn shape.
_EXTENT_CAPS = {1: (512,), 2: (16, 128), 3: (8, 8, 32)}

_COSTS = st.floats(min_value=0.5, max_value=20.0, allow_nan=False,
                   allow_infinity=False)


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------


@st.composite
def loop_nests(draw) -> ProgramSpec:
    """Random bounded loop-nest programs with valid bindings.

    Depth 1-3, zero-extent loops allowed, affine references
    ``a[i*mul + add]`` that may use any *enclosing* loop variable.
    Arrays are sized from the references at build time, so every
    generated (and every shrunk) program is in-bounds by construction.
    """
    depth = draw(st.integers(min_value=1, max_value=3))
    caps = _EXTENT_CAPS[depth]
    n_arrays = draw(st.integers(min_value=1, max_value=3))
    refs_at = st.integers(min_value=0, max_value=n_arrays - 1)

    def gen_work(level: int) -> WorkSpec:
        n_refs = draw(st.integers(min_value=0 if level == 0 else 1,
                                  max_value=3))
        refs = tuple(
            RefSpec(
                array=draw(refs_at),
                depth=draw(st.integers(min_value=0, max_value=level - 1)),
                mul=draw(st.integers(min_value=1, max_value=512)),
                add=draw(st.integers(min_value=0, max_value=64)),
                write=draw(st.booleans()),
            )
            for _ in range(n_refs if level > 0 else 0)
        )
        return WorkSpec(cost_us=draw(_COSTS), refs=refs)

    def gen_loop(level: int) -> LoopSpec:
        extent = draw(st.integers(min_value=0, max_value=caps[level]))
        step = draw(st.integers(min_value=1, max_value=3))
        body: list = []
        if level + 1 < depth:
            body.append(gen_loop(level + 1))
            if draw(st.booleans()):
                body.append(gen_work(level + 1))
        else:
            body.append(gen_work(level + 1))
        return LoopSpec(extent=extent, step=step, body=tuple(body))

    outer = gen_loop(0)
    if outer.extent == 0:
        # Keep the dead loop (a legal edge case worth executing) but
        # ensure the program still touches memory through a live one.
        live = LoopSpec(
            extent=draw(st.integers(min_value=1, max_value=caps[0])),
            step=1,
            body=(WorkSpec(cost_us=draw(_COSTS),
                           refs=(RefSpec(array=0, depth=0,
                                         mul=draw(st.integers(1, 512)),
                                         add=0),)),),
        )
        return ProgramSpec(nest=(outer, live))
    return ProgramSpec(nest=(outer,))


@st.composite
def pattern_programs(draw) -> ProgramSpec:
    """One of the seven synthetic access patterns, with drawn sizes.

    Covers what the nest grammar cannot express: data-dependent
    ``a[b[i]]`` gathers and scatters, pointer-chasing walks, repeated
    full-footprint sweeps.
    """
    pattern = draw(st.sampled_from(sorted(PATTERN_BUILDERS)))
    cost = draw(_COSTS)
    if pattern == "stream":
        params = {"nelems": draw(st.integers(1_024, 24_576)),
                  "cost_us": cost,
                  "writes": draw(st.booleans())}
    elif pattern == "repeated_sweep":
        params = {"nelems": draw(st.integers(1_024, 8_192)),
                  "sweeps": draw(st.integers(1, 3)),
                  "cost_us": cost}
    elif pattern == "strided":
        nelems = draw(st.integers(1_024, 16_384))
        params = {"nelems": nelems,
                  "stride": draw(st.integers(1, min(nelems - 1, 1_024))),
                  "cost_us": cost}
    elif pattern == "stencil1d":
        params = {"nelems": draw(st.integers(1_024, 8_192)),
                  "radius": draw(st.integers(1, 4)),
                  "cost_us": cost}
    elif pattern in ("gather", "scatter"):
        params = {"nelems": draw(st.integers(256, 2_048)),
                  "table_elems": draw(st.integers(512, 8_192)),
                  "cost_us": cost,
                  "seed": draw(st.integers(1, 2**16))}
    else:  # random_walk
        params = {"steps": draw(st.integers(256, 2_048)),
                  "footprint_elems": draw(st.integers(1_024, 16_384)),
                  "cost_us": cost,
                  "seed": draw(st.integers(1, 2**16))}
    return ProgramSpec(pattern=pattern, params=params)


def programs() -> st.SearchStrategy:
    """Any program: random nests two-thirds of the time, else a pattern."""
    return st.one_of(loop_nests(), loop_nests(), pattern_programs())


# ----------------------------------------------------------------------
# Machines
# ----------------------------------------------------------------------


@st.composite
def platforms(draw) -> PlatformSpec:
    """Disk/memory geometries spanning in-core to heavily out-of-core.

    With the default 4 KB pages and 8-byte elements, the drawn memory
    sizes (8-96 frames) put generated footprints anywhere from fully
    cached to ~10x memory.
    """
    return PlatformSpec(
        memory_pages=draw(st.integers(min_value=8, max_value=96)),
        num_disks=draw(st.integers(min_value=1, max_value=8)),
        prefetch_block_pages=draw(st.integers(min_value=1, max_value=8)),
        available_fraction=draw(st.floats(min_value=0.5, max_value=1.0,
                                          allow_nan=False)),
    )


# ----------------------------------------------------------------------
# Faults
# ----------------------------------------------------------------------

_TIMES = st.floats(min_value=0.0, max_value=2_000_000.0, allow_nan=False,
                   allow_infinity=False)


@st.composite
def _disk_faults(draw, disk: int) -> DiskFaultSpec:
    windows = tuple(
        SlowWindow(
            start_us=draw(_TIMES),
            duration_us=draw(st.floats(1_000.0, 500_000.0,
                                       allow_nan=False)),
            multiplier=draw(st.floats(1.0, 8.0, allow_nan=False)),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    return DiskFaultSpec(
        disk=disk,
        slow_windows=windows,
        read_error_rate=draw(st.one_of(
            st.just(0.0), st.floats(0.0, 0.15, allow_nan=False))),
        dead_at_us=draw(st.one_of(st.none(), _TIMES)),
    )


@st.composite
def fault_plans(draw, num_disks: int = 8,
                crashes: bool = True,
                bitvector_lag: bool = True) -> FaultPlan:
    """Composed plans drawing every fault kind the taxonomy has.

    Fail-slow windows, transient read errors, whole-disk death,
    pressure-storm trains, stale bit vectors, hint-call failures, and
    process crashes can all land in one plan.  ``crashes=False`` /
    ``bitvector_lag=False`` gate the kinds a family must exclude.
    """
    disk_ids = draw(st.lists(st.integers(0, num_disks - 1), min_size=0,
                             max_size=min(3, num_disks), unique=True))
    disk_specs = [draw(_disk_faults(disk)) for disk in sorted(disk_ids)]
    if disk_specs and all(s.dead_at_us is not None for s in disk_specs) \
            and len(disk_specs) == num_disks:
        # The injector (rightly) rejects plans that kill every disk;
        # keep the last one alive so the plan stays constructible.
        disk_specs[-1] = replace(disk_specs[-1], dead_at_us=None)
    # Storms always give their frames back (hold_us set): a *permanent*
    # claim legitimately thrashes a tiny machine without bound, which no
    # multiplicative termination budget can declare honestly.  Permanent
    # storms remain expressible in hand-written corpus entries.
    storms = tuple(
        PressureStorm(
            start_us=draw(_TIMES),
            frames=draw(st.integers(1, 16)),
            bursts=draw(st.integers(1, 3)),
            period_us=draw(st.floats(10_000.0, 500_000.0, allow_nan=False)),
            hold_us=draw(st.floats(5_000.0, 200_000.0, allow_nan=False)),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    crash_times = (
        tuple(draw(st.lists(st.floats(10_000.0, 1_500_000.0,
                                      allow_nan=False),
                            min_size=0, max_size=2)))
        if crashes else ()
    )
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        disks=tuple(disk_specs),
        storms=storms,
        bitvector_lag_us=(draw(st.one_of(
            st.just(0.0), st.floats(0.0, 5_000.0, allow_nan=False)))
            if bitvector_lag else 0.0),
        hint_failure_rate=draw(st.one_of(
            st.just(0.0), st.floats(0.0, 0.1, allow_nan=False))),
        crashes=crash_times,
    )


@st.composite
def checkpoint_schedules(draw) -> CheckpointSpec:
    """Checkpoint cadences and kill schedules as run fractions."""
    return CheckpointSpec(
        every_frac=draw(st.floats(0.05, 0.5, allow_nan=False)),
        crash_fracs=tuple(draw(st.lists(
            st.floats(0.05, 0.95, allow_nan=False,
                      exclude_min=False, exclude_max=True),
            min_size=1, max_size=3))),
    )


@st.composite
def farm_chaos_plans(draw, max_jobs: int = 12) -> FarmChaosPlan:
    """Worker kill/stall/controller-crash schedules for the job farm.

    ``controller_crash`` strikes are drawn rarely (the run ends there
    until recovery) and the kill/stall ops stay dominant so most plans
    still exercise the supervisor's own failover paths.
    """
    starts = draw(st.lists(st.integers(1, max_jobs), min_size=1,
                           max_size=4, unique=True))
    return FarmChaosPlan(faults=tuple(
        WorkerFault(
            on_start=start,
            delay_s=draw(st.floats(0.0, 0.2, allow_nan=False)),
            op=draw(st.sampled_from(["kill", "stall", "kill", "stall",
                                     "controller_crash"])),
        )
        for start in sorted(starts)
    ))


# ----------------------------------------------------------------------
# Scenario composition, per oracle family
# ----------------------------------------------------------------------


@st.composite
def scenarios(draw, family: str) -> Scenario:
    """A complete scenario exercising one oracle family."""
    if family == "farm_recovery":
        # Pure ledger algebra: the program/platform are a fixed minimal
        # recipe (never built), all the entropy lives in the farm spec.
        jobs = draw(st.integers(min_value=1, max_value=6))
        events = draw(st.integers(min_value=0, max_value=24))
        farm = {
            "jobs": jobs,
            "seed": draw(st.integers(min_value=0, max_value=2**16)),
            "events": events,
            "kill_at": draw(st.integers(min_value=0,
                                        max_value=jobs + events + 2)),
            "torn": draw(st.booleans()),
        }
        return Scenario(
            program=ProgramSpec(pattern="stream", params={"nelems": 1024}),
            platform=PlatformSpec(),
            oracles=("farm_recovery",), farm=farm,
        )
    program = draw(programs())
    platform = draw(platforms())
    if family == "stall_bound":
        # Clean differential O vs P: the declared envelope is only
        # meaningful without injected noise.
        return Scenario(program=program, platform=platform,
                        oracles=("stall_bound",))
    if family == "explain_conservation":
        # Crash entries are inert without a checkpointer, but excluding
        # them keeps the shrunk corpus entries honest about what ran.
        plan = draw(st.one_of(
            st.none(), fault_plans(platform.num_disks, crashes=False)))
        return Scenario(program=program, platform=platform,
                        oracles=("explain_conservation",), fault_plan=plan)
    if family == "filter_soundness":
        # The soundness claim only holds for an *exact* bit vector.
        plan = draw(st.one_of(
            st.none(),
            fault_plans(platform.num_disks, crashes=False,
                        bitvector_lag=False),
        ))
        return Scenario(program=program, platform=platform,
                        oracles=("filter_soundness",), fault_plan=plan)
    if family == "checkpoint_equivalence":
        plan = draw(st.one_of(
            st.none(), fault_plans(platform.num_disks, crashes=False)))
        return Scenario(program=program, platform=platform,
                        oracles=("checkpoint_equivalence",),
                        fault_plan=plan,
                        checkpoint=draw(checkpoint_schedules()))
    if family == "vector_equivalence":
        # Clean and unobserved, or the machine forces the scalar path
        # and the differential collapses.
        return Scenario(program=program, platform=platform,
                        oracles=("vector_equivalence",))
    if family == "chaos_termination":
        tenants = draw(st.sampled_from([1, 1, 2, 3]))
        plan = draw(fault_plans(platform.num_disks))
        return Scenario(program=program, platform=platform,
                        oracles=("chaos_termination",), fault_plan=plan,
                        tenants=tenants)
    raise ValueError(f"unknown oracle family {family!r}")
