"""The declarative fuzz scenario: a seeded, JSON-able run description.

A :class:`Scenario` is the unit the fuzzer generates, shrinks, and
serializes into the regression corpus.  It deliberately does *not* hold
live IR or machine objects -- it holds the recipe to rebuild them, so a
corpus file replays bit-identically on any checkout:

* a **program spec**, either a bounded random loop nest
  (:class:`LoopSpec` / :class:`WorkSpec` trees built through
  :class:`~repro.core.ir.builder.ProgramBuilder`) or a named
  :mod:`repro.apps.synthetic` pattern with parameters (which covers the
  indirect ``a[b[i]]`` references the nest grammar does not generate);
* a **platform spec** (memory pages, disks, block size -- the memory /
  data-page ratio falls out of the two);
* an optional **fault plan** (reusing the versioned
  :class:`repro.faults.plan.FaultPlan` JSON schema verbatim);
* an optional **checkpoint schedule**, expressed as *fractions* of the
  run's safe-point cycles so a shrunk program keeps a valid schedule;
* the list of **oracles** the scenario must satisfy, plus the declared
  bounds oracle (a) and (f) check against;
* an optional **farm spec** (``farm_recovery`` family): the recipe for
  a synthetic write-ahead job-ledger history plus the controller-kill
  point at which it is truncated -- no real processes, just the ledger
  replay algebra.

Arrays in a loop nest are sized from their uses (the maximum index any
reference can reach), so every generated binding is valid by
construction -- shrinking can only shrink footprints, never create an
out-of-segment reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import synthetic
from repro.config import PlatformConfig
from repro.core.ir.builder import ProgramBuilder, loop, work
from repro.core.ir.expr import Var
from repro.core.ir.nodes import ArrayRef, Program
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan

SCENARIO_VERSION = 1

#: Pattern-program builders the ``pattern`` spec kind may name.
PATTERN_BUILDERS = {
    "stream": synthetic.stream,
    "repeated_sweep": synthetic.repeated_sweep,
    "strided": synthetic.strided,
    "stencil1d": synthetic.stencil1d,
    "gather": synthetic.gather,
    "scatter": synthetic.scatter,
    "random_walk": synthetic.random_walk,
}


@dataclass(frozen=True)
class RefSpec:
    """One affine array reference ``array[var*mul + add]``.

    ``depth`` names the enclosing loop whose variable indexes the array
    (0 = outermost on the current path), so an inner loop can reference
    an outer induction variable -- the temporal-locality shapes the
    planner's reuse analysis has to get right.
    """

    array: int  # array number; the builder names it a<n>
    depth: int
    mul: int
    add: int
    write: bool = False

    def to_dict(self) -> dict:
        return {"array": self.array, "depth": self.depth, "mul": self.mul,
                "add": self.add, "write": self.write}

    @classmethod
    def from_dict(cls, data: dict) -> "RefSpec":
        return cls(int(data["array"]), int(data["depth"]), int(data["mul"]),
                   int(data["add"]), bool(data.get("write", False)))


@dataclass(frozen=True)
class WorkSpec:
    """One straight-line work statement."""

    cost_us: float
    refs: tuple[RefSpec, ...] = ()

    def to_dict(self) -> dict:
        return {"work": {"cost_us": self.cost_us,
                         "refs": [r.to_dict() for r in self.refs]}}


@dataclass(frozen=True)
class LoopSpec:
    """One counted loop; ``extent`` may be 0 (a legal dead loop)."""

    extent: int
    step: int
    body: tuple  # of LoopSpec | WorkSpec

    def to_dict(self) -> dict:
        return {"loop": {"extent": self.extent, "step": self.step,
                         "body": [stmt.to_dict() for stmt in self.body]}}


def _stmt_from_dict(data: dict):
    if "loop" in data:
        d = data["loop"]
        return LoopSpec(int(d["extent"]), int(d["step"]),
                        tuple(_stmt_from_dict(s) for s in d["body"]))
    d = data["work"]
    return WorkSpec(float(d["cost_us"]),
                    tuple(RefSpec.from_dict(r) for r in d["refs"]))


@dataclass(frozen=True)
class ProgramSpec:
    """Either a random loop nest or a named synthetic pattern."""

    nest: tuple[LoopSpec, ...] = ()
    pattern: str | None = None
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.pattern is not None and self.pattern not in PATTERN_BUILDERS:
            raise ConfigError(
                f"unknown pattern {self.pattern!r}; "
                f"known: {sorted(PATTERN_BUILDERS)}"
            )

    # ------------------------------------------------------------------

    def build(self) -> Program:
        """A fresh :class:`Program` (array bindings are per-run state)."""
        if self.pattern is not None:
            return PATTERN_BUILDERS[self.pattern](**self.params)
        builder = ProgramBuilder("fuzz")
        extents = self._array_extents()
        arrays = {
            n: builder.array(f"a{n}", (max(elems, 1),), elem_size=8)
            for n, elems in sorted(extents.items())
        }
        for stmt in self.nest:
            builder.append(self._build_stmt(stmt, arrays, 0))
        return builder.build()

    def _build_stmt(self, stmt, arrays, depth):
        if isinstance(stmt, WorkSpec):
            refs = [
                ArrayRef(arrays[r.array],
                         (Var(f"i{r.depth}") * r.mul + r.add,),
                         is_write=r.write)
                for r in stmt.refs
            ]
            return work(refs, stmt.cost_us)
        body = [self._build_stmt(s, arrays, depth + 1) for s in stmt.body]
        return loop(f"i{depth}", 0, stmt.extent, body, step=stmt.step)

    def _array_extents(self) -> dict[int, int]:
        """Element count each array needs to keep every ref in-bounds."""
        extents: dict[int, int] = {}

        def walk(stmts, path_extents):
            for stmt in stmts:
                if isinstance(stmt, LoopSpec):
                    walk(stmt.body, path_extents + [stmt.extent])
                    continue
                for ref in stmt.refs:
                    if ref.depth >= len(path_extents):
                        raise ConfigError(
                            f"ref depth {ref.depth} exceeds loop nesting "
                            f"{len(path_extents)}"
                        )
                    # The loop runs 0, step, ... < extent, so extent-1
                    # bounds the variable from above whatever the step
                    # (0 when the loop is dead).
                    extent = path_extents[ref.depth]
                    last = extent - 1 if extent > 0 else 0
                    need = ref.mul * last + ref.add + 1
                    extents[ref.array] = max(extents.get(ref.array, 1), need)

        walk(self.nest, [])
        return extents

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        if self.pattern is not None:
            return {"pattern": self.pattern, "params": dict(self.params)}
        return {"nest": [stmt.to_dict() for stmt in self.nest]}

    @classmethod
    def from_dict(cls, data: dict) -> "ProgramSpec":
        if "pattern" in data:
            return cls(pattern=data["pattern"],
                       params=dict(data.get("params", {})))
        return cls(nest=tuple(_stmt_from_dict(s) for s in data["nest"]))


@dataclass(frozen=True)
class PlatformSpec:
    """The generated machine geometry (page size stays at the default)."""

    memory_pages: int = 64
    num_disks: int = 4
    prefetch_block_pages: int = 4
    available_fraction: float = 1.0

    def build(self) -> PlatformConfig:
        return PlatformConfig(
            memory_pages=self.memory_pages,
            num_disks=self.num_disks,
            prefetch_block_pages=self.prefetch_block_pages,
            available_fraction=self.available_fraction,
        )

    def to_dict(self) -> dict:
        return {"memory_pages": self.memory_pages,
                "num_disks": self.num_disks,
                "prefetch_block_pages": self.prefetch_block_pages,
                "available_fraction": self.available_fraction}

    @classmethod
    def from_dict(cls, data: dict) -> "PlatformSpec":
        return cls(int(data["memory_pages"]), int(data["num_disks"]),
                   int(data["prefetch_block_pages"]),
                   float(data["available_fraction"]))


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint cadence + kill schedule in safe-point fractions.

    Fractions index into the run's observed safe-point cycles (probed
    once per check), so the schedule stays valid however small the
    shrunk program gets: ``every_frac=0.1`` checkpoints every ~10% of
    the run, each ``crash_fracs`` entry kills the process at that point
    of the run.
    """

    every_frac: float = 0.25
    crash_fracs: tuple[float, ...] = (0.5,)

    def __post_init__(self) -> None:
        if not 0.0 < self.every_frac <= 1.0:
            raise ConfigError(
                f"every_frac must be in (0, 1], got {self.every_frac}")
        for frac in self.crash_fracs:
            if not 0.0 < frac < 1.0:
                raise ConfigError(
                    f"crash fractions must be in (0, 1), got {frac}")

    def to_dict(self) -> dict:
        return {"every_frac": self.every_frac,
                "crash_fracs": list(self.crash_fracs)}

    @classmethod
    def from_dict(cls, data: dict) -> "CheckpointSpec":
        return cls(float(data["every_frac"]),
                   tuple(float(f) for f in data["crash_fracs"]))


@dataclass(frozen=True)
class Scenario:
    """One complete generated run description (see module docstring)."""

    program: ProgramSpec
    platform: PlatformSpec
    oracles: tuple[str, ...]
    fault_plan: FaultPlan | None = None
    checkpoint: CheckpointSpec | None = None
    #: Oracle (a)'s declared bound: P's stall may not exceed
    #: ``O_stall * stall_factor + stall_slack_us``.  The default factor
    #: was tuned over ~400 generated scenarios: legitimate adversarial
    #: geometries (tight memory + heavy reuse, where prefetches evict
    #: live pages) reach ~3.2x, so 5x catches catastrophic regressions
    #: without flagging the regime the paper itself documents as hard.
    stall_factor: float = 5.0
    stall_slack_us: float = 50_000.0
    #: Oracle (f)'s declared bound: a faulted run may not exceed
    #: ``clean_elapsed * budget_factor + budget_slack_us``.
    budget_factor: float = 50.0
    budget_slack_us: float = 10_000_000.0
    #: Co-scheduled copies of the program (> 1 makes oracle (f) run the
    #: multiprogrammed chaos check: tenants alternate O/P, share one
    #: faulted machine, must terminate *and* attribute every stall-read
    #: microsecond exactly).
    tenants: int = 1
    #: The ``farm_recovery`` oracle's synthetic ledger recipe: job
    #: count, seed, transition count, and the kill point (ledger line)
    #: at which the controller "dies" (``torn`` leaves a half-written
    #: tail line behind).  ``None`` for every other family.
    farm: dict | None = None
    version: int = SCENARIO_VERSION

    def __post_init__(self) -> None:
        if self.version != SCENARIO_VERSION:
            raise ConfigError(
                f"scenario version {self.version!r} is not supported "
                f"(this build reads version {SCENARIO_VERSION})"
            )
        if self.tenants < 1:
            raise ConfigError(f"tenants must be >= 1, got {self.tenants}")
        from repro.fuzz.oracles import ORACLE_NAMES

        for name in self.oracles:
            if name not in ORACLE_NAMES:
                raise ConfigError(
                    f"unknown oracle {name!r}; known: {list(ORACLE_NAMES)}")

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        data: dict = {
            "version": self.version,
            "program": self.program.to_dict(),
            "platform": self.platform.to_dict(),
            "oracles": list(self.oracles),
            "stall_factor": self.stall_factor,
            "stall_slack_us": self.stall_slack_us,
            "budget_factor": self.budget_factor,
            "budget_slack_us": self.budget_slack_us,
            "tenants": self.tenants,
        }
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan.to_dict()
        if self.checkpoint is not None:
            data["checkpoint"] = self.checkpoint.to_dict()
        if self.farm is not None:
            data["farm"] = dict(self.farm)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            program=ProgramSpec.from_dict(data["program"]),
            platform=PlatformSpec.from_dict(data["platform"]),
            oracles=tuple(data["oracles"]),
            fault_plan=(FaultPlan.from_dict(data["fault_plan"])
                        if "fault_plan" in data else None),
            checkpoint=(CheckpointSpec.from_dict(data["checkpoint"])
                        if "checkpoint" in data else None),
            stall_factor=float(data.get("stall_factor", 5.0)),
            stall_slack_us=float(data.get("stall_slack_us", 50_000.0)),
            budget_factor=float(data.get("budget_factor", 50.0)),
            budget_slack_us=float(data.get("budget_slack_us", 10_000_000.0)),
            tenants=int(data.get("tenants", 1)),
            farm=data.get("farm"),
            version=int(data.get("version", SCENARIO_VERSION)),
        )
