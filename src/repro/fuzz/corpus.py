"""The regression corpus: shrunk fuzz findings as committed JSON files.

When an oracle fails, the runner serializes the *shrunk* scenario --
hypothesis re-raises from the minimal failing example -- into one JSON
file named after the violated oracle and a content digest.  Corpus files
are committed under ``tests/corpus/`` and replayed two ways:

* ``repro fuzz replay FILE`` rebuilds the scenario and re-runs its
  oracles (exit 1 while the bug lives, 0 once fixed);
* ``tests/test_corpus.py`` replays every committed file as an ordinary
  deterministic regression test, so a fixed bug stays fixed;
* ``repro fuzz`` replays the corpus directory *before* generating new
  scenarios, so CI red-flags a regression without spending the fuzz
  budget first.

A corpus entry deliberately stores the scenario only -- no stats, no
environment -- because the oracles recompute everything from scratch;
whatever drifts (cost model, compiler, VM) is exactly what the replay
should re-judge.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import ConfigError
from repro.fuzz.oracles import OracleViolation, run_oracles
from repro.fuzz.scenario import Scenario
from repro.ioutil import atomic_write_json

#: Corpus entry schema version.
CORPUS_VERSION = 1


def corpus_entry(violation: OracleViolation) -> dict:
    """The JSON payload recording one (shrunk) finding."""
    return {
        "corpus_version": CORPUS_VERSION,
        "oracle": violation.oracle,
        "detail": violation.detail,
        "scenario": violation.scenario.to_dict(),
    }


def entry_name(violation: OracleViolation) -> str:
    """Stable filename: oracle plus a digest of the scenario itself."""
    blob = json.dumps(violation.scenario.to_dict(), sort_keys=True)
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    return f"{violation.oracle}-{digest}.json"


def write_entry(directory: str | Path, violation: OracleViolation) -> Path:
    """Serialize one finding into ``directory``; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_name(violation)
    atomic_write_json(path, corpus_entry(violation))
    return path


def load_entry(path: str | Path) -> tuple[Scenario, str]:
    """Read one corpus file back into ``(scenario, oracle_name)``."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load corpus entry {path}: {exc}") from None
    if not isinstance(data, dict) or "scenario" not in data:
        raise ConfigError(f"corpus entry {path} has no scenario")
    version = data.get("corpus_version", CORPUS_VERSION)
    if version != CORPUS_VERSION:
        raise ConfigError(
            f"corpus entry {path} has version {version!r}; this build "
            f"reads version {CORPUS_VERSION}"
        )
    return Scenario.from_dict(data["scenario"]), data.get("oracle", "?")


def replay_entry(path: str | Path) -> None:
    """Re-run one corpus entry's oracles (raises OracleViolation if red)."""
    scenario, _oracle = load_entry(path)
    run_oracles(scenario)


def corpus_files(directory: str | Path) -> list[Path]:
    """Every corpus entry under ``directory``, sorted for determinism."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
