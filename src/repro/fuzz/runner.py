"""The fuzz campaign driver: profiles, budgets, corpus, reporting.

``run_fuzz`` executes one seeded campaign:

1. **Corpus replay first.**  Every committed regression file under the
   corpus directory is rebuilt and re-checked before any new scenario is
   generated -- a reintroduced bug fails fast without spending the fuzz
   budget.
2. **Property-based generation.**  For each oracle family, hypothesis
   generates ``examples_per_family`` scenarios from the family's
   strategy (seeded via :func:`repro.seeding.derive_int`, database off,
   so a campaign is a pure function of ``(seed, profile)``).  A failing
   scenario is shrunk by hypothesis; the minimal example is serialized
   into the corpus as a replayable JSON file.
3. **Farm chaos** (ci/deep profiles).  Real multiprocessing job-farm
   runs under worker kill/stall/controller-crash plans -- too heavy for
   hypothesis's example counts, so they run as a fixed number of seeded
   scenarios checking the never-hung property (every record terminal).
   A plan that draws ``controller_crash`` runs the farm in a child
   process (the strike SIGKILLs the controller itself); the parent then
   replays the orphaned workdir's write-ahead ledger via
   ``repro serve recover`` and holds the recovered batch to the same
   oracle.

The wall-clock budget is checked *between* families: a family that
starts gets to finish (its examples are cheap; shrinking is the long
tail), and any family skipped by budget exhaustion is named in the
report -- a truncated campaign never silently poses as a full one.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from hypothesis import HealthCheck, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings

from repro.errors import ConfigError
from repro.fuzz import corpus as corpus_mod
from repro.fuzz.oracles import (
    ORACLE_NAMES,
    OracleViolation,
    RUNS,
    run_oracles,
)
from repro.fuzz.strategies import scenarios
from repro.seeding import derive_int, derive_rng

#: Job-count ceiling of one generated farm chaos scenario.
_FARM_JOBS = 6


@dataclass(frozen=True)
class FuzzProfile:
    """One time-budgeted campaign shape (``--profile``)."""

    name: str
    #: Hypothesis examples generated per oracle family.
    examples_per_family: int
    #: Wall-clock budget; families are skipped (and named) once spent.
    wall_budget_s: float
    #: Seeded real-multiprocessing farm chaos scenarios (ci/deep only).
    farm_scenarios: int


#: The three supported campaign shapes.
FUZZ_PROFILES: dict[str, FuzzProfile] = {
    "smoke": FuzzProfile("smoke", examples_per_family=8,
                         wall_budget_s=120.0, farm_scenarios=0),
    "ci": FuzzProfile("ci", examples_per_family=30,
                      wall_budget_s=600.0, farm_scenarios=1),
    "deep": FuzzProfile("deep", examples_per_family=200,
                        wall_budget_s=3600.0, farm_scenarios=2),
}


@dataclass
class Finding:
    """One oracle violation the campaign produced or replayed."""

    oracle: str
    detail: str
    #: Corpus file holding the (shrunk) scenario, when serialized.
    path: str | None = None
    #: "corpus" for a replay failure, "generated" for a fresh finding.
    source: str = "generated"


@dataclass
class FuzzReport:
    """The complete outcome of one campaign."""

    profile: str
    seed: int
    scenarios: int = 0
    runs: int = 0
    oracle_checks: int = 0
    corpus_replayed: int = 0
    findings: list[Finding] = field(default_factory=list)
    families_run: list[str] = field(default_factory=list)
    families_skipped: list[str] = field(default_factory=list)
    farm_runs: int = 0
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "scenarios": self.scenarios,
            "runs": self.runs,
            "oracle_checks": self.oracle_checks,
            "corpus_replayed": self.corpus_replayed,
            "findings": [vars(f) for f in self.findings],
            "families_run": list(self.families_run),
            "families_skipped": list(self.families_skipped),
            "farm_runs": self.farm_runs,
            "wall_s": self.wall_s,
            "ok": self.ok,
        }

    def publish(self, metrics) -> None:
        """Mirror the campaign into ``fuzz.*`` metrics (see metrics.py)."""
        metrics.counter("fuzz.scenarios").inc(self.scenarios)
        metrics.counter("fuzz.runs").inc(self.runs)
        metrics.counter("fuzz.oracle_checks").inc(self.oracle_checks)
        metrics.counter("fuzz.violations").inc(len(self.findings))
        metrics.counter("fuzz.corpus_replayed").inc(self.corpus_replayed)
        metrics.gauge("fuzz.wall_s").set(self.wall_s)


def _extract_violations(exc: BaseException) -> list[OracleViolation]:
    """Pull every OracleViolation out of (possibly grouped) exceptions."""
    if isinstance(exc, OracleViolation):
        return [exc]
    nested = getattr(exc, "exceptions", None)
    if nested:
        found: list[OracleViolation] = []
        for sub in nested:
            found.extend(_extract_violations(sub))
        return found
    return []


def _family_property(family: str, seed: int, examples: int,
                     report: FuzzReport):
    """Build the hypothesis property checking one oracle family."""

    @hypothesis_seed(derive_int(seed, "fuzz", family))
    @hypothesis_settings(max_examples=examples, deadline=None,
                         database=None,
                         suppress_health_check=list(HealthCheck))
    @given(scenario=scenarios(family))
    def prop(scenario):
        report.scenarios += 1
        report.oracle_checks += run_oracles(scenario)

    return prop


def _farm_chaos_config():
    """The fixed farm profile both chaos phases (parent + child) use."""
    from repro.serve import FarmConfig

    return FarmConfig(workers=2, hb_interval_s=0.05, hb_timeout_s=1.0,
                      max_wall_s=90.0)


def _farm_chaos_child(specs_json: str, workdir: str,
                      chaos_json: str) -> None:
    """Child-process entry for a controller-crash chaos run.

    Module-level so multiprocessing can spawn it; the farm runs here so
    the plan's ``controller_crash`` SIGKILL takes out *this* process,
    not the fuzz campaign.
    """
    import json

    from repro.faults.farm import FarmChaosPlan
    from repro.serve import JobSpec, run_farm

    specs = [JobSpec.from_dict(d) for d in json.loads(specs_json)]
    chaos = FarmChaosPlan.from_dict(json.loads(chaos_json))
    run_farm(specs, _farm_chaos_config(), workdir, chaos=chaos)


def _run_farm_chaos(seed: int, index: int, report: FuzzReport, log) -> None:
    """One seeded farm run under chaos; never-hung oracle.

    Worker kills and stalls run in-process.  When the drawn plan
    includes a ``controller_crash``, the farm runs in a child process
    (which the strike SIGKILLs mid-batch) and the parent recovers the
    orphaned workdir from its write-ahead ledger -- the recovered batch
    must satisfy the same every-record-terminal property.
    """
    import json
    import multiprocessing

    from repro.faults.farm import FarmChaosPlan, WorkerFault
    from repro.serve import demo_jobs, recover_farm, run_farm

    rng = derive_rng(seed, "fuzz", "farm", index)
    jobs = demo_jobs(_FARM_JOBS, seed=rng.randrange(1, 2**16),
                     poison=rng.choice([0, 1]))
    starts = rng.sample(range(1, _FARM_JOBS + 1), k=rng.randrange(1, 4))
    chaos = FarmChaosPlan(faults=tuple(
        WorkerFault(on_start=start, delay_s=rng.uniform(0.0, 0.1),
                    op=rng.choice(["kill", "stall", "controller_crash"]))
        for start in sorted(starts)
    ))
    config = _farm_chaos_config()
    crashes = any(f.op == "controller_crash" for f in chaos.faults)
    oracle = "farm_recovery" if crashes else "chaos_termination"
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-farm-") as workdir:
        if crashes:
            proc = multiprocessing.Process(
                target=_farm_chaos_child,
                args=(json.dumps([j.to_dict() for j in jobs]), workdir,
                      json.dumps(chaos.to_dict())),
            )
            proc.start()
            # Poll is_alive (waitpid) instead of join(timeout): orphaned
            # workers inherit the child's sentinel pipe, so a sentinel
            # wait would block until *they* exit, not until the crash.
            deadline = time.monotonic() + config.max_wall_s + 30.0
            while proc.is_alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            if proc.is_alive():
                proc.kill()
                proc.join()
                report.farm_runs += 1
                report.oracle_checks += 1
                report.findings.append(Finding(
                    oracle=oracle,
                    detail=(f"farm chaos run {index} hung past its wall "
                            f"budget under plan {chaos.to_dict()}"),
                    source="generated",
                ))
                if log:
                    log(f"farm chaos {index}: FAILED, child farm hung")
                return
            # The chaos plan stops at the crash; the recovered batch
            # runs clean (a second crash would just loop the test).
            farm_report = recover_farm(config, workdir)
        else:
            farm_report = run_farm(jobs, config, workdir, chaos=chaos)
    report.farm_runs += 1
    report.runs += len(farm_report.records)
    report.oracle_checks += 1
    if not farm_report.all_terminal:
        stuck = [r.spec.job_id for r in farm_report.records
                 if not r.terminal]
        report.findings.append(Finding(
            oracle=oracle,
            detail=(f"farm chaos run {index} left non-terminal jobs "
                    f"{stuck} (plan: {chaos.to_dict()})"),
            source="generated",
        ))
        if log:
            log(f"farm chaos {index}: FAILED, non-terminal jobs {stuck}")
    elif log:
        recovered = " (controller crashed + recovered)" if crashes else ""
        log(f"farm chaos {index}: {len(farm_report.records)} jobs "
            f"terminal in {farm_report.wall_s:.1f}s{recovered}")


def run_fuzz(seed: int = 1, profile: str = "smoke",
             corpus_dir: str | Path | None = None,
             out_dir: str | Path | None = None,
             log=None) -> FuzzReport:
    """Run one fuzz campaign; see the module docstring for the phases.

    ``corpus_dir`` is replayed first and receives new shrunk findings
    unless ``out_dir`` overrides the write target.  Returns the
    :class:`FuzzReport`; the campaign itself never raises on findings.
    """
    prof = FUZZ_PROFILES.get(profile)
    if prof is None:
        raise ConfigError(
            f"unknown fuzz profile {profile!r}; "
            f"choose from {sorted(FUZZ_PROFILES)}"
        )
    report = FuzzReport(profile=prof.name, seed=seed)
    write_dir = Path(out_dir) if out_dir is not None else (
        Path(corpus_dir) if corpus_dir is not None else None)
    started = time.monotonic()
    runs_before = RUNS.count

    # Phase 1: replay the committed corpus.
    if corpus_dir is not None:
        for path in corpus_mod.corpus_files(corpus_dir):
            try:
                corpus_mod.replay_entry(path)
            except OracleViolation as violation:
                report.findings.append(Finding(
                    oracle=violation.oracle, detail=violation.detail,
                    path=str(path), source="corpus",
                ))
                if log:
                    log(f"corpus {path.name}: still FAILING "
                        f"({violation.oracle})")
            else:
                if log:
                    log(f"corpus {path.name}: ok")
            report.corpus_replayed += 1

    # Phase 2: generated scenarios, one hypothesis property per family.
    for family in ORACLE_NAMES:
        elapsed = time.monotonic() - started
        if elapsed > prof.wall_budget_s:
            report.families_skipped.append(family)
            continue
        if log:
            log(f"family {family}: {prof.examples_per_family} examples")
        prop = _family_property(family, seed, prof.examples_per_family,
                               report)
        try:
            prop()
        except BaseException as exc:  # noqa: BLE001 - findings, not errors
            violations = _extract_violations(exc)
            if not violations:
                raise
            for violation in violations:
                path = (str(corpus_mod.write_entry(write_dir, violation))
                        if write_dir is not None else None)
                report.findings.append(Finding(
                    oracle=violation.oracle, detail=violation.detail,
                    path=path, source="generated",
                ))
                if log:
                    where = f" -> {path}" if path else ""
                    log(f"family {family}: FINDING "
                        f"{violation.detail[:120]}{where}")
        report.families_run.append(family)

    # Phase 3: farm chaos (real multiprocessing; ci/deep only).
    for index in range(prof.farm_scenarios):
        if time.monotonic() - started > prof.wall_budget_s:
            report.families_skipped.append(f"farm:{index}")
            continue
        _run_farm_chaos(seed, index, report, log)

    report.runs += RUNS.count - runs_before
    report.wall_s = time.monotonic() - started
    if log and report.families_skipped:
        log(f"budget exhausted; skipped: {report.families_skipped}")
    return report
