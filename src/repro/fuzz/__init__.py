"""Property-based scenario fuzzing with metamorphic oracles.

``repro fuzz`` generates random-but-valid workloads, machines, fault
plans, and schedules (``strategies``), runs them through the full
machine / checkpoint / multiprog stack, and checks six metamorphic and
differential oracle families (``oracles``).  Failures are shrunk by
hypothesis and serialized into a replayable regression corpus
(``corpus``); ``runner`` drives time-budgeted campaigns.  See
docs/robustness.md's fuzzing section.
"""

from repro.fuzz.corpus import (
    corpus_files,
    load_entry,
    replay_entry,
    write_entry,
)
from repro.fuzz.oracles import (
    ORACLE_CHECKS,
    ORACLE_NAMES,
    OracleViolation,
    run_oracles,
)
from repro.fuzz.runner import FUZZ_PROFILES, FuzzProfile, FuzzReport, run_fuzz
from repro.fuzz.scenario import (
    CheckpointSpec,
    LoopSpec,
    PlatformSpec,
    ProgramSpec,
    RefSpec,
    Scenario,
    WorkSpec,
)
from repro.fuzz.strategies import STRATEGY_NAMES

__all__ = [
    "CheckpointSpec",
    "FUZZ_PROFILES",
    "FuzzProfile",
    "FuzzReport",
    "LoopSpec",
    "ORACLE_CHECKS",
    "ORACLE_NAMES",
    "OracleViolation",
    "PlatformSpec",
    "ProgramSpec",
    "RefSpec",
    "STRATEGY_NAMES",
    "Scenario",
    "WorkSpec",
    "corpus_files",
    "load_entry",
    "replay_entry",
    "run_fuzz",
    "run_oracles",
    "write_entry",
]
