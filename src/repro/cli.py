"""Command-line interface.

::

    python -m repro apps                      # list the benchmarks
    python -m repro platform                  # show the simulated machine
    python -m repro compile BUK --print-code  # run the pass, show Fig-2 output
    python -m repro run MGRID --variant p     # execute one variant
    python -m repro compare FFT --nofilter    # O vs P (vs P-nofilter)
    python -m repro sweep BUK --multiples 0.5,1,2,3   # Figure-8 style
    python -m repro multiprog EMBAR,MGRID     # co-schedule two applications
    python -m repro trace --app embar --out trace.json   # record a run
    python -m repro explain EMBAR             # stall-attribution report
    python -m repro profile EMBAR             # collapsed stacks + disk timeline
    python -m repro bench --smoke             # perf-trajectory benchmark
    python -m repro chaos EMBAR --quick       # fault-injection sweep
    python -m repro serve submit --demo 20    # supervised job farm
    python -m repro top --workdir farm        # live farm dashboard
    python -m repro fuzz --profile smoke      # metamorphic fuzz campaign
    python -m repro fuzz replay FILE          # re-run one corpus finding

``run``, ``compare``, ``sweep``, ``multiprog``, ``explain``, and
``profile`` accept ``--trace FILE`` (Chrome trace_event JSON,
Perfetto-loadable) and ``--metrics-out FILE`` (the metrics-registry
JSON artifact); ``trace`` is the dedicated front door for both.  See
docs/observability.md.

``run``, ``compare``, and ``chaos`` accept ``--faults PLAN.json`` and
``--fault-seed N`` to execute under deterministic injected faults; see
docs/robustness.md.

``run``, ``compare``, and ``bench`` accept ``--checkpoint-every US``,
``--checkpoint-dir DIR``, ``--checkpoint-keep K``, ``--resume-from
PATH``, and ``--ignore-crash-faults``.  A planned ``process_crash``
fault (or a pending one from a resumed plan) terminates the process
with exit code 3 and a resume hint; see docs/robustness.md.

``serve`` runs batches of jobs on a supervised multiprocess worker
farm with heartbeats, retry/backoff, checkpoint-driven preemption, and
load shedding; see docs/serving.md.  Farm telemetry (on by default)
folds worker metric deltas into per-tenant rollups, evaluates SLO
rules (``--slo FILE``, ``--slo-out FILE``), and can merge per-job
traces into one Perfetto timeline (``--farm-trace FILE``); ``top``
renders the live ``workdir/telemetry.json`` snapshot and ``serve
status --telemetry`` the archived summary (see docs/observability.md).
Exit codes across all commands follow :class:`repro.errors.ExitCode`.

``fuzz`` runs a seeded property-based campaign over the whole stack:
random scenarios per metamorphic oracle family, shrunk findings
serialized into a replayable regression corpus (``tests/corpus/``),
replayed first on every later campaign; see docs/robustness.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.apps.registry import ALL_APPS, get_app, table2_rows
from repro.checkpoint import CheckpointConfig
from repro.config import PlatformConfig
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import insert_prefetches
from repro.errors import ConfigError, ExitCode, ProcessCrash
from repro.faults import FaultPlan, default_plan, load_plan
from repro.harness.experiment import compare_app, default_data_pages, run_variant
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.harness.report import render_table
from repro.obs import (
    STALL_CAUSES,
    Observer,
    StallAttributor,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.sim.stats import RunStats


def _platform_from_args(args: argparse.Namespace) -> PlatformConfig:
    overrides = {}
    if args.memory_pages:
        overrides["memory_pages"] = args.memory_pages
    if args.disks:
        overrides["num_disks"] = args.disks
    return PlatformConfig(**overrides) if overrides else PlatformConfig()


def _data_pages(args: argparse.Namespace, platform: PlatformConfig) -> int:
    if args.pages:
        return args.pages
    size_class = getattr(args, "size_class", None)
    if size_class:
        from repro.apps.base import SIZE_CLASSES

        multiple = SIZE_CLASSES[size_class.upper()]
        return max(8, int(platform.available_frames * multiple))
    return default_data_pages(platform)


def _print_stats(stats: RunStats, registry=None) -> None:
    """Print the run's headline metrics, sourced from the registry.

    The registry (``RunStats.publish``) is the canonical export surface
    of the observability layer; this table is just a curated view of it.
    """
    reg = registry if registry is not None else stats.publish()
    v = reg.value
    secs = lambda name: f"{v(name) / 1e6:.3f} s"  # noqa: E731
    rows = [
        ["elapsed", secs("time.elapsed_us")],
        ["user compute", secs("time.user_compute_us")],
        ["user overhead", secs("time.user_overhead_us")],
        ["system (faults)", secs("time.sys_fault_us")],
        ["system (prefetch)", secs("time.sys_prefetch_us")],
        ["system (release)", secs("time.sys_release_us")],
        ["I/O stall",
         f"{(v('time.stall_read_us') + v('time.stall_flush_us')) / 1e6:.3f} s"],
        ["page faults",
         int(v("faults.prefetched_fault") + v("faults.nonprefetched_fault"))],
        ["prefetched hits", int(v("faults.prefetched_hit"))],
        ["coverage", f"{100 * v('faults.coverage'):.1f} %"],
        ["prefetches inserted", int(v("prefetch.compiler_inserted"))],
        ["filtered at user level", int(v("prefetch.filtered"))],
        ["issued to OS (pages)", int(v("prefetch.issued_pages"))],
        ["pages released", int(v("release.pages_released"))],
        ["disk requests",
         int(v("disk.reads_fault") + v("disk.reads_prefetch") + v("disk.writes"))],
        ["avg disk utilization", f"{100 * v('disk.utilization'):.1f} %"],
        ["avg free memory", f"{100 * v('memory.avg_free_fraction'):.1f} %"],
    ]
    print(render_table(["metric", "value"], rows))


def _fault_plan_from_args(
    args: argparse.Namespace, platform: PlatformConfig
) -> FaultPlan | None:
    """The plan behind ``--faults`` / ``--fault-seed`` (None = clean run).

    ``--fault-seed`` alone selects :func:`repro.faults.default_plan`;
    combined with ``--faults`` it reseeds the loaded plan.
    """
    plan = None
    if getattr(args, "faults", None):
        plan = load_plan(args.faults)
        if args.fault_seed is not None:
            plan = plan.with_seed(args.fault_seed)
    elif getattr(args, "fault_seed", None) is not None:
        plan = default_plan(platform.num_disks, seed=args.fault_seed)
    return plan


def _checkpoint_from_args(
    args: argparse.Namespace, label: str
) -> CheckpointConfig | None:
    """The config behind ``--checkpoint-* / --resume-from`` (see
    docs/robustness.md).  Commands without those flags get None; with
    them, an (often inactive) config is always built so the checkpoint
    directory and crash ledger stay wired for plan ``process_crash``
    faults even when no cadence was requested.
    """
    if not hasattr(args, "checkpoint_every"):
        return None
    return CheckpointConfig(
        every_us=args.checkpoint_every,
        directory=args.checkpoint_dir,
        label=label,
        keep=args.checkpoint_keep,
        resume_from=args.resume_from,
        suppress_plan_crashes=args.ignore_crash_faults,
    )


def _make_observer(args: argparse.Namespace) -> Observer | None:
    """An observer when any observability output was requested."""
    if getattr(args, "trace", None) or getattr(args, "metrics_out", None):
        return Observer(capacity=getattr(args, "trace_buffer", 65536))
    return None


def _write_observations(args: argparse.Namespace, obs: Observer | None) -> None:
    """Write the requested trace / metrics artifacts and say where."""
    if obs is None:
        return
    trace_path = getattr(args, "trace", None) or getattr(args, "out", None)
    if trace_path:
        write_chrome_trace(trace_path, obs.trace)
        kept, dropped = len(obs.trace), obs.trace.dropped
        print(f"trace: {trace_path} ({kept} events"
              + (f", {dropped} dropped by ring wraparound" if dropped else "")
              + ") -- load in https://ui.perfetto.dev")
    if getattr(args, "metrics_out", None):
        write_metrics_json(args.metrics_out, obs.metrics)
        print(f"metrics: {args.metrics_out} ({len(obs.metrics)} instruments)")


def cmd_apps(args: argparse.Namespace) -> int:
    rows = [
        [r["name"], r["nas"], r["full_name"], r["pattern"]]
        for r in table2_rows()
    ]
    print(render_table(["app", "NAS", "full name", "access pattern"], rows,
                       title="NAS Parallel Benchmark models"))
    return ExitCode.OK


def cmd_platform(args: argparse.Namespace) -> int:
    platform = _platform_from_args(args)
    disk = platform.disk
    rows = [
        ["memory", f"{platform.memory_bytes // 1024} KB ({platform.memory_pages} pages)"],
        ["available to app", f"{platform.available_bytes // 1024} KB"],
        ["page size", f"{platform.page_size} B"],
        ["disks", platform.num_disks],
        ["random access", f"{disk.random_service_us(1) / 1000:.1f} ms"],
        ["sequential page", f"{disk.sequential_service_us(1) / 1000:.1f} ms"],
        ["fault latency (end to end)",
         f"{platform.average_fault_latency_us() / 1000:.1f} ms"],
        ["block prefetch", f"{platform.prefetch_block_pages} pages"],
    ]
    print(render_table(["characteristic", "value"], rows,
                       title="Simulated platform"))
    return ExitCode.OK


def cmd_compile(args: argparse.Namespace) -> int:
    platform = _platform_from_args(args)
    spec = get_app(args.app)
    program = spec.make(_data_pages(args, platform), seed=args.seed)
    options = CompilerOptions.from_platform(
        platform, two_version_loops=args.two_version
    )
    result = insert_prefetches(program, options)
    print(result.report())
    if args.print_code:
        from repro.core.ir.printer import format_program

        print()
        print(format_program(result.program))
    return ExitCode.OK


def _run_one_variant(
    args: argparse.Namespace,
    platform: PlatformConfig,
    observer: Observer | None,
    fault_plan: FaultPlan | None = None,
) -> tuple[str, int, RunStats]:
    """Build, (maybe) compile, and execute one variant of one app."""
    spec = get_app(args.app)
    pages = _data_pages(args, platform)
    program = spec.make(pages, seed=args.seed)
    variant = args.variant.lower()
    checkpoint = _checkpoint_from_args(
        args, f"{spec.name}-{variant.upper()}"
    )
    if variant == "o":
        stats = run_variant(program, platform, prefetching=False,
                            warm=args.warm, observer=observer,
                            fault_plan=fault_plan, checkpoint=checkpoint)
    else:
        options = CompilerOptions.from_platform(platform)
        compiled = insert_prefetches(program, options)
        stats = run_variant(
            compiled.program,
            platform,
            prefetching=True,
            runtime_filter=variant != "nofilter",
            warm=args.warm,
            adaptive=variant == "adaptive",
            observer=observer,
            fault_plan=fault_plan,
            checkpoint=checkpoint,
        )
    return spec.name, pages, stats


def cmd_run(args: argparse.Namespace) -> int:
    platform = _platform_from_args(args)
    observer = _make_observer(args)
    fault_plan = _fault_plan_from_args(args, platform)
    name, pages, stats = _run_one_variant(args, platform, observer, fault_plan)
    resumed = getattr(args, "resume_from", None)
    print(f"{name} [{args.variant.upper()}] at {pages} data pages "
          f"({'warm' if args.warm else 'cold'} start"
          + (", faulted" if fault_plan is not None else "")
          + (f", resumed from {resumed}" if resumed else "") + ")")
    _print_stats(stats, observer.metrics if observer else None)
    _write_observations(args, observer)
    return ExitCode.OK


def cmd_trace(args: argparse.Namespace) -> int:
    """Record one run and emit the trace / metrics artifacts.

    Exits non-zero when the recorded trace fails its own schema
    validator -- the artifacts are still written so the bad trace can
    be inspected.
    """
    platform = _platform_from_args(args)
    observer = Observer(capacity=args.trace_buffer)
    name, pages, stats = _run_one_variant(args, platform, observer)
    print(f"{name} [{args.variant.upper()}] at {pages} data pages: "
          f"{stats.elapsed_us / 1e6:.3f} s simulated, "
          f"{observer.trace.total_emitted} events")
    counts = observer.trace.counts_by_kind()
    rows = [[kind, counts[kind]] for kind in sorted(counts)]
    print(render_table(["event kind", "count"], rows))
    _write_observations(args, observer)
    problems = validate_chrome_trace(chrome_trace(observer.trace))
    if problems:
        for problem in problems:
            print(f"trace validation: {problem}", file=sys.stderr)
        return ExitCode.FAILURE
    return ExitCode.OK


def cmd_compare(args: argparse.Namespace) -> int:
    platform = _platform_from_args(args)
    spec = get_app(args.app)
    pages = args.pages or (
        _data_pages(args, platform) if getattr(args, "size_class", None) else None
    )
    observer = _make_observer(args)
    result = compare_app(
        spec,
        platform,
        data_pages=pages,
        seed=args.seed,
        warm=args.warm,
        include_nofilter=args.nofilter,
        include_adaptive=args.adaptive,
        observer=observer,
        fault_plan=_fault_plan_from_args(args, platform),
        # compare_app re-labels per variant (<app>-O, <app>-P, ...).
        checkpoint=_checkpoint_from_args(args, spec.name),
    )
    rows = []
    variants = [result.original, result.prefetch] + list(result.extras.values())
    for run in variants:
        s = run.stats
        rows.append([
            run.variant,
            f"{s.elapsed_us / 1e6:.3f} s",
            f"{100 * s.times.idle / s.elapsed_us:.0f} %",
            f"{result.original.elapsed_us / s.elapsed_us:.2f}x",
            f"{100 * s.faults.coverage:.0f} %",
        ])
    print(render_table(
        ["variant", "elapsed", "idle", "speedup vs O", "coverage"],
        rows,
        title=f"{spec.name} at {result.data_pages} data pages",
    ))
    _write_observations(args, observer)
    return ExitCode.OK


def _attributed_run(
    args: argparse.Namespace, platform: PlatformConfig
) -> tuple[str, int, RunStats, Observer, StallAttributor]:
    """Execute one variant with span assembly + stall attribution live."""
    observer = Observer(capacity=getattr(args, "trace_buffer", 65536))
    attributor = StallAttributor(observer=observer)
    fault_plan = _fault_plan_from_args(args, platform)
    name, pages, stats = _run_one_variant(args, platform, observer, fault_plan)
    return name, pages, stats, observer, attributor


def cmd_explain(args: argparse.Namespace) -> int:
    """Stall-attribution report: every idle microsecond gets one cause.

    Exits non-zero if the conservation invariant fails (attributed
    cycles must equal the run's stall cycles bitwise) -- it holding is
    the proof that the report explains *all* of the idle time.
    """
    platform = _platform_from_args(args)
    name, pages, stats, observer, att = _attributed_run(args, platform)
    report = att.report(stats)
    idle = report.idle_us or 1.0
    rows = []
    for cause in STALL_CAUSES:
        bucket = report.buckets[cause]
        if not bucket.count and not bucket.total_us:
            continue
        rows.append([
            cause,
            bucket.count,
            f"{bucket.total_us / 1e6:.3f} s",
            f"{100 * bucket.total_us / idle:.1f} %",
        ])
    print(render_table(
        ["cause", "stalls", "time", "share of idle"],
        rows,
        title=(f"{name} [{args.variant.upper()}] at {pages} data pages "
               f"-- stall attribution"),
    ))
    lateness = report.lateness
    if lateness.count:
        rows = []
        for idx, bound in enumerate(lateness.bounds):
            if lateness.buckets[idx]:
                rows.append([f"<= {bound / 1000:g} ms", lateness.buckets[idx]])
        if lateness.buckets[-1]:
            rows.append([f"> {lateness.bounds[-1] / 1000:g} ms",
                         lateness.buckets[-1]])
        rows.append(["mean", f"{lateness.mean / 1000:.1f} ms"])
        print(render_table(["lateness", "late prefetches"], rows,
                           title="prefetch_too_late lateness histogram"))
    for warning in report.warnings:
        print(f"warning: {warning}")
    verdict = "conserved exactly" if report.conserved else "MISMATCH"
    print(f"attributed {report.attributed_total_us / 1e6:.6f} s across "
          f"{report.records} stall records == RunStats idle "
          f"{report.idle_us / 1e6:.6f} s: {verdict}")
    _write_observations(args, observer)
    if not report.conserved:
        print("conservation invariant violated: attribution does not "
              "account for all stall cycles", file=sys.stderr)
        return ExitCode.FAILURE
    return ExitCode.OK


def cmd_profile(args: argparse.Namespace) -> int:
    """Collapsed-stack stall profile plus the per-disk utilization timeline."""
    platform = _platform_from_args(args)
    name, pages, stats, observer, att = _attributed_run(args, platform)
    att.report(stats)
    lines = att.collapsed_stacks(root=name)
    if args.collapsed:
        atomic_write_text(args.collapsed,
                          "\n".join(lines) + ("\n" if lines else ""))
        print(f"collapsed stacks: {args.collapsed} ({len(lines)} frames) "
              f"-- feed to any flamegraph tool")
    rows = []
    for line in lines[:args.top]:
        stack, _, stalled_us = line.rpartition(" ")
        rows.append([stack, f"{int(stalled_us) / 1e6:.3f} s"])
    print(render_table(
        ["stack (loop nest;array;cause)", "stall"],
        rows,
        title=(f"{name} [{args.variant.upper()}] at {pages} data pages "
               f"-- top {min(args.top, len(lines))} of {len(lines)} stacks"),
    ))
    # Per-disk utilization: exact busy fractions from RunStats plus a
    # request-density timeline rebuilt from the span layer's DISK_REQUEST
    # feed.  The obs.disk_idle_fraction gauge is set from the same
    # busy_us numbers in Machine.finish, so the two views agree.
    elapsed = stats.elapsed_us or 1.0
    width = 48
    glyphs = ".:-=+*#@"
    rows = []
    for idx, busy in enumerate(stats.disk.busy_us):
        requests = att.spans.disk_timeline.get(idx, [])
        counts = [0] * width
        for ts_us, npages in requests:
            slot = min(width - 1, int(ts_us / elapsed * width))
            counts[slot] += npages
        peak = max(counts) if counts else 0
        timeline = "".join(
            " " if c == 0 else glyphs[min(len(glyphs) - 1,
                                          int(c / peak * (len(glyphs) - 1)))]
            for c in counts
        )
        rows.append([
            f"disk{idx}",
            sum(n for _, n in requests),
            f"{100 * busy / elapsed:.1f} %",
            f"{100 * max(0.0, 1.0 - busy / elapsed):.1f} %",
            timeline,
        ])
    print(render_table(
        ["disk", "pages", "busy", "idle", f"requests over time ({width} slots)"],
        rows,
        title="disk utilization",
    ))
    gauge = observer.disk_idle_fraction
    print(f"obs.disk_idle_fraction gauge: min {gauge.min:.3f}, "
          f"max {gauge.max:.3f} (matches the idle column by construction)")
    _write_observations(args, observer)
    return ExitCode.OK


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the pinned benchmark set and gate against the newest baseline."""
    from pathlib import Path

    from repro.harness.bench import (
        compare_reports,
        find_baseline,
        load_report,
        run_bench,
        smoke_cases,
        table3_cases,
        write_report,
    )

    out = Path(args.out)
    baseline_path: Path | None = None
    if args.baseline == "auto":
        baseline_path = find_baseline(out.resolve().parent, exclude=out)
    elif args.baseline != "none":
        baseline_path = Path(args.baseline)
    # Load before writing: --out may overwrite the committed baseline.
    baseline = load_report(baseline_path) if baseline_path is not None else None
    cases = smoke_cases() if args.smoke else table3_cases() + smoke_cases()
    report = run_bench(
        cases,
        progress=lambda case: print(
            f"running {case.app} ({case.profile}: {case.data_pages} pages, "
            f"{case.memory_pages} memory pages) ...", flush=True),
        # run_case re-labels per entry (<app>-<variant>-<profile>).
        checkpoint=_checkpoint_from_args(args, "bench"),
        wall_reps=args.wall_reps,
    )
    write_report(out, report)
    rows = [[
        entry["app"], entry["variant"], entry["profile"],
        f"{entry['sim_elapsed_us'] / 1e6:.3f} s",
        f"{entry['sim_stall_us'] / 1e6:.3f} s",
        f"{entry['wall_time_s']:.2f} s",
    ] for entry in report["entries"]]
    print(render_table(
        ["app", "variant", "profile", "sim elapsed", "sim stall", "wall"],
        rows,
        title=f"benchmark report -> {out}",
    ))
    if baseline is None:
        print("no baseline report; recorded only (use --baseline PATH to gate)")
        return ExitCode.OK
    regressions, notes = compare_reports(
        report, baseline, args.threshold, wall_threshold=args.wall_threshold
    )
    for note in notes:
        print(f"note: {note}")
    gates = f"sim threshold {100 * args.threshold:.0f}%"
    if args.wall_threshold is not None:
        gates += f", wall threshold {100 * args.wall_threshold:.0f}%"
    if regressions:
        print(f"benchmark regression vs {baseline_path} ({gates}):",
              file=sys.stderr)
        for regression in regressions:
            print(f"  {regression.describe()}", file=sys.stderr)
        return ExitCode.FAILURE
    print(f"no benchmark regression vs {baseline_path} ({gates})")
    return ExitCode.OK


def cmd_multiprog(args: argparse.Namespace) -> int:
    from repro.core.prefetch_pass import insert_prefetches
    from repro.multiprog import CoScheduler

    platform = _platform_from_args(args)
    names = [n.strip() for n in args.apps.split(",") if n.strip()]
    if not names:
        print("no applications given", file=sys.stderr)
        return ExitCode.USAGE
    observer = _make_observer(args)
    rows = []
    for prefetching in (False, True):
        # Observe the prefetching schedule only: both schedules restart
        # the clock at zero, so one trace cannot hold both and keep
        # timestamps monotonic.
        sched = CoScheduler(platform, quantum_us=args.quantum,
                            observer=observer if prefetching else None)
        for k, app_name in enumerate(names):
            spec = get_app(app_name)
            pages = args.pages or default_data_pages(platform)
            program = spec.make(pages, seed=k + 1)
            if prefetching:
                options = CompilerOptions.from_platform(platform)
                program = insert_prefetches(program, options).program
            sched.add_process(program, name=f"{spec.name}#{k}",
                              prefetching=prefetching)
        result = sched.run()
        if prefetching and observer is not None:
            # CoScheduler does not publish; surface its stats alongside
            # the live histograms in the metrics artifact.
            result.stats.publish(observer.metrics)
        label = "P" if prefetching else "O"
        for proc in result.processes:
            rows.append([
                label,
                proc.name,
                f"{proc.finish_us / 1e6:.3f} s",
                f"{proc.cpu_us / 1e6:.3f} s",
                f"{proc.blocked_us / 1e6:.3f} s",
                f"{proc.queued_us / 1e6:.3f} s",
            ])
        rows.append([
            label, "(machine)", f"{result.elapsed_us / 1e6:.3f} s",
            f"idle {100 * result.times.idle / result.elapsed_us:.0f} %",
            "", "",
        ])
    print(render_table(
        ["variant", "process", "finish", "cpu", "blocked", "queued"],
        rows,
        title="Co-scheduled run (O = paged VM, P = prefetching)",
    ))
    if observer is not None:
        print("(trace/metrics cover the prefetching schedule only)")
    _write_observations(args, observer)
    return ExitCode.OK


def cmd_sweep(args: argparse.Namespace) -> int:
    platform = _platform_from_args(args)
    spec = get_app(args.app)
    multiples = [float(m) for m in args.multiples.split(",")]
    observer = _make_observer(args)
    rows = []
    for k, multiple in enumerate(multiples):
        pages = max(8, int(platform.available_frames * multiple))
        # Observe the final sweep point only: every run restarts the
        # simulated clock at zero, so one trace cannot hold several
        # runs and keep its timestamps monotonic.
        result = compare_app(
            spec, platform, data_pages=pages, seed=args.seed,
            observer=observer if k == len(multiples) - 1 else None,
        )
        rows.append([
            f"{multiple:g}x",
            pages,
            f"{result.original.elapsed_us / 1e6:.3f} s",
            f"{result.prefetch.elapsed_us / 1e6:.3f} s",
            f"{result.speedup:.2f}x",
        ])
    print(render_table(
        ["size vs memory", "pages", "original", "prefetching", "speedup"],
        rows,
        title=f"{spec.name} problem-size sweep",
    ))
    if observer is not None:
        print(f"(trace/metrics cover the final sweep point only: "
              f"{multiples[-1]:g}x, prefetching variant)")
    _write_observations(args, observer)
    return ExitCode.OK


def cmd_chaos(args: argparse.Namespace) -> int:
    """Sweep fault intensities and print the degradation table."""
    from repro.faults.chaos import chaos_report_dict, chaos_sweep

    if args.quick:
        # CI smoke mode: a small out-of-core footprint, one intensity.
        args.memory_pages = args.memory_pages or 96
        args.pages = args.pages or 120
    platform = _platform_from_args(args)
    spec = get_app(args.app)
    if args.intensities is not None:
        spec_intensities = args.intensities
    else:
        spec_intensities = "1.0" if args.quick else "0.25,0.5,1.0"
    intensities = [float(x) for x in spec_intensities.split(",") if x.strip()]
    report = chaos_sweep(
        spec,
        platform,
        base_plan=_fault_plan_from_args(args, platform),
        intensities=intensities,
        data_pages=args.pages or None,
        seed=args.seed,
        variant=args.variant.lower(),
    )
    rows = [[
        "0 (clean)", f"{report.clean.elapsed_us / 1e6:.3f} s",
        "1.00x", "-", "-", "-", "-", "-",
    ]]
    for row in report.rows:
        rows.append([
            f"{row.intensity:g}",
            f"{row.elapsed_us / 1e6:.3f} s",
            f"{report.slowdown(row):.2f}x",
            f"{100 * row.drop_rate:.1f} %",
            row.retries,
            row.degraded_requests,
            row.fallback_episodes,
            f"{row.crashes}/{row.resumes}" if row.crashes else "-",
        ])
    print(render_table(
        ["intensity", "elapsed", "slowdown", "hints dropped",
         "retries", "degraded I/O", "fallbacks", "crashes/resumes"],
        rows,
        title=(f"{spec.name} [{args.variant.upper()}] chaos sweep "
               f"at {report.data_pages} data pages"),
    ))
    if args.out:
        atomic_write_json(args.out, chaos_report_dict(report))
        print(f"report: {args.out}")
    return ExitCode.OK


def _render_serve_report(payload: dict, title: str) -> None:
    """Print the per-job table and summary line of a results payload."""
    rows = []
    for job in payload["jobs"]:
        spec = job["spec"]
        note = job["failures"][-1] if job["failures"] else ""
        if len(note) > 48:
            note = note[:45] + "..."
        rows.append([
            spec["job_id"], spec["kind"], spec["app"], spec["priority"],
            job["state"], job["attempts"], job["retries"],
            job["preemptions"], f"{job['latency_s']:.2f} s", note,
        ])
    print(render_table(
        ["job", "kind", "app", "prio", "state", "attempts", "retries",
         "preempt", "latency", "last failure"],
        rows, title=title,
    ))
    s = payload["summary"]
    print(f"{s['jobs']} jobs: {s['done']} done, "
          f"{s['quarantined']} quarantined, {s['shed']} shed | "
          f"retries {s['retries']}, preemptions {s['preemptions']}, "
          f"worker restarts {s['worker_restarts']} | "
          f"p99 latency {s['p99_latency_s']:.2f} s, "
          f"wall {s['wall_s']:.2f} s")


def _load_serve_results(path: str) -> dict:
    import json

    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load serve results {path!r}: {exc}") from None
    if not isinstance(payload, dict) or "jobs" not in payload:
        raise ConfigError(f"{path}: not a serve results file")
    return payload


def _serve_batch(args: argparse.Namespace, specs, carried: list | None = None,
                 recover: bool = False) -> int:
    """Run a batch on a farm, write the artifacts, print the table.

    ``carried`` rows (already-terminal jobs from a previous results
    file, used by ``drain``) are prepended to the output unchanged.
    ``recover`` replays the workdir's write-ahead ledger before any
    new submission (``serve recover``, or ``submit`` landing on a
    stale ledger).
    """
    import tempfile

    from repro.faults.farm import default_farm_plan, load_farm_plan
    from repro.obs.telemetry import TelemetryConfig, load_slo_rules
    from repro.serve import FarmConfig, JobState, RetryPolicy, run_farm
    from repro.serve.ledger import ledger_is_stale

    chaos = None
    if args.farm_chaos:
        chaos = load_farm_plan(args.farm_chaos)
    elif (args.chaos_kills or args.chaos_stalls
          or args.chaos_controller_crash):
        chaos = default_farm_plan(
            kills=args.chaos_kills,
            stalls=args.chaos_stalls,
            delay_s=args.chaos_delay,
            controller_crashes=args.chaos_controller_crash)
    telemetry = TelemetryConfig(
        enabled=not args.no_telemetry,
        flush_every_s=args.telemetry_every,
        trace_out=args.farm_trace,
        slo_rules=load_slo_rules(args.slo) if args.slo else None,
        slo_out=args.slo_out,
    )
    config = FarmConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        hb_interval_s=args.hb_interval,
        hb_timeout_s=args.hb_timeout,
        retry=RetryPolicy(seed=args.seed),
        preemption=not args.no_preemption,
        max_wall_s=args.max_wall,
        telemetry=telemetry,
    )
    tmp = None
    workdir = args.workdir
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        workdir = tmp.name
    elif not recover and ledger_is_stale(workdir):
        # A previous controller died here mid-batch: replay its ledger
        # before taking new work, so its jobs are not silently lost.
        print(f"stale ledger in {workdir} (controller died mid-batch): "
              f"recovering its jobs first")
        recover = True
    try:
        report = run_farm(specs, config, workdir, chaos=chaos,
                          recover=recover)
    finally:
        if tmp is not None:
            tmp.cleanup()
    payload = report.to_dict()
    if carried:
        payload["jobs"] = carried + payload["jobs"]
        summary = payload["summary"]
        summary["jobs"] = len(payload["jobs"])
        for state in (JobState.DONE, JobState.QUARANTINED, JobState.SHED):
            summary[state] = sum(
                1 for job in payload["jobs"] if job["state"] == state)
    atomic_write_json(args.out, payload)
    _render_serve_report(
        payload,
        f"farm of {config.workers} workers"
        + (f", chaos: {len(chaos.faults)} strikes" if chaos else ""),
    )
    print(f"results: {args.out}")
    if args.metrics_out:
        write_metrics_json(args.metrics_out, report.metrics)
        print(f"metrics: {args.metrics_out} "
              f"({len(report.metrics)} instruments)")
    if report.telemetry and report.telemetry.get("enabled"):
        _render_telemetry_summary(report.telemetry)
        if tmp is None:
            print(f"telemetry snapshot: {report.telemetry['snapshot']}")
        if report.telemetry.get("trace_out"):
            print(f"farm timeline: {report.telemetry['trace_out']}")
    all_done = all(job["state"] == "done" for job in payload["jobs"])
    return ExitCode.OK if all_done else ExitCode.JOB_FAILED


def _render_telemetry_summary(telemetry: dict) -> None:
    """The per-tenant table and SLO verdict of a telemetry summary."""
    tenants = telemetry.get("tenants") or {}
    if tenants:
        rows = []
        for tenant in sorted(tenants):
            row = tenants[tenant]
            rows.append([
                tenant, row.get("jobs", 0), row.get("done", 0),
                row.get("failed_attempts", 0),
                _us(row.get("stall_p50_us")), _us(row.get("stall_p95_us")),
                _us(row.get("stall_p99_us")), _us(row.get("latency_p99_us")),
            ])
        print(render_table(
            ["tenant", "jobs", "done", "failed", "stall p50", "stall p95",
             "stall p99", "latency p99"],
            rows, title=f"tenants (trace {telemetry.get('trace_id', '?')})",
        ))
    verdict = telemetry.get("slo")
    if verdict:
        status = "OK" if verdict.get("ok") else "VIOLATED"
        broken = [r["name"] for r in verdict.get("rules", []) if not r["ok"]]
        line = f"SLO: {status} ({verdict.get('rules_total', 0)} rules"
        if broken:
            line += f"; violated: {', '.join(broken)}"
        print(line + ")")


def _us(value) -> str:
    """Microseconds, humanized for the tenant table."""
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f} s"
    if value >= 1e3:
        return f"{value / 1e3:.1f} ms"
    return f"{value:.0f} us"


def cmd_serve(args: argparse.Namespace) -> int:
    """The supervised simulation job farm (see docs/serving.md)."""
    from repro.serve import JobSpec, demo_jobs, load_jobs

    try:
        if args.verb == "submit":
            if args.demo:
                specs = demo_jobs(args.demo, seed=args.seed,
                                  poison=args.poison)
            elif args.jobs:
                specs = load_jobs(args.jobs)
            else:
                print("serve submit needs --jobs FILE or --demo N",
                      file=sys.stderr)
                return ExitCode.USAGE
            return _serve_batch(args, specs)
        if args.verb == "recover":
            if not args.workdir:
                print("serve recover needs --workdir DIR (the crashed "
                      "farm's workdir, where its ledger lives)",
                      file=sys.stderr)
                return ExitCode.USAGE
            return _serve_batch(args, [], recover=True)
        if args.verb == "status" and args.workdir:
            # Live view first: the workdir's telemetry snapshot, with an
            # explicit freshness verdict instead of silent stale data.
            path = str(Path(args.workdir) / "telemetry.json")
            snap, note = _snapshot_freshness(path)
            if note:
                print(note)
            if snap is not None:
                print("\n".join(_render_top(snap)))
        results = args.results or args.out
        payload = _load_serve_results(results)
        if args.verb == "status":
            _render_serve_report(payload, f"results: {results}")
            if args.telemetry:
                telemetry = payload.get("telemetry")
                if telemetry and telemetry.get("enabled"):
                    _render_telemetry_summary(telemetry)
                else:
                    print("no telemetry in this results file "
                          "(ran with --no-telemetry?)")
            all_done = all(job["state"] == "done" for job in payload["jobs"])
            return ExitCode.OK if all_done else ExitCode.JOB_FAILED
        # drain: re-run everything that did not finish, keep what did.
        if args.workdir:
            removed = _drain_stale_state(args.workdir)
            if removed:
                print(f"cleaned {removed} stale worker/controller state "
                      f"file(s) under {args.workdir}")
        carried = [job for job in payload["jobs"] if job["state"] == "done"]
        specs = [JobSpec.from_dict(job["spec"]) for job in payload["jobs"]
                 if job["state"] != "done"]
        if not specs:
            print(f"nothing to drain: all {len(carried)} jobs in "
                  f"{results} are done")
            return ExitCode.OK
        return _serve_batch(args, specs, carried=carried)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return ExitCode.USAGE


def _drain_stale_state(workdir: str) -> int:
    """``serve drain`` housekeeping: remove heartbeat/pid files left by
    SIGKILLed workers and a dead controller's liveness stamp.  Live
    processes' state is left alone."""
    from repro.serve.ledger import clear_liveness, controller_alive, liveness_path
    from repro.serve.supervisor import cleanup_worker_state

    removed = cleanup_worker_state(Path(workdir) / "workers")
    if liveness_path(workdir).is_file() and not controller_alive(workdir):
        clear_liveness(workdir)
        removed += 1
    return removed


def _load_snapshot(path: str) -> dict | None:
    import json

    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or "farm" not in payload:
        return None
    return payload


#: A "running" snapshot older than this is considered abandoned (the
#: controller flushes every --telemetry-every seconds, default 0.5).
SNAPSHOT_STALE_AFTER_S = 10.0


def _snapshot_freshness(path: str) -> tuple[dict | None, str | None]:
    """Load a telemetry snapshot with an explicit freshness verdict.

    Returns ``(snapshot, note)``: missing and unreadable files produce
    ``(None, why)`` instead of a traceback, and a snapshot still marked
    ``running`` whose file has not been rewritten for
    :data:`SNAPSHOT_STALE_AFTER_S` produces a "stale snapshot (age Xs)"
    note pointing at ``repro serve recover`` -- never silent stale data.
    """
    import json
    import os as _os
    import time as _time

    try:
        raw = Path(path).read_text()
    except OSError:
        return None, (f"no telemetry yet at {path} (farm not started, "
                      f"--workdir not set, or telemetry off)")
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError:
        return None, (f"telemetry snapshot at {path} is unreadable "
                      f"(caught mid-rewrite? retry in a moment)")
    if not isinstance(payload, dict) or "farm" not in payload:
        return None, f"{path} is not a farm telemetry snapshot"
    try:
        age = _time.time() - _os.stat(path).st_mtime
    except OSError:
        age = 0.0
    if payload.get("state") == "running" and age > SNAPSHOT_STALE_AFTER_S:
        return payload, (
            f"stale snapshot (age {age:.0f}s): the controller stopped "
            f"updating it mid-run -- if it crashed, "
            f"`repro serve recover --workdir ...` resumes the batch")
    return payload, None


def _render_top(snap: dict) -> list[str]:
    """The ``repro top`` screen for one telemetry snapshot."""
    farm = snap.get("farm", {})
    lines = [
        f"repro top - farm {snap.get('trace_id', '?')} "
        f"[{snap.get('state', '?')}] updated {snap.get('updated_s', 0):.1f}s "
        f"after start",
        f"jobs {farm.get('jobs', 0)}: {farm.get('done', 0)} done, "
        f"{farm.get('running', 0)} running, {farm.get('pending', 0)} pending, "
        f"{farm.get('quarantined', 0)} quarantined, {farm.get('shed', 0)} shed"
        f" | queue {farm.get('queue_depth', 0)}"
        f" | workers {farm.get('workers_busy', 0)}/{farm.get('workers', '?')}"
        f" busy | deltas folded {farm.get('jobs_folded', 0)}",
    ]
    verdict = snap.get("slo") or {}
    status = "OK" if verdict.get("ok") else "VIOLATED"
    broken = [r["name"] for r in verdict.get("rules", []) if not r.get("ok")]
    slo_line = (f"SLO: {status} ({verdict.get('rules_total', 0)} rules, "
                f"{verdict.get('evaluations', 0)} evaluations")
    if broken:
        slo_line += f"; violated: {', '.join(broken)}"
    lines.append(slo_line + ")")
    quantiles = snap.get("quantiles") or {}
    rows = [[name, q.get("count", 0), _us(q.get("p50")), _us(q.get("p95")),
             _us(q.get("p99"))]
            for name, q in sorted(quantiles.items())]
    if rows:
        lines.append(render_table(
            ["histogram", "n", "p50", "p95", "p99"], rows,
            title="farm distributions"))
    tenants = snap.get("tenants") or {}
    rows = [[tenant, row.get("jobs", 0), row.get("done", 0),
             row.get("failed_attempts", 0), _us(row.get("stall_p99_us")),
             _us(row.get("latency_p99_us"))]
            for tenant, row in sorted(tenants.items())]
    if rows:
        lines.append(render_table(
            ["tenant", "jobs", "done", "failed", "stall p99", "latency p99"],
            rows, title="tenants"))
    return lines


def cmd_top(args: argparse.Namespace) -> int:
    """Live farm dashboard over the telemetry.json snapshot."""
    import json
    import time as _time

    path = args.snapshot or str(Path(args.workdir) / "telemetry.json")
    if args.once:
        snap, note = _snapshot_freshness(path)
        if snap is None:
            print(f"error: {note}", file=sys.stderr)
            return ExitCode.FAILURE
        if note:
            print(note, file=sys.stderr)
        if args.json:
            print(json.dumps(snap, indent=1, sort_keys=True))
        else:
            print("\n".join(_render_top(snap)))
        return ExitCode.OK
    # Live mode: refresh until interrupted (the snapshot keeps its
    # terminal "final" state after the farm drains, so the last screen
    # sticks around to read).
    try:
        while True:
            snap, note = _snapshot_freshness(path)
            sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
            if snap is None:
                print(f"{note} -- waiting ...")
            else:
                if note:
                    print(note)
                print("\n".join(_render_top(snap)))
                print(f"\n[refresh {args.interval:g}s - ctrl-c to quit]")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return ExitCode.OK


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Property-based fuzzing with metamorphic oracles (docs/robustness.md)."""
    from repro.fuzz import load_entry, replay_entry, run_fuzz
    from repro.fuzz.oracles import OracleViolation
    from repro.obs import MetricsRegistry

    if args.verb == "replay":
        if not args.paths:
            print("fuzz replay needs at least one corpus FILE",
                  file=sys.stderr)
            return ExitCode.USAGE
        failing = 0
        for path in args.paths:
            _scenario, oracle = load_entry(path)
            try:
                replay_entry(path)
            except OracleViolation as violation:
                failing += 1
                print(f"{path}: FAILING [{violation.oracle}] "
                      f"{violation.detail}")
            else:
                print(f"{path}: ok [{oracle}] (regression stays fixed)")
        return ExitCode.FAILURE if failing else ExitCode.OK
    report = run_fuzz(
        seed=args.seed,
        profile=args.profile,
        corpus_dir=args.corpus,
        out_dir=args.out,
        log=lambda line: print(f"  {line}", flush=True),
    )
    rows = [
        ["scenarios generated", report.scenarios],
        ["machine runs", report.runs],
        ["oracle checks", report.oracle_checks],
        ["corpus entries replayed", report.corpus_replayed],
        ["farm chaos runs", report.farm_runs],
        ["families run", ", ".join(report.families_run) or "-"],
        ["families skipped (budget)",
         ", ".join(report.families_skipped) or "-"],
        ["findings", len(report.findings)],
        ["wall time", f"{report.wall_s:.1f} s"],
    ]
    print(render_table(
        ["metric", "value"], rows,
        title=f"fuzz campaign: profile {report.profile}, seed {report.seed}",
    ))
    for finding in report.findings:
        where = f" -> {finding.path}" if finding.path else ""
        print(f"finding [{finding.oracle}] ({finding.source}): "
              f"{finding.detail}{where}")
    if args.metrics_out:
        registry = MetricsRegistry()
        report.publish(registry)
        write_metrics_json(args.metrics_out, registry)
        print(f"metrics: {args.metrics_out} ({len(registry)} instruments)")
    if args.report_out:
        atomic_write_json(args.report_out, report.to_dict())
        print(f"report: {args.report_out}")
    if not report.ok:
        print(f"{len(report.findings)} oracle violation(s); shrunk "
              f"scenarios are replayable with: repro fuzz replay FILE",
              file=sys.stderr)
        return ExitCode.FAILURE
    return ExitCode.OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-inserted I/O prefetching reproduction (OSDI '96)",
    )
    parser.add_argument("--memory-pages", type=int, default=0,
                        help="override physical memory size (pages)")
    parser.add_argument("--disks", type=int, default=0,
                        help="override the number of disks")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the benchmark applications")
    sub.add_parser("platform", help="show the simulated machine")

    def add_app_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("app", help="application name (BUK, CGM, ..., or NAS name)")
        p.add_argument("--pages", type=int, default=0,
                       help="major data footprint in pages (default ~2x memory)")
        p.add_argument("--size-class", choices=["S", "W", "A", "B"],
                       help="NAS-style problem class instead of --pages")
        p.add_argument("--seed", type=int, default=1)

    p = sub.add_parser("compile", help="run the prefetching pass")
    add_app_args(p)
    p.add_argument("--print-code", action="store_true",
                   help="print the transformed program")
    p.add_argument("--two-version", action="store_true",
                   help="enable the two-version-loop extension")

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace_event JSON (Perfetto-loadable)")
        p.add_argument("--metrics-out", metavar="FILE",
                       help="write the metrics-registry JSON artifact")
        p.add_argument("--trace-buffer", type=int, default=65536,
                       help="trace ring-buffer capacity in events")

    def add_fault_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--faults", metavar="FILE",
                       help="fault plan JSON to inject (docs/robustness.md)")
        p.add_argument("--fault-seed", type=int, default=None,
                       help="reseed the plan (alone: use the default plan)")

    def add_ckpt_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--checkpoint-every", type=float, default=None,
                       metavar="US",
                       help="write a checkpoint every N simulated "
                            "microseconds (docs/robustness.md)")
        p.add_argument("--checkpoint-dir", default="checkpoints",
                       metavar="DIR",
                       help="checkpoint directory (default: checkpoints)")
        p.add_argument("--checkpoint-keep", type=int, default=3, metavar="K",
                       help="retained checkpoints per label (default 3)")
        p.add_argument("--resume-from", default=None, metavar="PATH",
                       help="resume from a checkpoint file, or the newest "
                            "good checkpoint in a directory")
        p.add_argument("--ignore-crash-faults", action="store_true",
                       help="treat the plan's process_crash faults as "
                            "already delivered (uninterrupted control run)")

    p = sub.add_parser("run", help="execute one variant")
    add_app_args(p)
    p.add_argument("--variant", choices=["o", "p", "nofilter", "adaptive"],
                   default="p")
    p.add_argument("--warm", action="store_true", help="preload the data set")
    add_obs_args(p)
    add_fault_args(p)
    add_ckpt_args(p)

    p = sub.add_parser("compare", help="run original vs prefetching")
    add_app_args(p)
    p.add_argument("--warm", action="store_true")
    p.add_argument("--nofilter", action="store_true",
                   help="also run without the run-time layer")
    p.add_argument("--adaptive", action="store_true",
                   help="also run with adaptive suppression")
    add_obs_args(p)
    add_fault_args(p)
    add_ckpt_args(p)

    p = sub.add_parser(
        "trace",
        help="record one run: structured trace + metrics artifacts",
        description="Execute one variant with the observability layer "
                    "attached and write a Perfetto-loadable trace "
                    "(see docs/observability.md).",
    )
    p.add_argument("--app", required=True,
                   help="application name (BUK, CGM, ..., or NAS name)")
    p.add_argument("--out", required=True, metavar="FILE",
                   help="trace output path (Chrome trace_event JSON)")
    p.add_argument("--variant", choices=["o", "p", "nofilter", "adaptive"],
                   default="p")
    p.add_argument("--pages", type=int, default=0,
                   help="major data footprint in pages (default ~2x memory)")
    p.add_argument("--size-class", choices=["S", "W", "A", "B"],
                   help="NAS-style problem class instead of --pages")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--warm", action="store_true", help="preload the data set")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="also write the metrics-registry JSON artifact")
    p.add_argument("--trace-buffer", type=int, default=65536,
                   help="trace ring-buffer capacity in events")

    p = sub.add_parser(
        "explain",
        help="stall-attribution report (which cause owns each stall)",
        description="Execute one variant with the causal span layer "
                    "attached and classify every stalled access into a "
                    "cause; exits non-zero unless the attributed cycles "
                    "equal the run's stall cycles exactly "
                    "(see docs/observability.md).",
    )
    add_app_args(p)
    p.add_argument("--variant", choices=["o", "p", "nofilter", "adaptive"],
                   default="p")
    p.add_argument("--warm", action="store_true", help="preload the data set")
    add_obs_args(p)
    add_fault_args(p)

    p = sub.add_parser(
        "profile",
        help="collapsed-stack stall profile + disk utilization timeline",
        description="Execute one variant and print the hottest "
                    "loop-nest;array;cause stacks plus a per-disk "
                    "utilization table (see docs/observability.md).",
    )
    add_app_args(p)
    p.add_argument("--variant", choices=["o", "p", "nofilter", "adaptive"],
                   default="p")
    p.add_argument("--warm", action="store_true", help="preload the data set")
    p.add_argument("--collapsed", metavar="FILE",
                   help="write all collapsed stacks (flamegraph input)")
    p.add_argument("--top", type=int, default=15,
                   help="rows to print in the hot-stack table")
    add_obs_args(p)
    add_fault_args(p)

    p = sub.add_parser(
        "bench",
        help="perf-trajectory benchmark (writes BENCH_PR<N>.json)",
        description="Run the pinned EMBAR/MGRID/BUK workload set, write "
                    "a report, and gate simulated cycles against the "
                    "newest committed BENCH_PR<N>.json baseline; exits "
                    "non-zero on a regression over the threshold.  The "
                    "report format and per-field glossary are documented "
                    "in docs/observability.md.",
    )
    p.add_argument("--smoke", action="store_true",
                   help="CI mode: only the small golden-trace footprint")
    p.add_argument("--out", default="BENCH_PR6.json", metavar="FILE",
                   help="report output path (default BENCH_PR6.json)")
    p.add_argument("--baseline", default="auto", metavar="PATH",
                   help="baseline report; 'auto' finds the newest "
                        "BENCH_PR<N>.json next to --out, 'none' disables "
                        "the gate")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="fractional simulated-cycle regression allowed")
    p.add_argument("--wall-reps", type=int, default=3, metavar="N",
                   help="repetitions per variant; wall_time_s records the "
                        "best (minimum) of N (default 3)")
    p.add_argument("--wall-threshold", type=float, default=None,
                   metavar="FRAC",
                   help="also gate wall_time_s at this fractional growth; "
                        "only meaningful when baseline ran on a comparable "
                        "host (default: off; see docs/observability.md)")
    add_ckpt_args(p)

    p = sub.add_parser("sweep", help="problem-size sweep (Figure 8 style)")
    add_app_args(p)
    p.add_argument("--multiples", default="0.5,1,1.5,2,3",
                   help="comma-separated sizes as multiples of memory")
    add_obs_args(p)

    p = sub.add_parser("multiprog",
                       help="co-schedule several applications on one machine")
    p.add_argument("apps", help="comma-separated application names")
    p.add_argument("--pages", type=int, default=0,
                   help="per-process data pages (default ~2x memory)")
    p.add_argument("--quantum", type=float, default=20_000.0,
                   help="scheduler quantum in microseconds")
    add_obs_args(p)

    p = sub.add_parser(
        "chaos",
        help="fault-intensity sweep with a degradation table",
        description="Run one application clean and under a fault plan "
                    "scaled to each intensity, and report slowdown, "
                    "dropped hints, retries, degraded I/O, and fallback "
                    "episodes (see docs/robustness.md).",
    )
    add_app_args(p)
    p.add_argument("--variant", choices=["o", "p", "nofilter", "adaptive"],
                   default="p")
    p.add_argument("--intensities", default=None,
                   help="comma-separated fault intensities "
                        "(default 0.25,0.5,1.0; --quick: 1.0)")
    add_fault_args(p)
    p.add_argument("--quick", action="store_true",
                   help="CI smoke mode: small footprint, one intensity")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="also write the report as JSON (atomic)")

    p = sub.add_parser(
        "serve",
        help="supervised simulation job farm (batch in, results out)",
        description="Run a batch of run/compare/sweep/chaos jobs on a "
                    "supervised multiprocess worker farm: heartbeats, "
                    "per-job deadlines, retry with backoff, poison-job "
                    "quarantine, checkpoint-driven preemption, and "
                    "priority-based load shedding (see docs/serving.md). "
                    "Exits 0 when every job is done, 4 when any job "
                    "ended quarantined or shed.",
    )
    p.add_argument("verb", choices=["submit", "status", "drain", "recover"],
                   help="submit a batch, render a results file, re-run "
                        "a results file's unfinished jobs, or replay a "
                        "crashed controller's write-ahead ledger")
    p.add_argument("--jobs", metavar="FILE",
                   help="job batch JSON (schema in docs/serving.md)")
    p.add_argument("--demo", type=int, default=0, metavar="N",
                   help="submit the deterministic N-job demo batch instead")
    p.add_argument("--poison", type=int, default=0, metavar="K",
                   help="append K always-failing jobs to the demo batch")
    p.add_argument("--workers", type=int, default=4,
                   help="worker processes (default 4)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission-queue bound (default 64)")
    p.add_argument("--out", default="serve_results.json", metavar="FILE",
                   help="results artifact path (default serve_results.json)")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="results file to read for status/drain "
                        "(default: --out)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the serve.* metrics-registry JSON artifact")
    p.add_argument("--hb-interval", type=float, default=0.05, metavar="S",
                   help="worker heartbeat interval (default 0.05 s)")
    p.add_argument("--hb-timeout", type=float, default=5.0, metavar="S",
                   help="heartbeat silence treated as a stall (default 5 s)")
    p.add_argument("--max-wall", type=float, default=None, metavar="S",
                   help="farm drain deadline: quarantine whatever is still "
                        "outstanding after S wall seconds (default: none)")
    p.add_argument("--farm-chaos", metavar="FILE",
                   help="farm chaos plan JSON (kill/stall schedule)")
    p.add_argument("--chaos-kills", type=int, default=0, metavar="N",
                   help="SIGKILL N workers mid-job (built-in schedule)")
    p.add_argument("--chaos-stalls", type=int, default=0, metavar="N",
                   help="SIGSTOP N workers mid-job (built-in schedule)")
    p.add_argument("--chaos-controller-crash", type=int, default=0,
                   metavar="N",
                   help="SIGKILL the controller itself N times mid-batch "
                        "(each crash ends the run; `serve recover` "
                        "resumes it from the ledger)")
    p.add_argument("--chaos-delay", type=float, default=0.1, metavar="S",
                   help="delay after job start before a built-in strike")
    p.add_argument("--no-preemption", action="store_true",
                   help="never kill a running job for a higher-priority one")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="keep per-job checkpoints, attempt results, and "
                        "the live telemetry snapshot under DIR "
                        "(default: a temp dir, deleted)")
    p.add_argument("--seed", type=int, default=1,
                   help="demo-batch / retry-jitter seed (default 1)")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable farm telemetry (worker metric deltas, "
                        "SLO evaluation, telemetry.json snapshots)")
    p.add_argument("--telemetry-every", type=float, default=0.5, metavar="S",
                   help="telemetry flush/snapshot/SLO cadence "
                        "(default 0.5 s)")
    p.add_argument("--farm-trace", metavar="FILE", default=None,
                   help="write the merged Perfetto farm timeline here "
                        "(controller spans + per-job traces)")
    p.add_argument("--slo", metavar="FILE", default=None,
                   help="SLO rules JSON replacing the defaults "
                        "(schema in docs/observability.md)")
    p.add_argument("--slo-out", metavar="FILE", default=None,
                   help="SLO verdict artifact path "
                        "(default: WORKDIR/slo_verdict.json)")
    p.add_argument("--telemetry", action="store_true",
                   help="status: also render the archived telemetry "
                        "summary (tenants + SLO verdict)")

    p = sub.add_parser(
        "top",
        help="live farm dashboard (reads WORKDIR/telemetry.json)",
        description="Render the farm's atomically updated telemetry "
                    "snapshot: job/queue/worker state, histogram "
                    "quantiles, per-tenant p99 stall, and SLO status. "
                    "Default is a live refresh loop; --once prints one "
                    "screen (--json for scripts) and exits 1 when no "
                    "snapshot exists (see docs/observability.md).",
    )
    p.add_argument("--workdir", default=".", metavar="DIR",
                   help="the farm's --workdir (default: .)")
    p.add_argument("--snapshot", default=None, metavar="FILE",
                   help="read this snapshot file instead of "
                        "WORKDIR/telemetry.json")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="refresh cadence of the live view (default 1 s)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit")
    p.add_argument("--json", action="store_true",
                   help="with --once: print the raw snapshot JSON")

    p = sub.add_parser(
        "fuzz",
        help="property-based scenario fuzzing with metamorphic oracles",
        description="Generate random-but-valid scenarios per oracle "
                    "family, run them through the full stack, and check "
                    "the metamorphic oracles; shrunk findings land in "
                    "the regression corpus and are replayed first on "
                    "every later campaign (see docs/robustness.md). "
                    "Exits 0 when every oracle held, 1 on any finding.",
    )
    p.add_argument("verb", nargs="?", choices=["run", "replay"],
                   default="run",
                   help="run a campaign (default) or replay corpus files")
    p.add_argument("paths", nargs="*", metavar="FILE",
                   help="corpus entries to replay (replay verb only)")
    p.add_argument("--profile", choices=["smoke", "ci", "deep"],
                   default="smoke",
                   help="campaign shape: examples per family + wall "
                        "budget (default smoke)")
    p.add_argument("--seed", type=int, default=1,
                   help="campaign seed; same (seed, profile) regenerates "
                        "the same scenarios (default 1)")
    p.add_argument("--corpus", default="tests/corpus", metavar="DIR",
                   help="regression corpus replayed first and extended "
                        "with new shrunk findings (default tests/corpus)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write new findings here instead of --corpus")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="write the fuzz.* metrics-registry JSON artifact")
    p.add_argument("--report-out", metavar="FILE",
                   help="write the full campaign report as JSON (atomic)")
    return parser


COMMANDS = {
    "apps": cmd_apps,
    "platform": cmd_platform,
    "compile": cmd_compile,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "multiprog": cmd_multiprog,
    "trace": cmd_trace,
    "explain": cmd_explain,
    "profile": cmd_profile,
    "bench": cmd_bench,
    "chaos": cmd_chaos,
    "serve": cmd_serve,
    "top": cmd_top,
    "fuzz": cmd_fuzz,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ProcessCrash as crash:
        # A planned process_crash fault killed the simulated process.
        # Exit code 3 so harnesses can tell "crashed as planned" from
        # real failures; the newest checkpoint is the resume source.
        print(f"error: {crash}", file=sys.stderr)
        if crash.checkpoint_path:
            print(f"resume with: --resume-from {crash.checkpoint_path} "
                  f"(or the checkpoint directory)", file=sys.stderr)
        else:
            print("no checkpoint was written before the crash; "
                  "rerun with --checkpoint-every to bound lost work",
                  file=sys.stderr)
        return ExitCode.CRASH


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
