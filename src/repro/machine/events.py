"""Event-kind encoding for the machine's chunk protocol.

The interpreter lowers innermost loops into *chunks*: parallel lists of
(kind, page, compute-cost) triples that the machine replays in one tight
loop.  Kinds are plain ints (not enum members) in the hot path; the
:class:`EventKind` enum is the readable face of the same values.
"""

from __future__ import annotations

import enum


class EventKind(enum.IntEnum):
    """What one chunk event does."""

    #: Demand read of a page.
    READ = 0
    #: Demand write of a page (read-modify-write collapses to this).
    WRITE = 1
    #: Single-page compiler-inserted prefetch (indirect references).
    PREFETCH = 2
    #: Single-page release.
    RELEASE = 3


READ = int(EventKind.READ)
WRITE = int(EventKind.WRITE)
PREFETCH = int(EventKind.PREFETCH)
RELEASE = int(EventKind.RELEASE)
