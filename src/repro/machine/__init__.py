"""The simulated machine: CPU + VM + run-time layer + disk array."""

from repro.machine.events import EventKind
from repro.machine.machine import Machine

__all__ = ["Machine", "EventKind"]
