"""The simulated machine.

A :class:`Machine` owns one application run: the simulated clock, the
address space, the memory manager, the run-time layer (if prefetching), and
the disk array.  The interpreter drives it through a small API --
``compute``, ``access``, ``prefetch``/``release`` hints, and the bulk
``run_chunk`` path that replays vectorized event chunks.

``run_chunk`` is the hot loop of the whole simulator, so it inlines the
resident-page fast path and the bit-vector filter check, accumulating
compute time and statistics locally and only falling back to the full
memory-manager / run-time-layer paths when something slow actually happens
(a fault, an issued prefetch, a release).
"""

from __future__ import annotations

from repro.config import PlatformConfig
from repro.errors import MachineError
from repro.faults.inject import FaultInjector, LaggedBitVector
from repro.obs.trace import TraceKind
from repro.runtime.layer import RuntimeLayer
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats, TimeBreakdown
from repro.storage.array_ctl import DiskArray
from repro.vm.manager import MemoryManager
from repro.vm.page import PageState
from repro.vm.page_table import AddressSpace, Segment


class Machine:
    """One simulated run of one program on the configured platform."""

    def __init__(
        self,
        config: PlatformConfig | None = None,
        prefetching: bool = True,
        runtime_filter: bool = True,
        adaptive_prefetch: bool = False,
        os_readahead: bool = False,
        binding_prefetch: bool = False,
        observer=None,
        fault_plan=None,
    ) -> None:
        self.config = config or PlatformConfig()
        self.clock = Clock()
        self.stats = RunStats()
        #: Attached :class:`repro.obs.Observer`, or None.  Every layer
        #: below shares this one reference; tracing is off when unset.
        self.obs = observer
        #: Active :class:`repro.faults.FaultInjector`, or None.  Fault
        #: injection is strictly opt-in: without a plan, no injector
        #: exists and every layer runs its unfaulted code path.
        self.injector = (
            FaultInjector(fault_plan, self.config.num_disks)
            if fault_plan is not None else None
        )
        self.address_space = AddressSpace(self.config.page_size)
        self.disks = DiskArray(
            self.config, observer=observer,
            faults=self.injector.storage if self.injector is not None else None,
        )
        self.manager = MemoryManager(
            self.config, self.clock, self.disks, self.stats,
            readahead=os_readahead,
            binding=binding_prefetch,
            observer=observer,
        )
        if self.injector is not None:
            for at_us, frames, hold_us in self.injector.storm_bursts():
                self.manager.schedule_pressure(at_us, frames, hold_us)
                self.stats.robust.storm_bursts += 1
        self.prefetching = prefetching
        self.runtime: RuntimeLayer | None = None
        if prefetching:
            self.runtime = RuntimeLayer(
                self.config, self.clock, self.manager, self.stats,
                filter_enabled=runtime_filter,
                adaptive=adaptive_prefetch,
                observer=observer,
            )
            if self.injector is not None:
                self.runtime.hint_faults = self.injector.hints
                if self.injector.plan.bitvector_lag_us > 0:
                    lagged = LaggedBitVector(
                        self.runtime.bitvector, self.clock,
                        self.injector.plan.bitvector_lag_us,
                    )
                    self.runtime.bitvector = lagged
                    self.manager.bitvector = lagged
        self._finished = False

    # ------------------------------------------------------------------
    # Address space setup
    # ------------------------------------------------------------------

    def map_segment(self, name: str, nbytes: int) -> Segment:
        """Map one out-of-core array and register its backing extent."""
        seg = self.address_space.map_segment(name, nbytes)
        base_vpage = seg.base // self.config.page_size
        self.disks.register_segment(name, base_vpage, seg.npages)
        if self.obs is not None:
            self.obs.register_segment(name, base_vpage, seg.npages)
        return seg

    def warm_load_segment(self, seg: Segment) -> None:
        """Preload a whole segment (warm-started runs, Figure 6)."""
        base_vpage = seg.base // self.config.page_size
        self.manager.warm_load(list(range(base_vpage, base_vpage + seg.npages)))

    # ------------------------------------------------------------------
    # Scalar execution API (used by the interpreter's slow path)
    # ------------------------------------------------------------------

    def compute(self, duration_us: float) -> None:
        """Spend CPU time on useful application work."""
        self.clock.advance(duration_us, TimeCategory.USER_COMPUTE)

    def access(self, vpage: int, is_write: bool) -> None:
        """Perform one demand memory access."""
        self.manager.access(vpage, is_write)

    def prefetch(self, start_vpage: int, npages: int = 1) -> None:
        """Compiler-inserted prefetch hint (ignored if not prefetching)."""
        if self.runtime is not None:
            self.runtime.prefetch(start_vpage, npages)

    def release(self, vpages: list[int]) -> None:
        """Compiler-inserted release hint (ignored if not prefetching)."""
        if self.runtime is not None:
            self.runtime.release(vpages)

    def prefetch_release(
        self, start_vpage: int, npages: int, release_vpages: list[int]
    ) -> None:
        """Bundled prefetch+release hint (ignored if not prefetching)."""
        if self.runtime is not None:
            self.runtime.prefetch_release(start_vpage, npages, release_vpages)

    # ------------------------------------------------------------------
    # Bulk execution (the hot loop)
    # ------------------------------------------------------------------

    def run_chunk(self, kinds: list[int], pages: list[int], costs: list[float]) -> None:
        """Replay one lowered event chunk.

        ``kinds``/``pages``/``costs`` are parallel lists; ``costs[i]`` is
        the user compute time to charge *before* event ``i``.  READ/WRITE
        events with a resident page and PREFETCH events dropped by the
        filter are handled inline; everything else flushes the locally
        accumulated time and goes through the full path.
        """
        if not (len(kinds) == len(pages) == len(costs)):
            raise MachineError("run_chunk requires parallel lists of equal length")
        clock = self.clock
        manager = self.manager
        page_map = manager.pages
        resident = PageState.RESIDENT
        runtime = self.runtime
        obs = self.obs
        if obs is not None:
            obs.emit(clock.now, TraceKind.CHUNK, npages=len(kinds))
        # The inline filter fast path is only valid for the plain filter;
        # the adaptive state machine must see every request, so adaptive
        # runs route single-page prefetches through the layer.  An
        # attached observer must also see every request (the filter
        # events are part of the trace), so tracing runs take the layer
        # path too -- it charges identical costs, only wall-clock slows.
        # Fault injection likewise disables the fast path: the fallback
        # gate must consume every request, and a lagged bit vector makes
        # the cached ``raw`` list stale.
        filter_on = (
            runtime is not None and runtime.filter_enabled
            and not runtime.adaptive and obs is None
            and self.injector is None
        )
        bits = runtime.bitvector.raw if filter_on else None
        granularity = runtime.bitvector.granularity if filter_on else 1
        addr_gen_cost = self.config.cost.addr_gen_us
        filter_cost = self.config.cost.filter_check_us + addr_gen_cost

        pending_compute = 0.0
        pending_overhead = 0.0
        hits = 0
        filtered = 0
        inserted = 0
        # Binding instrumentation must observe every access.
        fast_access_ok = not manager.binding

        def flush_time() -> None:
            nonlocal pending_compute, pending_overhead
            if pending_compute:
                clock.advance(pending_compute, TimeCategory.USER_COMPUTE)
                pending_compute = 0.0
            if pending_overhead:
                clock.advance(pending_overhead, TimeCategory.USER_OVERHEAD)
                pending_overhead = 0.0

        for i in range(len(kinds)):
            pending_compute += costs[i]
            kind = kinds[i]
            vpage = pages[i]
            if kind <= 1:  # READ or WRITE
                page = page_map.get(vpage)
                if (
                    fast_access_ok
                    and page is not None
                    and page.state == resident
                    and (page.used_since_arrival or not page.via_prefetch)
                ):
                    page.ref_bit = True
                    if kind == 1:
                        page.dirty = True
                        page.version += 1
                    hits += 1
                    continue
                flush_time()
                manager.access(vpage, kind == 1)
            elif kind == 2:  # single-page PREFETCH
                if runtime is None:
                    continue
                if bits is not None:
                    inserted += 1
                    pending_overhead += filter_cost
                    index = vpage // granularity
                    if index < len(bits) and bits[index]:
                        filtered += 1
                        continue
                    flush_time()
                    # Already counted and charged locally: issue directly.
                    manager.prefetch_call(vpage, 1)
                else:
                    # Filter disabled or adaptive: the layer handles
                    # counting, charging, and the suppression state.
                    flush_time()
                    runtime.prefetch(vpage, 1)
            elif kind == 3:  # single-page RELEASE
                if runtime is None:
                    continue
                flush_time()
                runtime.release([vpage])
            else:
                raise MachineError(f"unknown event kind {kind}")

        flush_time()
        self.stats.faults.hits += hits
        self.stats.prefetch.filtered += filtered
        self.stats.prefetch.compiler_inserted += inserted

    # ------------------------------------------------------------------
    # Run boundary
    # ------------------------------------------------------------------

    def finish(self) -> RunStats:
        """Flush dirty pages, close accounting, and return the run's stats."""
        if self._finished:
            raise MachineError("Machine.finish() called twice")
        self._finished = True
        self.manager.flush_dirty()
        self.stats.times = TimeBreakdown.from_clock(self.clock)
        self.stats.elapsed_us = self.clock.now
        self.stats.disk = self.disks.snapshot_stats()
        if self.obs is not None and self.stats.elapsed_us > 0:
            # One gauge, set per disk in index order: value = the last
            # disk, min/max = the array's extremes.  Complements the
            # per-request disk.utilization mean with per-disk bounds.
            for busy in self.stats.disk.busy_us:
                self.obs.disk_idle_fraction.set(
                    max(0.0, 1.0 - busy / self.stats.elapsed_us)
                )
        return self.stats
