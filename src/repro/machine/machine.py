"""The simulated machine.

A :class:`Machine` owns one application run: the simulated clock, the
address space, the memory manager, the run-time layer (if prefetching), and
the disk array.  The interpreter drives it through a small API --
``compute``, ``access``, ``prefetch``/``release`` hints, and the bulk
``run_chunk`` path that replays vectorized event chunks.

``run_chunk`` is the hot loop of the whole simulator, so it inlines the
resident-page fast path and the bit-vector filter check, accumulating
compute time and statistics locally and only falling back to the full
memory-manager / run-time-layer paths when something slow actually happens
(a fault, an issued prefetch, a release).
"""

from __future__ import annotations

import os

import numpy as np

from repro.config import PlatformConfig
from repro.errors import MachineError
from repro.faults.inject import FaultInjector, LaggedBitVector
from repro.obs.trace import TraceKind
from repro.runtime.layer import RuntimeLayer
from repro.sim.clock import Clock, TimeCategory
from repro.sim.stats import RunStats, TimeBreakdown
from repro.storage.array_ctl import DiskArray
from repro.vm.manager import MemoryManager
from repro.vm.page import PageState
from repro.vm.page_table import AddressSpace, Segment


class Machine:
    """One simulated run of one program on the configured platform."""

    def __init__(
        self,
        config: PlatformConfig | None = None,
        prefetching: bool = True,
        runtime_filter: bool = True,
        adaptive_prefetch: bool = False,
        os_readahead: bool = False,
        binding_prefetch: bool = False,
        observer=None,
        fault_plan=None,
        scalar_chunks: bool | None = None,
    ) -> None:
        self.config = config or PlatformConfig()
        #: Force the scalar chunk loop (differential testing; also the
        #: ``REPRO_SCALAR=1`` environment escape hatch).  The vectorized
        #: kernel is bit-identical, so this only changes wall-clock.
        if scalar_chunks is None:
            scalar_chunks = os.environ.get("REPRO_SCALAR", "") not in ("", "0")
        self.scalar_chunks = scalar_chunks
        #: Fold-left partial sums of the per-prefetch filter overhead:
        #: ``_ovh_seq[k]`` is exactly what ``k`` repetitions of
        #: ``pending += filter_cost`` accumulate, so the vector kernel
        #: charges bit-identical overhead without a Python loop.
        self._ovh_seq: list[float] = [0.0]
        self.clock = Clock()
        self.stats = RunStats()
        #: Attached :class:`repro.obs.Observer`, or None.  Every layer
        #: below shares this one reference; tracing is off when unset.
        self.obs = observer
        #: Active :class:`repro.faults.FaultInjector`, or None.  Fault
        #: injection is strictly opt-in: without a plan, no injector
        #: exists and every layer runs its unfaulted code path.
        self.injector = (
            FaultInjector(fault_plan, self.config.num_disks)
            if fault_plan is not None else None
        )
        self.address_space = AddressSpace(self.config.page_size)
        self.disks = DiskArray(
            self.config, observer=observer,
            faults=self.injector.storage if self.injector is not None else None,
        )
        self.manager = MemoryManager(
            self.config, self.clock, self.disks, self.stats,
            readahead=os_readahead,
            binding=binding_prefetch,
            observer=observer,
        )
        if self.injector is not None:
            for at_us, frames, hold_us in self.injector.storm_bursts():
                self.manager.schedule_pressure(at_us, frames, hold_us)
                self.stats.robust.storm_bursts += 1
        self.prefetching = prefetching
        self.runtime: RuntimeLayer | None = None
        if prefetching:
            self.runtime = RuntimeLayer(
                self.config, self.clock, self.manager, self.stats,
                filter_enabled=runtime_filter,
                adaptive=adaptive_prefetch,
                observer=observer,
            )
            if self.injector is not None:
                self.runtime.hint_faults = self.injector.hints
                if self.injector.plan.bitvector_lag_us > 0:
                    lagged = LaggedBitVector(
                        self.runtime.bitvector, self.clock,
                        self.injector.plan.bitvector_lag_us,
                    )
                    self.runtime.bitvector = lagged
                    self.manager.bitvector = lagged
        self._finished = False

    # ------------------------------------------------------------------
    # Address space setup
    # ------------------------------------------------------------------

    def map_segment(self, name: str, nbytes: int) -> Segment:
        """Map one out-of-core array and register its backing extent."""
        seg = self.address_space.map_segment(name, nbytes)
        base_vpage = seg.base // self.config.page_size
        self.disks.register_segment(name, base_vpage, seg.npages)
        if self.obs is not None:
            self.obs.register_segment(name, base_vpage, seg.npages)
        return seg

    def warm_load_segment(self, seg: Segment) -> None:
        """Preload a whole segment (warm-started runs, Figure 6)."""
        base_vpage = seg.base // self.config.page_size
        self.manager.warm_load(list(range(base_vpage, base_vpage + seg.npages)))

    # ------------------------------------------------------------------
    # Scalar execution API (used by the interpreter's slow path)
    # ------------------------------------------------------------------

    def compute(self, duration_us: float) -> None:
        """Spend CPU time on useful application work."""
        self.clock.advance(duration_us, TimeCategory.USER_COMPUTE)

    def access(self, vpage: int, is_write: bool) -> None:
        """Perform one demand memory access."""
        self.manager.access(vpage, is_write)

    def prefetch(self, start_vpage: int, npages: int = 1) -> None:
        """Compiler-inserted prefetch hint (ignored if not prefetching)."""
        if self.runtime is not None:
            self.runtime.prefetch(start_vpage, npages)

    def release(self, vpages: list[int]) -> None:
        """Compiler-inserted release hint (ignored if not prefetching)."""
        if self.runtime is not None:
            self.runtime.release(vpages)

    def prefetch_release(
        self, start_vpage: int, npages: int, release_vpages: list[int]
    ) -> None:
        """Bundled prefetch+release hint (ignored if not prefetching)."""
        if self.runtime is not None:
            self.runtime.prefetch_release(start_vpage, npages, release_vpages)

    # ------------------------------------------------------------------
    # Bulk execution (the hot loop)
    # ------------------------------------------------------------------

    #: Classification window of the vectorized kernel: chunk suffixes are
    #: classified (fast vs slow) this many events at a time, so a slow
    #: event invalidating the classification never wastes more than one
    #: window of numpy work.
    _WINDOW = 2048
    #: Below this many events the scalar loop beats the kernel's fixed
    #: numpy setup cost, so tiny chunks stay on the reference path.
    _SCALAR_CUTOFF = 128

    def run_chunk(self, kinds, pages, costs) -> None:
        """Replay one lowered event chunk.

        ``kinds``/``pages``/``costs`` are parallel sequences (lists or
        numpy arrays); ``costs[i]`` is the user compute time to charge
        *before* event ``i``.  READ/WRITE events with a resident page and
        PREFETCH events dropped by the filter are handled inline;
        everything else flushes the locally accumulated time and goes
        through the full path.

        Two implementations replay a chunk, bit-identically (see
        docs/performance.md for the equivalence argument):

        * the **vectorized kernel** (default) classifies events in bulk
          against the manager's fast-page mask and the residency bit
          vector, charging whole fast segments with one ``np.cumsum``;
        * the **scalar loop** walks events one by one.  It is kept for
          runs the kernel cannot serve -- tracing, fault injection,
          adaptive/unfiltered prefetch, binding mode -- for slow-dense
          chunks where per-event work is cheaper, and as the
          ``REPRO_SCALAR=1`` escape hatch for differential testing.
        """
        if not (len(kinds) == len(pages) == len(costs)):
            raise MachineError("run_chunk requires parallel lists of equal length")
        runtime = self.runtime
        obs = self.obs
        if obs is not None:
            obs.emit(self.clock.now, TraceKind.CHUNK, npages=len(kinds))
        # The vectorized kernel only covers the plain-filter and
        # no-runtime configurations: the adaptive state machine and an
        # attached observer must see every request one at a time, fault
        # injection interposes on every lookup, and binding
        # instrumentation must observe every access.
        if (
            self.scalar_chunks
            or len(kinds) < self._SCALAR_CUTOFF
            or obs is not None
            or self.injector is not None
            or self.manager.binding
            or (runtime is not None
                and not (runtime.filter_enabled and not runtime.adaptive))
        ):
            if isinstance(kinds, np.ndarray):
                kinds = kinds.tolist()
                pages = pages.tolist()
                costs = costs.tolist()
            self._run_chunk_scalar(kinds, pages, costs)
        else:
            self._run_chunk_vector(kinds, pages, costs)

    def _run_chunk_scalar(self, kinds: list, pages: list, costs: list) -> None:
        """The reference event loop (one Python iteration per event)."""
        clock = self.clock
        manager = self.manager
        page_map = manager.pages
        resident = PageState.RESIDENT
        runtime = self.runtime
        obs = self.obs
        # The inline filter fast path is only valid for the plain filter;
        # the adaptive state machine must see every request, so adaptive
        # runs route single-page prefetches through the layer.  An
        # attached observer must also see every request (the filter
        # events are part of the trace), so tracing runs take the layer
        # path too -- it charges identical costs, only wall-clock slows.
        # Fault injection likewise disables the fast path: the fallback
        # gate must consume every request, and a lagged bit vector makes
        # the cached ``raw`` list stale.
        filter_on = (
            runtime is not None and runtime.filter_enabled
            and not runtime.adaptive and obs is None
            and self.injector is None
        )
        bits = runtime.bitvector.raw if filter_on else None
        granularity = runtime.bitvector.granularity if filter_on else 1
        addr_gen_cost = self.config.cost.addr_gen_us
        filter_cost = self.config.cost.filter_check_us + addr_gen_cost

        pending_compute = 0.0
        pending_overhead = 0.0
        hits = 0
        filtered = 0
        inserted = 0
        # Binding instrumentation must observe every access.
        fast_access_ok = not manager.binding

        def flush_time() -> None:
            nonlocal pending_compute, pending_overhead
            if pending_compute:
                clock.advance(pending_compute, TimeCategory.USER_COMPUTE)
                pending_compute = 0.0
            if pending_overhead:
                clock.advance(pending_overhead, TimeCategory.USER_OVERHEAD)
                pending_overhead = 0.0

        for i in range(len(kinds)):
            pending_compute += costs[i]
            kind = kinds[i]
            vpage = pages[i]
            if kind <= 1:  # READ or WRITE
                page = page_map.get(vpage)
                if (
                    fast_access_ok
                    and page is not None
                    and page.state == resident
                    and (page.used_since_arrival or not page.via_prefetch)
                ):
                    page.ref_bit = True
                    if kind == 1:
                        page.dirty = True
                        page.version += 1
                    hits += 1
                    continue
                flush_time()
                manager.access(vpage, kind == 1)
            elif kind == 2:  # single-page PREFETCH
                if runtime is None:
                    continue
                if bits is not None:
                    inserted += 1
                    pending_overhead += filter_cost
                    index = vpage // granularity
                    if index < len(bits) and bits[index]:
                        filtered += 1
                        continue
                    flush_time()
                    # Already counted and charged locally: issue directly.
                    manager.prefetch_call(vpage, 1)
                else:
                    # Filter disabled or adaptive: the layer handles
                    # counting, charging, and the suppression state.
                    flush_time()
                    runtime.prefetch(vpage, 1)
            elif kind == 3:  # single-page RELEASE
                if runtime is None:
                    continue
                flush_time()
                runtime.release([vpage])
            else:
                raise MachineError(f"unknown event kind {kind}")

        flush_time()
        self.stats.faults.hits += hits
        self.stats.prefetch.filtered += filtered
        self.stats.prefetch.compiler_inserted += inserted

    def _overhead_sum(self, k: int) -> float:
        """Fold-left sum of ``k`` filter-overhead charges (bit-exact)."""
        seq = self._ovh_seq
        if len(seq) <= k:
            step = self.config.cost.filter_check_us + self.config.cost.addr_gen_us
            while len(seq) <= k:
                seq.append(seq[-1] + step)
        return seq[k]

    def _run_chunk_vector(self, kinds, pages, costs) -> None:
        """The numpy chunk kernel.

        Classifies events in windows against the manager's fast-page mask
        (accesses) and the residency bit vector (prefetches).  Fast events
        never change classification state, so between two slow events a
        whole segment can be charged at once: ``np.cumsum`` reproduces the
        scalar loop's fold-left time accumulation bitwise, page effects
        (ref/dirty bits, write versions) are bulk scatters into the
        columnar page store, and the hit/filter counters come from mask
        counts.  Surviving candidates are re-checked lazily (an O(1)
        flag test at dispatch time); if a slow call dropped any fast
        flag or filter bit (``drops`` counters), the rest of the window
        is reclassified.
        """
        kinds_a = np.asarray(kinds, dtype=np.int64)
        pages_a = np.asarray(pages, dtype=np.int64)
        costs_a = np.asarray(costs, dtype=np.float64)
        n = len(kinds_a)
        if n == 0:
            return
        clock = self.clock
        manager = self.manager
        fast_mask = manager.fast
        runtime = self.runtime
        stats = self.stats
        compute_cat = TimeCategory.USER_COMPUTE
        overhead_cat = TimeCategory.USER_OVERHEAD
        bitvec = runtime.bitvector if runtime is not None else None

        # Reserving capacity for the chunk's maximum page number up front
        # lets every window gather directly off the raw arrays with no
        # bounds handling.  The raw references are re-read inside
        # classify/refilter because growth reallocates the arrays.
        maxp = int(pages_a.max())
        fast_mask.reserve(maxp)
        granularity = 1
        if bitvec is not None:
            bitvec.reserve(maxp)
            granularity = bitvec.granularity
        kmax = int(kinds_a.max())
        all_access = kmax <= 1
        has_bad = kmax > 3
        if all_access:
            is_access = is_pf = None
            has_write = bool(kinds_a.any())
            is_write = (kinds_a == 1) if has_write else None
        else:
            is_access = kinds_a <= 1
            is_pf = kinds_a == 2
            is_write = kinds_a == 1
            has_write = bool(is_write.any())
        cols = manager.cols
        cols.ensure(maxp)

        def classify(a: int, b: int) -> np.ndarray:
            """Absolute indices in [a, b) that are slow under current state."""
            pg = pages_a[a:b]
            f = fast_mask.raw[pg] != 0
            if not all_access:
                f &= is_access[a:b]
                if runtime is None:
                    hint = ~is_access[a:b]
                    if has_bad:
                        hint &= kinds_a[a:b] <= 3
                    f |= hint
                else:
                    idx = pg if granularity == 1 else pg // granularity
                    f |= is_pf[a:b] & (bitvec.raw[idx] != 0)
            return (~f).nonzero()[0] + a

        def refilter(cand: np.ndarray, pg: np.ndarray,
                     ka: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Drop candidates that turned fast (state only improved).

            ``pg``/``ka`` are the already-gathered page numbers and kinds
            parallel to ``cand`` so re-checks cost no fresh gathers.
            One slow call can turn *many* candidates fast at once (a
            settled prefetch makes every later access to its page a
            hit), so the bulk drop is what keeps the candidate walk
            linear instead of per-stale-event.
            """
            f = fast_mask.raw[pg] != 0
            if not all_access:
                f &= ka <= 1
                if runtime is None:
                    hint = ka > 1
                    if has_bad:
                        hint &= ka <= 3
                    f |= hint
                else:
                    idx = pg if granularity == 1 else pg // granularity
                    f |= (ka == 2) & (bitvec.raw[idx] != 0)
            keep = ~f
            return cand[keep], pg[keep], ka[keep]

        slow_writes: list[int] = []

        def apply_effects(a: int, b: int) -> None:
            """Page effects of the fast accesses in [a, b).

            Two array scatters into the columnar page store: ref bits and
            dirty bits are sticky (duplicate scatter == repeated
            attribute write), so they go in per segment -- the very next
            slow call may read them (victim selection, write-back).  The
            column references are re-read every call because slow calls
            can grow the store.
            """
            if a >= b:
                return
            pg = pages_a[a:b]
            if all_access:
                cols.ref[pg] = 1
            else:
                cols.ref[pg[is_access[a:b]]] = 1
            if has_write:
                w = pg[is_write[a:b]]
                if w.size:
                    cols.dirty[w] = 1

        def flush_versions(upto: int) -> None:
            """Write-version counters for every fast write in [0, upto).

            Nothing reads versions mid-chunk (binding mode routes to the
            scalar loop, checkpoints land between chunks), so one
            ``np.bincount`` add per chunk replaces per-segment updates.
            Slow-dispatched writes are excluded: the manager already
            applied whatever version change the scalar loop would have.
            """
            if not has_write or upto <= 0:
                return
            w = pages_a[:upto][is_write[:upto]]
            if w.size:
                bc = np.bincount(w)
                version = cols.version
                version[: len(bc)] += bc
                for v in slow_writes:
                    version[v] -= 1
        hits = 0
        filtered = 0
        inserted = 0
        window = self._WINDOW
        pos = 0        # next unprocessed event
        seg_start = 0  # first event since the last time flush
        slow_done = 0

        def drops_now() -> int:
            if bitvec is None:
                return fast_mask.drops
            return fast_mask.drops + bitvec.drops

        while pos < n:
            wend = min(n, pos + window)
            cand = classify(pos, wend)
            pg_c = pages_a[cand]
            ka_c = kinds_a[cand]
            bail = False
            while len(cand):
                sp = int(cand[0])
                kind = int(ka_c[0])
                vpage = int(pg_c[0])
                # Close the fast segment [seg_start, sp): effects and
                # counters for the prefix, then the slow event itself.
                apply_effects(seg_start, sp)
                if all_access:
                    hits += sp - seg_start
                    seg_pf = 0
                else:
                    hits += int(np.count_nonzero(is_access[seg_start:sp]))
                    seg_pf = (int(np.count_nonzero(is_pf[seg_start:sp]))
                              if runtime is not None else 0)
                if kind > 3:
                    # Match the scalar loop: die with locally accumulated
                    # time unflushed and counters uncommitted, but with
                    # every processed event's page effects applied.
                    flush_versions(sp)
                    raise MachineError(f"unknown event kind {kind}")
                filtered += seg_pf
                inserted += seg_pf
                pending_compute = float(costs_a[seg_start:sp + 1].cumsum()[-1])
                if kind == 2:
                    inserted += 1
                    seg_pf += 1
                pending_overhead = (self._overhead_sum(seg_pf)
                                    if runtime is not None else 0.0)
                if pending_compute:
                    clock.advance(pending_compute, compute_cat)
                if pending_overhead:
                    clock.advance(pending_overhead, overhead_cat)
                drops_before = drops_now()
                if kind <= 1:
                    if kind == 1:
                        slow_writes.append(vpage)
                    manager.access(vpage, kind == 1)
                elif kind == 2:
                    # Filter bit known clear; counted and charged above.
                    manager.prefetch_call(vpage, 1)
                else:
                    runtime.release([vpage])
                pos = sp + 1
                seg_start = pos
                slow_done += 1
                if slow_done >= 256 and pos < slow_done * 16:
                    # Slow-dense chunk: per-event Python dispatch is
                    # cheaper than per-segment numpy setup.
                    bail = True
                    break
                if drops_now() != drops_before:
                    # Something lost fast status: previously-fast events
                    # in the rest of the window may now be slow, so the
                    # cached classification is unsound -- redo it.
                    cand = classify(pos, wend)
                    pg_c = pages_a[cand]
                    ka_c = kinds_a[cand]
                elif len(cand) > 1:
                    cand, pg_c, ka_c = refilter(cand[1:], pg_c[1:], ka_c[1:])
                else:
                    cand = cand[1:]
            if bail:
                flush_versions(pos)
                stats.faults.hits += hits
                stats.prefetch.filtered += filtered
                stats.prefetch.compiler_inserted += inserted
                self._run_chunk_scalar(
                    kinds_a[pos:].tolist(),
                    pages_a[pos:].tolist(),
                    costs_a[pos:].tolist(),
                )
                return
            pos = wend

        # Trailing fast segment.
        apply_effects(seg_start, n)
        flush_versions(n)
        if all_access:
            hits += n - seg_start
            seg_pf = 0
        else:
            hits += int(np.count_nonzero(is_access[seg_start:n]))
            seg_pf = (int(np.count_nonzero(is_pf[seg_start:n]))
                      if runtime is not None else 0)
        filtered += seg_pf
        inserted += seg_pf
        if seg_start < n:
            pending_compute = float(costs_a[seg_start:n].cumsum()[-1])
            if pending_compute:
                clock.advance(pending_compute, compute_cat)
        pending_overhead = (self._overhead_sum(seg_pf)
                            if runtime is not None else 0.0)
        if pending_overhead:
            clock.advance(pending_overhead, overhead_cat)
        stats.faults.hits += hits
        stats.prefetch.filtered += filtered
        stats.prefetch.compiler_inserted += inserted

    # ------------------------------------------------------------------
    # Run boundary
    # ------------------------------------------------------------------

    def finish(self) -> RunStats:
        """Flush dirty pages, close accounting, and return the run's stats."""
        if self._finished:
            raise MachineError("Machine.finish() called twice")
        self._finished = True
        self.manager.flush_dirty()
        self.stats.times = TimeBreakdown.from_clock(self.clock)
        self.stats.elapsed_us = self.clock.now
        self.stats.disk = self.disks.snapshot_stats()
        if self.obs is not None and self.stats.elapsed_us > 0:
            # One gauge, set per disk in index order: value = the last
            # disk, min/max = the array's extremes.  Complements the
            # per-request disk.utilization mean with per-disk bounds.
            for busy in self.stats.disk.busy_us:
                self.obs.disk_idle_fraction.set(
                    max(0.0, 1.0 - busy / self.stats.elapsed_us)
                )
        return self.stats
