"""Loop-nest intermediate representation for the prefetching compiler."""

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.expr import (
    Affine,
    CeilDiv,
    Const,
    ElemOf,
    Expr,
    MinExpr,
    Var,
    as_expr,
)
from repro.core.ir.nodes import (
    AddrOf,
    ArrayRef,
    Cmp,
    Hint,
    HintKind,
    If,
    Loop,
    Program,
    Stmt,
    Work,
)

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Affine",
    "ElemOf",
    "MinExpr",
    "CeilDiv",
    "as_expr",
    "ArrayDecl",
    "ArrayRef",
    "AddrOf",
    "Stmt",
    "Work",
    "Loop",
    "Hint",
    "HintKind",
    "If",
    "Cmp",
    "Program",
]
