"""Tree walkers over the statement IR.

Two styles:

* :func:`walk_refs` -- yields every :class:`ArrayRef` together with its
  enclosing loop *path* (outermost first), which is what the locality
  analysis consumes.
* :func:`transform_stmts` -- bottom-up rewriting: a callback maps each
  statement to its replacement list, applied to children first.  The
  transforms (strip mining, pipelining) are written against this.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.core.ir.nodes import ArrayRef, Hint, If, Loop, Stmt, Work


def walk_refs(
    body: Sequence[Stmt], path: tuple[Loop, ...] = ()
) -> Iterator[tuple[ArrayRef, Work, tuple[Loop, ...]]]:
    """Yield ``(ref, work, loop_path)`` for every data reference."""
    for stmt in body:
        if isinstance(stmt, Work):
            for ref in stmt.refs:
                yield ref, stmt, path
        elif isinstance(stmt, Loop):
            yield from walk_refs(stmt.body, path + (stmt,))
        elif isinstance(stmt, If):
            yield from walk_refs(stmt.then_body, path)
            yield from walk_refs(stmt.else_body, path)
        # Hints carry addresses, not references.


def walk_loops(body: Sequence[Stmt]) -> Iterator[Loop]:
    """Yield every loop, outer before inner."""
    for stmt in body:
        if isinstance(stmt, Loop):
            yield stmt
            yield from walk_loops(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_loops(stmt.then_body)
            yield from walk_loops(stmt.else_body)


def walk_hints(body: Sequence[Stmt]) -> Iterator[Hint]:
    """Yield every hint statement."""
    for stmt in body:
        if isinstance(stmt, Hint):
            yield stmt
        elif isinstance(stmt, Loop):
            yield from walk_hints(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_hints(stmt.then_body)
            yield from walk_hints(stmt.else_body)


def transform_stmts(
    body: Sequence[Stmt], fn: Callable[[Stmt], list[Stmt]]
) -> list[Stmt]:
    """Rewrite a statement list bottom-up.

    ``fn`` receives each statement *after* its children have been
    rewritten and returns the replacement list (possibly ``[stmt]``).
    Loops and ifs are rebuilt (fresh nodes) when their bodies change, so
    the input tree is never mutated.
    """
    out: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Loop):
            new_body = transform_stmts(stmt.body, fn)
            rebuilt = Loop(stmt.var, stmt.lower, stmt.upper, new_body, step=stmt.step)
            # Preserve identity for plan lookup across rebuilds.
            rebuilt.loop_id = stmt.loop_id
            out.extend(fn(rebuilt))
        elif isinstance(stmt, If):
            rebuilt_if = If(
                stmt.cond,
                transform_stmts(stmt.then_body, fn),
                transform_stmts(stmt.else_body, fn),
            )
            out.extend(fn(rebuilt_if))
        else:
            out.extend(fn(stmt))
    return out


def count_stmts(body: Sequence[Stmt]) -> int:
    """Total statement count (diagnostics)."""
    total = 0
    for stmt in body:
        total += 1
        if isinstance(stmt, Loop):
            total += count_stmts(stmt.body)
        elif isinstance(stmt, If):
            total += count_stmts(stmt.then_body) + count_stmts(stmt.else_body)
    return total
