"""IR well-formedness checks.

Run by the compiler pass before analysis and by tests after transforms.
Checks are structural: variable scoping, declared arrays, subscript
arity (already enforced at construction), and positive loop steps.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.expr import ElemOf, Expr
from repro.core.ir.nodes import Hint, If, Loop, Program, Stmt, Work
from repro.errors import IRError


def validate_program(program: Program) -> None:
    """Raise :class:`IRError` on any structural problem."""
    declared = set(program.params)
    for arr in program.arrays:
        for dim in arr.shape:
            if isinstance(dim, str) and dim not in program.params:
                raise IRError(
                    f"array {arr.name!r} dimension parameter {dim!r} "
                    "is not a program parameter"
                )
    _validate_body(program.body, declared, set(a.name for a in program.arrays), program)


def _expr_vars_ok(expr: Expr, in_scope: set[str], where: str) -> None:
    unbound = expr.free_vars() - in_scope
    if unbound:
        raise IRError(f"{where}: unbound variables {sorted(unbound)}")


def _check_array(arr: ArrayDecl, known_arrays: set[str], program: Program, where: str) -> None:
    if arr.name not in known_arrays:
        raise IRError(f"{where}: array {arr.name!r} is not declared by the program")


def _validate_indices(indices, in_scope: set[str], known_arrays: set[str],
                      program: Program, where: str) -> None:
    for ix in indices:
        _expr_vars_ok(ix, in_scope, where)
        if isinstance(ix, ElemOf):
            _check_array(ix.array, known_arrays, program, where)


def _validate_body(
    body: Sequence[Stmt],
    in_scope: set[str],
    known_arrays: set[str],
    program: Program,
) -> None:
    for stmt in body:
        if isinstance(stmt, Work):
            for ref in stmt.refs:
                where = f"work ref {ref!r}"
                _check_array(ref.array, known_arrays, program, where)
                _validate_indices(ref.indices, in_scope, known_arrays, program, where)
        elif isinstance(stmt, Loop):
            _expr_vars_ok(stmt.lower, in_scope, f"loop {stmt.var!r} lower bound")
            _expr_vars_ok(stmt.upper, in_scope, f"loop {stmt.var!r} upper bound")
            if stmt.var in in_scope:
                raise IRError(f"loop variable {stmt.var!r} shadows an outer binding")
            _validate_body(stmt.body, in_scope | {stmt.var}, known_arrays, program)
        elif isinstance(stmt, Hint):
            for addr in (stmt.target, stmt.release_target):
                if addr is None:
                    continue
                where = f"hint address {addr!r}"
                _check_array(addr.array, known_arrays, program, where)
                _validate_indices(addr.indices, in_scope, known_arrays, program, where)
            _expr_vars_ok(stmt.npages, in_scope, "hint page count")
            _expr_vars_ok(stmt.release_npages, in_scope, "hint release page count")
        elif isinstance(stmt, If):
            _expr_vars_ok(stmt.cond.lhs, in_scope, "if condition")
            _expr_vars_ok(stmt.cond.rhs, in_scope, "if condition")
            _validate_body(stmt.then_body, in_scope, known_arrays, program)
            _validate_body(stmt.else_body, in_scope, known_arrays, program)
        else:
            raise IRError(f"unknown statement type {type(stmt).__name__}")
