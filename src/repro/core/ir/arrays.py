"""Array declarations.

An :class:`ArrayDecl` is one out-of-core (or in-core) array: a name, a
shape (dimensions may be symbolic parameter names), an element size in
bytes, and -- for *index* arrays driving indirect references -- optional
backing data.  Arrays are laid out row-major; the executor assigns each
array its own page-aligned virtual segment at run time.

The paper's key observation about indirect references (Section 2.2.1)
shows up here: only arrays whose *values* feed addresses need real data
(``BUK``'s keys, ``CGM``'s sparsity structure); arrays that are merely
read/written numerically never materialize, because the simulation needs
their address stream, not their contents.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Union

import numpy as np

from repro.errors import ExecutionError, IRError

DimLike = Union[int, str]


class ArrayDecl:
    """One declared array in a program."""

    __slots__ = ("name", "shape", "elem_size", "data", "base")

    def __init__(
        self,
        name: str,
        shape: Sequence[DimLike],
        elem_size: int = 8,
        data: np.ndarray | None = None,
    ) -> None:
        if not name:
            raise IRError("array name must be non-empty")
        if not shape:
            raise IRError(f"array {name!r} must have at least one dimension")
        if elem_size <= 0:
            raise IRError(f"array {name!r} element size must be positive")
        for dim in shape:
            if isinstance(dim, int):
                if dim <= 0:
                    raise IRError(f"array {name!r} has non-positive dimension {dim}")
            elif not isinstance(dim, str):
                raise IRError(f"array {name!r} dimension {dim!r} must be int or parameter name")
        if data is not None and len(shape) != 1:
            raise IRError(f"index array {name!r} with data must be one-dimensional")
        self.name = name
        self.shape = tuple(shape)
        self.elem_size = elem_size
        self.data = data
        #: Base byte address, bound by the executor when segments are mapped.
        self.base: int | None = None

    # ------------------------------------------------------------------
    # Shape resolution
    # ------------------------------------------------------------------

    def resolved_shape(self, params: Mapping[str, int]) -> tuple[int, ...]:
        """Concrete shape under fully-bound runtime parameters."""
        dims = []
        for dim in self.shape:
            if isinstance(dim, int):
                dims.append(dim)
            else:
                try:
                    dims.append(params[dim])
                except KeyError:
                    raise ExecutionError(
                        f"array {self.name!r} dimension parameter {dim!r} is unbound"
                    ) from None
        return tuple(dims)

    def compile_time_shape(self, known: Mapping[str, int]) -> tuple[int | None, ...]:
        """Shape as the compiler sees it: None for runtime-only dimensions."""
        return tuple(
            dim if isinstance(dim, int) else known.get(dim) for dim in self.shape
        )

    def strides_elems(self, params: Mapping[str, int]) -> tuple[int, ...]:
        """Row-major strides in *elements* for each dimension."""
        shape = self.resolved_shape(params)
        strides = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        return tuple(strides)

    def compile_time_strides(self, known: Mapping[str, int]) -> tuple[int | None, ...]:
        """Row-major element strides, None where a dimension is unknown."""
        shape = self.compile_time_shape(known)
        strides: list[int | None] = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            below = strides[d + 1]
            dim = shape[d + 1]
            strides[d] = None if below is None or dim is None else below * dim
        return tuple(strides)

    def nbytes(self, params: Mapping[str, int]) -> int:
        total = self.elem_size
        for dim in self.resolved_shape(params):
            total *= dim
        return total

    def nelems(self, params: Mapping[str, int]) -> int:
        total = 1
        for dim in self.resolved_shape(params):
            total *= dim
        return total

    def __repr__(self) -> str:
        dims = "][".join(str(d) for d in self.shape)
        return f"{self.name}[{dims}]"
