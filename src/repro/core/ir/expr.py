"""Index and bound expressions.

The expression language is deliberately small -- it is exactly what the
paper's loop nests need:

* :class:`Affine` -- integer-affine combinations of loop variables and
  symbolic parameters (``4*i + j + 7``).  Array subscripts, loop bounds and
  strip-mined bounds are affine.
* :class:`ElemOf` -- the value of an index-array element (``b[i]``), which
  is what makes indirect references like ``a[b[i]]`` expressible.
* :class:`MinExpr` / :class:`CeilDiv` -- produced by strip mining and by
  runtime-clamped prolog prefetch sizes.

Expressions support three evaluations: ``eval`` under a concrete
environment, ``eval_vec`` vectorized over a numpy range of one loop
variable (the interpreter's fast path), and ``try_const`` under the
compiler's *compile-time* knowledge, which returns ``None`` for anything
depending on runtime-only values -- the situation that makes the paper's
APPBT lose coverage (Section 4.1.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Union

import numpy as np

from repro.errors import ExecutionError, IRError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.ir.arrays import ArrayDecl

ExprLike = Union["Expr", int]


class Expr:
    """Base class; arithmetic operators build affine combinations."""

    __slots__ = ()

    def __add__(self, other: ExprLike) -> "Expr":
        return affine_sum(self, as_expr(other), 1)

    def __radd__(self, other: ExprLike) -> "Expr":
        return affine_sum(as_expr(other), self, 1)

    def __sub__(self, other: ExprLike) -> "Expr":
        return affine_sum(self, as_expr(other), -1)

    def __rsub__(self, other: ExprLike) -> "Expr":
        return affine_sum(as_expr(other), self, -1)

    def __mul__(self, factor: int) -> "Expr":
        if not isinstance(factor, int):
            raise IRError(f"expressions may only be scaled by ints, got {factor!r}")
        return affine_scale(self, factor)

    __rmul__ = __mul__

    # Subclasses implement:
    def eval(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def eval_vec(self, env: Mapping[str, int], var: str, values: np.ndarray):
        """Evaluate with ``var`` bound to every element of ``values``.

        Returns a numpy array or a scalar (when independent of ``var``).
        """
        raise NotImplementedError

    def try_const(self, known: Mapping[str, int]) -> int | None:
        """Compile-time value under partial knowledge, or None."""
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError


class Const(Expr):
    """An integer literal."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def eval(self, env: Mapping[str, int]) -> int:
        return self.value

    def eval_vec(self, env, var, values):
        return self.value

    def try_const(self, known) -> int | None:
        return self.value

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return str(self.value)

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class Var(Expr):
    """A loop variable or symbolic program parameter."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise IRError("variable names must be non-empty")
        self.name = name

    def eval(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise ExecutionError(f"unbound variable {self.name!r}") from None

    def eval_vec(self, env, var, values):
        if self.name == var:
            return values
        return self.eval(env)

    def try_const(self, known) -> int | None:
        return known.get(self.name)

    def free_vars(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


class Affine(Expr):
    """``sum(coeff * var) + const`` with integer coefficients."""

    __slots__ = ("terms", "const")

    def __init__(self, terms: Mapping[str, int], const: int = 0) -> None:
        self.terms = {v: int(c) for v, c in terms.items() if c != 0}
        self.const = int(const)

    def eval(self, env: Mapping[str, int]) -> int:
        total = self.const
        for name, coeff in self.terms.items():
            try:
                total += coeff * env[name]
            except KeyError:
                raise ExecutionError(f"unbound variable {name!r}") from None
        return total

    def eval_vec(self, env, var, values):
        total: int | np.ndarray = self.const
        for name, coeff in self.terms.items():
            if name == var:
                total = total + coeff * values
            else:
                total += coeff * env[name]
        return total

    def try_const(self, known) -> int | None:
        total = self.const
        for name, coeff in self.terms.items():
            value = known.get(name)
            if value is None:
                return None
            total += coeff * value
        return total

    def free_vars(self) -> frozenset[str]:
        return frozenset(self.terms)

    def coeff(self, var: str) -> int:
        """Coefficient of ``var`` (0 if absent)."""
        return self.terms.get(var, 0)

    def __repr__(self) -> str:
        parts = []
        for name, coeff in sorted(self.terms.items()):
            if coeff == 1:
                parts.append(name)
            else:
                parts.append(f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Affine)
            and other.terms == self.terms
            and other.const == self.const
        )

    def __hash__(self) -> int:
        return hash(("Affine", tuple(sorted(self.terms.items())), self.const))


class ElemOf(Expr):
    """The runtime value of a 1-D index array element: ``array[index]``.

    ``clamp`` keeps out-of-range lookaheads (software-pipelined indirect
    prefetches running past the loop end) inside the array; the compiler
    sets it on the hint addresses it generates, mirroring the epilog guard
    a real compiler would emit.
    """

    __slots__ = ("array", "index", "clamp")

    def __init__(self, array: "ArrayDecl", index: ExprLike, clamp: bool = False) -> None:
        self.array = array
        self.index = as_expr(index)
        self.clamp = clamp

    def _data(self) -> np.ndarray:
        data = self.array.data
        if data is None:
            raise ExecutionError(
                f"index array {self.array.name!r} has no backing data; "
                "indirect references need materialized index arrays"
            )
        return data

    def eval(self, env: Mapping[str, int]) -> int:
        data = self._data()
        index = self.index.eval(env)
        if self.clamp:
            index = min(max(index, 0), len(data) - 1)
        elif not 0 <= index < len(data):
            raise ExecutionError(
                f"index {index} out of range for index array {self.array.name!r}"
            )
        return int(data[index])

    def eval_vec(self, env, var, values):
        data = self._data()
        index = self.index.eval_vec(env, var, values)
        if self.clamp:
            index = np.clip(index, 0, len(data) - 1)
        return data[index]

    def try_const(self, known) -> int | None:
        # Index-array contents are never compile-time constants: this is
        # exactly why the paper's compiler cannot analyze locality of
        # indirect references (Section 2.2.1).
        return None

    def free_vars(self) -> frozenset[str]:
        return self.index.free_vars()

    def __repr__(self) -> str:
        return f"{self.array.name}[{self.index!r}]"


class MinExpr(Expr):
    """``min(a, b)`` -- produced by strip mining for ragged final strips."""

    __slots__ = ("a", "b")

    def __init__(self, a: ExprLike, b: ExprLike) -> None:
        self.a = as_expr(a)
        self.b = as_expr(b)

    def eval(self, env: Mapping[str, int]) -> int:
        return min(self.a.eval(env), self.b.eval(env))

    def eval_vec(self, env, var, values):
        return np.minimum(self.a.eval_vec(env, var, values),
                          self.b.eval_vec(env, var, values))

    def try_const(self, known) -> int | None:
        a = self.a.try_const(known)
        b = self.b.try_const(known)
        if a is None or b is None:
            return None
        return min(a, b)

    def free_vars(self) -> frozenset[str]:
        return self.a.free_vars() | self.b.free_vars()

    def __repr__(self) -> str:
        return f"min({self.a!r}, {self.b!r})"


class MaxExpr(Expr):
    """``max(a, b)`` -- epilog lower bounds after steady/epilog splitting."""

    __slots__ = ("a", "b")

    def __init__(self, a: ExprLike, b: ExprLike) -> None:
        self.a = as_expr(a)
        self.b = as_expr(b)

    def eval(self, env: Mapping[str, int]) -> int:
        return max(self.a.eval(env), self.b.eval(env))

    def eval_vec(self, env, var, values):
        return np.maximum(self.a.eval_vec(env, var, values),
                          self.b.eval_vec(env, var, values))

    def try_const(self, known) -> int | None:
        a = self.a.try_const(known)
        b = self.b.try_const(known)
        if a is None or b is None:
            return None
        return max(a, b)

    def free_vars(self) -> frozenset[str]:
        return self.a.free_vars() | self.b.free_vars()

    def __repr__(self) -> str:
        return f"max({self.a!r}, {self.b!r})"


class CeilDiv(Expr):
    """``ceil(a / divisor)`` -- runtime-computed prefetch sizes."""

    __slots__ = ("a", "divisor")

    def __init__(self, a: ExprLike, divisor: int) -> None:
        if divisor <= 0:
            raise IRError(f"CeilDiv divisor must be positive, got {divisor}")
        self.a = as_expr(a)
        self.divisor = divisor

    def eval(self, env: Mapping[str, int]) -> int:
        return -(-self.a.eval(env) // self.divisor)

    def eval_vec(self, env, var, values):
        return -(-self.a.eval_vec(env, var, values) // self.divisor)

    def try_const(self, known) -> int | None:
        a = self.a.try_const(known)
        if a is None:
            return None
        return -(-a // self.divisor)

    def free_vars(self) -> frozenset[str]:
        return self.a.free_vars()

    def __repr__(self) -> str:
        return f"ceil({self.a!r} / {self.divisor})"


def as_expr(value: ExprLike | str) -> Expr:
    """Coerce ints and names into expressions."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise IRError(f"cannot convert {value!r} to an expression")


def _as_affine_parts(expr: Expr) -> tuple[dict[str, int], int] | None:
    """Decompose into (terms, const) if expr is affine, else None."""
    if isinstance(expr, Const):
        return {}, expr.value
    if isinstance(expr, Var):
        return {expr.name: 1}, 0
    if isinstance(expr, Affine):
        return dict(expr.terms), expr.const
    return None


def affine_sum(a: Expr, b: Expr, sign: int) -> Expr:
    """``a + sign*b``, folding into one Affine when both sides allow it."""
    pa = _as_affine_parts(a)
    pb = _as_affine_parts(b)
    if pa is None or pb is None:
        raise IRError(
            f"cannot add non-affine expressions symbolically: {a!r}, {b!r}"
        )
    terms, const = pa
    bterms, bconst = pb
    for name, coeff in bterms.items():
        terms[name] = terms.get(name, 0) + sign * coeff
    const += sign * bconst
    if not any(terms.values()):
        return Const(const)
    return Affine(terms, const)


def affine_scale(a: Expr, factor: int) -> Expr:
    pa = _as_affine_parts(a)
    if pa is None:
        raise IRError(f"cannot scale non-affine expression {a!r}")
    terms, const = pa
    return Affine({v: c * factor for v, c in terms.items()}, const * factor)
