"""C-like pretty printer.

Renders programs in the style of the paper's Figure 2, so the quickstart
example can show the "output of the prefetching compiler" side by side
with the input::

    prefetch_block(&b[0], 16);
    for (i0 = 0; i0 < 100000 - 16384; i0 += 2048) {
      prefetch_block(&b[i0 + 16384], 4);
      for (i = i0; i < min(i0 + 2048, 100000); i++) {
        prefetch(&a[b[i + 96]], 1);
        a[b[i]] += c[i][j];
      }
    }
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ir.expr import Affine, CeilDiv, Const, ElemOf, Expr, MaxExpr, MinExpr, Var
from repro.core.ir.nodes import AddrOf, Hint, HintKind, If, Loop, Program, Stmt, Work

_INDENT = "  "


def format_expr(expr: Expr) -> str:
    """Render one expression as C-ish source."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Affine):
        parts: list[str] = []
        for name, coeff in expr.terms.items():
            if coeff == 1:
                term = name
            elif coeff == -1:
                term = f"-{name}"
            else:
                term = f"{coeff}*{name}"
            parts.append(term)
        if expr.const or not parts:
            parts.append(str(expr.const))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")
    if isinstance(expr, ElemOf):
        return f"{expr.array.name}[{format_expr(expr.index)}]"
    if isinstance(expr, MinExpr):
        return f"min({format_expr(expr.a)}, {format_expr(expr.b)})"
    if isinstance(expr, MaxExpr):
        return f"max({format_expr(expr.a)}, {format_expr(expr.b)})"
    if isinstance(expr, CeilDiv):
        return f"ceil({format_expr(expr.a)}, {expr.divisor})"
    return repr(expr)


def format_addr(addr: AddrOf) -> str:
    subs = "][".join(format_expr(ix) for ix in addr.indices)
    return f"&{addr.array.name}[{subs}]"


def _format_work(stmt: Work) -> str:
    if stmt.text is not None:
        return stmt.text
    reads = [r for r in stmt.refs if not r.is_write]
    writes = [r for r in stmt.refs if r.is_write]

    def one(ref) -> str:
        subs = "][".join(format_expr(ix) for ix in ref.indices)
        return f"{ref.array.name}[{subs}]"

    lhs = ", ".join(one(r) for r in writes) if writes else "(void)"
    rhs = ", ".join(one(r) for r in reads) if reads else "0"
    return f"{lhs} = f({rhs});"


def _format_hint(stmt: Hint) -> str:
    if stmt.kind is HintKind.PREFETCH:
        if isinstance(stmt.npages, Const) and stmt.npages.value == 1:
            return f"prefetch({format_addr(stmt.target)});"
        return f"prefetch_block({format_addr(stmt.target)}, {format_expr(stmt.npages)});"
    if stmt.kind is HintKind.RELEASE:
        if isinstance(stmt.release_npages, Const) and stmt.release_npages.value == 1:
            return f"release({format_addr(stmt.release_target)});"
        return (
            f"release_block({format_addr(stmt.release_target)}, "
            f"{format_expr(stmt.release_npages)});"
        )
    return (
        f"prefetch_release_block({format_addr(stmt.target)}, "
        f"{format_addr(stmt.release_target)}, {format_expr(stmt.npages)});"
    )


def _emit(body: Sequence[Stmt], lines: list[str], depth: int) -> None:
    pad = _INDENT * depth
    for stmt in body:
        if isinstance(stmt, Work):
            lines.append(pad + _format_work(stmt))
        elif isinstance(stmt, Hint):
            lines.append(pad + _format_hint(stmt))
        elif isinstance(stmt, Loop):
            step = f"{stmt.var} += {stmt.step}" if stmt.step != 1 else f"{stmt.var}++"
            lines.append(
                pad
                + f"for ({stmt.var} = {format_expr(stmt.lower)}; "
                + f"{stmt.var} < {format_expr(stmt.upper)}; {step}) {{"
            )
            _emit(stmt.body, lines, depth + 1)
            lines.append(pad + "}")
        elif isinstance(stmt, If):
            cond = (
                f"{format_expr(stmt.cond.lhs)} {stmt.cond.op} "
                f"{format_expr(stmt.cond.rhs)}"
            )
            lines.append(pad + f"if ({cond}) {{")
            _emit(stmt.then_body, lines, depth + 1)
            if stmt.else_body:
                lines.append(pad + "} else {")
                _emit(stmt.else_body, lines, depth + 1)
            lines.append(pad + "}")
        else:
            lines.append(pad + repr(stmt))


def format_program(program: Program, include_decls: bool = True) -> str:
    """Render the whole program as C-like source text."""
    lines: list[str] = []
    if include_decls:
        for arr in program.arrays:
            dims = "".join(f"[{d}]" for d in arr.shape)
            kind = {1: "char", 2: "short", 4: "int", 8: "double"}.get(
                arr.elem_size, f"elem{arr.elem_size}"
            )
            lines.append(f"{kind} {arr.name}{dims};")
        if program.arrays:
            lines.append("")
    _emit(program.body, lines, 0)
    return "\n".join(lines)
