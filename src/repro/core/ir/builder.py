"""Convenience constructors for building programs.

Application models (and tests) build loop nests with these helpers::

    from repro.core.ir.builder import ProgramBuilder, loop, work, read, write
    from repro.core.ir.expr import Var

    b = ProgramBuilder("example")
    i, j = Var("i"), Var("j")
    a = b.array("a", (100_000,), elem_size=4)
    c = b.array("c", (100_000, 100), elem_size=4)
    b.append(
        loop("i", 0, 100_000, [
            loop("j", 0, 100, [
                work([read(c, i, j), write(a, i)], cost=0.2,
                     text="a[i] += c[i][j];"),
            ]),
        ])
    )
    program = b.build()
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.ir.arrays import ArrayDecl, DimLike
from repro.core.ir.expr import ExprLike
from repro.core.ir.nodes import ArrayRef, Loop, Program, Stmt, Work


def loop(var: str, lower: ExprLike, upper: ExprLike, body: Sequence[Stmt],
         step: int = 1) -> Loop:
    """Build a counted loop."""
    return Loop(var, lower, upper, body, step=step)


def work(refs: Sequence[ArrayRef], cost: float, text: str | None = None) -> Work:
    """Build one straight-line work unit."""
    return Work(refs, cost, text=text)


def read(array: ArrayDecl, *indices: ExprLike) -> ArrayRef:
    """A read reference ``array[indices...]``."""
    return ArrayRef(array, indices, is_write=False)


def write(array: ArrayDecl, *indices: ExprLike) -> ArrayRef:
    """A write reference ``array[indices...]``."""
    return ArrayRef(array, indices, is_write=True)


class ProgramBuilder:
    """Accumulates arrays and statements into a :class:`Program`."""

    def __init__(
        self,
        name: str,
        params: dict[str, int] | None = None,
        compile_time_params: dict[str, int] | None = None,
    ) -> None:
        self.name = name
        self.params = dict(params or {})
        self.compile_time_params = compile_time_params
        self._arrays: list[ArrayDecl] = []
        self._body: list[Stmt] = []

    def array(
        self,
        name: str,
        shape: Sequence[DimLike],
        elem_size: int = 8,
        data: np.ndarray | None = None,
    ) -> ArrayDecl:
        """Declare an array and return its handle."""
        decl = ArrayDecl(name, shape, elem_size=elem_size, data=data)
        self._arrays.append(decl)
        return decl

    def append(self, *stmts: Stmt) -> None:
        self._body.extend(stmts)

    def build(self) -> Program:
        return Program(
            self.name,
            self._arrays,
            self._body,
            params=self.params,
            compile_time_params=self.compile_time_params,
        )
