"""Statement nodes of the loop-nest IR.

A program body is a list of statements:

* :class:`Work` -- one straight-line unit: an ordered list of array
  references plus the CPU cost of executing it once.  This is the
  ``a[b[i]] += c[i][j] * b[i]`` of the paper's Figure 2(a).
* :class:`Loop` -- a counted ``for`` loop (positive constant step; the
  bounds may be arbitrary affine/min expressions, which is what
  strip-mined loops need).
* :class:`Hint` -- a compiler-inserted non-binding ``prefetch``,
  ``release``, or bundled ``prefetch_release`` call (Figure 2(b)).
* :class:`If` -- a runtime bound test, used only by the two-version loop
  extension (Section 4.1.1's proposed fix).

Hints carry *addresses* (:class:`AddrOf`), not data references: executing
a hint never reads or writes the array, which is what makes them
non-binding and lets the access-trace equivalence property hold between
the original and the transformed program.
"""

from __future__ import annotations

import enum
import itertools
from typing import Sequence

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.expr import Expr, ExprLike, as_expr
from repro.errors import IRError, ensure_finite

_loop_ids = itertools.count(1)


class ArrayRef:
    """One data reference: ``array[indices...]``, read or write."""

    __slots__ = ("array", "indices", "is_write")

    def __init__(
        self, array: ArrayDecl, indices: Sequence[ExprLike], is_write: bool = False
    ) -> None:
        if len(indices) != len(array.shape):
            raise IRError(
                f"reference to {array.name!r} has {len(indices)} subscripts, "
                f"array has {len(array.shape)} dimensions"
            )
        self.array = array
        self.indices = tuple(as_expr(ix) for ix in indices)
        self.is_write = is_write

    def __repr__(self) -> str:
        subs = "][".join(repr(ix) for ix in self.indices)
        suffix = " (w)" if self.is_write else ""
        return f"{self.array.name}[{subs}]{suffix}"


class AddrOf:
    """The address ``&array[indices...]`` (hint targets only)."""

    __slots__ = ("array", "indices")

    def __init__(self, array: ArrayDecl, indices: Sequence[ExprLike]) -> None:
        if len(indices) != len(array.shape):
            raise IRError(
                f"address of {array.name!r} has {len(indices)} subscripts, "
                f"array has {len(array.shape)} dimensions"
            )
        self.array = array
        self.indices = tuple(as_expr(ix) for ix in indices)

    def __repr__(self) -> str:
        subs = "][".join(repr(ix) for ix in self.indices)
        return f"&{self.array.name}[{subs}]"


class Stmt:
    """Base class for statements."""

    __slots__ = ()


class Work(Stmt):
    """Straight-line computation touching ``refs`` at cost ``cost_us``."""

    __slots__ = ("refs", "cost_us", "text")

    def __init__(
        self, refs: Sequence[ArrayRef], cost_us: float, text: str | None = None
    ) -> None:
        ensure_finite(cost_us, "work cost", IRError)
        if cost_us < 0:
            raise IRError(f"work cost must be >= 0, got {cost_us}")
        self.refs = tuple(refs)
        self.cost_us = float(cost_us)
        #: Optional source-level text for the pretty printer (Figure 2).
        self.text = text

    def __repr__(self) -> str:
        return f"Work({', '.join(map(repr, self.refs))}; {self.cost_us}us)"


class Loop(Stmt):
    """``for var in range(lower, upper, step): body``."""

    __slots__ = ("var", "lower", "upper", "step", "body", "loop_id")

    def __init__(
        self,
        var: str,
        lower: ExprLike,
        upper: ExprLike,
        body: Sequence[Stmt],
        step: int = 1,
    ) -> None:
        if not var:
            raise IRError("loop variable must be named")
        if not isinstance(step, int) or step <= 0:
            raise IRError(
                f"loop step must be a positive int, got {step!r} "
                "(model backward sweeps with reversed index expressions)"
            )
        self.var = var
        self.lower = as_expr(lower)
        self.upper = as_expr(upper)
        self.step = step
        self.body = list(body)
        #: Stable identity used by the compiler to attach per-loop plans.
        self.loop_id = next(_loop_ids)

    def __repr__(self) -> str:
        return f"Loop({self.var}: {self.lower!r}..{self.upper!r} step {self.step})"


class HintKind(enum.Enum):
    """Which non-binding hint call a :class:`Hint` represents."""

    PREFETCH = "prefetch"
    RELEASE = "release"
    PREFETCH_RELEASE = "prefetch_release"


class Hint(Stmt):
    """A compiler-inserted prefetch/release call.

    ``npages`` may be a runtime expression (clamped prolog sizes).  The
    target address is resolved at execution; addresses that fall outside
    the target array's segment make the hint a silent no-op -- hints are
    non-binding, so a lookahead running past an array end is harmless
    (the real compiler's epilog guards become address clamping here).
    """

    __slots__ = ("kind", "target", "npages", "release_target", "release_npages")

    def __init__(
        self,
        kind: HintKind,
        target: AddrOf | None,
        npages: ExprLike = 1,
        release_target: AddrOf | None = None,
        release_npages: ExprLike = 1,
    ) -> None:
        if kind in (HintKind.PREFETCH, HintKind.PREFETCH_RELEASE) and target is None:
            raise IRError(f"{kind.value} hint requires a prefetch target")
        if kind in (HintKind.RELEASE, HintKind.PREFETCH_RELEASE) and release_target is None:
            if kind is HintKind.RELEASE and target is not None:
                # Allow Hint(RELEASE, target) shorthand.
                release_target, target = target, None
            else:
                raise IRError(f"{kind.value} hint requires a release target")
        self.kind = kind
        self.target = target
        self.npages = as_expr(npages)
        self.release_target = release_target
        self.release_npages = as_expr(release_npages)

    def __repr__(self) -> str:
        if self.kind is HintKind.PREFETCH:
            return f"prefetch_block({self.target!r}, {self.npages!r})"
        if self.kind is HintKind.RELEASE:
            return f"release_block({self.release_target!r}, {self.release_npages!r})"
        return (
            f"prefetch_release_block({self.target!r}, {self.release_target!r}, "
            f"{self.npages!r})"
        )


class Cmp:
    """A comparison between two expressions (two-version loop guards)."""

    __slots__ = ("lhs", "op", "rhs")

    _OPS = {"<", "<=", ">", ">=", "==", "!="}

    def __init__(self, lhs: ExprLike, op: str, rhs: ExprLike) -> None:
        if op not in self._OPS:
            raise IRError(f"unsupported comparison operator {op!r}")
        self.lhs = as_expr(lhs)
        self.op = op
        self.rhs = as_expr(rhs)

    def eval(self, env) -> bool:
        a = self.lhs.eval(env)
        b = self.rhs.eval(env)
        if self.op == "<":
            return a < b
        if self.op == "<=":
            return a <= b
        if self.op == ">":
            return a > b
        if self.op == ">=":
            return a >= b
        if self.op == "==":
            return a == b
        return a != b

    def __repr__(self) -> str:
        return f"{self.lhs!r} {self.op} {self.rhs!r}"


class If(Stmt):
    """Runtime test selecting between two loop versions (Section 4.1.1)."""

    __slots__ = ("cond", "then_body", "else_body")

    def __init__(self, cond: Cmp, then_body: Sequence[Stmt], else_body: Sequence[Stmt] = ()) -> None:
        self.cond = cond
        self.then_body = list(then_body)
        self.else_body = list(else_body)

    def __repr__(self) -> str:
        return f"If({self.cond!r})"


class Program:
    """A whole application: parameters, arrays, and a statement list.

    ``params`` are the runtime parameter bindings.  ``compile_time_params``
    is the subset the *compiler* is allowed to see; anything absent is a
    symbolic value the compiler must guess about -- the mechanism behind
    the paper's APPBT coverage loss (Section 4.1.1).
    """

    def __init__(
        self,
        name: str,
        arrays: Sequence[ArrayDecl],
        body: Sequence[Stmt],
        params: dict[str, int] | None = None,
        compile_time_params: dict[str, int] | None = None,
    ) -> None:
        self.name = name
        self.arrays = list(arrays)
        self.body = list(body)
        self.params = dict(params or {})
        if compile_time_params is None:
            compile_time_params = dict(self.params)
        self.compile_time_params = compile_time_params
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise IRError(f"program {name!r} declares duplicate array names")

    def array(self, name: str) -> ArrayDecl:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise IRError(f"program {self.name!r} has no array named {name!r}")

    def total_data_bytes(self) -> int:
        """Total declared data volume under the runtime parameters."""
        return sum(arr.nbytes(self.params) for arr in self.arrays)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.arrays)} arrays, {len(self.body)} stmts)"
