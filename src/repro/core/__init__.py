"""The paper's primary contribution: the I/O-prefetching compiler pass.

``repro.core`` contains a loop-nest intermediate representation (the same
abstraction the paper's SUIF pass operates on), the locality/reuse analysis
re-parameterized from caches to paged memory (Section 2.3), and the
transformations -- strip mining, software pipelining of prefetches, release
insertion -- that turn an ordinary in-core loop nest into one annotated
with non-binding ``prefetch``/``release`` hints.

Public entry point: :func:`repro.core.prefetch_pass.insert_prefetches`.
"""

from repro.core.ir.arrays import ArrayDecl
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Const, Var
from repro.core.ir.nodes import Hint, HintKind, If, Loop, Program, Work
from repro.core.options import CompilerOptions
from repro.core.prefetch_pass import PassResult, insert_prefetches

__all__ = [
    "ArrayDecl",
    "Const",
    "Var",
    "Loop",
    "Work",
    "Hint",
    "HintKind",
    "If",
    "Program",
    "ProgramBuilder",
    "loop",
    "work",
    "read",
    "write",
    "CompilerOptions",
    "insert_prefetches",
    "PassResult",
]
