"""Compiler pass options.

These are the knobs the paper describes feeding its compiler: the memory
model (page size standing in for line size, fault latency for miss
latency, an *effective memory* standing in for cache capacity -- Section
2.3), the block-prefetch size ("four pages are fetched at a time ... a
parameter which can be specified to the compiler"), and the symbolic-trip
assumption behind the APPBT coverage loss (Section 4.1.1), together with
the two-version-loop fix the paper proposes for it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.config import PlatformConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class CompilerOptions:
    """All knobs of the prefetching pass."""

    #: Memory-model parameters (the analogs of line size and miss latency).
    page_size: int = 4096
    fault_latency_us: float = 17_100.0

    #: Pages per block prefetch for references with spatial locality.
    block_pages: int = 4

    #: The compiler's (deliberately conservative) estimate of how much data
    #: memory retains across reuse -- the paper notes that "loop-level
    #: compiler analysis tends to underestimate [main memory's] ability to
    #: retain data" (Section 2.2.2); arrays at most this large are assumed
    #: to stay resident after first touch and are not prefetched.
    effective_memory_bytes: int = 256 * 1024

    #: Trip count assumed for loops whose bounds are unknown at compile
    #: time.  Assuming "large" is what makes the compiler pipeline across
    #: an inner loop that turns out to be tiny (the APPBT failure mode).
    assumed_symbolic_trip: int = 1024

    #: Software-pipelining distance limits, in strips (dense references).
    min_distance_strips: int = 1
    max_distance_strips: int = 8

    #: Lookahead cap for indirect references, in iterations.
    max_indirect_distance: int = 64

    #: Release insertion policy: 'streaming' releases behind sequential
    #: top-level streams (the paper's non-aggressive behaviour); 'none'
    #: disables releases; 'aggressive' releases behind every dense
    #: pipelined reference with no detected temporal reuse.
    release_policy: str = "streaming"

    #: Section 4.1.1's proposed fix: emit a runtime trip-count test that
    #: chooses between pipelining across the inner or the outer loop.
    two_version_loops: bool = False

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        if self.block_pages <= 0:
            raise ConfigError("block_pages must be positive")
        if self.fault_latency_us <= 0:
            raise ConfigError("fault_latency_us must be positive")
        if self.min_distance_strips <= 0:
            raise ConfigError("min_distance_strips must be positive")
        if self.max_distance_strips < self.min_distance_strips:
            raise ConfigError("max_distance_strips must be >= min_distance_strips")
        if self.max_indirect_distance <= 0:
            raise ConfigError("max_indirect_distance must be positive")
        if self.release_policy not in ("streaming", "none", "aggressive"):
            raise ConfigError(
                f"release_policy must be streaming/none/aggressive, "
                f"got {self.release_policy!r}"
            )
        if self.assumed_symbolic_trip <= 0:
            raise ConfigError("assumed_symbolic_trip must be positive")

    @classmethod
    def from_platform(cls, platform: PlatformConfig, **overrides: Any) -> "CompilerOptions":
        """Derive the memory-model knobs from a platform description.

        The effective-memory estimate scales with the target machine (a
        sixth of application memory): the compiler must be told the memory
        size just like it is told the page size and fault latency
        (Section 2.3), and staying deliberately below the real size
        reproduces the paper's conservative retention analysis.
        """
        base = cls(
            page_size=platform.page_size,
            fault_latency_us=platform.average_fault_latency_us(),
            block_pages=platform.prefetch_block_pages,
            effective_memory_bytes=max(16 * platform.page_size,
                                       platform.available_bytes // 6),
        )
        if overrides:
            base = replace(base, **overrides)
        return base

    def scaled(self, **overrides: Any) -> "CompilerOptions":
        return replace(self, **overrides)
