"""The compiler pass driver.

:func:`insert_prefetches` is the public entry point: it takes an ordinary
in-core program (a loop nest over out-of-core arrays) and returns the
prefetching version, exactly as the paper's SUIF pass turned Figure 2(a)
into Figure 2(b):

1. validate the input IR;
2. run the planner (locality analysis, pipeline-loop selection, strip and
   distance computation, group-leader election, release decisions);
3. rewrite bottom-up: indirect hints go in front of their work statements,
   each pipeline loop is strip-mined and given prolog + steady-state
   hints;
4. optionally (``two_version_loops``) compile a second, small-trip-
   assumption version and merge the two under runtime bound tests.

The transformed program shares the original's array declarations (and
index-array data) but has an entirely fresh statement tree; the original
is never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.core.analysis.planner import PlanKind, ProgramPlan, plan_program
from repro.core.ir.nodes import Loop, Program, Stmt, Work
from repro.core.ir.validate import validate_program
from repro.core.ir.visit import transform_stmts
from repro.core.options import CompilerOptions
from repro.core.transform.pipeline import apply_dense_plans, indirect_hints, indirect_prolog
from repro.core.transform.twoversion import wrap_two_version


@dataclass
class PassResult:
    """What the compiler produced."""

    #: The transformed program, with prefetch/release hints inserted.
    program: Program
    #: The planning decisions (for reports, tests, and EXPERIMENTS.md).
    plan: ProgramPlan
    #: Options the pass ran with.
    options: CompilerOptions

    def report(self) -> str:
        """Human-readable per-reference planning summary."""
        planned = sum(
            1 for p in self.plan.plans if p.kind in (PlanKind.DENSE, PlanKind.INDIRECT)
        )
        lines = [
            f"prefetch pass: {self.program.name}",
            f"  references planned: {planned}/{len(self.plan.plans)}",
        ]
        lines.extend("  " + line for line in self.plan.summary().splitlines())
        return "\n".join(lines)


def _rewrite(body: list[Stmt], plan: ProgramPlan, options: CompilerOptions) -> list[Stmt]:
    def fn(stmt: Stmt) -> list[Stmt]:
        if isinstance(stmt, Work):
            plans = plan.indirect_by_work.get(id(stmt))
            if plans:
                return indirect_hints(stmt, plans) + [stmt]
            return [stmt]
        if isinstance(stmt, Loop):
            dense = plan.dense_by_loop.get(stmt.loop_id, [])
            indirect = [
                p
                for plans in plan.indirect_by_work.values()
                for p in plans
                if p.pipeline_loop.loop_id == stmt.loop_id
            ]
            prologs = indirect_prolog(stmt, indirect) if indirect else []
            if dense:
                return prologs + apply_dense_plans(stmt, dense, options)
            return prologs + [stmt]
        return [stmt]

    return transform_stmts(body, fn)


def insert_prefetches(
    program: Program, options: CompilerOptions | None = None
) -> PassResult:
    """Run the full prefetching pass over ``program``."""
    options = options or CompilerOptions()
    validate_program(program)

    plan = plan_program(program, options)
    # Rewrite each top-level statement separately so the two-version
    # merge can pair original statements with their transformed groups.
    groups = [_rewrite([stmt], plan, options) for stmt in program.body]

    if options.two_version_loops and plan.inexact_loops:
        # Re-plan assuming small symbolic trips and merge both versions
        # under runtime bound tests (Section 4.1.1's proposed fix).
        small_options = options.scaled(
            assumed_symbolic_trip=4, two_version_loops=False
        )
        small_plan = plan_program(program, small_options)
        small_groups = [_rewrite([stmt], small_plan, small_options) for stmt in program.body]
        new_body = wrap_two_version(
            program.body,
            groups,
            small_groups,
            plan.inexact_loops,
            options,
            top_level_params=set(program.params),
        )
    else:
        new_body = [stmt for group in groups for stmt in group]

    transformed = Program(
        f"{program.name}_pf",
        program.arrays,
        new_body,
        params=dict(program.params),
        compile_time_params=dict(program.compile_time_params),
    )
    validate_program(transformed)
    return PassResult(program=transformed, plan=plan, options=options)
