"""Release-address construction.

"For each of these groups ... the compiler identifies the leading
reference (i.e. the first reference to access the data) as the reference
to prefetch -- we simply extend this analysis to also identify the
trailing reference (the last one to touch the data) as the address to
release." (paper, Section 2.3)

In the strip-mined steady state the strip just completed covers loop-
variable values ``[level_var - strip, level_var)``, so the release address
is the reference's address one strip behind, bundled with the prefetch
into a single ``prefetch_release_block`` call.  Hint addresses that fall
before the array start (the first strip) resolve to no-ops -- hints are
non-binding, so no guard is needed.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.analysis.planner import RefPlan
from repro.core.ir.expr import Expr, Var
from repro.core.ir.nodes import AddrOf
from repro.core.transform.subst import subst_expr


def hint_address(
    plan: RefPlan, level_var: str, offset_units: int, lowers: Mapping[str, Expr]
) -> AddrOf:
    """Address of the plan's reference at ``level_var + offset_units``.

    Inner-loop variables are pinned to their (chained) lower bounds;
    indirect lookups inside the subscripts get clamped.
    """
    pipeline_var = plan.pipeline_loop.var
    target: Expr = Var(level_var) + offset_units if offset_units else Var(level_var)
    # Inner-loop lower bounds may reference the pipeline variable
    # (triangular nests); resolve them against the lookahead target first,
    # because substitution is single-pass.
    mapping = {
        var: subst_expr(expr, {pipeline_var: target})
        for var, expr in lowers.items()
    }
    mapping[pipeline_var] = target
    indices = tuple(
        subst_expr(ix, mapping, clamp_lookups=True) for ix in plan.ref.indices
    )
    return AddrOf(plan.ref.array, indices)


def release_address(
    plan: RefPlan, level_var: str, strip_units: int, lowers: Mapping[str, Expr]
) -> AddrOf:
    """Address of the strip the pipeline just finished consuming."""
    return hint_address(plan, level_var, -strip_units, lowers)
