"""Software pipelining of prefetches.

This stage turns the planner's decisions into code (paper Section 2.3):

* **Prolog** -- "we convert the prolog loops from the original algorithm
  into block prefetches whenever possible": one ``prefetch_block`` per
  dense plan covering the first ``distance`` strips, sized at runtime by
  ``min(distance * pages_per_hint, ceil(trip * bytes_per_iter / page))``
  so a loop that turns out to be tiny only prefetches the data it will
  actually touch.  (When the bound was unknown at compile time, this
  runtime clamp is precisely what goes wrong in the paper's APPBT: the
  clamped prolog misses page crossings mid-nest -- Section 4.1.1.)
* **Steady state** -- the pipeline loop is strip-mined once per distinct
  strip length, and each strip level gets a ``prefetch_block`` (or a
  bundled ``prefetch_release_block``) for the strip ``distance`` strips
  ahead.
* **Indirect references** -- a single-page ``prefetch(&a[b[i + d]])`` per
  iteration, placed immediately before the work statement, with a small
  prolog loop warming the first ``d`` iterations.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.analysis.planner import RefPlan
from repro.core.ir.expr import CeilDiv, Const, Expr, MaxExpr, MinExpr, Var, affine_scale, affine_sum
from repro.core.ir.nodes import AddrOf, Hint, HintKind, Loop, Stmt, Work
from repro.core.options import CompilerOptions
from repro.core.transform.release import hint_address, release_address
from repro.core.transform.stripmine import strip_mine, strip_var
from repro.core.transform.subst import chain_lowers, subst_expr
from repro.errors import IRError


def _prolog_npages(plan: RefPlan, loop: Loop, options: CompilerOptions) -> Expr:
    """Runtime-clamped size of the prolog block prefetch, in pages."""
    full = plan.distance_strips * plan.pages_per_hint
    span = affine_sum(loop.upper, loop.lower, -1)
    touched = CeilDiv(
        affine_scale(span, plan.bytes_per_iter),
        options.page_size * loop.step,
    )
    span_const = span.try_const({})
    if span_const is not None:
        # Fully static: fold the min at compile time.
        pages = min(full, touched.try_const({}) or full)
        return Const(max(pages, 1))
    return MinExpr(Const(full), touched)


def _prolog_hint(plan: RefPlan, loop: Loop, lowers: Mapping[str, Expr],
                 options: CompilerOptions) -> Hint:
    pipeline_var = plan.pipeline_loop.var
    mapping = {
        var: subst_expr(expr, {pipeline_var: loop.lower})
        for var, expr in lowers.items()
    }
    mapping[pipeline_var] = loop.lower
    indices = tuple(
        subst_expr(ix, mapping, clamp_lookups=True) for ix in plan.ref.indices
    )
    return Hint(
        HintKind.PREFETCH,
        AddrOf(plan.ref.array, indices),
        npages=_prolog_npages(plan, loop, options),
    )


def apply_dense_plans(
    loop: Loop, plans: Sequence[RefPlan], options: CompilerOptions
) -> list[Stmt]:
    """Strip-mine ``loop`` and emit prolog + steady-state + epilog code.

    Software pipelining splits the iteration space (Section 2.3): the
    *steady state* covers ``[lo, hi - max_lookahead)`` -- every steady
    hint's target is within bounds by construction -- and the *epilog*
    re-runs the unmodified body for the final iterations, whose pages the
    steady state already prefetched.

    This split is also where the paper's APPBT pathology lives: when the
    (assumed-large) trip count is actually tiny, ``hi - max_lookahead``
    falls below ``lo``, the steady loop never executes, and "the software
    pipeline never gets started" -- only the runtime-clamped prolog
    prefetch runs, one late page per entry (Section 4.1.1).

    Returns the replacement statement list.
    """
    if not plans:
        return [loop]

    # Distinct strip lengths, descending; each plan attaches to its level.
    strips_units = sorted(
        {plan.strip_iters * loop.step for plan in plans}, reverse=True
    )
    level_of = {unit: k for k, unit in enumerate(strips_units)}
    level_stmts: list[list[Stmt]] = [[] for _ in strips_units]
    prolog: list[Stmt] = []
    max_lookahead = 0

    for plan in plans:
        unit = plan.strip_iters * loop.step
        level = level_of[unit]
        level_var = strip_var(loop.var, level)
        lowers = chain_lowers(plan.inner_lowers)
        prolog.append(_prolog_hint(plan, loop, lowers, options))
        lookahead_units = plan.distance_strips * unit
        max_lookahead = max(max_lookahead, lookahead_units)
        target = hint_address(plan, level_var, lookahead_units, lowers)
        if plan.release:
            level_stmts[level].append(
                Hint(
                    HintKind.PREFETCH_RELEASE,
                    target,
                    npages=plan.pages_per_hint,
                    release_target=release_address(plan, level_var, unit, lowers),
                    release_npages=plan.pages_per_hint,
                )
            )
        else:
            level_stmts[level].append(
                Hint(HintKind.PREFETCH, target, npages=plan.pages_per_hint)
            )

    steady_upper = affine_sum(loop.upper, Const(max_lookahead), -1)
    steady = Loop(loop.var, loop.lower, steady_upper, loop.body, step=loop.step)
    epilog = Loop(
        loop.var,
        MaxExpr(loop.lower, steady_upper),
        loop.upper,
        loop.body,
        step=loop.step,
    )
    return prolog + [strip_mine(steady, strips_units, level_stmts), epilog]


def indirect_hints(work: Work, plans: Sequence[RefPlan]) -> list[Stmt]:
    """Per-iteration single-page prefetches preceding a work statement."""
    hints: list[Stmt] = []
    for plan in plans:
        var = plan.pipeline_loop.var
        mapping = {var: Var(var) + plan.lookahead_iters * plan.pipeline_loop.step}
        indices = tuple(
            subst_expr(ix, mapping, clamp_lookups=True) for ix in plan.ref.indices
        )
        hints.append(
            Hint(HintKind.PREFETCH, AddrOf(plan.ref.array, indices), npages=1)
        )
    return hints


_prolog_counter = [0]


def indirect_prolog(loop: Loop, plans: Sequence[RefPlan]) -> list[Stmt]:
    """Warm-up loops prefetching the first ``lookahead`` iterations."""
    out: list[Stmt] = []
    for plan in plans:
        if plan.pipeline_loop.loop_id != loop.loop_id:
            raise IRError("indirect prolog attached to the wrong loop")
        _prolog_counter[0] += 1
        pvar = f"{loop.var}__p{_prolog_counter[0]}"
        lowers = chain_lowers(plan.inner_lowers)
        mapping = {
            var: subst_expr(expr, {loop.var: Var(pvar)})
            for var, expr in lowers.items()
        }
        mapping[loop.var] = Var(pvar)
        indices = tuple(
            subst_expr(ix, mapping, clamp_lookups=True) for ix in plan.ref.indices
        )
        body = [Hint(HintKind.PREFETCH, AddrOf(plan.ref.array, indices), npages=1)]
        out.append(
            Loop(
                pvar,
                loop.lower,
                MinExpr(
                    affine_sum(
                        loop.lower,
                        Const(plan.lookahead_iters * loop.step),
                        1,
                    ),
                    loop.upper,
                ),
                body,
                step=loop.step,
            )
        )
    return out
