"""Two-version loops: the paper's proposed fix for symbolic bounds.

"This problem can be fixed through a straightforward extension of our
compiler algorithm whereby we create two versions of the loop, and choose
the proper one to execute by testing the loop bound at run-time."
(paper, Section 4.1.1)

The implementation mirrors that description: the pass compiles the program
twice -- once under the usual "symbolic trips are large" assumption and
once assuming they are small -- and wraps any top-level statement whose
planning was inexact in a runtime test of the offending loop's data span::

    if ((N - 0) * 8 > PAGE_SIZE) { <large-trip version> }
    else                         { <small-trip version> }

Only conditions whose free variables are program parameters can be hoisted
to the statement's position; inexact loops whose bounds depend on
enclosing loop variables are left on the default (large-trip) version,
matching what a simple compiler extension could safely do.
"""

from __future__ import annotations

from repro.core.analysis.planner import RefPlan
from repro.core.ir.expr import affine_scale, affine_sum
from repro.core.ir.nodes import Cmp, If, Loop, Stmt
from repro.core.ir.visit import walk_loops
from repro.core.options import CompilerOptions


def _loop_ids_under(stmt: Stmt) -> set[int]:
    if isinstance(stmt, Loop):
        return {lp.loop_id for lp in walk_loops([stmt])}
    return set()


def guard_condition(plan: RefPlan, options: CompilerOptions) -> Cmp | None:
    """``trip * bytes_per_iter > page_size`` for the inexact loop.

    Returns None when the condition cannot be evaluated at the top level
    (bounds referencing enclosing loop variables).
    """
    loop = plan.pipeline_loop
    span = affine_sum(loop.upper, loop.lower, -1)
    touched = affine_scale(span, max(plan.bytes_per_iter, 1))
    return Cmp(touched, ">", options.page_size * loop.step)


def wrap_two_version(
    original_top: list[Stmt],
    large_groups: list[list[Stmt]],
    small_groups: list[list[Stmt]],
    inexact_plans: list[RefPlan],
    options: CompilerOptions,
    top_level_params: set[str],
) -> list[Stmt]:
    """Merge the two compiled versions under runtime bound tests.

    ``large_groups[k]`` and ``small_groups[k]`` are the transformed
    replacements of ``original_top[k]`` under the large-trip and
    small-trip assumptions respectively.
    """
    inexact_ids = {p.pipeline_loop.loop_id for p in inexact_plans}
    plan_by_loop = {p.pipeline_loop.loop_id: p for p in inexact_plans}
    out: list[Stmt] = []
    for orig, large, small in zip(original_top, large_groups, small_groups):
        ids = _loop_ids_under(orig) & inexact_ids
        cond: Cmp | None = None
        for loop_id in sorted(ids):
            plan = plan_by_loop[loop_id]
            candidate = guard_condition(plan, options)
            if candidate is None:
                continue
            free = candidate.lhs.free_vars() | candidate.rhs.free_vars()
            if free <= top_level_params:
                cond = candidate
                break
        if cond is None:
            out.extend(large)
        else:
            out.append(If(cond, large, small))
    return out
