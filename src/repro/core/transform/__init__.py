"""Program transformations: strip mining, pipelining, releases, two-version."""

from repro.core.transform.pipeline import apply_dense_plans, indirect_hints, indirect_prolog
from repro.core.transform.stripmine import strip_mine
from repro.core.transform.subst import subst_expr

__all__ = [
    "subst_expr",
    "strip_mine",
    "apply_dense_plans",
    "indirect_hints",
    "indirect_prolog",
]
