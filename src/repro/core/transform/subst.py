"""Expression substitution for hint-address construction.

When the compiler builds a prefetch address from a data reference, it
replaces the pipeline-loop variable with a lookahead expression and every
inner-loop variable with that loop's lower bound (the address the
reference will have when the strip begins).  Substitution into an
:class:`ElemOf` lookup also turns on clamping, standing in for the epilog
guard a real compiler would emit around out-of-range lookaheads.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.ir.expr import (
    Affine,
    CeilDiv,
    Const,
    ElemOf,
    Expr,
    MaxExpr,
    MinExpr,
    Var,
    affine_scale,
    affine_sum,
)
from repro.errors import IRError


def subst_expr(
    expr: Expr, mapping: Mapping[str, Expr], clamp_lookups: bool = False
) -> Expr:
    """Replace variables per ``mapping``; unmapped variables stay put."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Affine):
        result: Expr = Const(expr.const)
        for name, coeff in expr.terms.items():
            replacement = mapping.get(name, Var(name))
            result = affine_sum(result, affine_scale(replacement, coeff), 1)
        return result
    if isinstance(expr, ElemOf):
        return ElemOf(
            expr.array,
            subst_expr(expr.index, mapping, clamp_lookups),
            clamp=expr.clamp or clamp_lookups,
        )
    if isinstance(expr, MinExpr):
        return MinExpr(
            subst_expr(expr.a, mapping, clamp_lookups),
            subst_expr(expr.b, mapping, clamp_lookups),
        )
    if isinstance(expr, MaxExpr):
        return MaxExpr(
            subst_expr(expr.a, mapping, clamp_lookups),
            subst_expr(expr.b, mapping, clamp_lookups),
        )
    if isinstance(expr, CeilDiv):
        return CeilDiv(subst_expr(expr.a, mapping, clamp_lookups), expr.divisor)
    raise IRError(f"cannot substitute into expression {expr!r}")


def chain_lowers(inner_lowers: Mapping[str, Expr]) -> dict[str, Expr]:
    """Resolve inner-loop lower bounds that reference other inner loops.

    Triangular nests bind an inner loop's lower bound to an outer-inner
    variable (``for j in range(i, N)``); repeatedly substituting the known
    lowers flattens such chains so the final mapping only mentions
    variables in scope at the pipeline loop.
    """
    resolved = dict(inner_lowers)
    for _ in range(len(resolved)):
        changed = False
        for var, expr in list(resolved.items()):
            if expr.free_vars() & resolved.keys():
                resolved[var] = subst_expr(expr, resolved)
                changed = True
        if not changed:
            break
    return resolved
