"""Strip mining.

"We use strip mining rather than loop unrolling to isolate these faulting
iterations, since replicating a loop body 1000 times or more is clearly
infeasible." (paper, Section 2.3)

Given a loop, a descending list of strip lengths (in loop-variable units),
and per-level hint statements, :func:`strip_mine` builds the nested
structure of Figure 2(b)::

    for (i__s0 = lo; i__s0 < hi; i__s0 += S0) {
      <level-0 hints>
      for (i__s1 = i__s0; i__s1 < min(i__s0 + S0, hi); i__s1 += S1) {
        <level-1 hints>
        for (i = i__s1; i < min(i__s1 + S1, hi); i += step) {
          <original body>
        }
      }
    }

The innermost loop keeps the original variable name, so the body (and any
hints already inserted into it) needs no rewriting, and every original
iteration executes exactly once in the original order -- the property the
access-trace equivalence tests pin down.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ir.expr import MinExpr, Var
from repro.core.ir.nodes import Loop, Stmt
from repro.errors import IRError


def strip_var(var: str, level: int) -> str:
    """Name of the level-``level`` strip-mined control variable."""
    return f"{var}__s{level}"


def strip_mine(
    loop: Loop,
    strip_units: Sequence[int],
    level_stmts: Sequence[Sequence[Stmt]],
) -> Loop:
    """Strip-mine ``loop`` once per entry of ``strip_units``.

    ``strip_units`` must be strictly descending multiples of ``loop.step``
    expressed in loop-variable units (``strip_iters * step``).
    ``level_stmts[k]`` is placed at the top of level ``k``'s body -- this
    is where the pipelining stage puts its per-strip hints.  Returns the
    outermost rebuilt loop.
    """
    if not strip_units:
        raise IRError("strip_mine needs at least one strip length")
    if len(level_stmts) != len(strip_units):
        raise IRError("strip_mine needs one statement list per strip level")
    last = None
    for unit in strip_units:
        if unit <= 0 or unit % loop.step:
            raise IRError(
                f"strip length {unit} must be a positive multiple of the "
                f"loop step {loop.step}"
            )
        if last is not None and unit >= last:
            raise IRError(
                f"strip lengths must be strictly descending, got {list(strip_units)}"
            )
        last = unit

    # Build innermost-out.  The innermost loop keeps the original variable.
    innermost_ctrl = Var(strip_var(loop.var, len(strip_units) - 1))
    current = Loop(
        loop.var,
        innermost_ctrl,
        MinExpr(innermost_ctrl + strip_units[-1], loop.upper),
        loop.body,
        step=loop.step,
    )

    for level in range(len(strip_units) - 1, -1, -1):
        var_k = strip_var(loop.var, level)
        if level == 0:
            lower, upper = loop.lower, loop.upper
        else:
            outer_ctrl = Var(strip_var(loop.var, level - 1))
            lower = outer_ctrl
            upper = MinExpr(outer_ctrl + strip_units[level - 1], loop.upper)
        body = list(level_stmts[level]) + [current]
        current = Loop(var_k, lower, upper, body, step=strip_units[level])
    return current
