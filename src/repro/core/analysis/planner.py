"""The prefetch planner: which references get which hints, where.

For every data reference the planner decides (paper Section 2.3):

1. whether it needs prefetching at all (arrays the compiler believes stay
   memory-resident are skipped; so are references that touch at most one
   page);
2. which loop to software-pipeline across -- "the first surrounding loop
   which touches more than a page of the given array";
3. the strip length (iterations per block prefetch), the number of pages
   per block hint, and the prefetch distance in strips (dense references)
   or iterations (indirect references);
4. whether to bundle a trailing release with the steady-state prefetch.

Group locality is resolved here: only each group's leader is planned.

Decisions about loops with runtime-only bounds are made with the
``assumed_symbolic_trip`` guess and flagged inexact; the two-version-loop
extension consumes those flags.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.analysis.bounds import iteration_cost_us, trip_count
from repro.core.analysis.locality import (
    footprint_bytes,
    group_references,
    is_affine,
    is_indirect_in,
    ref_stride_bytes,
)
from repro.core.ir.nodes import ArrayRef, Loop, Program, Work
from repro.core.ir.visit import walk_refs
from repro.core.options import CompilerOptions


class _AssumedEnv(dict):
    """Compile-time bindings that answer unknown names with a guess.

    The compiler must produce *some* plan for symbolically-sized loops and
    arrays; like the paper's compiler it guesses the bounds are large.
    """

    def __init__(self, known: Mapping[str, int], assumed: int) -> None:
        super().__init__(known)
        self.assumed = assumed

    def __missing__(self, key: str) -> int:
        return self.assumed

    def get(self, key, default=None):  # Mapping.get bypasses __missing__
        if key in self:
            return dict.__getitem__(self, key)
        return self.assumed


class PlanKind(enum.Enum):
    """What the planner decided for one reference."""

    DENSE = "dense"  # block-prefetched via strip mining + pipelining
    INDIRECT = "indirect"  # one page per iteration, fixed lookahead
    COVERED = "covered"  # group member covered by its leader
    NONE = "none"  # no prefetch


@dataclass
class RefPlan:
    """The planning outcome for one static reference."""

    ref: ArrayRef
    kind: PlanKind
    reason: str
    work: Work | None = None
    pipeline_loop: Loop | None = None
    #: Dense: iterations of the pipeline loop per block hint.
    strip_iters: int = 0
    #: Dense: pages per block hint.
    pages_per_hint: int = 0
    #: Dense: prefetch distance in strips.
    distance_strips: int = 0
    #: Dense: compile-time byte consumption per pipeline-loop iteration.
    bytes_per_iter: int = 0
    #: Indirect: lookahead in iterations of the pipeline loop.
    lookahead_iters: int = 0
    #: Dense: bundle a trailing release with the steady-state prefetch.
    release: bool = False
    #: The pipeline-loop decision relied on an assumed (inexact) trip.
    inexact: bool = False
    #: Inner-loop var lower bounds, for hint-address substitution.
    inner_lowers: dict = field(default_factory=dict)


@dataclass
class ProgramPlan:
    """All planning results for one program."""

    plans: list[RefPlan]
    #: Dense plans grouped by the pipeline loop they transform.
    dense_by_loop: dict[int, list[RefPlan]]
    #: Indirect plans grouped by the Work statement they precede.
    indirect_by_work: dict[int, list[RefPlan]]
    #: Loops whose pipeline decision was inexact (two-version candidates).
    inexact_loops: list[RefPlan]

    def summary(self) -> str:
        lines = []
        for plan in self.plans:
            target = plan.ref.array.name
            if plan.kind is PlanKind.DENSE:
                lines.append(
                    f"{target}: dense, pipeline={plan.pipeline_loop.var}, "
                    f"strip={plan.strip_iters} iters, "
                    f"{plan.pages_per_hint} pages/hint, "
                    f"distance={plan.distance_strips} strips"
                    + (", +release" if plan.release else "")
                    + (", INEXACT bounds" if plan.inexact else "")
                )
            elif plan.kind is PlanKind.INDIRECT:
                lines.append(
                    f"{target}: indirect, pipeline={plan.pipeline_loop.var}, "
                    f"lookahead={plan.lookahead_iters} iterations"
                )
            else:
                lines.append(f"{target}: {plan.kind.value} ({plan.reason})")
        return "\n".join(lines)


def _array_bytes_estimate(ref: ArrayRef, env: Mapping[str, int]) -> int:
    total = ref.array.elem_size
    for dim in ref.array.shape:
        total *= dim if isinstance(dim, int) else env.get(dim)
    return total


def _pipeline_search(
    ref: ArrayRef,
    path: tuple[Loop, ...],
    env: _AssumedEnv,
    exact_known: Mapping[str, int],
    options: CompilerOptions,
) -> tuple[int, bool] | None:
    """Find the pipeline loop index in ``path`` (innermost first).

    Returns ``(index, inexact)`` or None when no loop touches more than a
    page of the array.  ``inexact`` is True when the chosen footprint
    depended on assumed values.
    """
    for k in range(len(path) - 1, -1, -1):
        fp_assumed = footprint_bytes(ref, path[k:], env, options)
        if fp_assumed is None or fp_assumed <= options.page_size:
            continue
        fp_exact = footprint_bytes(ref, path[k:], exact_known, options)
        trips_exact = all(
            trip_count(lp, exact_known, options).exact for lp in path[k:]
        )
        inexact = fp_exact is None or not trips_exact
        return k, inexact
    return None


def plan_program(program: Program, options: CompilerOptions) -> ProgramPlan:
    """Plan every reference in ``program``."""
    exact_known = dict(program.compile_time_params)
    env = _AssumedEnv(exact_known, options.assumed_symbolic_trip)

    # Collect references with their contexts.
    entries = list(walk_refs(program.body))

    # First pass: find each reference's pipeline loop (or lack of one).
    pre: list[tuple[ArrayRef, Work, tuple[Loop, ...], tuple[int, bool] | None, str]] = []
    for ref, workstmt, path in entries:
        if not path:
            pre.append((ref, workstmt, path, None, "reference outside any loop"))
            continue
        nbytes = _array_bytes_estimate(ref, env)
        if nbytes <= options.effective_memory_bytes and is_affine(ref):
            pre.append(
                (ref, workstmt, path, None,
                 "array assumed to stay memory-resident (fits effective memory)")
            )
            continue
        if is_affine(ref):
            found = _pipeline_search(ref, path, env, exact_known, options)
            reason = "" if found else "touches at most one page across the nest"
            pre.append((ref, workstmt, path, found, reason))
        else:
            # Indirect: pipeline across the innermost loop feeding the
            # index array lookup.
            k = next(
                (
                    i
                    for i in range(len(path) - 1, -1, -1)
                    if is_indirect_in(ref, path[i].var)
                ),
                None,
            )
            if k is None:
                pre.append(
                    (ref, workstmt, path, None,
                     "indirect subscript independent of every loop")
                )
            else:
                pre.append((ref, workstmt, path, (k, False), "indirect"))

    plans: list[RefPlan] = []
    dense_by_loop: dict[int, list[RefPlan]] = {}
    indirect_by_work: dict[int, list[RefPlan]] = {}
    inexact_loops: list[RefPlan] = []

    # Group dense candidates per (pipeline loop, enclosing path) so group
    # locality can elect leaders.
    dense_candidates: dict[int, list[tuple[ArrayRef, Work, tuple[Loop, ...], int, bool]]] = {}
    seen_indirect: set[tuple] = set()
    for ref, workstmt, path, found, reason in pre:
        if found is None:
            plans.append(RefPlan(ref=ref, kind=PlanKind.NONE, reason=reason, work=workstmt))
            continue
        k, inexact = found
        if is_affine(ref):
            dense_candidates.setdefault(path[k].loop_id, []).append(
                (ref, workstmt, path, k, inexact)
            )
        else:
            # A read and a write of the same indirect element (or repeated
            # uses in one statement) share one prefetch: group locality in
            # its degenerate, textual form.
            key = (
                id(workstmt),
                ref.array.name,
                tuple(repr(ix) for ix in ref.indices),
            )
            if key in seen_indirect:
                plans.append(
                    RefPlan(
                        ref=ref,
                        kind=PlanKind.COVERED,
                        reason="identical indirect reference already prefetched",
                        work=workstmt,
                        pipeline_loop=path[k],
                    )
                )
                continue
            seen_indirect.add(key)
            plan = _plan_indirect(ref, workstmt, path, k, env, options)
            plans.append(plan)
            indirect_by_work.setdefault(id(workstmt), []).append(plan)

    for loop_id, candidates in dense_candidates.items():
        refs = [c[0] for c in candidates]
        path0 = candidates[0][2]
        loop_vars = [lp.var for lp in path0]
        groups, ungrouped = group_references(refs, loop_vars, env, options)
        leaders = {id(g.leader) for g in groups}
        covered = {
            id(member)
            for g in groups
            for member in g.members
            if id(member) not in leaders
        }
        for ref, workstmt, path, k, inexact in candidates:
            if id(ref) in covered:
                plans.append(
                    RefPlan(
                        ref=ref,
                        kind=PlanKind.COVERED,
                        reason="group locality: covered by the group leader",
                        work=workstmt,
                        pipeline_loop=path[k],
                    )
                )
                continue
            plan = _plan_dense(ref, workstmt, path, k, inexact, env, options)
            plans.append(plan)
            if plan.kind is PlanKind.DENSE:
                dense_by_loop.setdefault(path[k].loop_id, []).append(plan)
                if plan.inexact:
                    inexact_loops.append(plan)

    return ProgramPlan(
        plans=plans,
        dense_by_loop=dense_by_loop,
        indirect_by_work=indirect_by_work,
        inexact_loops=inexact_loops,
    )


def _inner_lower_bounds(path: tuple[Loop, ...], k: int) -> dict:
    """Lower-bound expressions of the loops inside the pipeline loop."""
    return {lp.var: lp.lower for lp in path[k + 1:]}


def _plan_dense(
    ref: ArrayRef,
    workstmt: Work,
    path: tuple[Loop, ...],
    k: int,
    inexact: bool,
    env: _AssumedEnv,
    options: CompilerOptions,
) -> RefPlan:
    loop = path[k]
    stride = ref_stride_bytes(ref, loop.var, env)
    if stride is None or stride == 0:
        return RefPlan(
            ref=ref,
            kind=PlanKind.NONE,
            reason="no analyzable stride along the pipeline loop",
            work=workstmt,
        )
    # Data consumed per pipeline-loop iteration: the inner loops' footprint
    # when they traverse the array, otherwise the pipeline stride itself.
    inner_fp = footprint_bytes(ref, path[k + 1:], env, options) or 0
    stride_bytes = abs(stride) * loop.step
    block_bytes = options.block_pages * options.page_size
    if inner_fp > options.page_size:
        # Inner loops sweep more than a page per iteration (wide rows):
        # block-prefetch the whole per-iteration range, one hint per
        # iteration.
        bytes_per_iter = max(inner_fp, ref.array.elem_size)
        strip_iters = 1
        pages_per_hint = -(-bytes_per_iter // options.page_size)
    elif stride_bytes >= options.page_size:
        # No spatial locality: each iteration lands on a different page
        # (the z-sweeps of the ADI solvers); prefetch that page only.
        bytes_per_iter = stride_bytes
        strip_iters = 1
        pages_per_hint = 1
    else:
        # Spatial locality: page faults only on page-crossing iterations;
        # strip-mine to one block prefetch per ``block_pages`` pages.
        bytes_per_iter = max(stride_bytes, ref.array.elem_size)
        strip_iters = max(1, block_bytes // bytes_per_iter)
        pages_per_hint = -(-(strip_iters * bytes_per_iter) // options.page_size)

    strip_cost = strip_iters * iteration_cost_us(loop.body, env, options)
    if strip_cost <= 0:
        distance = options.max_distance_strips
    else:
        distance = math.ceil(options.fault_latency_us / strip_cost)
    distance = max(options.min_distance_strips,
                   min(options.max_distance_strips, distance))

    release = False
    if options.release_policy == "aggressive":
        release = True
    elif options.release_policy == "streaming":
        # Only for top-level sequential streams: the pipeline loop is the
        # outermost loop of the nest (no surrounding loop will re-traverse
        # the data soon) and the reference consumes at most a page per
        # iteration (a genuine stream, not a strided sweep).
        release = k == 0 and bytes_per_iter <= options.page_size

    return RefPlan(
        ref=ref,
        kind=PlanKind.DENSE,
        reason="dense reference with spatial locality",
        work=workstmt,
        pipeline_loop=loop,
        strip_iters=strip_iters,
        pages_per_hint=pages_per_hint,
        distance_strips=distance,
        bytes_per_iter=bytes_per_iter,
        release=release,
        inexact=inexact,
        inner_lowers=_inner_lower_bounds(path, k),
    )


def _plan_indirect(
    ref: ArrayRef,
    workstmt: Work,
    path: tuple[Loop, ...],
    k: int,
    env: _AssumedEnv,
    options: CompilerOptions,
) -> RefPlan:
    loop = path[k]
    iter_cost = iteration_cost_us(loop.body, env, options)
    if iter_cost <= 0:
        lookahead = options.max_indirect_distance
    else:
        lookahead = math.ceil(options.fault_latency_us / iter_cost)
    lookahead = max(1, min(options.max_indirect_distance, lookahead))
    return RefPlan(
        ref=ref,
        kind=PlanKind.INDIRECT,
        reason="indirect reference: stride unknowable at compile time",
        work=workstmt,
        pipeline_loop=loop,
        lookahead_iters=lookahead,
        inner_lowers=_inner_lower_bounds(path, k),
    )
