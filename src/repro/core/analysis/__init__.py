"""Compiler analyses: bounds/cost estimation, locality, prefetch planning."""

from repro.core.analysis.bounds import iteration_cost_us, trip_count
from repro.core.analysis.locality import (
    footprint_bytes,
    group_references,
    is_indirect_in,
    ref_stride_bytes,
)
from repro.core.analysis.planner import PlanKind, RefPlan, plan_program

__all__ = [
    "trip_count",
    "iteration_cost_us",
    "ref_stride_bytes",
    "is_indirect_in",
    "footprint_bytes",
    "group_references",
    "RefPlan",
    "PlanKind",
    "plan_program",
]
