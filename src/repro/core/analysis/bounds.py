"""Trip-count and iteration-cost estimation under compile-time knowledge.

Everything here sees only the program's *compile-time* parameter bindings.
Trip counts that depend on runtime-only values come back inexact, filled
with the :attr:`CompilerOptions.assumed_symbolic_trip` guess -- the paper's
compiler makes exactly this kind of guess, and Section 4.1.1 attributes
APPBT's lost coverage to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.ir.expr import affine_sum
from repro.core.ir.nodes import Hint, If, Loop, Stmt, Work
from repro.core.options import CompilerOptions


@dataclass(frozen=True)
class TripEstimate:
    """A loop trip count as the compiler sees it."""

    count: int
    exact: bool


def trip_count(
    loop: Loop, known: Mapping[str, int], options: CompilerOptions
) -> TripEstimate:
    """Estimated iterations of ``loop`` under compile-time knowledge."""
    try:
        span = affine_sum(loop.upper, loop.lower, -1).try_const(known)
    except Exception:
        span = None
    if span is None:
        return TripEstimate(options.assumed_symbolic_trip, exact=False)
    if span <= 0:
        return TripEstimate(0, exact=True)
    return TripEstimate(-(-span // loop.step), exact=True)


def iteration_cost_us(
    body: Sequence[Stmt], known: Mapping[str, int], options: CompilerOptions
) -> float:
    """Estimated CPU cost of executing ``body`` once.

    This is the compiler's *static* schedule estimate used to choose
    prefetch distances (software pipelining needs to know how long one
    strip of computation takes relative to the fault latency).  Hint
    statements are ignored: the overhead of issuing prefetches is not part
    of the useful-work schedule.
    """
    total = 0.0
    for stmt in body:
        if isinstance(stmt, Work):
            total += stmt.cost_us
        elif isinstance(stmt, Loop):
            trips = trip_count(stmt, known, options)
            total += trips.count * iteration_cost_us(stmt.body, known, options)
        elif isinstance(stmt, If):
            # Assume the then-branch (two-version loops pick one at runtime).
            total += iteration_cost_us(stmt.then_body, known, options)
        elif isinstance(stmt, Hint):
            continue
    return total
