"""Locality analysis, re-parameterized from caches to paged memory.

The paper's compiler takes Mowry's cache-prefetching locality analysis and
swaps in the page size for the line size (Section 2.3).  The three kinds
of reuse it distinguishes:

* **self-spatial**: the reference's byte stride along a loop is smaller
  than a page, so faults occur only on iterations that cross page
  boundaries;
* **self-temporal**: the loop's variable does not appear in the subscript
  at all, so the same data is reused every iteration;
* **group**: several references to the same array differ only by a small
  constant offset and "effectively share the same data" -- only the
  *leading* reference needs a prefetch, and the *trailing* reference marks
  the release point.

Indirect references (a subscript containing :class:`ElemOf`) defeat all of
this -- their stride is data-dependent -- which is precisely why the paper
prefetches them one page per iteration and leans on the run-time layer to
drop the mostly-unnecessary results (Sections 2.3, 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.analysis.bounds import trip_count
from repro.core.ir.expr import Affine, Const, ElemOf, Var
from repro.core.ir.nodes import ArrayRef, Loop
from repro.core.options import CompilerOptions


def _affine_coeff(index, var: str) -> int | None:
    """Coefficient of ``var`` in one subscript, None if non-affine."""
    if isinstance(index, Const):
        return 0
    if isinstance(index, Var):
        return 1 if index.name == var else 0
    if isinstance(index, Affine):
        return index.coeff(var)
    if isinstance(index, ElemOf):
        # Data-dependent: unknown stride if the variable feeds the lookup.
        return None if var in index.free_vars() else 0
    return None


def is_indirect_in(ref: ArrayRef, var: str) -> bool:
    """Does ``ref``'s address depend on ``var`` through an index array?"""
    return any(
        isinstance(ix, ElemOf) and var in ix.free_vars() for ix in ref.indices
    )


def is_affine(ref: ArrayRef) -> bool:
    """True when every subscript is affine (no indirect lookups)."""
    return not any(isinstance(ix, ElemOf) for ix in ref.indices)


def ref_stride_bytes(
    ref: ArrayRef, var: str, known: Mapping[str, int]
) -> int | None:
    """Byte stride of ``ref`` per unit increment of ``var``.

    None when the stride is unknowable at compile time: an indirect
    subscript involving ``var``, or a dimension stride that depends on a
    runtime-only parameter.
    """
    strides = ref.array.compile_time_strides(known)
    total = 0
    for index, dim_stride in zip(ref.indices, strides):
        coeff = _affine_coeff(index, var)
        if coeff is None:
            return None
        if coeff == 0:
            continue
        if dim_stride is None:
            return None
        total += coeff * dim_stride
    return total * ref.array.elem_size


def footprint_bytes(
    ref: ArrayRef,
    loops: Sequence[Loop],
    known: Mapping[str, int],
    options: CompilerOptions,
) -> int | None:
    """Bounding-box size of the data ``ref`` touches over ``loops``.

    Standard bounding-box volume: ``sum((trip_l - 1) * |stride_l|) +
    elem_size``.  None for indirect references (unknown range).
    """
    total = ref.array.elem_size
    for lp in loops:
        stride = ref_stride_bytes(ref, lp.var, known)
        if stride is None:
            return None
        if stride == 0:
            continue
        trips = trip_count(lp, known, options)
        total += (max(trips.count, 1) - 1) * abs(stride) * lp.step
    return total


def const_offset_bytes(ref: ArrayRef, known: Mapping[str, int]) -> int | None:
    """Constant part of the reference's byte offset (for group locality)."""
    strides = ref.array.compile_time_strides(known)
    total = 0
    for index, dim_stride in zip(ref.indices, strides):
        if isinstance(index, Const):
            const = index.value
        elif isinstance(index, Var):
            const = 0
        elif isinstance(index, Affine):
            const = index.const
        else:
            return None
        if const:
            if dim_stride is None:
                return None
            total += const * dim_stride
    return total * ref.array.elem_size


def _coeff_signature(
    ref: ArrayRef, loop_vars: Sequence[str], known: Mapping[str, int]
) -> tuple | None:
    """Per-loop-variable stride signature; None for indirect references."""
    sig = []
    for var in loop_vars:
        stride = ref_stride_bytes(ref, var, known)
        if stride is None:
            return None
        sig.append(stride)
    return tuple(sig)


@dataclass
class RefGroup:
    """References sharing group locality; only the leader is prefetched."""

    array_name: str
    members: list[ArrayRef]
    leader: ArrayRef
    trailer: ArrayRef
    signature: tuple


def group_references(
    refs: Sequence[ArrayRef],
    loop_vars: Sequence[str],
    known: Mapping[str, int],
    options: CompilerOptions,
) -> tuple[list[RefGroup], list[ArrayRef]]:
    """Partition references into locality groups.

    Returns ``(groups, ungrouped)``: affine references to the same array
    with identical stride signatures and constant offsets within one page
    form a group; indirect references come back in ``ungrouped``.

    The leader is the member that touches new data first: the one with the
    largest constant offset when travel is forward (positive stride along
    the fastest-varying loop), smallest when backward.
    """
    groups: dict[tuple, list[tuple[ArrayRef, int]]] = {}
    ungrouped: list[ArrayRef] = []
    for ref in refs:
        sig = _coeff_signature(ref, loop_vars, known)
        offset = const_offset_bytes(ref, known)
        if sig is None or offset is None:
            ungrouped.append(ref)
            continue
        groups.setdefault((ref.array.name, sig), []).append((ref, offset))

    out: list[RefGroup] = []
    for (array_name, sig), members in groups.items():
        members.sort(key=lambda pair: pair[1])
        # Split runs whose neighbouring offsets are a page or more apart:
        # those do not "effectively share the same data".
        runs: list[list[tuple[ArrayRef, int]]] = [[members[0]]]
        for ref, offset in members[1:]:
            if offset - runs[-1][-1][1] < options.page_size:
                runs[-1].append((ref, offset))
            else:
                runs.append([(ref, offset)])
        travel = next((s for s in sig if s != 0), 0)
        for run in runs:
            refs_only = [r for r, _ in run]
            if travel >= 0:
                leader, trailer = run[-1][0], run[0][0]
            else:
                leader, trailer = run[0][0], run[-1][0]
            out.append(
                RefGroup(
                    array_name=array_name,
                    members=refs_only,
                    leader=leader,
                    trailer=trailer,
                    signature=sig,
                )
            )
    return out, ungrouped
