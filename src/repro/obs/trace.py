"""The structured trace ring buffer.

Every interesting transition inside a run -- a fault, a prefetch being
issued / filtered / dropped, a release, an eviction, a disk request --
can be recorded as one :class:`TraceEvent` in a fixed-capacity ring
buffer.  The buffer never allocates after construction beyond the event
tuples themselves, wraps around silently (keeping the *newest* events,
counting what it overwrote), and costs nothing when absent: every
emitting component holds an observer reference that is ``None`` unless
tracing was requested, so the hot paths pay one identity check at most.

Events are flat and fixed-schema on purpose.  Each carries the simulated
timestamp, a :class:`TraceKind`, a page number, a page count, one
kind-specific float ``value``, and one kind-specific string ``tag``;
``docs/observability.md`` documents the meaning of ``value``/``tag`` per
kind, and ``scripts/check_docs.py`` keeps that table honest.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple

from repro.errors import MachineError


class TraceKind(str, enum.Enum):
    """What one trace event records (see docs/observability.md)."""

    #: A demand access that was not a plain hit: any of the paper's
    #: fault classes (tag carries the :class:`AccessOutcome` value).
    FAULT = "fault"
    #: A prefetch run handed to the OS (one event per contiguous run
    #: actually sent to the disks).
    PREFETCH_ISSUED = "prefetch_issued"
    #: Prefetched pages dropped by the run-time layer's bit-vector check.
    PREFETCH_FILTERED = "prefetch_filtered"
    #: A prefetch request skipped wholesale by adaptive suppression.
    PREFETCH_SUPPRESSED = "prefetch_suppressed"
    #: A prefetch the OS dropped because no frame was free.
    PREFETCH_DROPPED = "prefetch_dropped"
    #: A prefetch satisfied by reclaiming the page from the free list.
    PREFETCH_RECLAIMED = "prefetch_reclaimed"
    #: A prefetch for a page the OS found already resident.
    PREFETCH_UNNECESSARY = "prefetch_unnecessary"
    #: One release call reaching the OS (npages = pages actually freed).
    RELEASE = "release"
    #: One page evicted (tag: "fault", "daemon", or "pressure").
    EVICTION = "eviction"
    #: One request submitted to a disk (tag: "disk<i>:<fault|prefetch|write>").
    DISK_REQUEST = "disk_request"
    #: One vectorized event chunk replayed by the machine (npages = length).
    CHUNK = "chunk"
    #: A transient read error retried with backoff (fault injection only).
    DISK_RETRY = "disk_retry"
    #: A request served via the penalized reconstruction path (dead disk
    #: or retries exhausted; fault injection only).
    DISK_DEGRADED = "disk_degraded"
    #: A prefetch hint system call that failed / timed out (fault
    #: injection only).
    HINT_FAILED = "hint_failed"
    #: The run-time layer entering or re-probing out of demand-paging
    #: fallback (tag: "enter" or "reprobe"; fault injection only).
    HINT_FALLBACK = "hint_fallback"
    #: A demand fault stalled waiting for a pinned in-flight prefetch to
    #: arrive so its frame could be evicted (value = stall microseconds;
    #: vpage = -1, the wait is not attributable to one page).
    STALL_FRAME_WAIT = "stall_frame_wait"
    #: One crash-consistent snapshot written (value = payload bytes;
    #: tag = "seq<N>"; vpage = -1).  Pure observation: a checkpoint
    #: costs no simulated time.
    CHECKPOINT_WRITE = "checkpoint_write"
    #: A run resumed from a snapshot (value = snapshot cycle; tag =
    #: "seq<N>"; vpage = -1).  First event of a resumed incarnation.
    CHECKPOINT_RESTORE = "checkpoint_restore"


class TraceEvent(NamedTuple):
    """One entry of the ring buffer (flat, fixed schema)."""

    #: Simulated time of the event, microseconds.
    ts_us: float
    #: The event kind (a :class:`TraceKind` -- serialized as its value).
    kind: TraceKind
    #: Virtual page the event concerns, or -1 when not page-specific.
    vpage: int
    #: Page count the event covers (1 unless the kind says otherwise).
    npages: int
    #: Kind-specific number (stall microseconds, queue delay, ...).
    value: float
    #: Kind-specific discriminator ("nonprefetched_fault", "disk0:write", ...).
    tag: str


class TraceBuffer:
    """Fixed-capacity ring buffer of :class:`TraceEvent`.

    ``emit`` appends; once ``capacity`` events have been written the
    buffer wraps and the oldest events are overwritten (``dropped``
    counts them).  ``events()`` returns the surviving events oldest
    first.  A buffer constructed with ``enabled=False`` is a pure no-op
    recorder -- components additionally skip the call entirely when no
    observer is attached, so disabled-mode cost is a single ``is None``
    check on their side.
    """

    __slots__ = ("capacity", "enabled", "_ring", "_next", "_total")

    def __init__(self, capacity: int = 65536, enabled: bool = True) -> None:
        if capacity <= 0:
            raise MachineError(f"trace buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._ring: list[TraceEvent | None] = [None] * capacity
        self._next = 0
        self._total = 0

    # ------------------------------------------------------------------

    def emit(
        self,
        ts_us: float,
        kind: TraceKind,
        vpage: int = -1,
        npages: int = 1,
        value: float = 0.0,
        tag: str = "",
    ) -> None:
        """Record one event (drops the oldest when the ring is full)."""
        if not self.enabled:
            return
        self._ring[self._next] = TraceEvent(ts_us, kind, vpage, npages, value, tag)
        self._next = (self._next + 1) % self.capacity
        self._total += 1

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def total_emitted(self) -> int:
        """Events ever emitted, including any the wraparound discarded."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events lost to wraparound."""
        return max(0, self._total - self.capacity)

    def events(self) -> list[TraceEvent]:
        """Surviving events, oldest first."""
        if self._total < self.capacity:
            return [e for e in self._ring[: self._next] if e is not None]
        tail = self._ring[self._next:] + self._ring[: self._next]
        return [e for e in tail if e is not None]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def counts_by_kind(self) -> dict[str, int]:
        """Surviving event counts keyed by kind value (for summaries)."""
        counts: dict[str, int] = {}
        for event in self.events():
            key = event.kind.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def clear(self) -> None:
        """Forget everything recorded so far (capacity is kept)."""
        self._ring = [None] * self.capacity
        self._next = 0
        self._total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceBuffer(capacity={self.capacity}, kept={len(self)}, "
                f"total={self._total})")
