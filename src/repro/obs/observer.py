"""The observer: one trace buffer plus one metrics registry per run.

Components (machine, memory manager, run-time layer, disk array) accept
an optional :class:`Observer`.  When it is ``None`` -- the default
everywhere -- they emit nothing and pay a single ``is None`` check on
their slow paths only, which is what keeps tier-1 timings unchanged.
When attached, the observer receives typed :class:`TraceKind` events and
feeds the three live histograms that cannot be recomputed after the run:
stall latency, prefetch timeliness, and disk queue delay.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BOUNDS_US,
    TIMELINESS_BOUNDS_US,
    MetricsRegistry,
    OBS_METRIC_NAMES,
)
from repro.obs.trace import TraceBuffer, TraceKind


class Observer:
    """Bundles the trace buffer and the metrics registry of one run."""

    __slots__ = ("trace", "metrics", "stall_latency", "prefetch_to_use",
                 "disk_queue_delay", "retry_backoff")

    def __init__(
        self,
        capacity: int = 65536,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.trace = TraceBuffer(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Pre-bound live histograms so hot-ish paths skip the registry
        # lookup.  Names must stay in sync with OBS_METRIC_NAMES.
        self.stall_latency = self.metrics.histogram(
            "obs.stall_latency_us", DEFAULT_BOUNDS_US
        )
        self.prefetch_to_use = self.metrics.histogram(
            "obs.prefetch_to_use_us", TIMELINESS_BOUNDS_US
        )
        self.disk_queue_delay = self.metrics.histogram(
            "obs.disk_queue_delay_us", DEFAULT_BOUNDS_US
        )
        self.retry_backoff = self.metrics.histogram(
            "obs.retry_backoff_us", DEFAULT_BOUNDS_US
        )
        assert all(name in self.metrics for name in OBS_METRIC_NAMES)

    def emit(
        self,
        ts_us: float,
        kind: TraceKind,
        vpage: int = -1,
        npages: int = 1,
        value: float = 0.0,
        tag: str = "",
    ) -> None:
        """Record one trace event at simulated time ``ts_us``."""
        self.trace.emit(ts_us, kind, vpage, npages, value, tag)
