"""The observer: one trace buffer plus one metrics registry per run.

Components (machine, memory manager, run-time layer, disk array) accept
an optional :class:`Observer`.  When it is ``None`` -- the default
everywhere -- they emit nothing and pay a single ``is None`` check on
their slow paths only, which is what keeps tier-1 timings unchanged.
When attached, the observer receives typed :class:`TraceKind` events and
feeds the live histograms that cannot be recomputed after the run:
stall latency, prefetch timeliness, disk queue delay, retry backoff.

Beyond the flat event stream, the observer carries the *correlation
context* that the causal span layer (:mod:`repro.obs.spans`) needs to
label lifecycles without adding a single trace event:

* a **loop-context stack** pushed/popped by the interpreter around each
  loop, so every event can be tagged with the loop nest it happened in;
* a **segment map** registered by ``Machine.map_segment`` so a virtual
  page resolves to the array it belongs to;
* an optional **sink** -- any object with an ``on_event`` method (a
  :class:`~repro.obs.spans.SpanBuilder`) that sees every emit as it
  happens, immune to ring-buffer wraparound.

None of this changes what gets recorded in the ring, so the golden
trace stays bit-identical whether or not a sink is attached.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DEFAULT_BOUNDS_US,
    TIMELINESS_BOUNDS_US,
    MetricsRegistry,
    OBS_METRIC_NAMES,
)
from repro.obs.trace import TraceBuffer, TraceKind


class Observer:
    """Bundles the trace buffer and the metrics registry of one run."""

    __slots__ = ("trace", "metrics", "stall_latency", "prefetch_to_use",
                 "disk_queue_delay", "retry_backoff", "disk_idle_fraction",
                 "sink", "_context", "_segments")

    def __init__(
        self,
        capacity: int = 65536,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.trace = TraceBuffer(capacity)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Pre-bound live histograms so hot-ish paths skip the registry
        # lookup.  Names must stay in sync with OBS_METRIC_NAMES.
        self.stall_latency = self.metrics.histogram(
            "obs.stall_latency_us", DEFAULT_BOUNDS_US
        )
        self.prefetch_to_use = self.metrics.histogram(
            "obs.prefetch_to_use_us", TIMELINESS_BOUNDS_US
        )
        self.disk_queue_delay = self.metrics.histogram(
            "obs.disk_queue_delay_us", DEFAULT_BOUNDS_US
        )
        self.retry_backoff = self.metrics.histogram(
            "obs.retry_backoff_us", DEFAULT_BOUNDS_US
        )
        # Set once per disk (in index order) by Machine.finish: value is
        # the last disk's idle fraction, min/max the array's extremes.
        self.disk_idle_fraction = self.metrics.gauge("obs.disk_idle_fraction")
        assert all(name in self.metrics for name in OBS_METRIC_NAMES)
        #: Optional live consumer of every emitted event (a SpanBuilder).
        self.sink = None
        self._context: list[str] = []
        #: Registered segments as (first_vpage, end_vpage, name) tuples.
        self._segments: list[tuple[int, int, str]] = []

    def emit(
        self,
        ts_us: float,
        kind: TraceKind,
        vpage: int = -1,
        npages: int = 1,
        value: float = 0.0,
        tag: str = "",
    ) -> None:
        """Record one trace event at simulated time ``ts_us``."""
        self.trace.emit(ts_us, kind, vpage, npages, value, tag)
        if self.sink is not None:
            self.sink.on_event(ts_us, kind, vpage, npages, value, tag)

    # ------------------------------------------------------------------
    # Correlation context (no trace events -- golden traces unaffected)
    # ------------------------------------------------------------------

    def push_context(self, label: str) -> None:
        """Enter a loop-nest frame (the interpreter calls this)."""
        self._context.append(label)

    def pop_context(self) -> None:
        """Leave the innermost loop-nest frame."""
        self._context.pop()

    def context(self) -> tuple[str, ...]:
        """The current loop-nest path, outermost first."""
        return tuple(self._context)

    def register_segment(self, name: str, base_vpage: int, npages: int) -> None:
        """Record one mapped array so pages resolve to array names."""
        self._segments.append((base_vpage, base_vpage + npages, name))

    def segment_of(self, vpage: int) -> str:
        """The array a page belongs to, or ``"?"`` when unmapped."""
        for first, end, name in self._segments:
            if first <= vpage < end:
                return name
        return "?"
