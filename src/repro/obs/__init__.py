"""Observability: structured event tracing and the metrics registry.

The subsystem has three pieces (see docs/observability.md):

* :class:`TraceBuffer` -- a fixed-capacity ring of typed
  :class:`TraceEvent` records, emitted by the machine, the VM, the
  run-time layer, and the disk array;
* :class:`MetricsRegistry` -- named counters / gauges / histograms;
  every ``RunStats`` counter publishes into it, plus three live
  histograms only observable while the run executes;
* exporters -- Chrome ``trace_event`` JSON (Perfetto-loadable) and a
  metrics JSON artifact.

Attach an :class:`Observer` to a machine to record a run::

    from repro.obs import Observer
    from repro.obs.export import write_chrome_trace

    obs = Observer()
    machine = Machine(platform, observer=obs)
    stats = run_program(program, machine)
    stats.publish(obs.metrics)
    write_chrome_trace("trace.json", obs.trace)

Everything is off by default: a machine without an observer emits
nothing and pays a single ``is None`` check on its slow paths.
"""

from repro.obs.attrib import (
    STALL_CAUSES,
    StallAttributor,
    StallReport,
    classify,
)
from repro.obs.export import (
    FARM_COUNTER_NAMES,
    FARM_INSTANT_NAMES,
    FARM_SPAN_NAMES,
    chrome_trace,
    merge_chrome_traces,
    metrics_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OBS_METRIC_NAMES,
    RUN_METRIC_NAMES,
    SLO_METRIC_NAMES,
    TELEMETRY_METRIC_NAMES,
    base_name,
    labeled_name,
)
from repro.obs.telemetry import (
    FarmTelemetry,
    SloEngine,
    SloRule,
    TelemetryAggregator,
    TelemetryConfig,
    default_slo_rules,
    load_slo_rules,
)
from repro.obs.observer import Observer
from repro.obs.spans import Span, SpanBuilder, SpanState, StallRecord
from repro.obs.trace import TraceBuffer, TraceEvent, TraceKind

__all__ = [
    "Observer",
    "TraceBuffer",
    "TraceEvent",
    "TraceKind",
    "Span",
    "SpanBuilder",
    "SpanState",
    "StallRecord",
    "StallAttributor",
    "StallReport",
    "STALL_CAUSES",
    "classify",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RUN_METRIC_NAMES",
    "OBS_METRIC_NAMES",
    "SLO_METRIC_NAMES",
    "TELEMETRY_METRIC_NAMES",
    "FARM_SPAN_NAMES",
    "FARM_INSTANT_NAMES",
    "FARM_COUNTER_NAMES",
    "labeled_name",
    "base_name",
    "chrome_trace",
    "merge_chrome_traces",
    "write_chrome_trace",
    "validate_chrome_trace",
    "metrics_json",
    "write_metrics_json",
    "FarmTelemetry",
    "TelemetryAggregator",
    "TelemetryConfig",
    "SloRule",
    "SloEngine",
    "default_slo_rules",
    "load_slo_rules",
]
