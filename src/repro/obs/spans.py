"""Causal page-lifecycle spans assembled from the flat trace stream.

The ring buffer (:mod:`repro.obs.trace`) records *what happened*; this
module recovers *why* by linking the flat events into one span chain per
page: prefetch issued -> filtered / suppressed / dropped / reclaimed ->
disk queue -> arrival -> first use or stall -> release / evict.  The
:class:`SpanBuilder` is a pure consumer -- it never emits events, never
touches the clock, and never changes a simulated result; the golden
EMBAR trace is bit-identical with or without one attached (tested).

Two assembly modes:

* **online** -- install the builder as ``observer.sink`` (or construct a
  :class:`~repro.obs.attrib.StallAttributor`, which does it for you).
  Every event is correlated the moment it is emitted, so assembly is
  immune to ring-buffer wraparound and can read the observer's live
  loop-context stack and segment map.
* **offline** -- :meth:`SpanBuilder.from_buffer` replays a recorded
  :class:`~repro.obs.trace.TraceBuffer`.  If the ring wrapped, the
  builder degrades gracefully: it sets :attr:`SpanBuilder.truncated`,
  appends a warning, and assembles what the surviving suffix supports
  (chains whose openings were overwritten appear as implicit spans).

Correlation is by page id.  Two documented approximations are inherited
from the event schema itself: a striped disk request carries the *run
start* page for every per-disk sub-request, and a ``release`` event
names only the first page it freed -- so queue/retry marks attach to the
run's spans collectively and only the first released page's span closes
as ``released`` (the rest close at eviction or stay open).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from repro.obs.trace import TraceBuffer, TraceKind


class SpanState(str, enum.Enum):
    """One transition in a page's lifecycle chain.

    The table in docs/observability.md ("Span state reference") is the
    authoritative description; ``scripts/check_docs.py`` keeps the two
    in sync.
    """

    #: A prefetch for the page was handed to the OS.
    ISSUED = "issued"
    #: The run-time layer's bit vector dropped the prefetch.
    FILTERED = "filtered"
    #: Adaptive suppression skipped the request wholesale.
    SUPPRESSED = "suppressed"
    #: The OS dropped the prefetch -- no free frame.
    DROPPED = "dropped"
    #: The prefetch was satisfied by reclaiming from the free list.
    RECLAIMED = "reclaimed"
    #: The OS found the page already resident or in transit.
    UNNECESSARY = "unnecessary"
    #: A disk sub-request for the page's run entered a disk queue.
    QUEUED = "queued"
    #: The read hit a transient error and was retried (fault injection).
    RETRIED = "retried"
    #: The read was served via the reconstruction path (fault injection).
    DEGRADED = "degraded"
    #: The prefetch hint call itself failed / timed out (fault injection).
    HINT_FAILED = "hint_failed"
    #: First use found the page resident (the prefetch fully hid the fault).
    USED_HIT = "used_hit"
    #: First use stalled (late prefetch, dropped prefetch, or no prefetch).
    USED_STALL = "used_stall"
    #: The page was released back to the free list.
    RELEASED = "released"
    #: The page was evicted (tag records the trigger).
    EVICTED = "evicted"


#: Span outcomes that end a chain (first use, release, evict).
_CLOSING = frozenset({SpanState.USED_HIT, SpanState.USED_STALL,
                      SpanState.RELEASED, SpanState.EVICTED})


class StallRecord(NamedTuple):
    """One stall contribution, in clock-accumulation order.

    ``stall_us`` is the exact float the clock added to its stall-read
    accumulator for this event, so summing records chronologically with
    ``+=`` reproduces ``RunStats.times.stall_read`` *bitwise* -- the
    conservation invariant ``repro explain`` proves.
    """

    vpage: int
    ts_us: float
    #: The fault tag ("prefetched_fault", "nonprefetched_fault") or
    #: "frame_wait" for pinned-frame waits.
    tag: str
    stall_us: float
    #: The last lifecycle state before the stall, or None for a page
    #: with no prior chain (never prefetched / chain truncated).
    last_state: SpanState | None
    #: True when fault injection touched this chain (retry, degraded
    #: read, or failed hint call).
    injected: bool
    #: Loop-nest path at the moment of the stall (online mode only).
    context: tuple[str, ...]
    #: Array the page belongs to ("?" offline or unmapped).
    segment: str


@dataclass
class Span:
    """One page's lifecycle chain between two membership changes."""

    vpage: int
    opened_us: float
    #: Prefetch issue-run id shared by pages issued together (-1 when
    #: the chain did not start with an issued prefetch).
    run_id: int = -1
    #: Fault injection touched this chain.
    injected: bool = False
    closed_us: float = -1.0
    outcome: SpanState | None = None
    #: (ts_us, state, detail) transitions, chronological.
    states: list[tuple[float, SpanState, str]] = field(default_factory=list)

    @property
    def last_state(self) -> SpanState | None:
        return self.states[-1][1] if self.states else None

    @property
    def closed(self) -> bool:
        return self.outcome is not None

    def mark(self, ts_us: float, state: SpanState, detail: str = "") -> None:
        self.states.append((ts_us, state, detail))


class SpanBuilder:
    """Correlates :class:`TraceKind` events into per-page span chains.

    Install as ``observer.sink`` for online assembly, or replay a
    recorded buffer with :meth:`from_buffer`.  Set :attr:`stall_sink`
    to receive one :class:`StallRecord` per stall contribution, in
    clock-accumulation order (this is how
    :class:`~repro.obs.attrib.StallAttributor` subscribes).
    """

    def __init__(self, observer=None, keep_completed: int = 4096) -> None:
        #: Attached observer (context + segment source); None offline.
        self.observer = observer
        #: Open span per page.
        self.open: dict[int, Span] = {}
        #: Most recent closed spans (bounded; counts are unbounded).
        self.completed: deque[Span] = deque(maxlen=keep_completed)
        #: Closed-span tally per outcome value (unbounded, exact).
        self.outcome_counts: dict[str, int] = {}
        #: Per-stall callback, or None.
        self.stall_sink: Callable[[StallRecord], None] | None = None
        #: True when the source buffer had wrapped (offline mode).
        self.truncated = False
        self.warnings: list[str] = []
        #: Events consumed (all kinds).
        self.events_seen = 0
        #: Demand faults whose chain opening was not seen (implicit spans).
        self.implicit_spans = 0
        #: Per-disk request timeline: disk index -> [(ts_us, npages)].
        self.disk_timeline: dict[int, list[tuple[float, int]]] = {}
        self._next_run_id = 0
        #: Pages of each open issue run (for marking injection run-wide).
        self._run_members: dict[int, list[int]] = {}
        #: Pages whose *next* fault is injection-tainted (a demand-fault
        #: disk retry/degraded event precedes its FAULT event).
        self._pending_injected: set[int] = set()

    # ------------------------------------------------------------------

    @classmethod
    def from_buffer(cls, buffer: TraceBuffer, observer=None,
                    stall_sink: Callable[[StallRecord], None] | None = None,
                    ) -> "SpanBuilder":
        """Assemble spans offline from a recorded (possibly wrapped) ring."""
        builder = cls(observer=observer)
        builder.stall_sink = stall_sink
        if buffer.dropped:
            builder.truncated = True
            builder.warnings.append(
                f"trace ring dropped {buffer.dropped} of "
                f"{buffer.total_emitted} events; spans are assembled from "
                f"the surviving suffix and early-run chains are approximate"
            )
        for ev in buffer.events():
            builder.on_event(ev.ts_us, ev.kind, ev.vpage, ev.npages,
                             ev.value, ev.tag)
        return builder

    # ------------------------------------------------------------------
    # Span bookkeeping
    # ------------------------------------------------------------------

    def _open_span(self, vpage: int, ts_us: float, run_id: int = -1) -> Span:
        span = Span(vpage, ts_us, run_id=run_id)
        self.open[vpage] = span
        return span

    def _ensure_span(self, vpage: int, ts_us: float) -> Span:
        span = self.open.get(vpage)
        if span is None:
            span = self._open_span(vpage, ts_us)
        return span

    def _close(self, span: Span, ts_us: float, outcome: SpanState,
               detail: str = "") -> None:
        span.mark(ts_us, outcome, detail)
        span.closed_us = ts_us
        span.outcome = outcome
        self.open.pop(span.vpage, None)
        members = self._run_members.get(span.run_id)
        if members is not None:
            try:
                members.remove(span.vpage)
            except ValueError:
                pass
            if not members:
                del self._run_members[span.run_id]
        self.completed.append(span)
        key = outcome.value
        self.outcome_counts[key] = self.outcome_counts.get(key, 0) + 1

    def _mark_run_injected(self, anchor_vpage: int, state: SpanState,
                           ts_us: float, detail: str) -> None:
        """Taint the issue run containing ``anchor_vpage`` (striping
        reports the run-start page for every sub-request, so the mark
        applies to the whole run, not one page)."""
        span = self.open.get(anchor_vpage)
        if span is None:
            return
        if span.run_id >= 0:
            for vpage in self._run_members.get(span.run_id, ()):
                member = self.open.get(vpage)
                if member is not None:
                    member.injected = True
        span.injected = True
        span.mark(ts_us, state, detail)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------

    def on_event(self, ts_us: float, kind: TraceKind, vpage: int,
                 npages: int, value: float, tag: str) -> None:
        """Consume one trace event (the ``Observer.sink`` protocol)."""
        self.events_seen += 1
        if kind is TraceKind.PREFETCH_ISSUED:
            run_id = self._next_run_id
            self._next_run_id += 1
            members: list[int] = []
            for page in range(vpage, vpage + npages):
                old = self.open.get(page)
                if old is not None:
                    # A fresh issue supersedes whatever the old chain
                    # was waiting for (e.g. a dropped prefetch).
                    self._close(old, ts_us, old.last_state or SpanState.ISSUED,
                                "superseded")
                span = self._open_span(page, ts_us, run_id=run_id)
                span.mark(ts_us, SpanState.ISSUED, tag)
                members.append(page)
            self._run_members[run_id] = members
        elif kind is TraceKind.PREFETCH_FILTERED:
            for page in range(vpage, vpage + npages):
                self._ensure_span(page, ts_us).mark(ts_us, SpanState.FILTERED)
        elif kind is TraceKind.PREFETCH_SUPPRESSED:
            for page in range(vpage, vpage + npages):
                self._ensure_span(page, ts_us).mark(ts_us, SpanState.SUPPRESSED)
        elif kind is TraceKind.PREFETCH_DROPPED:
            self._ensure_span(vpage, ts_us).mark(ts_us, SpanState.DROPPED)
        elif kind is TraceKind.PREFETCH_RECLAIMED:
            self._ensure_span(vpage, ts_us).mark(ts_us, SpanState.RECLAIMED)
        elif kind is TraceKind.PREFETCH_UNNECESSARY:
            self._ensure_span(vpage, ts_us).mark(
                ts_us, SpanState.UNNECESSARY, tag)
        elif kind is TraceKind.HINT_FAILED:
            for page in range(vpage, vpage + npages):
                span = self._ensure_span(page, ts_us)
                span.injected = True
                span.mark(ts_us, SpanState.HINT_FAILED)
        elif kind is TraceKind.HINT_FALLBACK:
            pass  # an episode marker, not a page transition
        elif kind is TraceKind.DISK_REQUEST:
            disk, _, io_kind = tag.partition(":")
            try:
                index = int(disk.removeprefix("disk"))
            except ValueError:
                index = -1
            self.disk_timeline.setdefault(index, []).append((ts_us, npages))
            if io_kind != "write":
                span = self.open.get(vpage)
                if span is not None:
                    span.mark(ts_us, SpanState.QUEUED, tag)
        elif kind is TraceKind.DISK_RETRY:
            self._note_injected_io(vpage, npages, ts_us, SpanState.RETRIED, tag)
        elif kind is TraceKind.DISK_DEGRADED:
            self._note_injected_io(vpage, npages, ts_us, SpanState.DEGRADED, tag)
        elif kind is TraceKind.FAULT:
            self._on_fault(ts_us, vpage, value, tag)
        elif kind is TraceKind.STALL_FRAME_WAIT:
            if self.stall_sink is not None:
                self.stall_sink(StallRecord(
                    vpage, ts_us, "frame_wait", value, None, False,
                    self._context(), "?",
                ))
        elif kind is TraceKind.RELEASE:
            span = self.open.get(vpage)
            if span is not None:
                self._close(span, ts_us, SpanState.RELEASED)
        elif kind is TraceKind.EVICTION:
            span = self.open.get(vpage)
            if span is not None:
                self._close(span, ts_us, SpanState.EVICTED, tag)
        # CHUNK is a pacing marker; nothing to correlate.

    def _note_injected_io(self, vpage: int, npages: int, ts_us: float,
                          state: SpanState, tag: str) -> None:
        """A retried / degraded read: taint its run, or -- for a demand
        fault whose FAULT event has not been emitted yet -- remember the
        taint for that upcoming fault."""
        if self.open.get(vpage) is not None:
            self._mark_run_injected(vpage, state, ts_us, tag)
        for page in range(vpage, vpage + npages):
            if page not in self.open:
                self._pending_injected.add(page)

    def _context(self) -> tuple[str, ...]:
        return self.observer.context() if self.observer is not None else ()

    def _segment(self, vpage: int) -> str:
        return self.observer.segment_of(vpage) if self.observer is not None else "?"

    def _on_fault(self, ts_us: float, vpage: int, value: float, tag: str) -> None:
        span = self.open.get(vpage)
        pending = vpage in self._pending_injected
        self._pending_injected.discard(vpage)
        injected = pending or (span is not None and span.injected)
        stalled = tag in ("prefetched_fault", "nonprefetched_fault")
        last_state = span.last_state if span is not None else None
        if span is None:
            # Chain opening unseen: never prefetched, or truncated ring.
            self.implicit_spans += 1
            span = self._open_span(vpage, ts_us)
            span.injected = injected
        if stalled and self.stall_sink is not None:
            self.stall_sink(StallRecord(
                vpage, ts_us, tag, value, last_state, injected,
                self._context(), self._segment(vpage),
            ))
        outcome = SpanState.USED_STALL if stalled else SpanState.USED_HIT
        self._close(span, ts_us, outcome, tag)

    # ------------------------------------------------------------------

    def finish(self) -> None:
        """Note chains still open at end of run (pages never used again)."""
        if self.open:
            self.warnings.append(
                f"{len(self.open)} spans still open at end of run "
                f"(pages prefetched or marked but never touched again)"
            )

    def summary(self) -> dict[str, int]:
        """Outcome tally plus open/implicit counts (for reports)."""
        out = dict(sorted(self.outcome_counts.items()))
        out["open"] = len(self.open)
        out["implicit"] = self.implicit_spans
        return out
