"""Stall attribution: every idle microsecond gets exactly one cause.

``repro explain`` answers the question the paper's Figures 3-4 answer
with stacked bars: *where did the stall time go?*  The
:class:`StallAttributor` subscribes to a :class:`~repro.obs.spans.SpanBuilder`
and classifies every stall contribution into one of :data:`STALL_CAUSES`
using the page's lifecycle chain at the moment it stalled.

**Conservation invariant.**  The simulated clock accumulates stall-read
time by adding each individual wait, in chronological order, with
``+=``.  Each of those exact floats is also carried by a trace event
(``fault``'s ``value``, ``stall_frame_wait``'s ``value``), delivered to
the attributor in the same order.  The attributor replays the identical
chronological ``+=`` over them, so :attr:`StallReport.attributed_read_us`
equals ``RunStats.times.stall_read`` **bitwise** -- not within an
epsilon.  (Per-cause subtotals are display values; the invariant is
proven on the replayed total, because float addition is
order-sensitive.)  The final dirty-page flush is a single clock wait
with no per-page events; it is reported as the ``final_flush`` bucket
straight from the clock, closing the books on ``times.idle`` exactly.

Scope: single-programmed runs.  The co-scheduler accounts fault waits
as per-process *blocked* time rather than clock stalls, so attribution
there would have nothing to conserve against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Histogram
from repro.obs.spans import SpanBuilder, SpanState, StallRecord

#: The complete cause taxonomy, classification-precedence first.  The
#: "Stall cause reference" table in docs/observability.md documents each
#: cause; ``scripts/check_docs.py`` keeps the two in sync.
STALL_CAUSES: tuple[str, ...] = (
    "fault_injected",
    "dropped_under_pressure",
    "suppressed",
    "filter_miss",
    "prefetch_too_late",
    "never_prefetched",
    "frame_wait",
    "final_flush",
)

#: Lateness histogram bounds for prefetch_too_late stalls (µs the use
#: arrived before the I/O completed).
LATENESS_BOUNDS_US: tuple[float, ...] = (
    1_000.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0, 250_000.0,
)


def classify(record: StallRecord) -> str:
    """Map one stall contribution to its cause.

    Precedence: injection taint beats everything (a retried / degraded /
    hint-failed chain stalled *because of the fault plan*, whatever else
    is true of it); then the chain's last lifecycle state refines the
    paper's two stalling fault classes.
    """
    if record.tag == "frame_wait":
        return "frame_wait"
    if record.injected:
        return "fault_injected"
    last = record.last_state
    if last is SpanState.DROPPED:
        return "dropped_under_pressure"
    if record.tag == "prefetched_fault":
        # The prefetch made it to disk but the use caught up with it.
        return "prefetch_too_late"
    # nonprefetched_fault: why did no prefetch cover the page?
    if last is SpanState.SUPPRESSED:
        return "suppressed"
    if last is SpanState.FILTERED:
        return "filter_miss"
    if last is SpanState.HINT_FAILED:
        return "fault_injected"
    return "never_prefetched"


@dataclass
class CauseBucket:
    """Aggregate of one cause's stalls."""

    cause: str
    count: int = 0
    total_us: float = 0.0


@dataclass
class StallReport:
    """The finished attribution of one run."""

    buckets: dict[str, CauseBucket]
    lateness: Histogram
    #: Chronological replay of every stall-read contribution.
    attributed_read_us: float
    #: The clock's own stall totals (from RunStats).
    stall_read_us: float
    stall_flush_us: float
    records: int
    truncated: bool
    warnings: list[str] = field(default_factory=list)
    span_summary: dict[str, int] = field(default_factory=dict)

    @property
    def attributed_total_us(self) -> float:
        """Everything attributed, including the flush bucket."""
        return self.attributed_read_us + self.buckets["final_flush"].total_us

    @property
    def idle_us(self) -> float:
        """The run's idle time as the clock reports it."""
        return self.stall_read_us + self.stall_flush_us

    @property
    def conserved(self) -> bool:
        """True when attribution matches the clock *bitwise*."""
        return (self.attributed_read_us == self.stall_read_us
                and self.attributed_total_us == self.idle_us)


class StallAttributor:
    """Online stall attribution over a span builder.

    Construct with an observer to self-install (``observer.sink``
    becomes the span builder, whose ``stall_sink`` is this object), or
    pass an existing :class:`SpanBuilder`.  For a recorded buffer use
    :meth:`from_buffer` -- attribution then degrades with the same
    truncation warning the span builder raises.
    """

    def __init__(self, observer=None, spans: SpanBuilder | None = None) -> None:
        self.spans = spans if spans is not None else SpanBuilder(observer=observer)
        self.spans.stall_sink = self._on_stall
        if observer is not None:
            observer.sink = self.spans
        self.buckets: dict[str, CauseBucket] = {
            cause: CauseBucket(cause) for cause in STALL_CAUSES
        }
        self.lateness = Histogram("attrib.lateness_us", LATENESS_BOUNDS_US)
        #: Collapsed stacks: (loop path..., segment, cause) -> [count, µs].
        self.stacks: dict[tuple[str, ...], list[float]] = {}
        self.records = 0
        self._replayed_read_us = 0.0

    @classmethod
    def from_buffer(cls, buffer, observer=None) -> "StallAttributor":
        attributor = cls.__new__(cls)
        attributor.buckets = {cause: CauseBucket(cause) for cause in STALL_CAUSES}
        attributor.lateness = Histogram("attrib.lateness_us", LATENESS_BOUNDS_US)
        attributor.stacks = {}
        attributor.records = 0
        attributor._replayed_read_us = 0.0
        attributor.spans = SpanBuilder.from_buffer(
            buffer, observer=observer, stall_sink=attributor._on_stall
        )
        return attributor

    # ------------------------------------------------------------------

    def _on_stall(self, record: StallRecord) -> None:
        cause = classify(record)
        bucket = self.buckets[cause]
        bucket.count += 1
        bucket.total_us += record.stall_us
        # The conservation replay: same floats, same order, same `+=`
        # as Clock.wait_until's accumulator.
        self._replayed_read_us += record.stall_us
        self.records += 1
        if cause == "prefetch_too_late":
            self.lateness.observe(record.stall_us)
        key = record.context + (record.segment, cause)
        cell = self.stacks.get(key)
        if cell is None:
            self.stacks[key] = [1, record.stall_us]
        else:
            cell[0] += 1
            cell[1] += record.stall_us

    # ------------------------------------------------------------------

    def report(self, stats) -> StallReport:
        """Close the books against a finished run's :class:`RunStats`."""
        self.spans.finish()
        flush = self.buckets["final_flush"]
        flush.count = 1 if stats.times.stall_flush else 0
        flush.total_us = stats.times.stall_flush
        return StallReport(
            buckets=self.buckets,
            lateness=self.lateness,
            attributed_read_us=self._replayed_read_us,
            stall_read_us=stats.times.stall_read,
            stall_flush_us=stats.times.stall_flush,
            records=self.records,
            truncated=self.spans.truncated,
            warnings=list(self.spans.warnings),
            span_summary=self.spans.summary(),
        )

    def collapsed_stacks(self, root: str = "") -> list[str]:
        """Flamegraph collapsed-stack lines: ``a;b;seg;cause <µs>``.

        Sorted by descending stall time; load with any collapsed-stack
        flamegraph tool, or read the top lines directly.
        """
        lines = []
        for key, (count, total_us) in sorted(
            self.stacks.items(), key=lambda kv: -kv[1][1]
        ):
            frames = (root,) + key if root else key
            lines.append(f"{';'.join(frames)} {int(round(total_us))}")
        return lines
