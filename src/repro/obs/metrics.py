"""The metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every named instrument of one run.
The registry is the export surface for *all* quantitative results: the
per-run counters of :class:`repro.sim.stats.RunStats` are published into
it (``RunStats.publish``), the live histograms of an attached
:class:`repro.obs.observer.Observer` are registered in it directly, and
both the CLI's metric tables and the ``--metrics-out`` JSON artifact are
rendered from it rather than from hand-picked dataclass fields.

Naming convention: dotted lowercase, ``<group>.<metric>`` -- e.g.
``faults.prefetched_hit``, ``disk.utilization``, ``obs.stall_latency_us``.
``docs/observability.md`` lists every name; ``scripts/check_docs.py``
fails the build when the doc and :data:`RUN_METRIC_NAMES` /
:data:`OBS_METRIC_NAMES` disagree.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MachineError

#: Default histogram bucket upper bounds, microseconds (an exponential
#: ladder wide enough for both syscall overheads and full disk stalls).
DEFAULT_BOUNDS_US: tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)

#: Bounds for signed timeliness measurements (negative = the use beat
#: the I/O completion, i.e. the prefetch was late).
TIMELINESS_BOUNDS_US: tuple[float, ...] = (
    -100_000.0, -10_000.0, -1_000.0, 0.0,
    1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MachineError(f"counter {self.name} cannot decrease")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter in; equals recording both streams."""
        self.value += other.value

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Counter":
        counter = cls(name)
        counter.value = float(payload["value"])
        return counter


class Gauge:
    """A point-in-time value with min/max tracking."""

    __slots__ = ("name", "value", "min", "max", "_seen")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min: float = 0.0
        self.max: float = 0.0
        self._seen = False

    def set(self, value: float) -> None:
        self.value = value
        if not self._seen:
            self.min = self.max = value
            self._seen = True
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: the other side's sets happened after
        ours, so its value wins while min/max union both streams."""
        if not other._seen:
            return
        if not self._seen:
            self.value, self.min, self.max = other.value, other.min, other.max
            self._seen = True
            return
        self.value = other.value
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "min": self.min, "max": self.max, "seen": self._seen}

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Gauge":
        gauge = cls(name)
        gauge.value = float(payload["value"])
        gauge.min = float(payload["min"])
        gauge.max = float(payload["max"])
        gauge._seen = bool(payload.get("seen", True))
        return gauge


class Histogram:
    """A bucketed distribution with count/sum/min/max.

    ``bounds`` are inclusive upper bounds of each bucket; one overflow
    bucket catches everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS_US) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise MachineError(f"histogram {name} needs ascending bounds")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for idx, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[idx] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the q-th bucket."""
        if not 0.0 <= q <= 1.0:
            raise MachineError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for idx, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return self.bounds[idx] if idx < len(self.bounds) else self.max
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; bucket layouts must match."""
        if self.bounds != other.bounds:
            raise MachineError(
                f"histogram {self.name} bounds mismatch on merge:"
                f" {self.bounds} vs {other.bounds}"
            )
        for idx, n in enumerate(other.buckets):
            self.buckets[idx] += n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        histogram = cls(name, payload["bounds"])
        buckets = [int(n) for n in payload["buckets"]]
        if len(buckets) != len(histogram.buckets):
            raise MachineError(
                f"histogram {name} snapshot has {len(buckets)} buckets,"
                f" expected {len(histogram.buckets)}"
            )
        histogram.buckets = buckets
        histogram.count = int(payload["count"])
        histogram.total = float(payload["sum"])
        if histogram.count:
            histogram.min = float(payload["min"])
            histogram.max = float(payload["max"])
        return histogram


class MetricsRegistry:
    """Named instruments for one run.

    Requesting an existing name returns the existing instrument;
    requesting it as a different type is an error.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise MachineError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument
        instrument = cls(name, *args)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS_US
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Counter | Gauge | Histogram:
        try:
            return self._instruments[name]
        except KeyError:
            raise MachineError(f"no metric named {name!r}") from None

    def value(self, name: str) -> float:
        """The scalar value of a counter or gauge."""
        instrument = self.get(name)
        if isinstance(instrument, Histogram):
            raise MachineError(f"metric {name!r} is a histogram; use get()")
        return instrument.value

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every instrument, sorted by name."""
        return {name: self._instruments[name].as_dict() for name in self.names()}

    # -- cross-process folding ----------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of ``other`` into this registry.

        Merging is associative and equals sequential recording: a
        registry merged from N worker deltas carries exactly the
        counts/buckets the workers would have produced recording into
        one shared registry.  Same-name instruments of different kinds
        are an error, as they are for local registration.
        """
        for name in other.names():
            instrument = other._instruments[name]
            if isinstance(instrument, Counter):
                self.counter(name).merge(instrument)
            elif isinstance(instrument, Gauge):
                self.gauge(name).merge(instrument)
            else:
                self.histogram(name, instrument.bounds).merge(instrument)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot."""
        registry = cls()
        for name in sorted(snapshot):
            payload = snapshot[name]
            kind = payload.get("kind")
            if kind == Counter.kind:
                registry._instruments[name] = Counter.from_dict(name, payload)
            elif kind == Gauge.kind:
                registry._instruments[name] = Gauge.from_dict(name, payload)
            elif kind == Histogram.kind:
                registry._instruments[name] = Histogram.from_dict(name, payload)
            else:
                raise MachineError(
                    f"metric snapshot {name!r} has unknown kind {kind!r}"
                )
        return registry


def labeled_name(name: str, **labels: str) -> str:
    """The canonical labeled-child spelling: ``name{k=v,...}``.

    Label keys are sorted so the same label set always produces the
    same registry name.  Used by the farm rollup to keep per-state and
    per-tenant dimensions alongside the unlabeled family.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(name: str) -> str:
    """Strip a ``{...}`` label suffix, if any."""
    brace = name.find("{")
    return name if brace < 0 else name[:brace]


#: Every metric name ``RunStats.publish`` registers, in publish order.
#: ``scripts/check_docs.py`` cross-checks this list against the metric
#: reference table in docs/observability.md.
RUN_METRIC_NAMES: tuple[str, ...] = (
    "time.elapsed_us",
    "time.user_compute_us",
    "time.user_overhead_us",
    "time.sys_fault_us",
    "time.sys_prefetch_us",
    "time.sys_release_us",
    "time.stall_read_us",
    "time.stall_flush_us",
    "faults.hits",
    "faults.prefetched_hit",
    "faults.prefetched_fault",
    "faults.nonprefetched_fault",
    "faults.reclaim",
    "faults.coverage",
    "prefetch.compiler_inserted",
    "prefetch.filtered",
    "prefetch.suppressed",
    "prefetch.readahead_pages",
    "prefetch.binding_stale",
    "prefetch.issued_calls",
    "prefetch.issued_pages",
    "prefetch.unnecessary_issued",
    "prefetch.reclaimed",
    "prefetch.dropped",
    "prefetch.in_transit",
    "prefetch.disk_reads",
    "release.calls",
    "release.pages_released",
    "release.writebacks",
    "release.noop",
    "disk.reads_fault",
    "disk.reads_prefetch",
    "disk.writes",
    "disk.sequential",
    "disk.near",
    "disk.random",
    "disk.utilization",
    "robust.disk_retries",
    "robust.degraded_reads",
    "robust.degraded_writes",
    "robust.hint_failures",
    "robust.fallback_episodes",
    "robust.hints_skipped",
    "robust.storm_bursts",
    "memory.frames_total",
    "memory.evictions",
    "memory.eviction_writebacks",
    "memory.min_free",
    "memory.max_free",
    "memory.avg_free_fraction",
)

#: Live histograms an :class:`~repro.obs.observer.Observer` maintains
#: while the run executes (they cannot be reconstructed from RunStats).
OBS_METRIC_NAMES: tuple[str, ...] = (
    "obs.stall_latency_us",
    "obs.prefetch_to_use_us",
    "obs.disk_queue_delay_us",
    "obs.retry_backoff_us",
    "obs.disk_idle_fraction",
)

#: Operational metrics of the checkpoint subsystem (registered only when
#: a checkpointer runs with an observer attached).  Documented in the
#: "Checkpoint metric reference" table of docs/robustness.md, which
#: ``scripts/check_docs.py`` cross-checks against this list.
CKPT_METRIC_NAMES: tuple[str, ...] = (
    "ckpt.writes",
    "ckpt.restores",
    "ckpt.corrupt_skipped",
    "ckpt.crashes_delivered",
    "ckpt.payload_bytes",
    "ckpt.last_cycle_us",
)

#: Operational metrics of the simulation job farm (``repro serve``; one
#: registry per :class:`repro.serve.controller.Farm`, all instruments
#: registered up front so artifacts always carry the full set).
#: Documented in the "Serve metric reference" table of docs/serving.md,
#: which ``scripts/check_docs.py`` cross-checks against this list.
SERVE_METRIC_NAMES: tuple[str, ...] = (
    "serve.jobs_submitted",
    "serve.jobs_done",
    "serve.jobs_failed_attempts",
    "serve.jobs_quarantined",
    "serve.jobs_shed",
    "serve.retries",
    "serve.resumes",
    "serve.preemptions",
    "serve.worker_kills",
    "serve.worker_stalls",
    "serve.worker_restarts",
    "serve.heartbeat_timeouts",
    "serve.deadline_timeouts",
    "serve.queue_depth",
    "serve.workers_busy",
    "serve.job_latency_us",
    "serve.ledger_records",
    "serve.recoveries",
    "serve.jobs_recovered",
    "serve.results_deduped",
    "serve.orphans_adopted",
    "serve.orphans_reaped",
)

#: Operational metrics of the scenario fuzzer (``repro fuzz``; one
#: registry per :func:`repro.fuzz.runner.run_fuzz` invocation, all
#: instruments registered up front so artifacts always carry the full
#: set).  Documented in the "Fuzz metric reference" table of
#: docs/robustness.md, which ``scripts/check_docs.py`` cross-checks
#: against this list.
FUZZ_METRIC_NAMES: tuple[str, ...] = (
    "fuzz.scenarios",
    "fuzz.runs",
    "fuzz.oracle_checks",
    "fuzz.violations",
    "fuzz.corpus_replayed",
    "fuzz.wall_s",
)

#: Operational metrics of the farm telemetry pipeline itself
#: (:class:`repro.obs.telemetry.FarmTelemetry`; registered up front in
#: the telemetry registry so snapshots always carry the full set).
#: Documented in the "Telemetry metric reference" table of
#: docs/observability.md, which ``scripts/check_docs.py`` cross-checks
#: against this list.
TELEMETRY_METRIC_NAMES: tuple[str, ...] = (
    "telemetry.deltas_folded",
    "telemetry.partial_flushes",
    "telemetry.snapshot_writes",
    "telemetry.spans",
    "telemetry.instants",
    "telemetry.trace_events",
    "telemetry.instruments",
    "telemetry.tenants",
)

#: Metrics the SLO engine emits about its own evaluations (registered
#: up front alongside the telemetry family).  Documented in the "SLO
#: metric reference" table of docs/observability.md, which
#: ``scripts/check_docs.py`` cross-checks against this list.
SLO_METRIC_NAMES: tuple[str, ...] = (
    "slo.rules",
    "slo.evaluations",
    "slo.checks",
    "slo.violations",
)
