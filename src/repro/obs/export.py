"""Exporters: Chrome ``trace_event`` JSON and metrics JSON.

The trace artifact is the Chrome trace-event format (the JSON flavour
with a top-level ``traceEvents`` array), which loads directly in
Perfetto (https://ui.perfetto.dev) and in Chromium's ``about://tracing``.
Simulated time is already microseconds -- exactly the unit the format
expects -- so timestamps pass through unscaled.

Each simulator layer gets its own track (thread) so a loaded trace reads
like the architecture diagram: ``machine`` (chunk replay), ``vm``
(faults, evictions, OS-side prefetch outcomes), ``runtime`` (the
user-level filter), ``disk`` (request submissions).  Disk queue delay is
additionally exported as a counter track so Perfetto plots occupancy
over time.
"""

from __future__ import annotations

from typing import Any

from repro.ioutil import atomic_write_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBuffer, TraceKind

#: Track (tid) per simulator layer, plus human names for the metadata.
_LAYER_TIDS = {"machine": 1, "vm": 2, "runtime": 3, "disk": 4}

#: Which track each event kind lands on.
KIND_LAYER: dict[TraceKind, str] = {
    TraceKind.CHUNK: "machine",
    TraceKind.FAULT: "vm",
    TraceKind.PREFETCH_ISSUED: "vm",
    TraceKind.PREFETCH_DROPPED: "vm",
    TraceKind.PREFETCH_RECLAIMED: "vm",
    TraceKind.PREFETCH_UNNECESSARY: "vm",
    TraceKind.RELEASE: "vm",
    TraceKind.EVICTION: "vm",
    TraceKind.STALL_FRAME_WAIT: "vm",
    TraceKind.PREFETCH_FILTERED: "runtime",
    TraceKind.PREFETCH_SUPPRESSED: "runtime",
    TraceKind.HINT_FAILED: "runtime",
    TraceKind.HINT_FALLBACK: "runtime",
    TraceKind.DISK_REQUEST: "disk",
    TraceKind.DISK_RETRY: "disk",
    TraceKind.DISK_DEGRADED: "disk",
    TraceKind.CHECKPOINT_WRITE: "machine",
    TraceKind.CHECKPOINT_RESTORE: "machine",
}


def chrome_trace(
    buffer: TraceBuffer,
    pid: int = 0,
    process_name: str = "repro-sim",
) -> dict[str, Any]:
    """Render the buffer as a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for layer, tid in _LAYER_TIDS.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": layer},
        })
    for ev in buffer.events():
        layer = KIND_LAYER[ev.kind]
        events.append({
            "name": ev.kind.value,
            "ph": "i",
            "s": "t",
            "ts": ev.ts_us,
            "pid": pid,
            "tid": _LAYER_TIDS[layer],
            "args": {
                "vpage": ev.vpage,
                "npages": ev.npages,
                "value": ev.value,
                "tag": ev.tag,
            },
        })
        if ev.kind is TraceKind.DISK_REQUEST:
            events.append({
                "name": "disk_queue_delay_us",
                "ph": "C",
                "ts": ev.ts_us,
                "pid": pid,
                "args": {"us": ev.value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": buffer.total_emitted,
            "dropped": buffer.dropped,
        },
    }


def write_chrome_trace(
    path: str,
    buffer: TraceBuffer,
    pid: int = 0,
    process_name: str = "repro-sim",
) -> None:
    """Write a Perfetto-loadable trace JSON file, atomically."""
    atomic_write_json(path, chrome_trace(buffer, pid, process_name),
                      indent=1, sort_keys=False)


#: Controller-side duration spans ("X" phase) of the farm timeline: the
#: time a job sat in the admission queue and the span of each attempt on
#: a worker lane.  ``scripts/check_docs.py`` cross-checks this list (and
#: the two below) against the "Farm timeline reference" table of
#: docs/observability.md.
FARM_SPAN_NAMES: tuple[str, ...] = (
    "queued",
    "running",
)

#: Controller-side instant events ("i" phase) of the farm timeline.
#: Unlike simulator events these carry free-form args (job_id, attempt,
#: tenant, rule, ...), so the validator only requires an args object.
FARM_INSTANT_NAMES: tuple[str, ...] = (
    "dispatch",
    "done",
    "failed",
    "retry",
    "preempted",
    "shed",
    "quarantined",
    "worker_kill",
    "worker_stall",
    "worker_died",
    "deadline",
    "heartbeat_epoch",
    "slo_violation",
    "recover",
)

#: Counter tracks ("C" phase) the farm recorder samples each poll tick.
FARM_COUNTER_NAMES: tuple[str, ...] = (
    "farm_queue_depth",
    "farm_workers_busy",
)

#: Phases and fields the validator accepts / requires.
_VALID_PHASES = {"i", "C", "M", "X"}
_VALID_KINDS = {kind.value for kind in TraceKind}
_COUNTER_NAMES = {"disk_queue_delay_us"} | set(FARM_COUNTER_NAMES)
_META_NAMES = {"process_name", "thread_name"}
_FARM_INSTANTS = set(FARM_INSTANT_NAMES)
_FARM_SPANS = set(FARM_SPAN_NAMES)


def validate_chrome_trace(obj: Any) -> list[str]:
    """Check a loaded trace object against the exporter's schema.

    Returns a list of problems; an empty list means the trace is valid.
    This is the oracle the golden-file test and ``scripts/check_docs.py``
    share, so the schema documented in docs/observability.md has a
    single executable definition.
    """
    problems: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    last_ts = float("-inf")
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = ev.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        name = ev.get("name")
        if phase == "M":
            if name not in _META_NAMES:
                problems.append(f"{where}: unknown metadata event {name!r}")
            continue
        if "ts" not in ev or not isinstance(ev["ts"], (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
            continue
        if phase == "C":
            if name not in _COUNTER_NAMES:
                problems.append(f"{where}: unknown counter {name!r}")
            continue
        if phase == "X":
            # Farm-timeline duration span (queued / running lanes).
            if name not in _FARM_SPANS:
                problems.append(f"{where}: unknown span {name!r}")
                continue
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: span missing non-negative 'dur'")
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: missing 'args'")
            if ev["ts"] < last_ts:
                problems.append(f"{where}: timestamps not monotonic")
            last_ts = ev["ts"]
            continue
        # phase == "i": one simulator or farm-controller event.
        if name in _FARM_INSTANTS:
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: missing 'args'")
            if ev["ts"] < last_ts:
                problems.append(f"{where}: timestamps not monotonic")
            last_ts = ev["ts"]
            continue
        if name not in _VALID_KINDS:
            problems.append(f"{where}: unknown event kind {name!r}")
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: missing 'args'")
            continue
        for field, types in (("vpage", (int,)), ("npages", (int,)),
                             ("value", (int, float)), ("tag", (str,))):
            if not isinstance(args.get(field), types):
                problems.append(f"{where}: args.{field} missing or mistyped")
        if ev["ts"] < last_ts:
            problems.append(f"{where}: timestamps not monotonic")
        last_ts = ev["ts"]
    return problems


def merge_chrome_traces(segments: "list[dict[str, Any]]") -> dict[str, Any]:
    """Merge per-process trace objects into one farm timeline.

    ``segments`` is a list of ``{"name", "trace", "offset_us"}`` dicts:
    the process name shown in Perfetto, a trace object in the exporter's
    own format, and the wall-clock offset (microseconds) at which that
    segment's local clock started.  Per-job simulator traces run on
    simulated time, so their offset is the dispatch time of the attempt
    -- the merged view lines each job's internal activity up under the
    controller span that scheduled it.

    Each segment becomes its own pid; event timestamps are shifted by
    the segment offset and the merged stream is re-sorted so the result
    still passes :func:`validate_chrome_trace`.
    """
    meta: list[dict[str, Any]] = []
    body: list[dict[str, Any]] = []
    emitted = 0
    dropped = 0
    names: list[str] = []
    for pid, segment in enumerate(segments):
        name = segment["name"]
        trace = segment["trace"]
        offset = float(segment.get("offset_us", 0.0))
        names.append(name)
        for ev in trace.get("traceEvents", []):
            ev = dict(ev)
            ev["pid"] = pid
            if ev.get("ph") == "M":
                if ev.get("name") == "process_name":
                    ev["args"] = {"name": name}
                meta.append(ev)
            else:
                if "ts" in ev:
                    ev["ts"] = ev["ts"] + offset
                body.append(ev)
        other = trace.get("otherData", {})
        emitted += int(other.get("emitted", 0))
        dropped += int(other.get("dropped", 0))
    body.sort(key=lambda ev: ev.get("ts", 0.0))
    return {
        "traceEvents": meta + body,
        "displayTimeUnit": "ms",
        "otherData": {
            "segments": names,
            "emitted": emitted,
            "dropped": dropped,
        },
    }


def metrics_json(registry: MetricsRegistry) -> dict[str, Any]:
    """Render a registry as a JSON-ready object."""
    return {"metrics": registry.as_dict()}


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    """Write the run's metrics registry as a JSON artifact, atomically."""
    atomic_write_json(path, metrics_json(registry), indent=1, sort_keys=True)
