"""Exporters: Chrome ``trace_event`` JSON and metrics JSON.

The trace artifact is the Chrome trace-event format (the JSON flavour
with a top-level ``traceEvents`` array), which loads directly in
Perfetto (https://ui.perfetto.dev) and in Chromium's ``about://tracing``.
Simulated time is already microseconds -- exactly the unit the format
expects -- so timestamps pass through unscaled.

Each simulator layer gets its own track (thread) so a loaded trace reads
like the architecture diagram: ``machine`` (chunk replay), ``vm``
(faults, evictions, OS-side prefetch outcomes), ``runtime`` (the
user-level filter), ``disk`` (request submissions).  Disk queue delay is
additionally exported as a counter track so Perfetto plots occupancy
over time.
"""

from __future__ import annotations

from typing import Any

from repro.ioutil import atomic_write_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBuffer, TraceKind

#: Track (tid) per simulator layer, plus human names for the metadata.
_LAYER_TIDS = {"machine": 1, "vm": 2, "runtime": 3, "disk": 4}

#: Which track each event kind lands on.
KIND_LAYER: dict[TraceKind, str] = {
    TraceKind.CHUNK: "machine",
    TraceKind.FAULT: "vm",
    TraceKind.PREFETCH_ISSUED: "vm",
    TraceKind.PREFETCH_DROPPED: "vm",
    TraceKind.PREFETCH_RECLAIMED: "vm",
    TraceKind.PREFETCH_UNNECESSARY: "vm",
    TraceKind.RELEASE: "vm",
    TraceKind.EVICTION: "vm",
    TraceKind.STALL_FRAME_WAIT: "vm",
    TraceKind.PREFETCH_FILTERED: "runtime",
    TraceKind.PREFETCH_SUPPRESSED: "runtime",
    TraceKind.HINT_FAILED: "runtime",
    TraceKind.HINT_FALLBACK: "runtime",
    TraceKind.DISK_REQUEST: "disk",
    TraceKind.DISK_RETRY: "disk",
    TraceKind.DISK_DEGRADED: "disk",
    TraceKind.CHECKPOINT_WRITE: "machine",
    TraceKind.CHECKPOINT_RESTORE: "machine",
}


def chrome_trace(
    buffer: TraceBuffer,
    pid: int = 0,
    process_name: str = "repro-sim",
) -> dict[str, Any]:
    """Render the buffer as a Chrome trace-event JSON object."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for layer, tid in _LAYER_TIDS.items():
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": layer},
        })
    for ev in buffer.events():
        layer = KIND_LAYER[ev.kind]
        events.append({
            "name": ev.kind.value,
            "ph": "i",
            "s": "t",
            "ts": ev.ts_us,
            "pid": pid,
            "tid": _LAYER_TIDS[layer],
            "args": {
                "vpage": ev.vpage,
                "npages": ev.npages,
                "value": ev.value,
                "tag": ev.tag,
            },
        })
        if ev.kind is TraceKind.DISK_REQUEST:
            events.append({
                "name": "disk_queue_delay_us",
                "ph": "C",
                "ts": ev.ts_us,
                "pid": pid,
                "args": {"us": ev.value},
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "emitted": buffer.total_emitted,
            "dropped": buffer.dropped,
        },
    }


def write_chrome_trace(
    path: str,
    buffer: TraceBuffer,
    pid: int = 0,
    process_name: str = "repro-sim",
) -> None:
    """Write a Perfetto-loadable trace JSON file, atomically."""
    atomic_write_json(path, chrome_trace(buffer, pid, process_name),
                      indent=1, sort_keys=False)


#: Phases and fields the validator accepts / requires.
_VALID_PHASES = {"i", "C", "M"}
_VALID_KINDS = {kind.value for kind in TraceKind}
_COUNTER_NAMES = {"disk_queue_delay_us"}
_META_NAMES = {"process_name", "thread_name"}


def validate_chrome_trace(obj: Any) -> list[str]:
    """Check a loaded trace object against the exporter's schema.

    Returns a list of problems; an empty list means the trace is valid.
    This is the oracle the golden-file test and ``scripts/check_docs.py``
    share, so the schema documented in docs/observability.md has a
    single executable definition.
    """
    problems: list[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["top level must be an object with a 'traceEvents' array"]
    events = obj["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    last_ts = float("-inf")
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = ev.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        name = ev.get("name")
        if phase == "M":
            if name not in _META_NAMES:
                problems.append(f"{where}: unknown metadata event {name!r}")
            continue
        if "ts" not in ev or not isinstance(ev["ts"], (int, float)):
            problems.append(f"{where}: missing numeric 'ts'")
            continue
        if phase == "C":
            if name not in _COUNTER_NAMES:
                problems.append(f"{where}: unknown counter {name!r}")
            continue
        # phase == "i": one simulator event.
        if name not in _VALID_KINDS:
            problems.append(f"{where}: unknown event kind {name!r}")
            continue
        args = ev.get("args")
        if not isinstance(args, dict):
            problems.append(f"{where}: missing 'args'")
            continue
        for field, types in (("vpage", (int,)), ("npages", (int,)),
                             ("value", (int, float)), ("tag", (str,))):
            if not isinstance(args.get(field), types):
                problems.append(f"{where}: args.{field} missing or mistyped")
        if ev["ts"] < last_ts:
            problems.append(f"{where}: timestamps not monotonic")
        last_ts = ev["ts"]
    return problems


def metrics_json(registry: MetricsRegistry) -> dict[str, Any]:
    """Render a registry as a JSON-ready object."""
    return {"metrics": registry.as_dict()}


def write_metrics_json(path: str, registry: MetricsRegistry) -> None:
    """Write the run's metrics registry as a JSON artifact, atomically."""
    atomic_write_json(path, metrics_json(registry), indent=1, sort_keys=True)
