"""Farm-wide telemetry: aggregation, trace correlation, and SLOs.

The single-process observability stack (PRs 1/4) measures one run from
the inside; the job farm (PR 7) runs dozens of processes whose only
outputs are result files and 16 terminal counters.  This module closes
the gap with a pipeline built entirely from the farm's existing
communication fabric -- queues in, atomically written files out -- so a
worker dying at any instant can corrupt nothing:

* :class:`TelemetryAggregator` -- workers serialize their per-job
  :class:`~repro.obs.metrics.MetricsRegistry` deltas (periodically via
  partial-snapshot files, finally over the result channel); the
  controller folds them into a live farm registry.  Instruments are
  mergeable by construction, so the rollup equals what one shared
  registry would have recorded, with per-tenant labeled children
  (``obs.stall_latency_us{tenant=acme}``) on top.
* :class:`FarmTraceRecorder` -- controller-side spans (``queued`` on
  the admission lane, ``running`` on per-worker lanes) and instants
  (dispatch, retry, preemption, chaos strikes, SLO violations), all on
  one wall clock.  :func:`~repro.obs.export.merge_chrome_traces` then
  folds the per-job simulator traces in under their dispatch offsets,
  producing one Perfetto-loadable farm timeline that still passes
  :func:`~repro.obs.export.validate_chrome_trace`.
* :class:`SloEngine` -- declarative JSON rules (``p99(serve.job_latency_us)
  < 3e8``) evaluated against the live farm view on the flush cadence,
  emitting ``slo_violation`` trace instants, the ``slo.*`` metric
  family, and a machine-readable verdict artifact.
* :class:`FarmTelemetry` -- the facade the controller drives.  It owns
  the ``workdir/telemetry.json`` snapshot that ``repro top`` and
  ``repro serve status --telemetry`` render.

Telemetry is observation-only: workers attach an
:class:`~repro.obs.observer.Observer` (proven bit-identical), and
nothing here feeds back into scheduling, so every simulated result
stays bit-identical to the golden trace with telemetry enabled.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ConfigError, ensure_finite
from repro.ioutil import atomic_write_json
from repro.obs.export import merge_chrome_traces
from repro.obs.metrics import (
    SLO_METRIC_NAMES,
    TELEMETRY_METRIC_NAMES,
    Histogram,
    MetricsRegistry,
    labeled_name,
)

#: The schema version of telemetry.json snapshots and SLO artifacts.
TELEMETRY_VERSION = 1

#: Aggregations an SLO rule may apply to a metric.
SLO_AGGS: tuple[str, ...] = (
    "value", "rate", "count", "mean", "max", "p50", "p95", "p99",
)

#: Comparison operators an SLO rule may use.
SLO_OPS: tuple[str, ...] = ("<", "<=", ">", ">=", "==", "!=")

#: Hard cap on buffered farm-timeline events (a long farm run must not
#: grow without bound; drops are counted and reported, never silent).
MAX_TRACE_EVENTS = 200_000


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TelemetryConfig:
    """Everything the telemetry pipeline tunes.

    Enabled by default: aggregation rides the existing result channel
    and costs one observer per job (proven bit-identical).  Per-job
    Chrome traces are the expensive part and stay opt-in via
    ``trace_out`` (the merged farm timeline) -- requesting the timeline
    implies recording the per-job segments it is built from.
    """

    enabled: bool = True
    #: Cadence (wall seconds) of worker partial flushes, controller
    #: snapshot writes, and SLO evaluations.
    flush_every_s: float = 0.5
    #: Merged farm-timeline output path (None = no timeline; setting it
    #: turns on per-job trace capture).
    trace_out: str | None = None
    #: SLO rules to evaluate (None = :func:`default_slo_rules`).
    slo_rules: tuple["SloRule", ...] | None = None
    #: SLO verdict artifact path (None = workdir/slo_verdict.json).
    slo_out: str | None = None

    def __post_init__(self) -> None:
        if self.flush_every_s <= 0:
            raise ConfigError(
                f"telemetry flush cadence must be > 0, got {self.flush_every_s}"
            )

    @property
    def job_traces(self) -> bool:
        return self.trace_out is not None

    def worker_args(self, telemetry_dir: str, traces_dir: str) -> dict | None:
        """The plain-dict form shipped to worker processes."""
        if not self.enabled:
            return None
        return {
            "dir": telemetry_dir,
            "traces_dir": traces_dir if self.job_traces else None,
            "flush_every_s": self.flush_every_s,
        }


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


@dataclass
class _Contribution:
    tenant: str
    final: bool
    registry: MetricsRegistry


class TelemetryAggregator:
    """Folds worker registry deltas into one farm-level rollup.

    Contributions are keyed by ``(job_id, attempt)``; a partial flush
    *replaces* the previous partial for its attempt (worker snapshots
    are cumulative, not incremental), and the final delta of a job
    seals the job -- later stale partials are ignored and earlier
    partials dropped, so nothing is ever folded twice.  The rollup is
    recomputed from the surviving contributions, which is what makes
    "controller totals == sum of worker deltas" hold by construction.
    """

    def __init__(self) -> None:
        self._contributions: dict[tuple[str, int], _Contribution] = {}
        self._sealed: set[str] = set()

    def ingest(self, job_id: str, attempt: int, tenant: str,
               metrics: dict, final: bool) -> bool:
        """Fold one worker delta in; returns False when ignored."""
        if job_id in self._sealed:
            return False
        registry = MetricsRegistry.from_snapshot(metrics)
        if final:
            stale = [key for key in self._contributions if key[0] == job_id]
            for key in stale:
                del self._contributions[key]
            self._sealed.add(job_id)
        self._contributions[(job_id, attempt)] = _Contribution(
            tenant=tenant, final=final, registry=registry)
        return True

    def discard(self, job_id: str, attempt: int | None = None) -> None:
        """Drop partials of a failed/preempted attempt (its retry will
        re-report; keeping both would double-count)."""
        stale = [key for key in self._contributions
                 if key[0] == job_id and not self._contributions[key].final
                 and (attempt is None or key[1] == attempt)]
        for key in stale:
            del self._contributions[key]

    def jobs_folded(self) -> int:
        return len(self._contributions)

    def tenants(self) -> list[str]:
        return sorted({c.tenant for c in self._contributions.values()})

    def rollup(self) -> MetricsRegistry:
        """One registry carrying every contribution, twice over: the
        unlabeled family plus per-tenant labeled children."""
        rollup = MetricsRegistry()
        for contribution in self._contributions.values():
            rollup.merge(contribution.registry)
            source = contribution.registry
            for name in source.names():
                instrument = source.get(name)
                child = labeled_name(name, tenant=contribution.tenant)
                if instrument.kind == "counter":
                    rollup.counter(child).merge(instrument)
                elif instrument.kind == "gauge":
                    rollup.gauge(child).merge(instrument)
                else:
                    rollup.histogram(child, instrument.bounds).merge(instrument)
        return rollup


# ----------------------------------------------------------------------
# SLO engine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SloRule:
    """One declarative objective: ``agg(metric) op threshold``.

    ``tenant`` scopes the rule to that tenant's labeled child (e.g.
    ``p99(obs.stall_latency_us{tenant=acme}) < 1e6``).  A metric absent
    from the registry evaluates as 0.0 with ``missing`` flagged in the
    verdict row, so a rule over a family that never fired still renders
    rather than crashing the evaluation.
    """

    name: str
    metric: str
    agg: str = "value"
    op: str = "<"
    threshold: float = 0.0
    tenant: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("SLO rule needs a name")
        if not self.metric:
            raise ConfigError(f"SLO rule {self.name!r} needs a metric")
        if self.agg not in SLO_AGGS:
            raise ConfigError(
                f"SLO rule {self.name!r}: agg must be one of {SLO_AGGS}, "
                f"got {self.agg!r}"
            )
        if self.op not in SLO_OPS:
            raise ConfigError(
                f"SLO rule {self.name!r}: op must be one of {SLO_OPS}, "
                f"got {self.op!r}"
            )
        ensure_finite(float(self.threshold),
                      f"SLO rule {self.name!r} threshold")

    @property
    def target(self) -> str:
        """The registry name the rule reads."""
        if self.tenant is None:
            return self.metric
        return labeled_name(self.metric, tenant=self.tenant)

    def observe(self, registry: MetricsRegistry) -> tuple[float, bool]:
        """``(observed value, missing flag)`` against one registry."""
        if self.target not in registry:
            return 0.0, True
        instrument = registry.get(self.target)
        if isinstance(instrument, Histogram):
            if self.agg in ("value", "rate"):
                raise ConfigError(
                    f"SLO rule {self.name!r}: {self.agg} does not apply to "
                    f"histogram {self.target!r}; use count/mean/max/p*"
                )
            if self.agg == "count":
                return float(instrument.count), False
            if self.agg == "mean":
                return float(instrument.mean), False
            if self.agg == "max":
                return float(instrument.max if instrument.count else 0.0), False
            return float(instrument.quantile(
                {"p50": 0.50, "p95": 0.95, "p99": 0.99}[self.agg])), False
        if self.agg not in ("value", "rate", "max", "count"):
            raise ConfigError(
                f"SLO rule {self.name!r}: {self.agg} needs a histogram, "
                f"but {self.target!r} is a {instrument.kind}"
            )
        # For counters/gauges value, rate, and count all read the scalar
        # (rate(serve.jobs_shed) == 0 <=> total over the run == 0); max
        # reads a gauge's tracked maximum.
        if self.agg == "max" and instrument.kind == "gauge":
            return float(instrument.max), False
        return float(instrument.value), False

    def check(self, registry: MetricsRegistry) -> dict[str, Any]:
        """One verdict row: observed value, pass/fail, missing flag."""
        observed, missing = self.observe(registry)
        threshold = float(self.threshold)
        ok = {
            "<": observed < threshold,
            "<=": observed <= threshold,
            ">": observed > threshold,
            ">=": observed >= threshold,
            "==": observed == threshold,
            "!=": observed != threshold,
        }[self.op]
        return {
            "name": self.name,
            "metric": self.metric,
            "agg": self.agg,
            "op": self.op,
            "threshold": threshold,
            "tenant": self.tenant,
            "observed": observed,
            "ok": bool(ok),
            "missing": missing,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "agg": self.agg,
            "op": self.op,
            "threshold": float(self.threshold),
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SloRule":
        if not isinstance(payload, dict):
            raise ConfigError("SLO rule must be a JSON object")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigError(f"malformed SLO rule: {exc}") from None


def default_slo_rules() -> tuple[SloRule, ...]:
    """The objectives every farm is held to unless a rules file says
    otherwise: bounded tail latency, no load shedding, no blown
    per-job deadlines."""
    return (
        SloRule(name="job-latency-p99", metric="serve.job_latency_us",
                agg="p99", op="<", threshold=3e8),
        SloRule(name="no-shedding", metric="serve.jobs_shed",
                agg="rate", op="==", threshold=0.0),
        SloRule(name="no-deadline-timeouts", metric="serve.deadline_timeouts",
                agg="value", op="==", threshold=0.0),
    )


def load_slo_rules(path: str) -> tuple[SloRule, ...]:
    """Load a declarative rules file: ``{"version": 1, "rules": [...]}``."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(f"cannot load SLO rules {path!r}: {exc}") from None
    if not isinstance(payload, dict) or "rules" not in payload:
        raise ConfigError(
            f"{path}: SLO rules must be an object with a 'rules' array")
    version = payload.get("version", TELEMETRY_VERSION)
    if version != TELEMETRY_VERSION:
        raise ConfigError(
            f"{path}: SLO rules version {version!r} is not supported "
            f"(this build reads version {TELEMETRY_VERSION})"
        )
    rules = payload["rules"]
    if not isinstance(rules, list) or not rules:
        raise ConfigError(f"{path}: SLO rules needs a non-empty 'rules' array")
    parsed = tuple(SloRule.from_dict(rule) for rule in rules)
    names = [rule.name for rule in parsed]
    if len(set(names)) != len(names):
        raise ConfigError(f"{path}: duplicate SLO rule names in {names}")
    return parsed


class SloEngine:
    """Evaluates a rule set against the live farm view.

    ``evaluate`` returns the full verdict object (the artifact format)
    and remembers which rules were already violated, so the caller can
    emit one ``slo_violation`` trace instant per rule *transition*
    instead of one per polling tick.
    """

    def __init__(self, rules: Sequence[SloRule]) -> None:
        self.rules = tuple(rules)
        self.evaluations = 0
        self._violated: set[str] = set()

    def evaluate(self, registry: MetricsRegistry) -> dict[str, Any]:
        self.evaluations += 1
        rows = [rule.check(registry) for rule in self.rules]
        violations = [row for row in rows if not row["ok"]]
        return {
            "version": TELEMETRY_VERSION,
            "ok": not violations,
            "evaluations": self.evaluations,
            "rules_total": len(rows),
            "violations": len(violations),
            "rules": rows,
        }

    def new_violations(self, verdict: dict[str, Any]) -> list[dict[str, Any]]:
        """Rows that flipped to violating since the previous call."""
        fresh = []
        now_violated = set()
        for row in verdict["rules"]:
            if row["ok"]:
                continue
            now_violated.add(row["name"])
            if row["name"] not in self._violated:
                fresh.append(row)
        self._violated = now_violated
        return fresh


# ----------------------------------------------------------------------
# The farm timeline recorder
# ----------------------------------------------------------------------


class FarmTraceRecorder:
    """Controller-side Chrome trace: spans, instants, counter tracks.

    All timestamps are wall microseconds relative to farm start, so
    the farm timeline and the (offset) per-job simulator traces share
    one clock in the merged view.  The event list is bounded; overflow
    increments ``dropped`` rather than growing without bound.
    """

    #: Lane (tid) layout: admission queue plus one lane per worker.
    ADMISSION_TID = 1
    WORKER_TID0 = 10

    def __init__(self, trace_id: str, workers: int,
                 max_events: int = MAX_TRACE_EVENTS) -> None:
        self.trace_id = trace_id
        self.max_events = max_events
        self.events: list[dict[str, Any]] = []
        self.dropped = 0
        self._lanes: dict[int, str] = {self.ADMISSION_TID: "admission"}
        for w in range(workers):
            self._lanes[self.WORKER_TID0 + w] = f"worker {w}"

    def worker_tid(self, worker_id: int) -> int:
        return self.WORKER_TID0 + worker_id

    def _append(self, event: dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def span(self, name: str, ts_us: float, dur_us: float, tid: int,
             args: dict[str, Any]) -> None:
        self._append({
            "name": name, "ph": "X", "ts": ts_us,
            "dur": max(0.0, dur_us), "pid": 0, "tid": tid, "args": args,
        })

    def instant(self, name: str, ts_us: float, tid: int,
                args: dict[str, Any]) -> None:
        self._append({
            "name": name, "ph": "i", "s": "t", "ts": ts_us,
            "pid": 0, "tid": tid, "args": args,
        })

    def counter(self, name: str, ts_us: float, value: float) -> None:
        self._append({
            "name": name, "ph": "C", "ts": ts_us, "pid": 0,
            "args": {"value": value},
        })

    def chrome(self) -> dict[str, Any]:
        """The recorder's own segment, in the exporter's trace format."""
        meta: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": f"repro-farm [{self.trace_id}]"},
        }]
        for tid in sorted(self._lanes):
            meta.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": self._lanes[tid]},
            })
        body = sorted(self.events, key=lambda ev: ev["ts"])
        return {
            "traceEvents": meta + body,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "emitted": len(self.events) + self.dropped,
                "dropped": self.dropped,
            },
        }


# ----------------------------------------------------------------------
# The controller facade
# ----------------------------------------------------------------------


class FarmTelemetry:
    """Everything the farm controller drives, behind enabled checks.

    The controller calls the ``on_*`` hooks at its state transitions
    and :meth:`poll` from the collect loop; every hook is a no-op when
    telemetry is disabled, so the farm's control flow never branches on
    telemetry state.  ``state_fn`` supplies the live farm summary
    (queue depth, busy workers, job counts) for snapshots.
    """

    def __init__(self, config: TelemetryConfig, workdir: str | Path,
                 workers: int, serve_metrics: MetricsRegistry,
                 state_fn: Callable[[], dict[str, Any]] | None = None) -> None:
        self.config = config
        self.enabled = config.enabled
        self.workdir = Path(workdir)
        self.workers = workers
        self.serve_metrics = serve_metrics
        self.state_fn = state_fn or (lambda: {})
        self.trace_id = uuid.uuid4().hex[:12]
        self.aggregator = TelemetryAggregator()
        self.engine = SloEngine(config.slo_rules
                                if config.slo_rules is not None
                                else default_slo_rules())
        self.recorder = FarmTraceRecorder(self.trace_id, workers)
        self.telemetry_dir = self.workdir / "telemetry"
        self.traces_dir = self.workdir / "traces"
        self.snapshot_path = self.workdir / "telemetry.json"
        if self.enabled:
            self.telemetry_dir.mkdir(parents=True, exist_ok=True)
            if config.job_traces:
                self.traces_dir.mkdir(parents=True, exist_ok=True)
        self.registry = MetricsRegistry()
        for name in TELEMETRY_METRIC_NAMES:
            if name in ("telemetry.instruments", "telemetry.tenants"):
                self.registry.gauge(name).set(0.0)
            else:
                self.registry.counter(name)
        for name in SLO_METRIC_NAMES:
            if name == "slo.rules":
                self.registry.gauge(name).set(float(len(self.engine.rules)))
            else:
                self.registry.counter(name)
        self._t0 = time.monotonic()
        self._queued_at: dict[str, float] = {}
        self._running: dict[str, tuple[int, float, int]] = {}
        self._dispatch_offset: dict[tuple[str, int], float] = {}
        self._tenant_jobs: dict[str, dict[str, int]] = {}
        self._last_flush = float("-inf")
        self._last_verdict: dict[str, Any] | None = None

    # -- clock ---------------------------------------------------------

    def now_us(self, now_s: float | None = None) -> float:
        return ((time.monotonic() if now_s is None else now_s)
                - self._t0) * 1e6

    # -- wiring --------------------------------------------------------

    def worker_args(self) -> dict | None:
        return self.config.worker_args(str(self.telemetry_dir),
                                       str(self.traces_dir))

    def dispatch_context(self, job_id: str, attempt: int) -> dict[str, Any]:
        """The correlation fields carried by one dispatch message."""
        if not self.enabled:
            return {"trace_id": None, "parent_span": None}
        return {
            "trace_id": self.trace_id,
            "parent_span": f"{self.trace_id}/{job_id}.a{attempt}",
        }

    # -- controller hooks ----------------------------------------------

    def _tenant_row(self, tenant: str) -> dict[str, int]:
        return self._tenant_jobs.setdefault(
            tenant, {"jobs": 0, "done": 0, "failed_attempts": 0})

    def on_submit(self, record, now_s: float) -> None:
        if not self.enabled:
            return
        self._queued_at[record.spec.job_id] = self.now_us(now_s)
        self._tenant_row(record.spec.tenant)["jobs"] += 1

    def on_dispatch(self, record, worker_id: int, now_s: float) -> None:
        if not self.enabled:
            return
        ts = self.now_us(now_s)
        job_id = record.spec.job_id
        queued = self._queued_at.pop(job_id, None)
        if queued is not None:
            self.recorder.span(
                "queued", queued, ts - queued, self.recorder.ADMISSION_TID,
                {"job_id": job_id, "tenant": record.spec.tenant,
                 "priority": record.spec.priority, "attempt": record.attempts})
            self._count_span()
        self._running[job_id] = (worker_id, ts, record.attempts)
        self._dispatch_offset[(job_id, record.attempts)] = ts
        self.recorder.instant(
            "dispatch", ts, self.recorder.worker_tid(worker_id),
            {"job_id": job_id, "attempt": record.attempts,
             "tenant": record.spec.tenant, "resume": record.resume,
             "parent_span": f"{self.trace_id}/{job_id}.a{record.attempts}"})
        self._count_instant()

    def _close_running(self, job_id: str, now_us: float,
                       args: dict[str, Any]) -> int | None:
        entry = self._running.pop(job_id, None)
        if entry is None:
            return None
        worker_id, started, attempt = entry
        self.recorder.span(
            "running", started, now_us - started,
            self.recorder.worker_tid(worker_id),
            {"job_id": job_id, "attempt": attempt, **args})
        self._count_span()
        return worker_id

    def on_terminal(self, record, state: str, now_s: float) -> None:
        """A job reached done/quarantined/shed."""
        if not self.enabled:
            return
        ts = self.now_us(now_s)
        job_id = record.spec.job_id
        tenant = record.spec.tenant
        worker_id = self._close_running(job_id, ts, {"outcome": state})
        queued = self._queued_at.pop(job_id, None)
        if queued is not None:
            # Quarantined from the queue or shed: close the queue span.
            self.recorder.span(
                "queued", queued, ts - queued, self.recorder.ADMISSION_TID,
                {"job_id": job_id, "tenant": tenant, "outcome": state})
            self._count_span()
        tid = (self.recorder.worker_tid(worker_id) if worker_id is not None
               else self.recorder.ADMISSION_TID)
        name = {"done": "done", "quarantined": "quarantined",
                "shed": "shed"}.get(state, "failed")
        self.recorder.instant(name, ts, tid, {
            "job_id": job_id, "tenant": tenant,
            "attempts": record.attempts, "latency_s": record.latency_s})
        self._count_instant()
        if state == "done":
            self._tenant_row(tenant)["done"] += 1
        else:
            # Only completed attempts contribute to the rollup: a job
            # that ends shed/quarantined never reported a final delta,
            # so its in-flight partials must not linger either.
            self.aggregator.discard(job_id)

    def on_attempt_failed(self, record, reason: str, now_s: float) -> None:
        """One failed attempt (pre-quarantine): close the span, note
        the retry, and drop the attempt's partial deltas."""
        if not self.enabled:
            return
        ts = self.now_us(now_s)
        job_id = record.spec.job_id
        self._close_running(job_id, ts, {"outcome": "failed"})
        self._queued_at.setdefault(job_id, ts)
        self.recorder.instant(
            "retry", ts, self.recorder.ADMISSION_TID,
            {"job_id": job_id, "attempt": record.attempts, "reason": reason})
        self._count_instant()
        self._tenant_row(record.spec.tenant)["failed_attempts"] += 1
        self.aggregator.discard(job_id, record.attempts)

    def on_preempt(self, record, now_s: float) -> None:
        if not self.enabled:
            return
        ts = self.now_us(now_s)
        job_id = record.spec.job_id
        self._close_running(job_id, ts, {"outcome": "preempted"})
        self._queued_at.setdefault(job_id, ts)
        self.recorder.instant(
            "preempted", ts, self.recorder.ADMISSION_TID,
            {"job_id": job_id, "attempt": record.attempts,
             "tenant": record.spec.tenant})
        self._count_instant()
        self.aggregator.discard(job_id, record.attempts)

    def on_recover(self, readmitted: int, now_s: float) -> None:
        """One controller recovery: the ledger was replayed into a new
        controller and ``readmitted`` unfinished jobs went back in the
        queue (docs/serving.md, *Controller failure & recovery*)."""
        if not self.enabled:
            return
        self.recorder.instant(
            "recover", self.now_us(now_s), self.recorder.ADMISSION_TID,
            {"readmitted": readmitted})
        self._count_instant()

    def on_strike(self, worker_id: int, op: str, now_s: float) -> None:
        if not self.enabled:
            return
        self.recorder.instant(
            "worker_kill" if op == "kill" else "worker_stall",
            self.now_us(now_s), self.recorder.worker_tid(worker_id),
            {"op": op, "phase": "strike"})
        self._count_instant()

    def on_worker_failed(self, worker_id: int, kind: str, detail: str,
                         now_s: float) -> None:
        if not self.enabled:
            return
        name = {"died": "worker_died", "stalled": "worker_stall",
                "deadline": "deadline"}.get(kind, "worker_died")
        self.recorder.instant(
            name, self.now_us(now_s), self.recorder.worker_tid(worker_id),
            {"kind": kind, "detail": detail, "phase": "detected"})
        self._count_instant()

    def on_result(self, record, payload: dict[str, Any]) -> None:
        """Fold the final telemetry delta of a finished attempt."""
        if not self.enabled:
            return
        delta = payload.get("telemetry")
        if not isinstance(delta, dict):
            return
        metrics = delta.get("metrics")
        if not isinstance(metrics, dict):
            return
        try:
            folded = self.aggregator.ingest(
                record.spec.job_id, int(delta.get("attempt", record.attempts)),
                record.spec.tenant, metrics, final=True)
        except Exception:
            return  # a torn/alien delta must never take the farm down
        if folded:
            self.registry.counter("telemetry.deltas_folded").inc()

    # -- the polling tick ----------------------------------------------

    def poll(self, now_s: float) -> None:
        """Flush-cadence work: fold partials, sample counters, write the
        snapshot, evaluate SLOs.  Called from the collect loop."""
        if not self.enabled:
            return
        if now_s - self._last_flush < self.config.flush_every_s:
            return
        self._last_flush = now_s
        ts = self.now_us(now_s)
        self._fold_partials()
        state = self.state_fn()
        self.recorder.counter("farm_queue_depth", ts,
                              float(state.get("queue_depth", 0)))
        self.recorder.counter("farm_workers_busy", ts,
                              float(state.get("workers_busy", 0)))
        self.registry.counter("telemetry.trace_events").inc(2)
        for worker_id, age_s in state.get("hb_age_s", {}).items():
            self.recorder.instant(
                "heartbeat_epoch", ts, self.recorder.worker_tid(worker_id),
                {"age_s": round(age_s, 4)})
            self._count_instant()
        self._evaluate_slo(ts)
        self.write_snapshot(now_s, final=False)

    def _fold_partials(self) -> None:
        """Read worker partial-snapshot files (cumulative, atomic)."""
        try:
            names = os.listdir(self.telemetry_dir)
        except OSError:
            return
        for name in names:
            if not (name.startswith("worker") and name.endswith(".json")):
                continue
            try:
                with open(self.telemetry_dir / name) as fh:
                    partial = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(partial, dict):
                continue
            job_id = partial.get("job_id")
            metrics = partial.get("metrics")
            if not isinstance(job_id, str) or not isinstance(metrics, dict):
                continue
            try:
                folded = self.aggregator.ingest(
                    job_id, int(partial.get("attempt", 0)),
                    str(partial.get("tenant", "default")), metrics,
                    final=False)
            except Exception:
                continue
            if folded:
                self.registry.counter("telemetry.partial_flushes").inc()

    def farm_view(self) -> MetricsRegistry:
        """The combined registry SLOs and snapshots read: the farm's
        own serve.* instruments plus the worker rollup."""
        view = MetricsRegistry()
        view.merge(self.serve_metrics)
        view.merge(self.aggregator.rollup())
        view.merge(self.registry)
        self.registry.gauge("telemetry.instruments").set(float(len(view)))
        self.registry.gauge("telemetry.tenants").set(
            float(len(self._tenant_jobs)))
        return view

    def _evaluate_slo(self, ts_us: float) -> dict[str, Any]:
        verdict = self.engine.evaluate(self.farm_view())
        self.registry.counter("slo.evaluations").inc()
        self.registry.counter("slo.checks").inc(verdict["rules_total"])
        fresh = self.engine.new_violations(verdict)
        for row in fresh:
            self.registry.counter("slo.violations").inc()
            self.recorder.instant(
                "slo_violation", ts_us, self.recorder.ADMISSION_TID,
                {"rule": row["name"], "metric": row["metric"],
                 "agg": row["agg"], "op": row["op"],
                 "threshold": row["threshold"], "observed": row["observed"]})
            self._count_instant()
        self._last_verdict = verdict
        return verdict

    def _count_span(self) -> None:
        self.registry.counter("telemetry.spans").inc()
        self.registry.counter("telemetry.trace_events").inc()

    def _count_instant(self) -> None:
        self.registry.counter("telemetry.instants").inc()
        self.registry.counter("telemetry.trace_events").inc()

    # -- surfaces ------------------------------------------------------

    def tenant_table(self, view: MetricsRegistry) -> dict[str, dict[str, Any]]:
        """Per-tenant rollup: job counts plus tail-stall/latency."""
        table: dict[str, dict[str, Any]] = {}
        for tenant in sorted(self._tenant_jobs):
            row: dict[str, Any] = dict(self._tenant_jobs[tenant])
            stall = labeled_name("obs.stall_latency_us", tenant=tenant)
            if stall in view:
                hist = view.get(stall)
                row["stall_p50_us"] = hist.quantile(0.50)
                row["stall_p95_us"] = hist.quantile(0.95)
                row["stall_p99_us"] = hist.quantile(0.99)
                row["stalls"] = hist.count
            latency = labeled_name("serve.job_latency_us", tenant=tenant)
            if latency in view:
                row["latency_p99_us"] = view.get(latency).quantile(0.99)
            table[tenant] = row
        return table

    def snapshot(self, now_s: float | None = None,
                 final: bool = False) -> dict[str, Any]:
        """The JSON object ``repro top`` renders."""
        view = self.farm_view()
        quantiles = {}
        for name in view.names():
            instrument = view.get(name)
            if isinstance(instrument, Histogram) and "{" not in name:
                quantiles[name] = {
                    "count": instrument.count,
                    "p50": instrument.quantile(0.50),
                    "p95": instrument.quantile(0.95),
                    "p99": instrument.quantile(0.99),
                }
        verdict = self._last_verdict
        if verdict is None:
            verdict = self._evaluate_slo(self.now_us(now_s))
        return {
            "version": TELEMETRY_VERSION,
            "trace_id": self.trace_id,
            "state": "final" if final else "running",
            "updated_s": round((time.monotonic() if now_s is None else now_s)
                               - self._t0, 3),
            "farm": {**self.state_fn(), "workers": self.workers,
                     "jobs_folded": self.aggregator.jobs_folded()},
            "metrics": view.as_dict(),
            "quantiles": quantiles,
            "tenants": self.tenant_table(view),
            "slo": verdict,
        }

    def write_snapshot(self, now_s: float | None = None,
                       final: bool = False) -> None:
        snap = self.snapshot(now_s, final=final)
        # hb_age_s has int keys; JSON wants strings.
        farm = snap["farm"]
        if isinstance(farm.get("hb_age_s"), dict):
            farm["hb_age_s"] = {str(k): v for k, v in farm["hb_age_s"].items()}
        try:
            atomic_write_json(self.snapshot_path, snap)
        except OSError:
            return
        self.registry.counter("telemetry.snapshot_writes").inc()

    def finalize(self, now_s: float | None = None) -> dict[str, Any]:
        """End-of-run flush: final SLO verdict artifact, merged farm
        timeline, and the terminal snapshot.  Returns the summary the
        farm report embeds."""
        if not self.enabled:
            return {"enabled": False}
        if now_s is None:
            now_s = time.monotonic()
        ts = self.now_us(now_s)
        self._fold_partials()
        verdict = self._evaluate_slo(ts)
        slo_out = self.config.slo_out or str(self.workdir / "slo_verdict.json")
        atomic_write_json(slo_out, {
            **verdict,
            "trace_id": self.trace_id,
            "rules_source": ("file" if self.config.slo_rules is not None
                             else "default"),
        })
        trace_out = None
        if self.config.trace_out is not None:
            trace_out = self.config.trace_out
            self._write_timeline(trace_out)
        self.write_snapshot(now_s, final=True)
        view = self.farm_view()
        return {
            "enabled": True,
            "trace_id": self.trace_id,
            "jobs_folded": self.aggregator.jobs_folded(),
            "tenants": self.tenant_table(view),
            "slo": verdict,
            "slo_out": slo_out,
            "trace_out": trace_out,
            "snapshot": str(self.snapshot_path),
            "metrics": self.registry.as_dict(),
        }

    def _write_timeline(self, path: str) -> None:
        """Merge the controller segment with every per-job trace file."""
        segments = [{"name": f"repro-farm [{self.trace_id}]",
                     "trace": self.recorder.chrome(), "offset_us": 0.0}]
        try:
            names = sorted(os.listdir(self.traces_dir))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(self.traces_dir / name) as fh:
                    trace = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
            stem = name[:-len(".json")]  # "<job_id>.a<attempt>"
            job_id, _, suffix = stem.rpartition(".a")
            try:
                attempt = int(suffix)
            except ValueError:
                job_id, attempt = stem, 0
            offset = self._dispatch_offset.get((job_id, attempt), 0.0)
            segments.append({"name": stem, "trace": trace,
                             "offset_us": offset})
        merged = merge_chrome_traces(segments)
        merged["otherData"]["trace_id"] = self.trace_id
        atomic_write_json(path, merged, sort_keys=False)
