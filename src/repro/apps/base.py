"""Shared application-model infrastructure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.ir.nodes import Program

#: Elements of 8 bytes per default 4 KB page.
ELEMS_PER_PAGE = 512


def doubles_for_pages(pages: int) -> int:
    """Number of 8-byte elements filling ``pages`` default pages."""
    return pages * ELEMS_PER_PAGE


def cube_side_for_pages(pages: int, arrays: int, components: int = 1) -> int:
    """Grid side G such that ``arrays`` G^3-component grids fill ``pages``."""
    total_elems = doubles_for_pages(pages)
    per_grid = total_elems // (arrays * components)
    side = round(per_grid ** (1.0 / 3.0))
    return max(4, side)


def pencil_dims_for_pages(
    pages: int, arrays: int, components: int = 1, side: int = 112
) -> tuple[int, int, int]:
    """Grid dimensions (depth, side, side) filling ``pages``.

    The paper's NAS grids (64^3 .. 128^3+) have planes of hundreds of KB;
    at this package's reduced platform scale a *cubic* grid would have
    planes only a strip or two wide, which distorts the software
    pipelining.  Keeping the plane dimensions at paper scale and shrinking
    only the number of planes preserves the per-plane loop trip counts
    that the compiler's strip mining sees.
    """
    total_elems = doubles_for_pages(pages)
    per_grid = total_elems // (arrays * components)
    depth = max(4, per_grid // (side * side))
    return depth, side, side


#: NAS-style problem classes, as multiples of available memory.  Class S
#: is in-core (the Figure 6 regime), W sits at the memory boundary, A is
#: the paper's canonical out-of-core point (~2x), and B matches the
#: Figure 7 "larger" sizes.
SIZE_CLASSES: dict[str, float] = {"S": 0.35, "W": 1.0, "A": 2.0, "B": 6.0}


@dataclass(frozen=True)
class AppSpec:
    """One benchmark: metadata (Table 2) plus a program factory."""

    #: Paper's name for the benchmark (BUK, CGM, ...).
    name: str
    #: Modern NAS name (IS, CG, ...).
    nas_name: str
    full_name: str
    #: Table-2 style description of the computation and access pattern.
    description: str
    #: Builds the program at a given major-data footprint.
    build: Callable[[int, int], Program] = field(compare=False)
    #: Default out-of-core footprint, as a multiple of available memory.
    default_memory_multiple: float = 2.0
    #: Dominant access pattern (for Table 2 and reports).
    pattern: str = ""

    def make(self, data_pages: int, seed: int = 1) -> Program:
        """Instantiate the program with ~``data_pages`` of major data."""
        return self.build(data_pages, seed)

    def make_class(self, size_class: str, available_frames: int,
                   seed: int = 1) -> Program:
        """Instantiate a NAS-style problem class (S/W/A/B) for a machine."""
        try:
            multiple = SIZE_CLASSES[size_class.upper()]
        except KeyError:
            raise KeyError(
                f"unknown size class {size_class!r}; known: "
                + "/".join(SIZE_CLASSES)
            ) from None
        return self.make(max(8, int(available_frames * multiple)), seed=seed)
