"""FFT (NAS FT): out-of-core fast Fourier transform passes.

The FT benchmark solves a PDE with forward and inverse 3-D FFTs.  The
out-of-core structure that matters for paging is the sequence of butterfly
passes over one large array, each combining elements at a pass-dependent
stride: early passes pair elements half the array apart (two widely
separated sequential streams), late passes work within small blocks
(single sequential stream at page granularity).

Memory behaviour: every pass reads and writes the whole array; all
references are affine, so the compiler pipelines block prefetches for each
stream and coverage is near-perfect.  Successive passes re-traverse data
that LRU evicted, so out-of-core sizes fault heavily in the original
version -- prime territory for prefetching.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, doubles_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.core.ir.nodes import Program

#: Cost of one butterfly (complex multiply-add) per element pair.
BUTTERFLY_COST_US = 22.0
#: Number of modeled butterfly passes (one per block size below).
#: Real FFTs run log2(N) passes; three passes capture the three distinct
#: paging regimes (far stride, page-scale stride, within-page).
BLOCK_FRACTIONS = (2, 16, 256)


def build(data_pages: int, seed: int = 1) -> Program:
    n = doubles_for_pages(data_pages)
    b = ProgramBuilder("FFT")
    x = b.array("x", (n,), elem_size=8)
    for frac in BLOCK_FRACTIONS:
        half = max(1, n // frac // 2)
        nblocks = n // (2 * half)
        b.append(loop(f"blk_{frac}", 0, nblocks, [
            loop(f"t_{frac}", 0, half, [
                work(
                    [
                        read(x, Var(f"blk_{frac}") * (2 * half) + Var(f"t_{frac}")),
                        read(x, Var(f"blk_{frac}") * (2 * half) + Var(f"t_{frac}") + half),
                        write(x, Var(f"blk_{frac}") * (2 * half) + Var(f"t_{frac}")),
                        write(x, Var(f"blk_{frac}") * (2 * half) + Var(f"t_{frac}") + half),
                    ],
                    BUTTERFLY_COST_US,
                    text="(x[j], x[j+h]) = butterfly(x[j], x[j+h], w);",
                ),
            ]),
        ]))
    return b.build()


SPEC = AppSpec(
    name="FFT",
    nas_name="FT",
    full_name="3-D Fast Fourier Transform PDE",
    description=(
        "Spectral PDE solver built on FFTs; modeled as butterfly passes "
        "over one large array, each pass combining two sequential streams "
        "separated by the pass stride"
    ),
    build=build,
    pattern="paired sequential streams at pass-dependent strides",
)
