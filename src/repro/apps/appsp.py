"""APPSP (NAS SP): scalar pentadiagonal ADI solver.

SP solves three sets of scalar pentadiagonal systems per iteration, one
along each grid dimension (the ADI x-, y-, and z-sweeps).  Each line solve
is a forward-elimination pass followed by a back-substitution pass, so
every direction traverses the whole cube twice.  The traversal itself
stays plane-ordered (the real code keeps the contiguous dimension
innermost), but the z-direction's recurrence couples adjacent *planes*,
so its two passes walk the cube in opposite plane orders -- the
back-substitution revisits planes in exactly the order LRU evicted them.

Memory behaviour: six full-cube passes per iteration over two big grids;
heavy capacity faulting in the original version, near-complete coverage
with prefetching, with the reverse passes keeping the prefetch streams
from ever being page-resident leftovers.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, pencil_dims_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.core.ir.nodes import Program

#: Cost of one line-solve step per grid point.
SWEEP_COST_US = 18.0
#: ADI iterations (x + y + z direction per iteration, 2 passes each).
ITERATIONS = 1
#: Directions modeled per iteration (x, y, z).
DIRECTIONS = 3


def build(data_pages: int, seed: int = 1) -> Program:
    d, g, _ = pencil_dims_for_pages(data_pages, arrays=2)
    b = ProgramBuilder("APPSP")
    i, j, k = Var("i"), Var("j"), Var("k")
    u = b.array("u", (d, g, g), elem_size=8)
    rhs = b.array("rhs", (d, g, g), elem_size=8)

    def forward(text):
        """Forward elimination: ascending plane order."""
        return loop("i", 1, d - 1, [
            loop("j", 1, g - 1, [
                loop("k", 1, g - 1, [
                    work(
                        [read(rhs, i, j, k), read(u, i, j, k),
                         write(u, i, j, k)],
                        SWEEP_COST_US,
                        text=text,
                    ),
                ]),
            ]),
        ])

    def backward(text):
        """Back substitution: descending plane order (reversed indices)."""
        ri, rj, rk = (d - 2) - i, (g - 2) - j, (g - 2) - k
        return loop("i", 0, d - 2, [
            loop("j", 0, g - 2, [
                loop("k", 0, g - 2, [
                    work(
                        [read(rhs, ri, rj, rk), read(u, ri, rj, rk),
                         write(u, ri, rj, rk)],
                        SWEEP_COST_US,
                        text=text,
                    ),
                ]),
            ]),
        ])

    for _ in range(ITERATIONS):
        for axis in ("x", "y", "z")[:DIRECTIONS]:
            b.append(forward(f"u = {axis}solve_forward(u, rhs);"))
            b.append(backward(f"u = {axis}solve_backsub(u, rhs);"))
    return b.build()


SPEC = AppSpec(
    name="APPSP",
    nas_name="SP",
    full_name="Scalar Pentadiagonal Simulated CFD Application",
    description=(
        "ADI factorization with scalar pentadiagonal line solves along "
        "each of the three grid dimensions; the z-direction solves stride "
        "a full plane per step"
    ),
    build=build,
    pattern="x/y/z line sweeps; z-sweep plane-strided (no locality)",
)
