"""BUK (NAS IS): bucket sort of integer keys.

The paper uses BUK as its case study (Figure 8) because the problem size
scales freely.  Per ranking iteration the kernel:

1. histograms the keys into a bucket-count array (sequential key stream +
   data-dependent writes into the counts),
2. prefix-sums the counts (small, in-core),
3. computes each key's rank (sequential key stream, indirect count
   lookups, sequential rank writes).

Memory behaviour: the big data -- keys and ranks -- are pure sequential
streams (prefetched in blocks, released behind, so memory stays mostly
free: Table 3).  The count array is small and effectively memory-resident,
but its accesses are *indirect* (``count[key[i]]``), so the compiler must
prefetch them every iteration and the run-time layer filters nearly all of
them out -- the >96% unnecessary-prefetch column of Figure 4(b) and the
biggest win of the run-time layer in Figure 4(c).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppSpec, doubles_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, Var
from repro.core.ir.nodes import Program

#: Number of buckets (the count array: 4096 * 8 B = 8 pages, in-core).
NUM_BUCKETS = 4096
#: Per-key cost of the histogram pass.
HISTOGRAM_COST_US = 5.0
#: Per-bucket cost of the prefix-sum pass.
SCAN_COST_US = 2.0
#: Per-key cost of the ranking pass.
RANK_COST_US = 6.0
#: Ranking iterations.
ITERATIONS = 2


def build(data_pages: int, seed: int = 1) -> Program:
    # Keys and ranks split the major data footprint evenly.
    nkeys = doubles_for_pages(data_pages) // 2
    rng = np.random.default_rng(seed)
    b = ProgramBuilder("BUK")
    i, k = Var("i"), Var("k")
    key = b.array("key", (nkeys,), elem_size=8,
                  data=rng.integers(0, NUM_BUCKETS, size=nkeys))
    count = b.array("count", (NUM_BUCKETS,), elem_size=8)
    rank = b.array("rank", (nkeys,), elem_size=8)
    for _ in range(ITERATIONS):
        b.append(loop("i", 0, nkeys, [
            work([read(key, i), write(count, ElemOf(key, i))],
                 HISTOGRAM_COST_US, text="count[key[i]]++;"),
        ]))
        b.append(loop("k", 0, NUM_BUCKETS, [
            work([read(count, k), write(count, k)], SCAN_COST_US,
                 text="count[k] += count[k-1];"),
        ]))
        b.append(loop("i", 0, nkeys, [
            work(
                [read(key, i), write(count, ElemOf(key, i)), write(rank, i)],
                RANK_COST_US,
                text="rank[i] = count[key[i]]++;",
            ),
        ]))
    return b.build()


SPEC = AppSpec(
    name="BUK",
    nas_name="IS",
    full_name="Integer Sort (bucket sort)",
    description=(
        "Bucket sort of uniformly distributed integer keys: histogram, "
        "prefix sum, and ranking passes; keys and ranks stream "
        "sequentially while bucket counts are hit indirectly through the "
        "key values"
    ),
    build=build,
    pattern="sequential streams + indirect in-core counts",
)
