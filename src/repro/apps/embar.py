"""EMBAR (NAS EP): the embarrassingly parallel Monte-Carlo kernel.

EMBAR generates batches of pseudo-random numbers and tabulates
Gaussian-pair statistics.  The paper notes that for EMBAR "a random
initialization is performed once for every iteration and separation would
not be appropriate" (Section 3.2), so the model keeps each iteration's
generate-then-tabulate pair of top-level sequential sweeps over the batch
array.

Memory behaviour: two pure sequential streams per iteration over one large
array -- the simplest pattern in the suite.  The compiler's analysis is
perfect here (the paper's Figure 4(b) shows essentially no unnecessary
prefetches), and the top-level streams earn releases, which is why EMBAR
keeps most of memory free in Table 3.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, doubles_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.core.ir.nodes import Program

#: Cost of generating one pair of pseudo-random numbers (microseconds).
GENERATE_COST_US = 2.2
#: Cost of the square-root/log tabulation per element.
TABULATE_COST_US = 2.3
#: Outer Monte-Carlo iterations.
ITERATIONS = 2


def build(data_pages: int, seed: int = 1) -> Program:
    n = doubles_for_pages(data_pages)
    b = ProgramBuilder("EMBAR")
    i = Var("i")
    x = b.array("x", (n,), elem_size=8)
    for _ in range(ITERATIONS):
        # Random initialization of the batch (write stream).
        b.append(loop(f"i", 0, n, [
            work([write(x, i)], GENERATE_COST_US,
                 text="x[i] = vranlc(...);"),
        ]))
        # Gaussian-pair tabulation (read stream).
        b.append(loop(f"i", 0, n, [
            work([read(x, i)], TABULATE_COST_US,
                 text="t = x[i]*x[i] + x[i+1]*x[i+1]; counts[l] += ...;"),
        ]))
    return b.build()


SPEC = AppSpec(
    name="EMBAR",
    nas_name="EP",
    full_name="Embarrassingly Parallel",
    description=(
        "Monte-Carlo generation of pseudo-random numbers with tabulation "
        "of Gaussian-pair statistics; regenerates its batch array every "
        "iteration, then streams through it once"
    ),
    build=build,
    pattern="sequential write stream + sequential read stream",
)
