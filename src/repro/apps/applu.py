"""APPLU (NAS LU): SSOR solver for the Navier-Stokes equations.

LU performs symmetric successive over-relaxation: a *forward* wavefront
sweep (each point depends on its lower neighbours) followed by a
*backward* sweep.  The backward sweep is modeled as a forward loop with
reversed index expressions (``G-2-i``), giving genuinely negative strides
-- the group-locality leader election must pick the other end of the
stencil there.

Memory behaviour: like MGRID, plane-apart stencil streams over two big
grids; the backward sweep re-traverses data in the opposite order, which
is maximally hostile to LRU (the pages it wants were evicted in exactly
the order it needs them back).
"""

from __future__ import annotations

from repro.apps.base import AppSpec, pencil_dims_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.core.ir.nodes import Program

#: Cost of one lower/upper triangular update per grid point.
SWEEP_COST_US = 20.0
#: SSOR iterations (forward + backward per iteration).
ITERATIONS = 1


def build(data_pages: int, seed: int = 1) -> Program:
    d, g, _ = pencil_dims_for_pages(data_pages, arrays=2)
    b = ProgramBuilder("APPLU")
    i, j, k = Var("i"), Var("j"), Var("k")
    u = b.array("u", (d, g, g), elem_size=8)
    rsd = b.array("rsd", (d, g, g), elem_size=8)

    def forward():
        return loop("i", 1, d - 1, [
            loop("j", 1, g - 1, [
                loop("k", 1, g - 1, [
                    work(
                        [
                            read(rsd, i, j, k),
                            read(u, i - 1, j, k),
                            read(u, i, j - 1, k),
                            read(u, i, j, k - 1),
                            write(u, i, j, k),
                        ],
                        SWEEP_COST_US,
                        text="u[i][j][k] = blts(u, rsd, i, j, k);",
                    ),
                ]),
            ]),
        ])

    def backward():
        # Reversed traversal: index expressions count down from G-2.
        ri = (d - 2) - i
        rj = (g - 2) - j
        rk = (g - 2) - k
        return loop("i", 0, d - 2, [
            loop("j", 0, g - 2, [
                loop("k", 0, g - 2, [
                    work(
                        [
                            read(rsd, ri, rj, rk),
                            read(u, ri + 1, rj, rk),
                            read(u, ri, rj + 1, rk),
                            read(u, ri, rj, rk + 1),
                            write(u, ri, rj, rk),
                        ],
                        SWEEP_COST_US,
                        text="u[i][j][k] = buts(u, rsd, i, j, k);",
                    ),
                ]),
            ]),
        ])

    for _ in range(ITERATIONS):
        b.append(forward())
        b.append(backward())
    return b.build()


SPEC = AppSpec(
    name="APPLU",
    nas_name="LU",
    full_name="LU Simulated CFD Application (SSOR)",
    description=(
        "Symmetric successive over-relaxation for a block-sparse system: "
        "forward and backward wavefront sweeps over two large cubic "
        "grids, the backward sweep traversing memory in reverse"
    ),
    build=build,
    pattern="forward + reverse 3-D wavefront sweeps",
)
