"""CGM (NAS CG): conjugate gradient with a random sparse matrix.

Each CG iteration is dominated by a sparse matrix-vector product in CSR
form: the matrix values and column indices stream sequentially while the
gathered vector ``x[col[k]]`` is indirect.  The solution-space vectors are
small (rows = nnz / row-degree) and stay memory-resident.

Memory behaviour: the matrix streams are dense-prefetchable, but the
per-element indirect gather makes the compiler insert one prefetch per
nonzero -- almost all of which target the resident vector and are filtered
by the run-time layer.  This is why CGM shows the largest user-time
increase in the paper (~70%, Figure 3(a)), >96% unnecessary prefetches
(Figure 4(b)), and runs *slower than the original* when the run-time
layer is removed (Figure 4(c)).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppSpec, doubles_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, Var
from repro.core.ir.nodes import Program

#: Average nonzeros per matrix row.
ROW_DEGREE = 16
#: Per-nonzero cost of the multiply-accumulate (plus CSR bookkeeping).
SPMV_COST_US = 8.0
#: Per-row cost of the vector updates (axpy / dot products).
VECTOR_COST_US = 5.0
#: CG iterations.
ITERATIONS = 2


def build(data_pages: int, seed: int = 1) -> Program:
    # Matrix values + column indices split the major footprint evenly.
    nnz = doubles_for_pages(data_pages) // 2
    rows = max(256, nnz // ROW_DEGREE)
    rng = np.random.default_rng(seed)
    b = ProgramBuilder("CGM")
    k, r = Var("k"), Var("r")
    a = b.array("a", (nnz,), elem_size=8)
    col = b.array("col", (nnz,), elem_size=8,
                  data=rng.integers(0, rows, size=nnz))
    x = b.array("x", (rows,), elem_size=8)
    p = b.array("p", (rows,), elem_size=8)
    q = b.array("q", (rows,), elem_size=8)
    b.append(loop("it", 0, ITERATIONS, [
        # q = A * p  (flattened CSR traversal).
        loop("k", 0, nnz, [
            work(
                [read(a, k), read(col, k), read(x, ElemOf(col, k))],
                SPMV_COST_US,
                text="sum += a[k] * x[col[k]];",
            ),
        ]),
        # Vector updates: x, p, q are small and memory-resident.
        loop("r", 0, rows, [
            work(
                [read(q, r), read(p, r), write(x, r), write(p, r)],
                VECTOR_COST_US,
                text="x[r] += alpha*p[r]; p[r] = q[r] + beta*p[r];",
            ),
        ]),
    ]))
    return b.build()


SPEC = AppSpec(
    name="CGM",
    nas_name="CG",
    full_name="Conjugate Gradient",
    description=(
        "Conjugate-gradient approximation of the smallest eigenvalue of a "
        "large sparse symmetric matrix; CSR matrix values and column "
        "indices stream sequentially, the gathered vector is accessed "
        "indirectly through the column indices"
    ),
    build=build,
    pattern="sequential matrix streams + indirect vector gather",
)
