"""Registry of the eight NAS Parallel Benchmark models (Table 2)."""

from __future__ import annotations

from repro.apps import appbt, applu, appsp, buk, cgm, embar, fft, mgrid
from repro.apps.base import AppSpec
from repro.errors import ReproError

#: All eight applications, in the paper's customary order.
ALL_APPS: tuple[AppSpec, ...] = (
    buk.SPEC,
    cgm.SPEC,
    embar.SPEC,
    fft.SPEC,
    mgrid.SPEC,
    applu.SPEC,
    appsp.SPEC,
    appbt.SPEC,
)

_BY_NAME = {spec.name: spec for spec in ALL_APPS}
_BY_NAS = {spec.nas_name: spec for spec in ALL_APPS}


def get_app(name: str) -> AppSpec:
    """Look up an application by paper name (BUK) or NAS name (IS)."""
    key = name.upper()
    if key in _BY_NAME:
        return _BY_NAME[key]
    if key in _BY_NAS:
        return _BY_NAS[key]
    raise ReproError(
        f"unknown application {name!r}; known: "
        + ", ".join(sorted(_BY_NAME))
    )


def table2_rows() -> list[dict[str, str]]:
    """Rows of the Table 2 analog (application descriptions)."""
    return [
        {
            "name": spec.name,
            "nas": spec.nas_name,
            "full_name": spec.full_name,
            "description": spec.description,
            "pattern": spec.pattern,
        }
        for spec in ALL_APPS
    ]
