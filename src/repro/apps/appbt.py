"""APPBT (NAS BT): block tridiagonal ADI solver.

BT is structurally like SP but each grid point carries a 5-component
block, and the 5x5 block solves appear as small inner loops.  Crucially,
the block size reaches the solver as a runtime argument, so *the compiler
cannot see that the inner loop bound is tiny* -- exactly the situation the
paper blames for APPBT's lost coverage: "our compiler can make the mistake
of software pipelining references across the j loop rather than the i
loop ... the software pipeline never gets started" (Section 4.1.1).

The model gives the main grid ``u`` a symbolic component dimension (the
compiler plans it assuming the bound is large and pipelines across the
tiny component loop), while the right-hand side ``rhs`` uses unrolled
constant component references (planned correctly).  The result is the
paper's APPBT signature: coverage well below the rest of the suite and
the smallest speedup of the eight applications.  The two-version-loop
extension (``CompilerOptions.two_version_loops``) repairs it -- benched as
an ablation.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, pencil_dims_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.core.ir.nodes import Program

#: Components per grid point (runtime parameter, unknown at compile time).
BLOCK = 5
#: Cost of one block-solve step per component.
COMPONENT_COST_US = 18.0
#: Cost of the per-point right-hand-side update.
RHS_COST_US = 34.0
#: ADI iterations.
ITERATIONS = 1


def build(data_pages: int, seed: int = 1) -> Program:
    d, g, _ = pencil_dims_for_pages(data_pages, arrays=2, components=BLOCK, side=64)
    b = ProgramBuilder(
        "APPBT",
        params={"B": BLOCK},
        # The block size is a runtime argument: the compiler plans without it.
        compile_time_params={},
    )
    i, j, k, m = Var("i"), Var("j"), Var("k"), Var("m")
    u = b.array("u", (d, g, g, "B"), elem_size=8)
    rhs = b.array("rhs", (d, g, g, BLOCK), elem_size=8)

    def sweep():
        return loop("i", 1, d - 1, [
            loop("j", 1, g - 1, [
                loop("k", 1, g - 1, [
                    # The 5x5 block solve: a tiny inner loop whose bound
                    # the compiler cannot resolve.  It pipelines across m.
                    loop("m", 0, Var("B"), [
                        work(
                            [read(u, i, j, k, m), write(u, i, j, k, m)],
                            COMPONENT_COST_US,
                            text="u[i][j][k][m] = binvrhs(lhs, u, m);",
                        ),
                    ]),
                    # RHS update with unrolled constant components:
                    # analyzable, prefetched correctly.
                    work(
                        [read(rhs, i, j, k, 0), read(rhs, i, j, k, 4),
                         write(rhs, i, j, k, 2)],
                        RHS_COST_US,
                        text="rhs[i][j][k][*] = compute_rhs(...);",
                    ),
                ]),
            ]),
        ])

    for _ in range(ITERATIONS):
        b.append(sweep())
    return b.build()


SPEC = AppSpec(
    name="APPBT",
    nas_name="BT",
    full_name="Block Tridiagonal Simulated CFD Application",
    description=(
        "ADI factorization with 5x5 block tridiagonal solves; the block "
        "dimension is a runtime argument, hiding the tiny inner-loop "
        "bound from the compiler"
    ),
    build=build,
    pattern="3-D sweeps with tiny symbolic-bound inner block loops",
)
