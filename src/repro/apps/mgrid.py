"""MGRID (NAS MG): simplified 3-D multigrid.

MG applies V-cycles of a multigrid solver to a 3-D Poisson problem.  The
paging-relevant structure is the 7-point stencil relaxation over two large
G^3 grids (the solution ``u`` and the residual ``r``), plus coarse-grid
work that fits in memory.

Memory behaviour: the stencil's k-neighbours and j-neighbours share pages
with the centre point (group locality elects one leader), but the
i-neighbours are a whole plane away, so three independent prefetch
streams sweep the ``u`` grid one plane apart.  Two of the three fetch
pages the third fetched one outer iteration earlier -- the run-time layer
filters them, producing MGRID's high unnecessary-prefetch fraction in
Figure 4(b) without losing coverage.
"""

from __future__ import annotations

from repro.apps.base import AppSpec, pencil_dims_for_pages
from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import Var
from repro.core.ir.nodes import Program

#: Cost of one 7-point stencil update.
STENCIL_COST_US = 26.0
#: Cost of one coarse-grid update.
COARSE_COST_US = 8.0
#: Relaxation sweeps (one residual + one correction sweep per V-cycle).
VCYCLES = 1


def build(data_pages: int, seed: int = 1) -> Program:
    d, g, _ = pencil_dims_for_pages(data_pages, arrays=2)
    gc = max(4, g // 8)  # coarse grid: fits in memory
    b = ProgramBuilder("MGRID")
    i, j, k = Var("i"), Var("j"), Var("k")
    u = b.array("u", (d, g, g), elem_size=8)
    r = b.array("r", (d, g, g), elem_size=8)
    uc = b.array("uc", (gc, gc, gc), elem_size=8)

    def stencil_sweep(dst, src):
        return loop("i", 1, d - 1, [
            loop("j", 1, g - 1, [
                loop("k", 1, g - 1, [
                    work(
                        [
                            read(src, i, j, k - 1),
                            read(src, i, j, k),
                            read(src, i, j, k + 1),
                            read(src, i, j - 1, k),
                            read(src, i, j + 1, k),
                            read(src, i - 1, j, k),
                            read(src, i + 1, j, k),
                            write(dst, i, j, k),
                        ],
                        STENCIL_COST_US,
                        text="r[i][j][k] = v[i][j][k] - A(u)[i][j][k];",
                    ),
                ]),
            ]),
        ])

    body = []
    for _ in range(VCYCLES):
        body.append(stencil_sweep(r, u))  # residual
        # Coarse-grid relaxation: small, memory-resident.
        body.append(loop("ic", 1, gc - 1, [
            loop("jc", 1, gc - 1, [
                loop("kc", 1, gc - 1, [
                    work(
                        [read(uc, Var("ic"), Var("jc"), Var("kc")),
                         write(uc, Var("ic"), Var("jc"), Var("kc"))],
                        COARSE_COST_US,
                        text="uc[i][j][k] = relax(uc, ...);",
                    ),
                ]),
            ]),
        ]))
        body.append(stencil_sweep(u, r))  # prolongate + correct
    b.append(*body)
    return b.build()


SPEC = AppSpec(
    name="MGRID",
    nas_name="MG",
    full_name="Simplified 3-D Multigrid",
    description=(
        "V-cycle multigrid on a 3-D Poisson problem: 7-point stencil "
        "relaxation sweeps over two large cubic grids plus in-core "
        "coarse-grid work"
    ),
    build=build,
    pattern="3-D stencil sweeps with plane-apart group streams",
)
