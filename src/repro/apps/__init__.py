"""Models of the NAS Parallel Benchmarks (paper Section 3.2, Table 2).

Each module builds a loop-nest IR program reproducing the *memory
behaviour* of one benchmark: the loop structure, the reference patterns
(sequential streams, strided sweeps, stencils, indirect references), the
sweep counts, and the compute density.  Index arrays whose values feed
addresses (BUK's keys, CGM's sparsity structure) are materialized with
real data; numeric arrays never are -- the experiments measure paging, and
paging depends only on the address stream.

Problem sizes scale with ``data_pages`` (the major data footprint), so the
same model serves the out-of-core base case (~2x memory, Figure 3), the
in-core cases (Figure 6), the large cases (Figure 7), and BUK's size sweep
(Figure 8).
"""

from repro.apps.base import SIZE_CLASSES, AppSpec, doubles_for_pages
from repro.apps.registry import ALL_APPS, get_app

__all__ = ["AppSpec", "SIZE_CLASSES", "doubles_for_pages", "ALL_APPS", "get_app"]
