"""Synthetic workload builders.

Generic access-pattern generators, each returning a ready-to-compile
:class:`~repro.core.ir.nodes.Program`.  They are the controlled inputs for
unit tests, microbenchmarks, and exploration -- the NAS models in the
sibling modules are compositions of exactly these patterns:

* :func:`stream` -- one sequential read(/write) pass (EMBAR's halves);
* :func:`repeated_sweep` -- an iterated sweep (the LRU-hostile core of
  the solvers);
* :func:`strided` -- fixed-stride accesses (FFT passes, ADI line solves);
* :func:`stencil1d` -- neighbour references with group locality;
* :func:`gather` -- ``a[b[i]]`` indirect reads (CGM's gather);
* :func:`scatter` -- ``a[b[i]] = ...`` indirect writes (histogramming);
* :func:`random_walk` -- a pointerish chase with a controllable working
  set.
"""

from __future__ import annotations

import numpy as np

from repro.core.ir.builder import ProgramBuilder, loop, read, work, write
from repro.core.ir.expr import ElemOf, Var
from repro.core.ir.nodes import Program
from repro.errors import IRError


def stream(
    nelems: int,
    cost_us: float = 10.0,
    writes: bool = False,
    name: str = "stream",
) -> Program:
    """One sequential pass over ``nelems`` doubles."""
    b = ProgramBuilder(name)
    x = b.array("x", (nelems,), elem_size=8)
    i = Var("i")
    refs = [read(x, i)] + ([write(x, i)] if writes else [])
    b.append(loop("i", 0, nelems, [work(refs, cost_us)]))
    return b.build()


def repeated_sweep(
    nelems: int,
    sweeps: int,
    cost_us: float = 10.0,
    writes: bool = True,
    name: str = "sweep",
) -> Program:
    """``sweeps`` sequential passes over the same array."""
    if sweeps <= 0:
        raise IRError(f"need at least one sweep, got {sweeps}")
    b = ProgramBuilder(name)
    x = b.array("x", (nelems,), elem_size=8)
    i, s = Var("i"), Var("s")
    refs = [read(x, i)] + ([write(x, i)] if writes else [])
    b.append(loop("s", 0, sweeps, [
        loop("i", 0, nelems, [work(refs, cost_us)]),
    ]))
    return b.build()


def strided(
    nelems: int,
    stride: int,
    cost_us: float = 10.0,
    name: str = "strided",
) -> Program:
    """Visit every ``stride``-th element (then the next offset, etc.).

    Equivalent to a blocked transpose / ADI line traversal: the address
    stream jumps by ``stride`` elements per iteration.
    """
    if stride <= 0 or stride >= nelems:
        raise IRError(f"stride must be in (0, nelems), got {stride}")
    lanes = nelems // stride
    b = ProgramBuilder(name)
    x = b.array("x", (nelems,), elem_size=8)
    off, i = Var("off"), Var("i")
    b.append(loop("off", 0, stride, [
        loop("i", 0, lanes, [
            work([read(x, i * stride + off)], cost_us),
        ]),
    ]))
    return b.build()


def stencil1d(
    nelems: int,
    radius: int = 1,
    cost_us: float = 10.0,
    name: str = "stencil",
) -> Program:
    """``y[i] = f(x[i-r..i+r])``: group locality across the window."""
    if radius <= 0:
        raise IRError(f"radius must be positive, got {radius}")
    b = ProgramBuilder(name)
    x = b.array("x", (nelems,), elem_size=8)
    y = b.array("y", (nelems,), elem_size=8)
    i = Var("i")
    refs = [read(x, i + d) for d in range(-radius, radius + 1)]
    refs.append(write(y, i))
    b.append(loop("i", radius, nelems - radius, [work(refs, cost_us)]))
    return b.build()


def gather(
    nelems: int,
    table_elems: int,
    cost_us: float = 10.0,
    seed: int = 1,
    name: str = "gather",
) -> Program:
    """``sum += table[index[i]]``: sequential index stream, random reads."""
    rng = np.random.default_rng(seed)
    b = ProgramBuilder(name)
    index = b.array("index", (nelems,), elem_size=8,
                    data=rng.integers(0, table_elems, size=nelems))
    table = b.array("table", (table_elems,), elem_size=8)
    i = Var("i")
    b.append(loop("i", 0, nelems, [
        work([read(index, i), read(table, ElemOf(index, i))], cost_us),
    ]))
    return b.build()


def scatter(
    nelems: int,
    table_elems: int,
    cost_us: float = 10.0,
    seed: int = 1,
    name: str = "scatter",
) -> Program:
    """``table[index[i]] += v``: sequential index stream, random writes."""
    rng = np.random.default_rng(seed)
    b = ProgramBuilder(name)
    index = b.array("index", (nelems,), elem_size=8,
                    data=rng.integers(0, table_elems, size=nelems))
    table = b.array("table", (table_elems,), elem_size=8)
    i = Var("i")
    b.append(loop("i", 0, nelems, [
        work([read(index, i), write(table, ElemOf(index, i))], cost_us),
    ]))
    return b.build()


def random_walk(
    steps: int,
    footprint_elems: int,
    cost_us: float = 10.0,
    seed: int = 1,
    name: str = "walk",
) -> Program:
    """A precomputed random walk over ``footprint_elems`` (pointer chase).

    The walk is materialized as an index array, so the *simulated* access
    stream is a genuine dependent chain while staying replayable.
    """
    rng = np.random.default_rng(seed)
    b = ProgramBuilder(name)
    path = b.array("path", (steps,), elem_size=8,
                   data=rng.integers(0, footprint_elems, size=steps))
    heap = b.array("heap", (footprint_elems,), elem_size=8)
    i = Var("i")
    b.append(loop("i", 0, steps, [
        work([read(path, i), read(heap, ElemOf(path, i))], cost_us),
    ]))
    return b.build()
