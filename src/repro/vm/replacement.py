"""Clock (second-chance) LRU approximation.

Most commercial operating systems of the paper's era -- and Hurricane --
approximate LRU with a clock algorithm; the paper leans on this ("most
commercial operating systems use an approximation of LRU replacement",
Section 2.1).  Resident pages sit on a circular list; the hand clears
reference bits until it finds an unreferenced page, which becomes the
victim.

The implementation uses lazy deletion: pages that leave residency (release,
eviction, reclaim-then-re-release) simply leave stale entries behind, which
the hand discards when it reaches them.  Each insertion stamps the page
with a fresh token so stale entries are recognizable.
"""

from __future__ import annotations

from collections import deque

from repro.errors import MachineError
from repro.vm.page import Page, PageState


class ClockRing:
    """Circular list of resident pages with second-chance eviction."""

    __slots__ = ("_ring", "_live")

    def __init__(self) -> None:
        self._ring: deque[tuple[Page, int]] = deque()
        #: Number of non-stale entries (for diagnostics / invariants).
        self._live = 0

    def insert(self, page: Page) -> None:
        """Add a newly resident page behind the hand (with a new token)."""
        page.ring_token += 1
        page.ref_bit = True
        self._ring.append((page, page.ring_token))
        self._live += 1

    def forget(self, page: Page) -> None:
        """Mark a page's ring entry stale (it left residency)."""
        page.ring_token += 1
        self._live -= 1

    def select_victim(self) -> Page | None:
        """Run the clock hand; returns the victim or None if ring empty.

        The victim is removed from the ring; the caller completes the
        eviction (write-back, state change).
        """
        # Each live entry is touched at most twice (ref bit cleared once),
        # so 2 * len(ring) + stale entries bounds the scan.
        scans = 2 * len(self._ring) + 1
        while self._ring and scans > 0:
            scans -= 1
            page, token = self._ring.popleft()
            if page.ring_token != token or page.state != PageState.RESIDENT:
                continue  # stale entry: drop it
            if page.ref_bit:
                page.ref_bit = False
                self._ring.append((page, token))
                continue
            # Unreferenced resident page: the victim.
            self._live -= 1
            page.ring_token += 1
            return page
        if self._live > 0 and self._ring:
            raise MachineError("clock hand failed to find a victim among live pages")
        return None

    @property
    def live_count(self) -> int:
        return self._live

    def __len__(self) -> int:
        return len(self._ring)
