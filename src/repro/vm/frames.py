"""Physical frame pool and the free list.

Frames come from two sources, in preference order:

1. *fresh* frames that have never held (or no longer hold) any page, and
2. the *free list* of released pages, whose frames still hold valid
   contents until the frame is stolen for another page.

The distinction matters for two paper behaviours: a prefetch or fault for a
page that is itself on the free list is a cheap *reclaim* (no disk I/O,
"useful work" per Section 4.1.1), while stealing the oldest free-list frame
for a different page silently discards the released contents.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import MachineError


class FramePool:
    """Tracks fresh frames and the FIFO free list of released pages."""

    def __init__(self, total_frames: int) -> None:
        if total_frames <= 0:
            raise MachineError(f"frame pool needs >= 1 frame, got {total_frames}")
        self.total_frames = total_frames
        self.fresh = total_frames
        #: Released pages whose frames are reclaimable, oldest first.
        #: Maps vpage -> None (an ordered set).
        self.freelist: OrderedDict[int, None] = OrderedDict()
        self.in_use = 0
        #: Frames taken away by competing applications (multiprogramming
        #: experiments): unavailable until the competitor exits.
        self.reserved = 0

    @property
    def free_count(self) -> int:
        """Frames immediately available without eviction."""
        return self.fresh + len(self.freelist)

    def take_fresh(self) -> bool:
        """Consume one fresh frame if available."""
        if self.fresh > 0:
            self.fresh -= 1
            self.in_use += 1
            return True
        return False

    def steal_from_freelist(self) -> int | None:
        """Steal the oldest free-list frame; returns the discarded vpage."""
        if not self.freelist:
            return None
        vpage, _ = self.freelist.popitem(last=False)
        self.in_use += 1
        return vpage

    def reclaim(self, vpage: int) -> bool:
        """Pull ``vpage`` itself off the free list (contents intact)."""
        if vpage in self.freelist:
            del self.freelist[vpage]
            self.in_use += 1
            return True
        return False

    def add_to_freelist(self, vpage: int) -> None:
        """A released page's frame becomes reclaimable."""
        if vpage in self.freelist:
            raise MachineError(f"page {vpage} is already on the free list")
        if self.in_use <= 0:
            raise MachineError("free list gained a frame that was never in use")
        self.in_use -= 1
        self.freelist[vpage] = None

    def surrender(self) -> None:
        """An in-use frame becomes fresh again (its page was evicted)."""
        if self.in_use <= 0:
            raise MachineError("surrendered a frame that was never in use")
        self.in_use -= 1
        self.fresh += 1

    def reserve_fresh(self) -> bool:
        """A competitor claims one fresh frame (multiprogramming)."""
        if self.fresh > 0:
            self.fresh -= 1
            self.reserved += 1
            return True
        return False

    def convert_in_use_to_reserved(self) -> None:
        """A just-vacated in-use frame goes straight to the competitor."""
        if self.in_use <= 0:
            raise MachineError("no in-use frame to convert to reserved")
        self.in_use -= 1
        self.reserved += 1

    def unreserve(self, count: int) -> None:
        """A competitor exits, returning ``count`` frames."""
        if count > self.reserved:
            raise MachineError(
                f"cannot unreserve {count} frames; only {self.reserved} reserved"
            )
        self.reserved -= count
        self.fresh += count

    def check_invariant(self) -> None:
        """Frames are conserved: fresh + freelist + in_use + reserved == total."""
        if (self.fresh + len(self.freelist) + self.in_use + self.reserved
                != self.total_frames):
            raise MachineError(
                "frame conservation violated: "
                f"{self.fresh} fresh + {len(self.freelist)} freelist + "
                f"{self.in_use} in use + {self.reserved} reserved "
                f"!= {self.total_frames} total"
            )
