"""Vectorized residency index over the page table.

The memory manager keeps one :class:`PageFlagVector` -- a growable numpy
``uint8`` array indexed by virtual page number -- that mirrors, for every
page, the *fast-access predicate* of the chunk kernel::

    page.state == RESIDENT and (page.used_since_arrival or not page.via_prefetch)

A page satisfying the predicate can be read or written without entering
the memory manager at all: the access is a plain hit (or the repeat use
of an already-counted prefetched page), so the only architectural effects
are the reference bit, the dirty bit, and the write-version counter.
Everything else -- first use of a prefetched page, reclaims, faults --
must take the slow path, where the manager updates this mask at every
state transition (the transitions are enumerated in
docs/performance.md).

The payoff is that :meth:`take` classifies a whole chunk of accesses with
one numpy gather instead of one dict lookup + three attribute reads per
event, which is what makes the vectorized hot path of
:meth:`repro.machine.machine.Machine.run_chunk` possible.
"""

from __future__ import annotations

import numpy as np


class PageFlagVector:
    """Auto-growing one-byte-per-page flag array with bulk gather."""

    __slots__ = ("_flags", "drops")

    def __init__(self, capacity: int = 1024) -> None:
        self._flags = np.zeros(max(1, capacity), dtype=np.uint8)
        #: Count of 1 -> 0 transitions (pages losing fast status).  The
        #: chunk kernel snapshots this around each slow call: while it is
        #: unchanged, previously computed fast classifications can only
        #: have become *pessimistic* (pages turning fast), never wrong.
        self.drops = 0

    def _ensure(self, vpage: int) -> None:
        if vpage >= len(self._flags):
            grown = np.zeros(max(vpage + 1, 2 * len(self._flags)), dtype=np.uint8)
            grown[: len(self._flags)] = self._flags
            self._flags = grown

    def mark(self, vpage: int) -> None:
        """The page now satisfies the fast-access predicate."""
        self._ensure(vpage)
        self._flags[vpage] = 1

    def unmark(self, vpage: int) -> None:
        """The page no longer satisfies the predicate."""
        if vpage < len(self._flags):
            if self._flags[vpage]:
                self.drops += 1
            self._flags[vpage] = 0

    def test(self, vpage: int) -> bool:
        if vpage < len(self._flags):
            return bool(self._flags[vpage])
        return False

    def take(self, vpages: np.ndarray) -> np.ndarray:
        """Boolean gather: element i is ``test(vpages[i])``."""
        flags = self._flags
        in_range = vpages < len(flags)
        clipped = np.where(in_range, vpages, 0)
        return (flags[clipped] != 0) & in_range

    def reserve(self, vpage: int) -> np.ndarray:
        """Grow to cover ``vpage`` and return the raw flag array.

        The chunk kernel calls this once per chunk with the chunk's
        maximum page number so its per-window gathers can skip bounds
        handling (``flags[pg] != 0`` directly).
        """
        self._ensure(vpage)
        return self._flags

    def clear(self) -> None:
        self.drops += 1
        self._flags[:] = 0

    @property
    def raw(self) -> np.ndarray:
        """The raw flag array (re-read after any call that may grow it)."""
        return self._flags
