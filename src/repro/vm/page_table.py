"""Virtual address space layout and the page table.

The programmer's abstraction in the paper is unlimited virtual memory: each
out-of-core array is simply a mapped segment whose pages come from disk.
:class:`AddressSpace` hands out page-aligned segments (one per array) and
translates byte addresses to virtual page numbers; the page-table proper is
the lazy ``vpage -> Page`` map owned by the memory manager.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError, MachineError


@dataclass(frozen=True)
class Segment:
    """One mapped array: ``nbytes`` bytes starting at ``base`` (page aligned)."""

    name: str
    base: int
    nbytes: int
    npages: int

    @property
    def end(self) -> int:
        return self.base + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class AddressSpace:
    """Allocates page-aligned segments and translates addresses."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._segments: dict[str, Segment] = {}
        # Leave page 0 unmapped so that address 0 is never valid.
        self._next_page = 1

    def map_segment(self, name: str, nbytes: int) -> Segment:
        """Map a new segment of ``nbytes`` bytes; returns its descriptor.

        Segments are padded to whole pages and separated by one guard page
        so that a block prefetch running off an array end is detectable.
        """
        if name in self._segments:
            raise MachineError(f"segment {name!r} already mapped")
        if nbytes <= 0:
            raise MachineError(f"segment {name!r} must have positive size, got {nbytes}")
        npages = -(-nbytes // self.page_size)
        seg = Segment(name, self._next_page * self.page_size, nbytes, npages)
        self._next_page += npages + 1  # +1 guard page
        self._segments[name] = seg
        return seg

    def segment(self, name: str) -> Segment:
        try:
            return self._segments[name]
        except KeyError:
            raise MachineError(f"no segment named {name!r}") from None

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments.values())

    def vpage_of(self, addr: int) -> int:
        """Virtual page number of byte address ``addr``."""
        if addr < self.page_size:
            raise AddressError(f"address {addr:#x} is in the unmapped zero page")
        return addr // self.page_size

    def segment_of(self, addr: int) -> Segment:
        for seg in self._segments.values():
            if seg.contains(addr):
                return seg
        raise AddressError(f"address {addr:#x} falls outside every mapped segment")

    @property
    def total_pages(self) -> int:
        """Total mapped pages across all segments (guard pages excluded)."""
        return sum(s.npages for s in self._segments.values())
